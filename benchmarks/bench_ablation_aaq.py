"""Ablations of the design choices behind AAQ and the LightNobel dataflow.

Covers the design decisions DESIGN.md calls out: quantization granularity
(token vs channel vs tensor), outlier handling, adaptive vs uniform schemes,
and token-wise MHA (score-matrix residency).
"""

import numpy as np
from conftest import print_table

from repro.core import (
    AAQConfig,
    TokenQuantConfig,
    fake_quantize_channelwise,
    fake_quantize_tensorwise,
    fake_quantize_tokens,
)
from repro.hardware import LightNobelAccelerator
from repro.ppm import PPMConfig
from repro.analysis import record_activations
from repro.proteins import generate_protein


def collect_tokens():
    config = PPMConfig.small()
    recorder = record_activations([generate_protein(48, seed=17)], config=config, keep_arrays=True)
    pair_arrays = [
        tokens for tokens in recorder.arrays.values() if tokens.shape[-1] == config.pair_dim
    ]
    return np.concatenate(pair_arrays, axis=0)


def test_ablation_granularity_and_outliers(benchmark):
    tokens = benchmark.pedantic(collect_tokens, rounds=1, iterations=1)

    def rmse(reconstructed):
        return float(np.sqrt(np.mean((tokens - reconstructed) ** 2)))

    results = {
        "tensor-wise INT4": rmse(fake_quantize_tensorwise(tokens, 4)),
        "channel-wise INT4": rmse(fake_quantize_channelwise(tokens, 4)),
        "token-wise INT4": rmse(fake_quantize_tokens(tokens, TokenQuantConfig(4, 0))),
        "token-wise INT4 + outliers": rmse(fake_quantize_tokens(tokens, TokenQuantConfig(4, 4))),
        "token-wise INT8 + outliers": rmse(fake_quantize_tokens(tokens, TokenQuantConfig(8, 4))),
    }
    rows = [(name, f"RMSE {value:.5f}") for name, value in results.items()]
    print_table("Ablation: quantization granularity and outlier handling", rows)

    assert results["token-wise INT4"] < results["tensor-wise INT4"]
    assert results["token-wise INT4 + outliers"] < results["token-wise INT4"]
    assert results["token-wise INT8 + outliers"] < results["token-wise INT4 + outliers"]


def test_ablation_adaptive_vs_uniform_scheme():
    """Adaptive per-group schemes beat uniform ones at equal or smaller size."""
    adaptive = AAQConfig.paper_optimal()
    uniform_small = AAQConfig.uniform(inlier_bits=4, outlier_count=0)
    uniform_large = AAQConfig.uniform(inlier_bits=8, outlier_count=4)
    hidden = 128
    adaptive_bits = adaptive.average_bits_per_value(hidden)
    assert adaptive_bits < uniform_large.average_bits_per_value(hidden)
    assert adaptive_bits > uniform_small.average_bits_per_value(hidden)
    rows = [
        ("uniform INT4/0", f"{uniform_small.average_bits_per_value(hidden):.2f} bits/value"),
        ("adaptive (paper)", f"{adaptive_bits:.2f} bits/value"),
        ("uniform INT8/4", f"{uniform_large.average_bits_per_value(hidden):.2f} bits/value"),
    ]
    print_table("Ablation: adaptive vs uniform storage cost", rows)


def test_ablation_tokenwise_mha(benchmark):
    config = PPMConfig.paper()
    with_mha = LightNobelAccelerator(ppm_config=config, tokenwise_mha=True)
    without_mha = LightNobelAccelerator(ppm_config=config, tokenwise_mha=False)

    def run():
        return with_mha.simulate(512), without_mha.simulate(512)

    fused, unfused = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ("token-wise MHA (no score writeback)", f"{fused.dram_bytes / 1e9:.1f} GB traffic",
         f"{fused.total_seconds:.2f} s"),
        ("score matrix written to DRAM", f"{unfused.dram_bytes / 1e9:.1f} GB traffic",
         f"{unfused.total_seconds:.2f} s"),
    ]
    print_table("Ablation: token-wise MHA (Section 5.4)", rows)
    assert fused.dram_bytes < 0.75 * unfused.dram_bytes
    assert fused.total_seconds < unfused.total_seconds
