"""Memory guard: chunked triangular attention vs the dense score tensor.

The dense TriangleAttention path materializes an (N, N, N, heads) score
tensor, which is the activation-memory wall motivating the paper.  This
benchmark measures *actual process peak RSS* (``VmHWM``) of one
triangular-attention forward, dense vs chunked, each in a fresh subprocess so
the high-water mark belongs to exactly one execution mode, and enforces two
guarantees in CI:

* at ``GUARD_LENGTH`` (where both modes can run) the chunked peak must be
  *materially* below the dense peak — a regression that quietly
  re-materializes the score tensor fails the build;
* at ``LONG_LENGTH`` — where the dense score tensor alone would exceed
  ``DENSE_BUDGET_MIB`` — the chunked path must complete inside that budget,
  i.e. chunking really unlocks lengths the dense path cannot reach.

Run with ``-s`` to see the measured table; EXPERIMENTS.md records the numbers.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.ppm import PPMConfig

#: Length where dense still fits on the CI runner (dense scores: 62.5 MiB,
#: peak ~300 MB with softmax transients) but the gap to chunked is wide.
GUARD_LENGTH = 160

#: Length whose dense float64 score tensor alone (500 MiB) exceeds the budget.
LONG_LENGTH = 320

#: Memory budget (MiB) the dense score tensor must break at LONG_LENGTH and
#: the chunked peak RSS must stay under.
DENSE_BUDGET_MIB = 448.0

CHUNK_SIZE = 32

#: "Materially below": chunked peak RSS must be under this fraction of the
#: dense peak *and* at least this many MiB smaller.
GUARD_MAX_FRACTION = 0.6
GUARD_MIN_GAP_MIB = 64.0

#: The child reads VmHWM (the mm-level RSS high-water mark, reset by execve)
#: rather than ``ru_maxrss``: the latter is inherited from the parent across
#: fork+exec, so a large pytest parent would put a floor under every child
#: measurement and mask the dense/chunked gap.
_CHILD = """
import json, resource, sys, time
import numpy as np
from repro.ppm import PPMConfig, TriangleAttention

def peak_mib():
    try:
        with open('/proc/self/status') as status:
            for line in status:
                if line.startswith('VmHWM:'):
                    return int(line.split()[1]) / 1024.0
    except OSError:
        pass
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0

n, chunk = int(sys.argv[1]), int(sys.argv[2])
config = PPMConfig.small()
if chunk:
    config = config.with_chunking(attn_chunk_size=chunk)
attention = TriangleAttention(config, np.random.default_rng(0), mode="starting")
pair = np.random.default_rng(1).normal(size=(n, n, config.pair_dim))
baseline_mib = peak_mib()
start = time.perf_counter()
update = attention(pair)
elapsed = time.perf_counter() - start
assert np.isfinite(update).all()
print(json.dumps({"peak_mib": peak_mib(), "baseline_mib": baseline_mib,
                  "seconds": elapsed}))
"""


def measure(length: int, chunk: int) -> dict:
    """Run one forward in a fresh subprocess; return its peak-RSS report."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, "-c", _CHILD, str(length), str(chunk)],
        capture_output=True, text=True, env=env,
    )
    if result.returncode != 0:
        # Surface the child's traceback (e.g. a MemoryError on a constrained
        # runner) instead of a bare CalledProcessError with no diagnostic.
        raise AssertionError(
            f"measurement child (n={length}, chunk={chunk}) exited "
            f"{result.returncode}:\n{result.stderr}"
        )
    return json.loads(result.stdout.strip().splitlines()[-1])


def dense_score_tensor_mib(config: PPMConfig, length: int) -> float:
    """Size of the dense (N, N, N, heads) float64 score tensor in MiB."""
    return float(length) ** 3 * config.num_heads * 8 / (1024.0 * 1024.0)


def test_chunked_peak_rss_materially_below_dense():
    dense = measure(GUARD_LENGTH, 0)
    chunked = measure(GUARD_LENGTH, CHUNK_SIZE)
    rows = [
        ("mode", "peak RSS (MiB)", "wall clock (s)"),
        ("dense", f"{dense['peak_mib']:.0f}", f"{dense['seconds']:.2f}"),
        (f"chunked ({CHUNK_SIZE})", f"{chunked['peak_mib']:.0f}", f"{chunked['seconds']:.2f}"),
    ]
    print(f"\n=== Triangular attention at N={GUARD_LENGTH} (small config) ===")
    for row in rows:
        print("  " + " | ".join(str(item) for item in row))

    assert chunked["peak_mib"] < dense["peak_mib"] * GUARD_MAX_FRACTION, (
        f"chunked peak RSS {chunked['peak_mib']:.0f} MiB is not materially below "
        f"dense {dense['peak_mib']:.0f} MiB"
    )
    assert dense["peak_mib"] - chunked["peak_mib"] > GUARD_MIN_GAP_MIB


def test_chunked_runs_length_dense_cannot():
    config = PPMConfig.small()
    score_mib = dense_score_tensor_mib(config, LONG_LENGTH)
    assert score_mib > DENSE_BUDGET_MIB, (
        "LONG_LENGTH no longer breaks the budget; raise it to keep the guard honest"
    )
    chunked = measure(LONG_LENGTH, CHUNK_SIZE)
    print(
        f"\n=== N={LONG_LENGTH}: dense score tensor alone {score_mib:.0f} MiB "
        f"(budget {DENSE_BUDGET_MIB:.0f} MiB) ==="
    )
    print(
        f"  chunked ({CHUNK_SIZE}) peak RSS {chunked['peak_mib']:.0f} MiB, "
        f"{chunked['seconds']:.2f} s"
    )
    assert chunked["peak_mib"] < DENSE_BUDGET_MIB
