"""Perf: discrete-event replay throughput of the cluster simulator.

Replays a 4,000-request bursty trace against a 6-worker fleet under FIFO and
EDF and measures *replay* events/second — the pure-Python event loop that
every planner grid cell pays, with the service-time prefetch done once up
front (the prefetch cost is the sim layer's business and is guarded by
``bench_perf_simulator.py``/``bench_serving.py``).  Guards a conservative
floor so a regression in the event loop (accidental O(n^2) queue handling,
per-event simulator calls) fails CI rather than silently making capacity
planning 100x slower.
"""

import time

from conftest import print_table

from repro.cluster import (
    FleetSpec,
    SLOPolicy,
    bursty_trace,
    mixture_lengths,
    prefetch_service_times,
    replay_trace,
)
from repro.ppm import PPMConfig
from repro.sim import SimulationSession

NUM_REQUESTS = 4000
FLEET_SIZE = 6
POLICIES = ("fifo", "edf")

#: Conservative floor for replayed events/second (two events per request).
#: The loop sustains well over 100k events/s on developer hardware; the
#: guard fires only on an order-of-magnitude regression.
MIN_EVENTS_PER_SECOND = 10_000.0


def build_inputs():
    pool, weights = mixture_lengths([(32, 0.6), (96, 0.25), (160, 0.15)])
    trace = bursty_trace(
        rate_rps=500.0,
        num_requests=NUM_REQUESTS,
        length_pool=pool,
        length_weights=weights,
        slo=SLOPolicy(base_seconds=0.035, per_residue_seconds=2.0e-4),
        seed=11,
    )
    fleet = FleetSpec.homogeneous("h100-chunk", FLEET_SIZE)
    session = SimulationSession(ppm_config=PPMConfig.tiny(), use_disk_cache=False)
    times = prefetch_service_times(trace, fleet, session=session)
    return trace, fleet, times


def test_cluster_replay_throughput(benchmark):
    trace, fleet, times = build_inputs()

    def replay_all():
        results = {}
        for policy in POLICIES:
            start = time.perf_counter()
            report = replay_trace(
                trace,
                fleet,
                scheduler=policy,
                service_times=times,
                same_length_reuse_discount=0.25,
            )
            elapsed = time.perf_counter() - start
            results[policy] = (report, report.events_processed / elapsed)
        return results

    results = benchmark.pedantic(replay_all, rounds=1, iterations=1)

    rows = [("policy", "events", "events/s", "p99 (ms)", "SLO", "util")]
    for policy, (report, eps) in results.items():
        rows.append(
            (
                policy,
                report.events_processed,
                f"{eps:10.0f}",
                f"{report.p99_latency_seconds * 1e3:7.2f}",
                f"{report.slo_attainment:.3f}",
                f"{report.utilization['h100-chunk']:.3f}",
            )
        )
    print_table(
        f"Cluster replay throughput ({NUM_REQUESTS} requests, {FLEET_SIZE} workers)",
        rows,
    )

    for policy, (report, eps) in results.items():
        assert report.completed == NUM_REQUESTS
        assert eps >= MIN_EVENTS_PER_SECOND, (
            f"{policy} replay throughput regressed: {eps:.0f} events/s "
            f"< {MIN_EVENTS_PER_SECOND:.0f}"
        )
