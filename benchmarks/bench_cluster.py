"""Perf: discrete-event replay throughput of the cluster simulator.

Replays a 4,000-request bursty trace against a 6-worker fleet under FIFO and
EDF and measures *replay* events/second — the pure-Python event loop that
every planner grid cell pays, with the service-time prefetch done once up
front (the prefetch cost is the sim layer's business and is guarded by
``bench_perf_simulator.py``/``bench_serving.py``).  Guards a conservative
floor so a regression in the event loop (accidental O(n^2) queue handling,
per-event simulator calls) fails CI rather than silently making capacity
planning 100x slower.
"""

import time

from conftest import emit_bench_json, print_table

from repro.cluster import (
    AdmissionController,
    Autoscaler,
    FaultSchedule,
    FleetSpec,
    RecoveryPolicy,
    SLOPolicy,
    bursty_trace,
    mixture_lengths,
    prefetch_service_times,
    replay_trace,
)
from repro.ppm import PPMConfig
from repro.sim import SimulationSession

NUM_REQUESTS = 4000
FLEET_SIZE = 6
POLICIES = ("fifo", "edf")

#: Conservative floor for replayed events/second (two events per request).
#: The loop sustains well over 100k events/s on developer hardware; the
#: guard fires only on an order-of-magnitude regression.
MIN_EVENTS_PER_SECOND = 10_000.0


def build_inputs():
    pool, weights = mixture_lengths([(32, 0.6), (96, 0.25), (160, 0.15)])
    trace = bursty_trace(
        rate_rps=500.0,
        num_requests=NUM_REQUESTS,
        length_pool=pool,
        length_weights=weights,
        slo=SLOPolicy(base_seconds=0.035, per_residue_seconds=2.0e-4),
        seed=11,
    )
    fleet = FleetSpec.homogeneous("h100-chunk", FLEET_SIZE)
    session = SimulationSession(ppm_config=PPMConfig.tiny(), use_disk_cache=False)
    times = prefetch_service_times(trace, fleet, session=session)
    return trace, fleet, times


def test_cluster_replay_throughput(benchmark):
    trace, fleet, times = build_inputs()

    def replay_all():
        results = {}
        for policy in POLICIES:
            start = time.perf_counter()
            report = replay_trace(
                trace,
                fleet,
                scheduler=policy,
                service_times=times,
                same_length_reuse_discount=0.25,
            )
            elapsed = time.perf_counter() - start
            results[policy] = (report, report.events_processed / elapsed)
        return results

    results = benchmark.pedantic(replay_all, rounds=1, iterations=1)

    rows = [("policy", "events", "events/s", "p99 (ms)", "SLO", "util")]
    for policy, (report, eps) in results.items():
        rows.append(
            (
                policy,
                report.events_processed,
                f"{eps:10.0f}",
                f"{report.p99_latency_seconds * 1e3:7.2f}",
                f"{report.slo_attainment:.3f}",
                f"{report.utilization['h100-chunk']:.3f}",
            )
        )
    print_table(
        f"Cluster replay throughput ({NUM_REQUESTS} requests, {FLEET_SIZE} workers)",
        rows,
    )

    emit_bench_json(
        "cluster_replay",
        {
            "num_requests": NUM_REQUESTS,
            "fleet_size": FLEET_SIZE,
            "events_per_second": {
                policy: eps for policy, (report, eps) in results.items()
            },
            "events_processed": {
                policy: report.events_processed
                for policy, (report, eps) in results.items()
            },
        },
    )

    for policy, (report, eps) in results.items():
        assert report.completed == NUM_REQUESTS
        assert eps >= MIN_EVENTS_PER_SECOND, (
            f"{policy} replay throughput regressed: {eps:.0f} events/s "
            f"< {MIN_EVENTS_PER_SECOND:.0f}"
        )


#: The closed-loop path pays per-event fault lookups, generation checks and
#: autoscaler ticks; it must stay within 2x of the healthy event loop so
#: scenario-grid planning (which replays faults per cell) stays interactive.
MAX_FAULT_SLOWDOWN = 2.0


def test_faulty_replay_stays_within_2x_of_healthy(benchmark):
    trace, fleet, times = build_inputs()
    faults = FaultSchedule.generate(
        FLEET_SIZE,
        trace.duration_seconds,
        seed=7,
        crashes_per_worker=1.0,
        mean_downtime_seconds=trace.duration_seconds * 0.05,
        detection_lag_seconds=0.002,
        stragglers_per_worker=1.0,
        mean_straggle_seconds=trace.duration_seconds * 0.05,
    )
    closed_loop = dict(
        faults=faults,
        recovery=RecoveryPolicy(max_retries=2, backoff_base_seconds=0.005),
        admission=AdmissionController(max_queue_depth=16 * FLEET_SIZE),
        autoscaler=Autoscaler(
            min_workers=FLEET_SIZE,
            max_workers=2 * FLEET_SIZE,
            interval_seconds=0.05,
            scale_up_lag_seconds=0.1,
            slo_target=0.95,
        ),
    )

    def replay_both():
        results = {}
        for label, kwargs in (("healthy", {}), ("faulty", closed_loop)):
            start = time.perf_counter()
            report = replay_trace(
                trace,
                fleet,
                scheduler="edf",
                service_times=times,
                same_length_reuse_discount=0.25,
                **kwargs,
            )
            elapsed = time.perf_counter() - start
            results[label] = (report, report.events_processed / elapsed)
        return results

    results = benchmark.pedantic(replay_both, rounds=1, iterations=1)

    rows = [("path", "events", "events/s", "completed", "retried", "SLO")]
    for label, (report, eps) in results.items():
        rows.append(
            (
                label,
                report.events_processed,
                f"{eps:10.0f}",
                report.completed,
                report.retried,
                f"{report.slo_attainment:.3f}",
            )
        )
    print_table(
        f"Fault-aware replay overhead ({NUM_REQUESTS} requests, {FLEET_SIZE} workers)",
        rows,
    )

    healthy_eps = results["healthy"][1]
    faulty_eps = results["faulty"][1]
    emit_bench_json(
        "cluster_faulty_replay",
        {
            "num_requests": NUM_REQUESTS,
            "fleet_size": FLEET_SIZE,
            "healthy_events_per_second": healthy_eps,
            "faulty_events_per_second": faulty_eps,
            "fault_slowdown": healthy_eps / faulty_eps if faulty_eps else None,
        },
    )
    assert faulty_eps >= MIN_EVENTS_PER_SECOND
    assert faulty_eps * MAX_FAULT_SLOWDOWN >= healthy_eps, (
        f"fault-aware event loop too slow: {faulty_eps:.0f} events/s vs "
        f"{healthy_eps:.0f} healthy (> {MAX_FAULT_SLOWDOWN:.0f}x slowdown)"
    )
