"""Fig. 3: end-to-end latency breakdown for R0271 (77 aa) and T1269 (1,410 aa)."""

from conftest import print_table

from repro.analysis import latency_breakdown


def run_breakdown():
    return {name: latency_breakdown(n) for name, n in (("R0271", 77), ("T1269", 1410))}


def test_fig03_latency_breakdown(benchmark):
    results = benchmark.pedantic(run_breakdown, rounds=1, iterations=1)
    rows = []
    for name, breakdown in results.items():
        rows.append(
            (
                name,
                f"folding block {breakdown.folding_block_fraction:.1%}",
                f"pair dataflow {breakdown.pair_dataflow_fraction:.1%}",
                f"triangular attention {breakdown.triangular_attention_fraction:.1%}",
            )
        )
    print_table("Fig. 3 latency breakdown (paper: 83.8%/94.5% folding, 29.0%->75.9% tri-att)", rows)

    short, long = results["R0271"], results["T1269"]
    assert short.folding_block_fraction > 0.6
    assert long.folding_block_fraction > 0.9
    assert long.pair_dataflow_fraction > 0.85
    assert long.triangular_attention_fraction > short.triangular_attention_fraction
