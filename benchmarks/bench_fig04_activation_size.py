"""Fig. 4: weight size vs peak activation size across sequence lengths."""

from conftest import print_table

from repro.analysis import activation_weight_curve

SEQUENCE_LENGTHS = [100, 500, 1000, 2500, 5000, 10000]


def test_fig04_activation_weight_ratio(benchmark):
    curve = benchmark.pedantic(activation_weight_curve, args=(SEQUENCE_LENGTHS,), rounds=1, iterations=1)
    rows = [
        (p.sequence_length, f"weight {p.weight_gb:.2f} GB", f"activation {p.activation_gb:.2f} GB",
         f"ratio {p.ratio:.2f}")
        for p in curve
    ]
    print_table("Fig. 4 activation vs weight size (paper ratios: 1.0 ... 2607 at 10k)", rows)

    ratios = [p.ratio for p in curve]
    assert ratios == sorted(ratios), "activation/weight ratio must grow with sequence length"
    assert ratios[-1] > 1000, "at 10k residues activations dwarf weights by >1000x"
    # The 2,034-residue OOM anchor: activations alone exceed an 80 GB GPU.
    assert next(p for p in curve if p.sequence_length == 2500).activation_gb > 80
