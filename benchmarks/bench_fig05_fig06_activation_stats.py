"""Fig. 5 / Fig. 6(c): activation distributions and Group A/B/C characteristics."""

import numpy as np
from conftest import print_table

from repro.analysis import figure5_analysis, figure6c_statistics, group_separation_report, record_activations
from repro.ppm import PPMConfig
from repro.proteins import generate_protein


def collect():
    targets = [generate_protein(56, seed=s) for s in (3, 4)]
    return record_activations(targets, config=PPMConfig.small(), keep_arrays=True)


def test_fig05_token_vs_channel_distribution(benchmark):
    recorder = benchmark.pedantic(collect, rounds=1, iterations=1)
    analyses = figure5_analysis(recorder)
    concentration = float(np.mean([a.token_outlier_concentration for a in analyses]))
    rows = [(a.name, f"channel spread {a.channel_range_spread:.2f}",
             f"token spread {a.token_range_spread:.2f}") for a in analyses[:8]]
    print_table(f"Fig. 5 sample taps (outlier concentration in top tokens: {concentration:.2f})", rows)
    assert analyses
    assert concentration > 0.1  # outliers concentrate in specific token positions

    stats = {s.group: s for s in figure6c_statistics(recorder)}
    rows = [
        (f"Group {g}", f"mean |value| {stats[g].mean_abs:.2f}",
         f"outliers/token {stats[g].outliers_per_token:.2f}")
        for g in ("A", "B", "C")
    ]
    print_table("Fig. 6(c) group characteristics (paper: 82.14/4.05/3.85, 2.31/1.69/0.64)", rows)
    assert stats["A"].mean_abs > stats["B"].mean_abs
    assert stats["A"].mean_abs > stats["C"].mean_abs

    report = group_separation_report(recorder)
    assert report["value_ratio_a_over_b"] > 1.5
