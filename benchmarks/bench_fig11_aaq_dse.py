"""Fig. 11: design-space exploration of the AAQ quantization scheme per group."""

from conftest import print_table

from repro.analysis.dse import QuantizationDSE
from repro.ppm import PPMConfig
from repro.proteins import generate_protein

#: Reduced sweep (both precisions, a few outlier counts) to keep runtime modest;
#: the full OUTLIER_SWEEP is available through the same API.
OUTLIER_COUNTS = (16, 4, 0)
PRECISIONS = (4, 8)


def run_dse():
    targets = [generate_protein(56, seed=9)]
    dse = QuantizationDSE(targets, config=PPMConfig.small(), seed=0)
    sweeps = {
        group: dse.sweep_group(group, outlier_counts=OUTLIER_COUNTS, precisions=PRECISIONS)
        for group in ("A", "B", "C")
    }
    return dse, sweeps


def collect_group_a_tokens():
    """Group-A (residual-stream) activations for the token-level sweep."""
    import numpy as np

    from repro.analysis import record_activations

    config = PPMConfig.small()
    recorder = record_activations([generate_protein(56, seed=9)], config=config, keep_arrays=True)
    arrays = [
        tokens
        for name, tokens in recorder.arrays.items()
        if ("residual" in name or "pre_ln" in name) and tokens.shape[-1] == config.pair_dim
    ]
    return {"A": np.concatenate(arrays, axis=0)}


def test_fig11_quantization_dse(benchmark):
    dse, sweeps = benchmark.pedantic(run_dse, rounds=1, iterations=1)
    for group, points in sweeps.items():
        rows = [
            (f"{p.inlier_bits}-bit", f"{p.outlier_count} outliers",
             f"TM {p.tm_score:.3f}", f"eff {p.efficiency:.3f}")
            for p in points
        ]
        best = dse.best_point(points)
        print_table(
            f"Fig. 11 Group {group} (baseline TM {dse.baseline_tm:.3f}; "
            f"best: {best.inlier_bits}-bit, {best.outlier_count} outliers)",
            rows,
        )

    # End-to-end TM-score: every explored configuration stays close to the
    # baseline, and Group C is most efficient at INT4 (the paper's conclusion).
    best_c = dse.best_point(sweeps["C"])
    assert best_c.inlier_bits == 4
    for points in sweeps.values():
        for point in points:
            assert point.tm_score >= dse.baseline_tm - 0.2

    # Token-level sweep on Group A activations (residual stream): outlier
    # handling or INT8 is required for the best efficiency, as in Fig. 11(a).
    from repro.analysis import quick_group_sweep

    group_a = collect_group_a_tokens()
    points_a = quick_group_sweep(group_a, "A", hidden_dim=group_a["A"].shape[-1])
    best_a = max(points_a, key=lambda p: p.efficiency)
    assert best_a.inlier_bits == 8 or best_a.outlier_count >= 4
