"""Fig. 12: hardware design-space exploration (#VVPUs per RMPU, #RMPUs)."""

from conftest import print_table

from repro.analysis import hardware_dse, saturation_point

SEQUENCE_LENGTHS = [400, 1200]


def run_dse():
    return hardware_dse(
        SEQUENCE_LENGTHS,
        rmpu_counts=(1, 2, 4, 8, 16, 32, 64),
        vvpu_counts=(1, 2, 3, 4, 5, 6, 8),
    )


def test_fig12_hardware_dse(benchmark):
    sweeps = benchmark.pedantic(run_dse, rounds=1, iterations=1)

    vvpu_rows = [
        (f"{p.vvpus_per_rmpu} VVPUs/RMPU", f"{p.average_latency_seconds:.3f} s")
        for p in sweeps["vvpu_sweep"]
    ]
    rmpu_rows = [
        (f"{p.num_rmpus} RMPUs", f"{p.average_latency_seconds:.3f} s") for p in sweeps["rmpu_sweep"]
    ]
    print_table("Fig. 12(a) latency vs VVPUs per RMPU (paper: saturates at 4)", vvpu_rows)
    print_table("Fig. 12(b) latency vs number of RMPUs (paper: saturates at 32)", rmpu_rows)

    vvpu_latencies = [p.average_latency_seconds for p in sweeps["vvpu_sweep"]]
    rmpu_latencies = [p.average_latency_seconds for p in sweeps["rmpu_sweep"]]
    assert vvpu_latencies == sorted(vvpu_latencies, reverse=True)
    assert rmpu_latencies == sorted(rmpu_latencies, reverse=True)

    # Saturation: adding VVPUs beyond ~4 per RMPU yields <10% improvement.
    assert saturation_point(sweeps["vvpu_sweep"], "vvpus_per_rmpu") <= 5
    # RMPU returns diminish toward the paper's 32-RMPU design point.
    first_double = rmpu_latencies[0] / rmpu_latencies[1]
    last_double = rmpu_latencies[-2] / rmpu_latencies[-1]
    assert last_double < first_double
