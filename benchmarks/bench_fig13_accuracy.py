"""Fig. 13: TM-score of every quantization scheme across datasets."""

from conftest import print_table

from repro.analysis import AccuracyExperiment, accuracy_deltas, results_as_table
from repro.core import all_schemes
from repro.ppm import PPMConfig


def run_experiment():
    experiment = AccuracyExperiment(
        config=PPMConfig.small(), targets_per_dataset=1, max_target_length=72, seed=0
    )
    return results_as_table(experiment.run(schemes=all_schemes()))


def test_fig13_accuracy_across_schemes(benchmark):
    table = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for dataset, scores in table.items():
        rows = [(scheme, f"TM {score:.3f}") for scheme, score in scores.items()]
        print_table(f"Fig. 13 {dataset} (paper baselines: CAMEO 0.802, CASP14 0.516, CASP15 0.540)", rows)

    deltas = accuracy_deltas(table)
    for dataset, scores in table.items():
        # LightNobel (AAQ): negligible TM-score change versus FP16.
        assert abs(deltas[dataset]["LightNobel (AAQ)"]) < 0.02
        # Token-wise INT8 baselines also track the baseline closely.
        assert abs(deltas[dataset]["SmoothQuant"]) < 0.05
        assert abs(deltas[dataset]["LLM.int8()"]) < 0.05
        # Tender (channel-wise INT4) deviates from the FP16 baseline far more
        # than AAQ does: sub-INT8 non-token-wise quantization is not stable on
        # the PPM's pair activations.
        assert abs(deltas[dataset]["Tender"]) > 5 * abs(deltas[dataset]["LightNobel (AAQ)"])
        assert abs(deltas[dataset]["Tender"]) > 0.02
