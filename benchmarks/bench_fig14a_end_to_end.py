"""Fig. 14(a): end-to-end latency of recent PPM systems, normalized to LightNobel."""

from conftest import print_table

from repro.gpu import EndToEndComparison


def run_comparison(lengths):
    return EndToEndComparison().normalized_to_lightnobel(lengths)


def test_fig14a_end_to_end(benchmark, catalogs):
    # Paper protocol: CASP16 proteins short enough to fit on a single GPU.
    lengths = [n for n in catalogs["CASP16"].lengths() if n <= 1410][:4]
    normalized = benchmark.pedantic(run_comparison, args=(lengths,), rounds=1, iterations=1)
    rows = [(system, f"{value:.2f}x LightNobel") for system, value in sorted(
        normalized.items(), key=lambda item: item[1])]
    print_table("Fig. 14(a) normalized end-to-end latency "
                "(paper: AlphaFold2 141x, AlphaFold3 72x, FastFold 41x, ColabFold 7x, ESMFold 1.74x)", rows)

    assert normalized["LightNobel"] == 1.0
    assert normalized["ESMFold (Baseline)"] > 1.0
    assert normalized["MEFold"] > normalized["PTQ4Protein"] > normalized["ESMFold (Baseline)"]
    assert normalized["ColabFold"] > normalized["MEFold"]
    assert normalized["AlphaFold2"] > normalized["AlphaFold3"] > normalized["FastFold"] > normalized["ColabFold"]
