"""Fig. 14(b-d): folding-block latency of LightNobel vs A100/H100 (±chunk)."""

import pytest
from conftest import print_table

from repro.analysis import average_speedup, compare_hardware_on_lengths


def compare_all(dataset_lengths, **kwargs):
    results = {}
    for dataset, lengths in dataset_lengths.items():
        try:
            results[dataset] = compare_hardware_on_lengths(dataset, lengths, **kwargs)
        except ValueError:
            continue  # filter removed every protein for this dataset
    return results


def test_fig14b_all_proteins(benchmark, dataset_lengths):
    results = benchmark.pedantic(compare_all, args=(dataset_lengths,), rounds=1, iterations=1)
    for dataset, comparison in results.items():
        speedups = average_speedup(comparison)
        rows = [(config, f"{value:.2f}x slower than LightNobel") for config, value in speedups.items()]
        print_table(f"Fig. 14(b) {dataset} (paper: 3.85-8.44x chunk, 1.01-1.22x no chunk)", rows)
        assert speedups["H100 (chunk)"] > speedups["H100 (no chunk)"]
        assert speedups["A100 (chunk)"] >= speedups["H100 (chunk)"] * 0.85
        assert speedups["H100 (no chunk)"] > 0.9


def test_fig14c_excluding_oom(benchmark, dataset_lengths):
    subset = {k: v for k, v in dataset_lengths.items() if k != "CAMEO"}
    results = benchmark.pedantic(
        compare_all, args=(subset,), kwargs={"exclude_oom": True}, rounds=1, iterations=1
    )
    for dataset, comparison in results.items():
        speedups = average_speedup(comparison)
        rows = [(config, f"{value:.2f}x") for config, value in speedups.items()]
        print_table(f"Fig. 14(c) {dataset}, OOM proteins excluded (paper: 5.3-6.7x chunk)", rows)
        assert speedups["H100 (chunk)"] > 1.0


def test_fig14d_long_proteins_only(benchmark, dataset_lengths):
    subset = {k: v for k, v in dataset_lengths.items() if k in ("CASP15", "CASP16")}
    results = benchmark.pedantic(
        compare_all, args=(subset,), kwargs={"only_oom_without_chunk": True}, rounds=1, iterations=1
    )
    if not results:
        pytest.skip("no proteins exceeded single-GPU memory in the sampled lengths")
    for dataset, comparison in results.items():
        speedups = average_speedup(comparison)
        rows = [(config, f"{value:.2f}x") for config, value in speedups.items()]
        print_table(f"Fig. 14(d) {dataset}, chunk-only proteins (paper: 1.94-3.30x)", rows)
        assert comparison.out_of_memory["H100 (no chunk)"]
        assert 1.0 < speedups["H100 (chunk)"] < 20.0
