"""Fig. 15: peak memory requirement across datasets and sequence lengths."""

from conftest import print_table

from repro.analysis import lightnobel_peak_memory_gb, max_supported_length, peak_memory_comparison


def collect_dataset_peaks(dataset_lengths):
    return {
        dataset: peak_memory_comparison(max(lengths)) for dataset, lengths in dataset_lengths.items()
    }


def test_fig15a_peak_memory_across_datasets(benchmark, dataset_lengths):
    peaks = benchmark.pedantic(collect_dataset_peaks, args=(dataset_lengths,), rounds=1, iterations=1)
    for dataset, values in peaks.items():
        rows = [(k, f"{v:.1f} GB") for k, v in values.items()]
        print_table(f"Fig. 15(a) {dataset} peak memory (paper CASP15: 597/54/14 GB)", rows)
        assert values["lightnobel"] < values["baseline_chunk"] < values["baseline_no_chunk"]

    casp16 = peaks["CASP16"]
    reduction = casp16["baseline_no_chunk"] / casp16["lightnobel"]
    assert reduction > 20, "paper reports up to 120x peak-memory reduction on long proteins"


def test_fig15b_peak_memory_vs_length(benchmark):
    lengths = [1000, 2000, 3364, 5000, 6879, 9945]
    curve = benchmark.pedantic(
        lambda: {n: peak_memory_comparison(n) for n in lengths}, rounds=1, iterations=1
    )
    rows = [
        (n, f"no-chunk {v['baseline_no_chunk']:.0f} GB", f"chunk {v['baseline_chunk']:.0f} GB",
         f"LightNobel {v['lightnobel']:.1f} GB")
        for n, v in curve.items()
    ]
    print_table("Fig. 15(b) peak memory vs sequence length (80 GB budget line)", rows)

    # LightNobel processes the longest CASP16 protein (6,879 aa) and close to
    # the paper's 9,945-residue limit within 80 GB.
    assert curve[6879]["lightnobel"] < 80.0
    assert curve[6879]["baseline_chunk"] > 80.0
    assert max_supported_length(80.0) > 6879
