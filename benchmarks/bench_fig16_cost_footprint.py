"""Fig. 16: computational cost and memory footprint versus sequence length."""

from conftest import print_table

from repro.analysis import computational_cost_comparison, memory_footprint_comparison

LENGTHS = [1000, 2500, 5000, 7500, 10000]


def collect():
    return {
        n: {
            "cost": computational_cost_comparison(n),
            "footprint": memory_footprint_comparison(n),
        }
        for n in LENGTHS
    }


def test_fig16_cost_and_footprint(benchmark):
    data = benchmark.pedantic(collect, rounds=1, iterations=1)
    rows = []
    cost_reductions = []
    footprint_reductions = []
    for n, values in data.items():
        cost_reduction = 1 - values["cost"]["lightnobel"] / values["cost"]["baseline"]
        footprint_reduction = 1 - values["footprint"]["lightnobel"] / values["footprint"]["baseline"]
        cost_reductions.append(cost_reduction)
        footprint_reductions.append(footprint_reduction)
        rows.append((n, f"compute cost -{cost_reduction:.1%}", f"memory footprint -{footprint_reduction:.1%}"))
    print_table("Fig. 16 (paper: compute cost -43.4%, memory footprint -74.1% on average)", rows)

    assert all(0.3 < r < 0.85 for r in cost_reductions)
    assert all(0.4 < r < 0.85 for r in footprint_reductions)
    # Reductions are stable across sequence lengths (token-wise scaling).
    assert max(cost_reductions) - min(cost_reductions) < 0.15
