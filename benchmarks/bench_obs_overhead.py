"""Perf guard: observability must ride the warm serving path at <= 5% cost.

The tracing hot path is one pre-built tuple append under one lock per
fulfilled request (:meth:`repro.obs.tracing.Tracer.record_batch`); this
benchmark holds it to that promise.  One warm paper-config service serves
the multi-tenant request stream of ``bench_serving`` in alternating
tracer-off / tracer-on rounds (interleaved so drift hits both modes
equally), takes the min-of-N wall time per mode, and asserts the relative
overhead stays within the 5% CI budget.  Emits ``BENCH_obs_overhead.json``.

The DES timeline recorder is measured the same way (micro replay with and
without a recorder attached) and reported alongside — informational, since
a replay is an offline analysis, not a serving hot path.
"""

import time

from conftest import emit_bench_json, print_table

from repro.cluster import FleetSpec, Request, RequestTrace, replay_trace_outcomes
from repro.obs.timeline import TimelineRecorder
from repro.obs.tracing import Tracer
from repro.serving import LatencyRequest, LatencyService

#: Relative warm-path slowdown the tracer is allowed (the CI guard).
MAX_TRACING_OVERHEAD = 0.05

SEQUENCE_LENGTHS = (200, 400, 800)
BACKENDS = ("lightnobel", "h100", "h100-chunk")
DUPLICATION = 8
ROUNDS = 14


def request_stream():
    unique = [
        LatencyRequest(backend=backend, sequence_length=n)
        for backend in BACKENDS
        for n in SEQUENCE_LENGTHS
    ]
    return unique * DUPLICATION


def test_tracing_overhead_on_warm_path(paper_config):
    requests = request_stream()
    tracer = Tracer(max_traces=256)
    with LatencyService(ppm_config=paper_config, use_disk_cache=False) as service:
        service.query_batch(requests, timeout=600.0)  # warm the memo first

        def one_round(traced: bool) -> float:
            service.tracer = tracer if traced else None
            start = time.perf_counter()
            service.query_batch(requests, timeout=600.0)
            return time.perf_counter() - start

        off_times, on_times = [], []
        for _ in range(ROUNDS):
            off_times.append(one_round(False))
            on_times.append(one_round(True))
        stats = service.capacity_report()

    # Min-of-N: the cleanest pass each mode got under identical conditions.
    t_off, t_on = min(off_times), min(on_times)
    overhead = (t_on - t_off) / t_off
    per_request_off = t_off / len(requests)
    per_request_on = t_on / len(requests)

    print_table(
        "Tracing overhead: warm LatencyService, tracer off vs on",
        [
            ("mode", "round ms (min of %d)" % ROUNDS, "per-request us"),
            ("tracer off", f"{t_off * 1e3:8.3f}", f"{per_request_off * 1e6:7.2f}"),
            ("tracer on", f"{t_on * 1e3:8.3f}", f"{per_request_on * 1e6:7.2f}"),
        ],
    )
    print(
        f"  overhead: {overhead * 100:.2f}% "
        f"(budget {MAX_TRACING_OVERHEAD * 100:.0f}%), "
        f"{len(tracer)} traces held, {tracer.evicted_traces} evicted"
    )

    # Sanity: every round was pure memo (no simulator runs to pollute timing).
    assert stats.errors == 0
    assert overhead <= MAX_TRACING_OVERHEAD, (
        f"tracing slows the warm path {overhead * 100:.2f}% "
        f"(> {MAX_TRACING_OVERHEAD * 100:.0f}% budget)"
    )

    # Timeline recorder: micro replay with vs without (informational).
    trace = RequestTrace(
        name="obs-bench",
        requests=tuple(
            Request(
                id=i,
                arrival_seconds=0.01 * i,
                sequence_length=32,
                priority=0,
                deadline_seconds=0.01 * i + 5.0,
            )
            for i in range(2000)
        ),
        seed=0,
        offered_rps=100.0,
    )
    fleet = FleetSpec.homogeneous("lightnobel", 4)
    times = {(0, 32): 0.05}

    def replay_round(with_recorder: bool):
        recorder = TimelineRecorder() if with_recorder else None
        start = time.perf_counter()
        result = replay_trace_outcomes(
            trace, fleet, service_times=times, timeline=recorder
        )
        return time.perf_counter() - start, result, recorder

    bare_times, recorded_times = [], []
    baseline = recorded = recorder = None
    for _ in range(5):
        t, baseline, _ = replay_round(False)
        bare_times.append(t)
        t, recorded, recorder = replay_round(True)
        recorded_times.append(t)
    assert baseline == recorded  # recording never perturbs the replay
    t_bare, t_recorded = min(bare_times), min(recorded_times)
    timeline_overhead = (t_recorded - t_bare) / t_bare
    print(
        f"  DES timeline: {t_bare * 1e3:.1f} ms bare vs "
        f"{t_recorded * 1e3:.1f} ms recording {len(recorder)} events "
        f"({timeline_overhead * 100:+.1f}%)"
    )

    emit_bench_json(
        "obs_overhead",
        {
            "requests_per_round": len(requests),
            "rounds": ROUNDS,
            "warm_round_seconds_tracer_off": t_off,
            "warm_round_seconds_tracer_on": t_on,
            "per_request_us_tracer_off": per_request_off * 1e6,
            "per_request_us_tracer_on": per_request_on * 1e6,
            "tracing_overhead": overhead,
            "tracing_overhead_budget": MAX_TRACING_OVERHEAD,
            "timeline_replay_seconds_bare": t_bare,
            "timeline_replay_seconds_recording": t_recorded,
            "timeline_overhead": timeline_overhead,
            "timeline_events": len(recorder),
        },
    )
