"""Perf: columnar (OperatorTable) simulator vs the legacy object-graph path.

Times `LightNobelAccelerator.simulate()` across sequence lengths and a
Fig. 11-style quantization DSE sweep through the accelerator, comparing the
vectorized + LRU-cached columnar engine against the per-operator legacy loop
that rebuilds the operator graph on every call.  Prints the speedup table and
asserts the columnar path is no slower (the repeated-sweep workload must be
at least 5x faster; in practice it is 20-60x).

A second benchmark covers the PR 2 unified simulation layer: a
`SimulationSession.simulate_batch` backed by a warm on-disk table cache
versus the PR 1 per-call path, in the cold-process regime (the LRU is cleared
each round, as a fresh sweep worker would see) and in the warm in-process
regime (where the session's report memo skips even the vectorized engine).
"""

import tempfile
import time

from conftest import emit_bench_json, print_table

from repro.core.aaq import AAQConfig
from repro.hardware import LightNobelAccelerator, LightNobelConfig
from repro.ppm import PPMConfig, clear_workload_caches
from repro.ppm.workload import build_model_ops
from repro.sim import SimulationSession

SEQUENCE_LENGTHS = (200, 400, 800)

#: Fig. 11-style AAQ design points swept through the accelerator model.
AAQ_SWEEP = tuple(
    AAQConfig.uniform(inlier_bits=bits, outlier_count=outliers)
    for bits in (4, 8)
    for outliers in (0, 4, 16)
)


def time_call(fn, repeats=1):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_legacy_lengths(config):
    accelerator = LightNobelAccelerator(ppm_config=config)
    return [
        accelerator.simulate_workload_legacy(build_model_ops(config, n)).total_seconds
        for n in SEQUENCE_LENGTHS
    ]


def run_columnar_lengths(config):
    accelerator = LightNobelAccelerator(ppm_config=config)
    return [accelerator.simulate(n).total_seconds for n in SEQUENCE_LENGTHS]


def run_legacy_sweep(config):
    """Legacy DSE: every design point re-simulates a freshly built graph."""
    results = []
    for aaq in AAQ_SWEEP:
        accelerator = LightNobelAccelerator(ppm_config=config, aaq_config=aaq)
        for n in SEQUENCE_LENGTHS:
            results.append(
                accelerator.simulate_workload_legacy(build_model_ops(config, n)).total_seconds
            )
    return results


def run_columnar_sweep(config):
    """Columnar DSE: cached tables, vectorized engine models."""
    results = []
    for aaq in AAQ_SWEEP:
        accelerator = LightNobelAccelerator(ppm_config=config, aaq_config=aaq)
        for n in SEQUENCE_LENGTHS:
            results.append(accelerator.simulate(n).total_seconds)
    return results


def run_hardware_sweep(config):
    """Fig. 12-style hardware sweep on the columnar path."""
    results = []
    for rmpus in (4, 8, 16, 32):
        accelerator = LightNobelAccelerator(
            hw_config=LightNobelConfig(num_rmpus=rmpus), ppm_config=config
        )
        for n in SEQUENCE_LENGTHS:
            results.append(accelerator.simulate(n).total_seconds)
    return results


def test_perf_columnar_vs_legacy(paper_config):
    clear_workload_caches()

    legacy_single = time_call(lambda: run_legacy_lengths(paper_config))
    # Warm the table cache once, then measure the steady-state sweep regime.
    run_columnar_lengths(paper_config)
    columnar_single = time_call(lambda: run_columnar_lengths(paper_config), repeats=3)

    legacy_sweep = time_call(lambda: run_legacy_sweep(paper_config))
    columnar_sweep = time_call(lambda: run_columnar_sweep(paper_config), repeats=3)
    hardware_sweep = time_call(lambda: run_hardware_sweep(paper_config), repeats=3)

    single_speedup = legacy_single / columnar_single
    sweep_speedup = legacy_sweep / columnar_sweep
    print_table(
        "Simulator perf: columnar OperatorTable vs legacy object graph",
        [
            ("workload", "legacy", "columnar", "speedup"),
            (
                f"simulate() x {len(SEQUENCE_LENGTHS)} lengths",
                f"{legacy_single * 1e3:8.1f} ms",
                f"{columnar_single * 1e3:8.1f} ms",
                f"{single_speedup:5.1f}x",
            ),
            (
                f"AAQ DSE sweep ({len(AAQ_SWEEP)} configs x {len(SEQUENCE_LENGTHS)} lengths)",
                f"{legacy_sweep * 1e3:8.1f} ms",
                f"{columnar_sweep * 1e3:8.1f} ms",
                f"{sweep_speedup:5.1f}x",
            ),
            (
                "hardware DSE (4 RMPU counts, columnar)",
                "-",
                f"{hardware_sweep * 1e3:8.1f} ms",
                "-",
            ),
        ],
    )

    # Same numbers out of both paths (the whole point of the refactor).
    legacy_values = run_legacy_lengths(paper_config)
    columnar_values = run_columnar_lengths(paper_config)
    for fast, slow in zip(columnar_values, legacy_values):
        assert abs(fast - slow) / slow < 1e-9

    emit_bench_json(
        "perf_simulator",
        {
            "legacy_single_seconds": legacy_single,
            "columnar_single_seconds": columnar_single,
            "single_speedup": single_speedup,
            "legacy_sweep_seconds": legacy_sweep,
            "columnar_sweep_seconds": columnar_sweep,
            "sweep_speedup": sweep_speedup,
            "hardware_sweep_seconds": hardware_sweep,
        },
    )

    # The columnar path must never be slower, and the repeated-sweep
    # workload (the regime every DSE/figure benchmark runs in) must clear
    # the 5x acceptance bar with margin.
    assert columnar_single <= legacy_single
    assert sweep_speedup >= 5.0


def run_percall_cold(config):
    """PR 1 per-call path as a fresh process sees it: rebuild every table."""
    clear_workload_caches()
    accelerator = LightNobelAccelerator(ppm_config=config)
    return [accelerator.simulate(n).total_seconds for n in SEQUENCE_LENGTHS]


def run_session_batch_cold(config, cache_dir):
    """Session batch as a fresh process sees it: tables from the disk cache."""
    clear_workload_caches()
    session = SimulationSession(ppm_config=config, cache_dir=cache_dir)
    batch = session.simulate_batch(SEQUENCE_LENGTHS, backends=["lightnobel"])
    return batch.totals("lightnobel")


def test_perf_session_batch_and_disk_cache(paper_config):
    with tempfile.TemporaryDirectory(prefix="repro-sim-bench-") as cache_dir:
        # Warm the disk cache once (one table build per distinct length).
        run_session_batch_cold(paper_config, cache_dir)

        percall_cold = time_call(lambda: run_percall_cold(paper_config), repeats=3)
        session_cold = time_call(
            lambda: run_session_batch_cold(paper_config, cache_dir), repeats=3
        )

        # Warm in-process regime: LRU is hot for the per-call path, the
        # session additionally memoizes whole reports.
        accelerator = LightNobelAccelerator(ppm_config=paper_config)
        percall_warm = time_call(
            lambda: [accelerator.simulate(n).total_seconds for n in SEQUENCE_LENGTHS],
            repeats=5,
        )
        session = SimulationSession(ppm_config=paper_config, cache_dir=cache_dir)
        session.simulate_batch(SEQUENCE_LENGTHS, backends=["lightnobel"])
        session_warm = time_call(
            lambda: session.simulate_batch(
                SEQUENCE_LENGTHS, backends=["lightnobel"]
            ).totals("lightnobel"),
            repeats=5,
        )

        cold_speedup = percall_cold / session_cold
        warm_speedup = percall_warm / session_warm
        print_table(
            "Sim layer perf: simulate_batch + disk cache vs PR 1 per-call path",
            [
                ("regime", "per-call", "session batch", "speedup"),
                (
                    f"cold process ({len(SEQUENCE_LENGTHS)} lengths, warm disk cache)",
                    f"{percall_cold * 1e3:8.1f} ms",
                    f"{session_cold * 1e3:8.1f} ms",
                    f"{cold_speedup:5.1f}x",
                ),
                (
                    "warm in-process (report memo vs LRU re-evaluation)",
                    f"{percall_warm * 1e3:8.2f} ms",
                    f"{session_warm * 1e3:8.2f} ms",
                    f"{warm_speedup:5.1f}x",
                ),
            ],
        )

        # Identical numbers out of both paths.
        expected = run_percall_cold(paper_config)
        actual = run_session_batch_cold(paper_config, cache_dir)
        for fast, slow in zip(actual, expected):
            assert abs(fast - slow) / slow < 1e-9

        emit_bench_json(
            "session_batch",
            {
                "percall_cold_seconds": percall_cold,
                "session_cold_seconds": session_cold,
                "cold_speedup": cold_speedup,
                "percall_warm_seconds": percall_warm,
                "session_warm_seconds": session_warm,
                "warm_speedup": warm_speedup,
            },
        )

        # The batch + warm-disk-cache path must beat the per-call path
        # measurably in the cold-process regime (the sharded-sweep regime).
        assert cold_speedup >= 1.5
        assert session_warm <= percall_warm * 1.5  # memo path never slower
