"""Section 4.1: RMSE impact of symmetric quantization with/without outlier handling."""

import numpy as np
from conftest import print_table

from repro.core import TokenQuantConfig, token_quantization_rmse
from repro.analysis import record_activations
from repro.ppm import PPMConfig
from repro.proteins import generate_protein


def collect_group_a_tokens():
    recorder = record_activations(
        [generate_protein(48, seed=13)], config=PPMConfig.small(), keep_arrays=True
    )
    arrays = [tokens for name, tokens in recorder.arrays.items() if "pre_ln" in name or "residual" in name]
    return np.concatenate(arrays, axis=0)


def test_sec41_outlier_handling_rmse(benchmark):
    tokens = benchmark.pedantic(collect_group_a_tokens, rounds=1, iterations=1)
    reference = token_quantization_rmse(tokens, TokenQuantConfig(inlier_bits=8, outlier_count=16))
    with_outliers = token_quantization_rmse(tokens, TokenQuantConfig(inlier_bits=8, outlier_count=4))
    without_outliers = token_quantization_rmse(tokens, TokenQuantConfig(inlier_bits=8, outlier_count=0))

    increase_with = (with_outliers - reference) / reference * 100
    increase_without = (without_outliers - reference) / reference * 100
    rows = [
        ("reference (8-bit, 16 outliers)", f"RMSE {reference:.5f}"),
        ("with outlier handling (4 outliers)", f"RMSE {with_outliers:.5f} (+{increase_with:.1f}%)"),
        ("without outlier handling", f"RMSE {without_outliers:.5f} (+{increase_without:.1f}%)"),
    ]
    print_table("Section 4.1 RMSE (paper: +27.35% without vs +9.76% with outlier handling)", rows)

    assert without_outliers > with_outliers >= reference
    assert increase_without > 2 * max(increase_with, 1e-6)
