"""Section 6: cross-validation of the Python simulator against the RTL reference."""

from conftest import print_table

from repro.hardware import cross_validate


def test_sec6_simulator_cross_validation(benchmark, dataset_lengths):
    # Cap lengths so the benchmark stays quick; discrepancy shrinks with length.
    capped = {name: [min(n, 2000) for n in lengths] for name, lengths in dataset_lengths.items()}
    results = benchmark.pedantic(cross_validate, args=(capped,), rounds=1, iterations=1)
    rows = [
        (dataset, f"simulator {r.simulator_seconds:.3f} s", f"RTL ref {r.rtl_seconds:.3f} s",
         f"discrepancy {r.discrepancy:.2%}")
        for dataset, r in results.items()
    ]
    print_table("Section 6 cross-validation (paper: 1.81-4.63%, average 3.30%)", rows)

    assert set(results) == set(dataset_lengths)
    for result in results.values():
        assert result.discrepancy < 0.05, "discrepancy must stay within the paper's 5% bound"
