"""Perf: sustained serving throughput of `LatencyService`, cold vs warm.

Drives a paper-config service with a multi-tenant-shaped request stream —
many requests over a small set of distinct (backend, length) keys, the
profile a shared latency service sees when several figure sweeps and users
query the same design points — and measures sustained queries/sec in three
regimes:

* **cold** — empty memo, fresh disk cache: every unique key pays one real
  simulation; duplicates ride along via coalescing,
* **warm (same process)** — the service's session memo answers everything,
* **warm (fresh process)** — a new service over the same disk cache
  (`REPRO_SIM_CACHE_DIR` regime): tables/reports come off disk, no simulator
  runs.

Asserts the coalescing invariant (simulations == unique keys on the cold
round), cold-to-warm speedup, and exact parity with a direct
`SimulationSession`.
"""

import tempfile
import time

from conftest import emit_bench_json, print_table

from repro.serving import LatencyRequest, LatencyService
from repro.sim import SimulationSession

SEQUENCE_LENGTHS = (200, 400, 800)
BACKENDS = ("lightnobel", "h100", "h100-chunk")

#: Requests per unique (backend, length) key — the multi-tenant duplication
#: factor.  9 unique keys x 8 = 72 requests per round.
DUPLICATION = 8


def request_stream():
    unique = [
        LatencyRequest(backend=backend, sequence_length=n)
        for backend in BACKENDS
        for n in SEQUENCE_LENGTHS
    ]
    # Interleave duplicates (tenant-by-tenant, not key-by-key) so coalescing
    # has to catch duplicates across the whole queue, not just neighbours.
    return unique * DUPLICATION, len(unique)


def run_round(service):
    requests, unique = request_stream()
    start = time.perf_counter()
    reports = service.query_batch(requests, timeout=600.0)
    elapsed = time.perf_counter() - start
    return reports, len(requests) / elapsed, unique


def test_serving_throughput_cold_vs_warm(paper_config):
    with tempfile.TemporaryDirectory(prefix="repro-serving-bench-") as cache_dir:
        service = LatencyService(ppm_config=paper_config, cache_dir=cache_dir)
        with service:
            cold_reports, cold_qps, unique = run_round(service)
            cold_stats = service.capacity_report()

            warm_reports, warm_qps, _ = run_round(service)
            warm_stats = service.capacity_report()

        # Fresh process over the same disk cache: no simulator, tables and
        # reports come off disk.
        with LatencyService(ppm_config=paper_config, cache_dir=cache_dir) as fresh:
            fresh_reports, fresh_qps, _ = run_round(fresh)
            assert fresh.stats.simulations == 0

        print_table(
            "Serving throughput: LatencyService, cold vs warm",
            [
                ("regime", "requests", "q/s sustained", "simulations"),
                (
                    "cold (empty memo + disk cache)",
                    len(cold_reports),
                    f"{cold_qps:9.0f}",
                    cold_stats.simulations,
                ),
                (
                    "warm, same process (memo)",
                    len(warm_reports),
                    f"{warm_qps:9.0f}",
                    warm_stats.simulations - cold_stats.simulations,
                ),
                (
                    "warm, fresh process (disk cache)",
                    len(fresh_reports),
                    f"{fresh_qps:9.0f}",
                    0,
                ),
            ],
        )
        print(
            f"  cold round: hit_rate={cold_stats.hit_rate:.2f}, "
            f"peak queue depth={cold_stats.peak_queue_depth}, "
            f"p99[lightnobel]="
            + ", ".join(
                f"{row.p99_seconds * 1e3:.1f} ms"
                for row in cold_stats.backends
                if row.backend == "lightnobel"
            )
        )

        # Coalescing invariant: the cold round simulates each unique
        # (backend, length) key exactly once, duplicates ride along free.
        assert cold_stats.simulations == unique
        # The warm rounds never touch a simulator again.
        assert warm_stats.simulations == cold_stats.simulations

        # Exact parity with the direct session path on every response.
        session = SimulationSession(ppm_config=paper_config, use_disk_cache=False)
        requests, _ = request_stream()
        for request, report in zip(requests, cold_reports):
            direct = session.simulate(request.sequence_length, backend=request.backend)
            assert report.total_seconds == direct.total_seconds
        for fast, slow in zip(warm_reports, cold_reports):
            assert fast.total_seconds == slow.total_seconds
        for fast, slow in zip(fresh_reports, cold_reports):
            assert fast.total_seconds == slow.total_seconds

        # Warm regimes must beat the cold regime on sustained throughput.
        assert warm_qps >= cold_qps
        assert fresh_qps >= cold_qps


def test_http_socket_path_throughput(paper_config):
    """Socket-path guard: the same trace in-process vs over HTTP, warm.

    One seeded trace replays twice against one shared warm service — direct
    ``LatencyService`` calls, then real TCP through the front door — so the
    gap is pure HTTP overhead (framing, JSON, event loop), not simulation.
    Asserts full completion, zero errors, full SLO attainment on both paths,
    a clean drain, and that the socket path clears an absolute q/s floor;
    emits ``BENCH_http_serving.json``.
    """
    from repro.cluster import SLOPolicy, mixture_lengths, poisson_trace
    from repro.serving.http import (
        replay_trace_http,
        replay_trace_inprocess,
        serve_in_thread,
    )

    lengths, weights = mixture_lengths([(200, 0.6), (400, 0.3), (800, 0.1)])
    trace = poisson_trace(
        rate_rps=500.0,
        num_requests=150,
        length_pool=lengths,
        length_weights=weights,
        slo=SLOPolicy(base_seconds=5.0, per_residue_seconds=0.01),
        seed=31,
        name="http-bench",
    )

    service = LatencyService(ppm_config=paper_config, use_disk_cache=False)
    handle = serve_in_thread(service=service, max_pending_per_tenant=1024)
    try:
        # Warm the memo so both measured passes price cached keys only.
        for n in trace.distinct_lengths():
            service.query("lightnobel", n, timeout=600.0)
        inproc = replay_trace_inprocess(trace, service)
        http = replay_trace_http(trace, handle.host, handle.port, tenant="bench")
    finally:
        drain = handle.stop(drain=True)
        service.close()

    print_table(
        "Socket path: same trace, in-process vs HTTP (warm)",
        [
            ("path", "completed", "q/s", "SLO", "p50 ms", "p99 ms"),
            *(
                (
                    r.mode,
                    f"{r.completed}/{r.offered}",
                    f"{r.queries_per_second:8.0f}",
                    f"{r.slo_attainment:.3f}",
                    f"{r.p50_service_seconds * 1e3:7.3f}",
                    f"{r.p99_service_seconds * 1e3:7.3f}",
                )
                for r in (inproc, http)
            ),
        ],
    )

    for report in (inproc, http):
        assert report.completed == len(trace)
        assert report.errors == 0
        assert report.slo_attainment == 1.0
    assert drain["unfulfilled"] == 0

    # The guard: warm socket-path throughput must stay above an absolute
    # floor — loose enough for CI jitter, tight enough to catch a framing
    # or event-loop regression turning per-request cost from sub-ms to ms.
    assert http.queries_per_second > 200.0

    emit_bench_json(
        "http_serving",
        {
            "trace": trace.name,
            "requests": len(trace),
            "inprocess_qps": inproc.queries_per_second,
            "http_qps": http.queries_per_second,
            "http_over_inprocess": (
                http.queries_per_second / inproc.queries_per_second
                if inproc.queries_per_second
                else 0.0
            ),
            "http_slo_attainment": http.slo_attainment,
            "http_p50_ms": http.p50_service_seconds * 1e3,
            "http_p99_ms": http.p99_service_seconds * 1e3,
            "retried_429": http.retried_429,
            "drain": drain,
        },
    )
