"""Perf: stacked multi-length operator tables vs the per-length loop.

The PR 7 tentpole: a traffic mix of N distinct sequence lengths used to cost
N separate columnar evaluations — N x ~40 small numpy ufunc launches plus N
Python-level parameter-grouping passes.  A :class:`StackedOperatorTable`
concatenates the mix into one ragged table (per-length segments recoverable
by offset) and each backend prices the whole mix with ONE vectorized pass.

Two guards:

* the 30-length CI guard — stacked evaluation must beat the per-length loop
  by >= 3x on the tiny config (the overhead-dominated regime every planner
  grid and serving batch runs in),
* bit-parity — every stacked segment report must match its per-length
  counterpart to <= 1e-9 relative on every registered backend.

The headline 50-length measurement and the planner-grid wall-clock
before/after are printed and written to ``BENCH_stacked_batch.json`` for
EXPERIMENTS.md.
"""

import time

from conftest import emit_bench_json, print_table

from repro.cluster import (
    FleetSpec,
    SLOPolicy,
    bursty_trace,
    mixture_lengths,
    prefetch_service_times,
)
from repro.ppm import PPMConfig, get_op_table, get_stacked_table
from repro.sim import SimulationSession, available_backends, create_backend

#: Totals-only headline floor enforced in CI (measured ~11x; see
#: EXPERIMENTS.md for the recorded run).
MIN_TOTALS_SPEEDUP = 5.0

#: CI guard: stacked pass over a 30-length mix must beat the loop by >= 3x.
GUARD_MIX = 30
MIN_GUARD_SPEEDUP = 3.0

#: Headline measurement recorded in EXPERIMENTS.md.
HEADLINE_MIX = 50


def length_mix(count, start=16, step=8):
    return tuple(start + i * step for i in range(count))


def time_call(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def assert_parity(per_length, stacked):
    """Stacked segment reports must match per-length reports to <= 1e-9."""
    assert len(per_length) == len(stacked)
    for one, seg in zip(per_length, stacked):
        assert seg.sequence_length == one.sequence_length
        assert abs(seg.total_seconds - one.total_seconds) <= 1e-9 * abs(
            one.total_seconds
        )
        for phase, seconds in one.phase_seconds.items():
            assert abs(seg.phase_seconds[phase] - seconds) <= 1e-9 * abs(seconds)
        assert seg.out_of_memory == one.out_of_memory


def measure_backend(config, backend_name, lengths):
    """(per-length seconds, stacked seconds, speedup) with warm tables."""
    backend = create_backend(backend_name, config)
    tables = [get_op_table(config, n) for n in lengths]
    stack = get_stacked_table(config, lengths)

    per_length_reports = [backend.simulate_table(t) for t in tables]
    stacked_reports = backend.simulate_stack(stack)
    assert_parity(per_length_reports, stacked_reports)

    loop = time_call(lambda: [backend.simulate_table(t) for t in tables])
    stacked = time_call(lambda: backend.simulate_stack(stack))
    return loop, stacked, loop / stacked


def test_stacked_mix_beats_per_length_loop():
    """CI guard: >= 3x on a 30-length mix; headline 50-length table."""
    config = PPMConfig.tiny()
    guard = length_mix(GUARD_MIX)
    headline = length_mix(HEADLINE_MIX)

    rows = [("backend", "mix", "per-length", "stacked", "speedup")]
    results = {}
    for backend_name in ("lightnobel", "h100", "h100-chunk"):
        for label, lengths in (("guard30", guard), ("headline50", headline)):
            loop, stacked, speedup = measure_backend(config, backend_name, lengths)
            results[f"{backend_name}_{label}"] = {
                "per_length_seconds": loop,
                "stacked_seconds": stacked,
                "speedup": speedup,
            }
            rows.append(
                (
                    backend_name,
                    f"{len(lengths)} lengths",
                    f"{loop * 1e3:8.2f} ms",
                    f"{stacked * 1e3:8.2f} ms",
                    f"{speedup:5.1f}x",
                )
            )
    print_table("Stacked operator tables: one pass prices the whole mix", rows)

    emit_bench_json("stacked_batch", results)

    # The CI perf guard: the overhead-dominated tiny-config regime is where
    # planner grids and serving batches live; stacking must win big there.
    for backend_name in ("lightnobel", "h100"):
        speedup = results[f"{backend_name}_guard30"]["speedup"]
        assert speedup >= MIN_GUARD_SPEEDUP, (
            f"stacked pass only {speedup:.1f}x faster than the per-length loop "
            f"on {backend_name} ({GUARD_MIX} lengths); floor is "
            f"{MIN_GUARD_SPEEDUP:.0f}x"
        )


def test_stacked_totals_headline():
    """Headline: pricing a 50-length mix to service times (the planner shape).

    Before this PR the only API was the per-length full-report loop; the
    planner's prefetch reads nothing but ``total_seconds``/OOM per length, so
    the totals-only stacked pass is the end-to-end before/after of mix
    pricing.  Totals are bit-identical to the per-length reports.
    """
    config = PPMConfig.tiny()
    lengths = length_mix(HEADLINE_MIX)
    backend = create_backend("lightnobel", config)
    tables = [get_op_table(config, n) for n in lengths]
    stack = get_stacked_table(config, lengths)

    reference = [backend.simulate_table(t) for t in tables]
    assert backend.simulate_stack_totals(stack) == [
        (r.total_seconds, r.out_of_memory) for r in reference
    ]

    loop = time_call(
        lambda: [backend.simulate_table(t).total_seconds for t in tables], repeats=7
    )
    totals = time_call(lambda: backend.simulate_stack_totals(stack), repeats=7)

    def session_loop():
        session = SimulationSession(ppm_config=config, use_disk_cache=False)
        return [
            session.simulate(n, backend="lightnobel").total_seconds for n in lengths
        ]

    def session_totals():
        session = SimulationSession(ppm_config=config, use_disk_cache=False)
        return session.batch_total_seconds(lengths, backends=["lightnobel"])

    session_loop()  # warm the process-wide table/stack LRUs
    session_before = time_call(session_loop, repeats=7)
    session_after = time_call(session_totals, repeats=7)

    print_table(
        f"Totals-only mix pricing ({HEADLINE_MIX} lengths, lightnobel)",
        [
            ("level", "per-length loop", "stacked totals", "speedup"),
            (
                "backend",
                f"{loop * 1e3:8.2f} ms",
                f"{totals * 1e3:8.2f} ms",
                f"{loop / totals:5.1f}x",
            ),
            (
                "session",
                f"{session_before * 1e3:8.2f} ms",
                f"{session_after * 1e3:8.2f} ms",
                f"{session_before / session_after:5.1f}x",
            ),
        ],
    )
    emit_bench_json(
        "stacked_totals",
        {
            "mix": HEADLINE_MIX,
            "backend_loop_seconds": loop,
            "backend_totals_seconds": totals,
            "backend_speedup": loop / totals,
            "session_loop_seconds": session_before,
            "session_totals_seconds": session_after,
            "session_speedup": session_before / session_after,
        },
    )
    assert loop / totals >= MIN_TOTALS_SPEEDUP, (
        f"totals-only stacked pass only {loop / totals:.1f}x faster than the "
        f"per-length loop ({HEADLINE_MIX} lengths); floor is "
        f"{MIN_TOTALS_SPEEDUP:.0f}x"
    )


def test_stacked_parity_on_every_registered_backend():
    """Stacked == per-length to <= 1e-9 on every registry backend."""
    config = PPMConfig.tiny()
    lengths = length_mix(12)
    tables = [get_op_table(config, n) for n in lengths]
    stack = get_stacked_table(config, lengths)
    for backend_name in available_backends():
        backend = create_backend(backend_name, config)
        assert_parity(
            [backend.simulate_table(t) for t in tables],
            backend.simulate_stack(stack),
        )


def test_planner_prefetch_wall_clock():
    """Planner-grid service-time prefetch: per-length vs stacked vs bucketed."""
    config = PPMConfig.tiny()
    pool, weights = mixture_lengths(
        [(n, 1.0) for n in length_mix(40, start=24, step=8)]
    )
    trace = bursty_trace(
        rate_rps=200.0,
        num_requests=2000,
        length_pool=pool,
        length_weights=weights,
        slo=SLOPolicy(base_seconds=0.05, per_residue_seconds=2.5e-4),
        seed=3,
    )
    fleet = FleetSpec.homogeneous("lightnobel", 4)
    distinct = trace.distinct_lengths()

    def fresh_session():
        return SimulationSession(ppm_config=config, use_disk_cache=False)

    # Warm the process-wide table LRU once so every variant below measures
    # pricing, not graph construction (the regime a planner grid runs in).
    prefetch_service_times(trace, fleet, session=fresh_session())

    def per_length_prefetch():
        # The pre-PR-7 shape: one simulate() call per (group, length) pair.
        session = fresh_session()
        spec = fleet.groups[0].backend
        return {
            (0, n): session.simulate(n, backend=spec).total_seconds
            for n in distinct
        }

    before = time_call(lambda: per_length_prefetch(), repeats=3)
    after = time_call(
        lambda: prefetch_service_times(trace, fleet, session=fresh_session()),
        repeats=3,
    )
    bucketed = time_call(
        lambda: prefetch_service_times(
            trace, fleet, session=fresh_session(), length_bucket_size=64
        ),
        repeats=3,
    )

    exact = prefetch_service_times(trace, fleet, session=fresh_session())
    reference = per_length_prefetch()
    for n in distinct:
        assert abs(exact[(0, n)] - reference[(0, n)]) <= 1e-9 * reference[(0, n)]

    buckets = len(set(trace.bucketed_lengths(64).values()))
    print_table(
        "Planner service-time prefetch wall-clock",
        [
            ("variant", "points", "seconds", "speedup"),
            ("per-length loop", len(distinct), f"{before * 1e3:8.2f} ms", "1.0x"),
            (
                "stacked prefetch",
                len(distinct),
                f"{after * 1e3:8.2f} ms",
                f"{before / after:5.1f}x",
            ),
            (
                "stacked + bucket64",
                buckets,
                f"{bucketed * 1e3:8.2f} ms",
                f"{before / bucketed:5.1f}x",
            ),
        ],
    )
    emit_bench_json(
        "planner_prefetch",
        {
            "distinct_lengths": len(distinct),
            "buckets_64": buckets,
            "per_length_seconds": before,
            "stacked_seconds": after,
            "bucketed_seconds": bucketed,
            "stacked_speedup": before / after,
            "bucketed_speedup": before / bucketed,
        },
    )
    assert after <= before  # the stacked prefetch must never lose
