"""Table 1: memory footprint of each quantization scheme on T1169 (3,364 aa)."""

from conftest import print_table

from repro.analysis import footprint_table


def test_table1_memory_footprint(benchmark):
    rows = benchmark.pedantic(footprint_table, args=(3364,), rounds=1, iterations=1)
    printable = [
        (r.scheme, r.activation_grouping, r.activation_precision,
         f"act {r.activation_gb:.2f} GB", f"weight {r.weight_gb:.2f} GB", f"total {r.total_gb:.2f} GB")
        for r in rows
    ]
    print_table("Table 1 (paper totals: Baseline 121.4, LightNobel 73.5 GB)", printable)

    by_name = {r.scheme: r for r in rows}
    assert by_name["LightNobel (AAQ)"].total_gb == min(r.total_gb for r in rows)
    assert by_name["Baseline"].activation_gb == max(r.activation_gb for r in rows)
    assert by_name["MEFold"].activation_gb == by_name["Baseline"].activation_gb
    # LightNobel's activation footprint is roughly half the FP16 baseline's.
    ratio = by_name["LightNobel (AAQ)"].activation_gb / by_name["Baseline"].activation_gb
    assert 0.3 < ratio < 0.7
