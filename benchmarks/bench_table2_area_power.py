"""Table 2 / Section 8.4: area, power and efficiency versus A100/H100."""

from conftest import print_table

from repro.hardware import AreaPowerModel, efficiency_versus_gpu


def test_table2_area_power_breakdown(benchmark):
    model = AreaPowerModel()
    breakdown = benchmark.pedantic(model.breakdown, rounds=1, iterations=1)
    rows = [(name, f"{v['area_mm2']:.2f} mm^2", f"{v['power_w']:.2f} W") for name, v in breakdown.items()]
    print_table("Table 2 (paper total: 178.8 mm^2, 67.8 W)", rows)

    assert abs(breakdown["total"]["area_mm2"] - 178.8) / 178.8 < 0.05
    assert abs(breakdown["total"]["power_w"] - 67.8) / 67.8 < 0.05

    share = model.crossbar_share()
    assert share["area_share"] > 0.6, "crossbar networks dominate area (paper: 70.3%)"

    efficiency = efficiency_versus_gpu(model, speedup_over_gpu={"A100": 8.44, "H100": 8.41})
    rows = [
        (gpu, f"area ratio {v['area_ratio']:.2f}", f"power ratio {v['power_ratio']:.2f}",
         f"power efficiency gain {v['power_efficiency_gain']:.1f}x")
        for gpu, v in efficiency.items()
    ]
    print_table("Section 8.4 efficiency vs GPUs (paper: 21.9%/19.4% of A100, 37.3x/43.4x)", rows)
    assert efficiency["A100"]["area_ratio"] < 0.3
    assert efficiency["A100"]["power_efficiency_gain"] > 30
    assert efficiency["H100"]["power_efficiency_gain"] > 35
