"""Shared fixtures and helpers for the per-figure/table benchmark harness.

Every benchmark regenerates the data behind one table or figure of the paper
and prints the corresponding rows/series (run with ``pytest benchmarks/
--benchmark-only -s`` to see them).  Absolute numbers come from our simulated
substrate, so they are not expected to match the paper's testbed; the
assertions check the *shape* (orderings, crossovers, approximate factors) and
EXPERIMENTS.md records paper-vs-measured values.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.ppm import PPMConfig
from repro.proteins import build_all_catalogs

try:
    import resource
except ImportError:  # non-POSIX platform: emit without RSS
    resource = None


def print_table(title: str, rows):
    """Print a small aligned table for a figure/table reproduction."""
    print(f"\n=== {title} ===")
    for row in rows:
        print("  " + " | ".join(str(item) for item in row))


def emit_bench_json(name: str, data: dict) -> str:
    """Write ``BENCH_<name>.json`` — machine-readable benchmark results.

    ``data`` holds the benchmark's own metrics (throughputs, speedups,
    wall-clock seconds); ``peak_rss_mb`` (max resident set of this process so
    far, via ``getrusage``) and the benchmark name are added alongside.  The
    output directory defaults to the working directory and can be redirected
    with ``$REPRO_BENCH_DIR`` (CI archives these files as artifacts).
    """
    payload = dict(data)
    payload["benchmark"] = name
    if resource is not None:
        # ru_maxrss is kilobytes on Linux, bytes on macOS.
        rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        payload["peak_rss_mb"] = rss / 1024.0 if os.uname().sysname != "Darwin" else rss / 1024.0**2
    out_dir = os.environ.get("REPRO_BENCH_DIR", ".")
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"BENCH_{name}.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    print(f"\nbench json: {path}")
    return path


@pytest.fixture(scope="session")
def paper_config() -> PPMConfig:
    return PPMConfig.paper()


@pytest.fixture(scope="session")
def catalogs():
    """Synthetic dataset catalogues mirroring CAMEO/CASP14/CASP15/CASP16."""
    return build_all_catalogs(count=6, seed=0)


@pytest.fixture(scope="session")
def dataset_lengths(catalogs):
    """Representative sequence lengths per dataset (capped for simulation speed)."""
    lengths = {}
    for name, catalog in catalogs.items():
        values = sorted(catalog.lengths())
        # Use min / median / max to represent the dataset's length profile.
        lengths[name] = [values[0], values[len(values) // 2], values[-1]]
    return lengths
