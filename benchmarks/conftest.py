"""Shared fixtures and helpers for the per-figure/table benchmark harness.

Every benchmark regenerates the data behind one table or figure of the paper
and prints the corresponding rows/series (run with ``pytest benchmarks/
--benchmark-only -s`` to see them).  Absolute numbers come from our simulated
substrate, so they are not expected to match the paper's testbed; the
assertions check the *shape* (orderings, crossovers, approximate factors) and
EXPERIMENTS.md records paper-vs-measured values.
"""

from __future__ import annotations

import pytest

from repro.ppm import PPMConfig
from repro.proteins import build_all_catalogs


def print_table(title: str, rows):
    """Print a small aligned table for a figure/table reproduction."""
    print(f"\n=== {title} ===")
    for row in rows:
        print("  " + " | ".join(str(item) for item in row))


@pytest.fixture(scope="session")
def paper_config() -> PPMConfig:
    return PPMConfig.paper()


@pytest.fixture(scope="session")
def catalogs():
    """Synthetic dataset catalogues mirroring CAMEO/CASP14/CASP15/CASP16."""
    return build_all_catalogs(count=6, seed=0)


@pytest.fixture(scope="session")
def dataset_lengths(catalogs):
    """Representative sequence lengths per dataset (capped for simulation speed)."""
    lengths = {}
    for name, catalog in catalogs.items():
        values = sorted(catalog.lengths())
        # Use min / median / max to represent the dataset's length profile.
        lengths[name] = [values[0], values[len(values) // 2], values[-1]]
    return lengths
