"""Scenario: sizing the LightNobel accelerator for a drug-discovery folding queue.

A lab screening protein complexes wants to know what the LightNobel accelerator
buys over its existing A100/H100 nodes for the Protein Folding Block, and how
the accelerator configuration (number of RMPUs, VVPUs per RMPU) affects that.
This example runs the cycle-level simulator and the GPU analytical model over a
mix of realistic target lengths and prints speedups, bottleneck shares, and the
area/power budget of the chosen design point.

Usage:
    python examples/accelerator_speedup.py
"""

from __future__ import annotations

from repro.analysis import average_speedup, compare_hardware_on_lengths, hardware_dse
from repro.hardware import AreaPowerModel, LightNobelAccelerator, efficiency_versus_gpu
from repro.ppm import PPMConfig

#: A screening queue: monomers, a CASP-sized target and a large complex.
TARGET_LENGTHS = [350, 800, 1410, 2600]


def main() -> None:
    config = PPMConfig.paper()

    print("Folding-block latency: LightNobel vs A100/H100 (chunked and vanilla)")
    comparison = compare_hardware_on_lengths("screening-queue", TARGET_LENGTHS, config=config)
    print(f"  LightNobel average latency: {comparison.lightnobel_seconds:.2f} s")
    for name, factor in sorted(average_speedup(comparison).items()):
        oom = " (OOM on some targets)" if comparison.out_of_memory.get(name) else ""
        print(f"  {name:>18}: {factor:5.2f}x slower than LightNobel{oom}")

    print("\nWhere does the time go on LightNobel? (bottleneck share per engine)")
    accelerator = LightNobelAccelerator(ppm_config=config)
    report = accelerator.simulate(1410)
    for engine, share in report.bottleneck_share().items():
        print(f"  {engine:>6}: {share:.1%}")

    print("\nHardware design-space exploration (average over the queue):")
    sweeps = hardware_dse(TARGET_LENGTHS[:2], rmpu_counts=(8, 16, 32, 64), vvpu_counts=(2, 4, 8))
    for point in sweeps["rmpu_sweep"]:
        print(f"  {point.num_rmpus:>3} RMPUs x {point.vvpus_per_rmpu} VVPUs: "
              f"{point.average_latency_seconds:.2f} s")

    print("\nArea / power budget of the paper design point (32 RMPUs, 128 VVPUs):")
    area_power = AreaPowerModel()
    print(f"  total area  : {area_power.total_area_mm2():.1f} mm^2 (28 nm)")
    print(f"  total power : {area_power.total_power_w():.1f} W")
    efficiency = efficiency_versus_gpu(area_power, speedup_over_gpu=average_speedup(comparison))
    for gpu, values in efficiency.items():
        print(f"  vs {gpu}: {values['area_ratio']:.1%} of the area, "
              f"{values['power_ratio']:.1%} of the power, "
              f"{values['power_efficiency_gain']:.1f}x power efficiency")


if __name__ == "__main__":
    main()
