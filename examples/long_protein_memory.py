"""Scenario: can a long protein (titin-scale fragments, multimers) be folded at all?

The paper's motivation is that Pair-Representation activations explode with
sequence length: a 2,034-residue protein already needs 144 GB — beyond any
single GPU — and CASP16 targets reach 6,879 residues.  This example walks the
memory wall: for a sweep of sequence lengths it reports the peak memory of the
ESMFold baseline (with and without chunking) and of LightNobel with AAQ, and
shows where each configuration stops fitting in an 80 GB device.

Usage:
    python examples/long_protein_memory.py
"""

from __future__ import annotations

from repro.analysis import lightnobel_peak_memory_gb, max_supported_length, peak_memory_comparison
from repro.gpu import GPUModel
from repro.ppm import PPMConfig

MEMORY_BUDGET_GB = 80.0
SEQUENCE_LENGTHS = [500, 1000, 1410, 2034, 3364, 5000, 6879, 9945]


def main() -> None:
    config = PPMConfig.paper()
    gpu = GPUModel("H100", ppm_config=config)

    print(f"{'length':>8} | {'baseline (GB)':>14} | {'chunked (GB)':>13} | {'LightNobel (GB)':>16}")
    print("-" * 62)
    for length in SEQUENCE_LENGTHS:
        peaks = peak_memory_comparison(length, config)
        marks = {
            key: ("OOM" if value > MEMORY_BUDGET_GB else "ok")
            for key, value in peaks.items()
        }
        print(
            f"{length:>8} | {peaks['baseline_no_chunk']:>10.1f} {marks['baseline_no_chunk']:>3} |"
            f" {peaks['baseline_chunk']:>9.1f} {marks['baseline_chunk']:>3} |"
            f" {peaks['lightnobel']:>12.1f} {marks['lightnobel']:>3}"
        )

    print()
    print(f"Longest sequence within {MEMORY_BUDGET_GB:.0f} GB:")
    print(f"  ESMFold baseline, no chunk : {gpu.max_sequence_length(chunked=False)} residues")
    print(f"  ESMFold baseline, chunked  : {gpu.max_sequence_length(chunked=True)} residues")
    print(f"  LightNobel with AAQ        : {max_supported_length(MEMORY_BUDGET_GB)} residues "
          f"(paper: 9,945)")
    print()
    print("Peak memory of LightNobel on the longest CASP16 target (6,879 aa): "
          f"{lightnobel_peak_memory_gb(6879):.1f} GB")


if __name__ == "__main__":
    main()
