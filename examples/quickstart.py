"""Quickstart: predict a protein structure with and without AAQ quantization.

Runs the numpy PPM substrate on a small synthetic protein, applies LightNobel's
Token-wise Adaptive Activation Quantization (AAQ), and compares the TM-score of
the quantized prediction against the FP16 baseline — the core claim of the
paper (negligible accuracy loss) in a few dozen lines.

Usage:
    python examples/quickstart.py [sequence_length]
"""

from __future__ import annotations

import sys

from repro.core import get_scheme
from repro.metrics import rmsd, tm_score_structures
from repro.ppm import PPMConfig, ProteinStructureModel
from repro.ppm.quantized import QuantizedPPM
from repro.proteins import generate_protein, write_pdb


def main(sequence_length: int = 72) -> None:
    print(f"Generating a synthetic target protein with {sequence_length} residues...")
    target = generate_protein(sequence_length, seed=42, name="quickstart_target")

    print("Building the ESMFold-like folding trunk (reduced 'small' configuration)...")
    model = ProteinStructureModel(PPMConfig.small(), seed=0)

    print("Predicting with the FP16 baseline...")
    baseline = QuantizedPPM(model, get_scheme("Baseline")).predict(target)
    baseline_tm = tm_score_structures(baseline.structure, target)

    print("Predicting with LightNobel's AAQ (INT8/INT4 activations, INT16 outliers)...")
    quantized = QuantizedPPM(model, get_scheme("LightNobel (AAQ)")).predict(target)
    quantized_tm = tm_score_structures(quantized.structure, target)

    print()
    print(f"  Baseline  TM-score: {baseline_tm:.4f}   CA-RMSD: "
          f"{rmsd(baseline.structure.coordinates, target.coordinates):.2f} A")
    print(f"  AAQ       TM-score: {quantized_tm:.4f}   CA-RMSD: "
          f"{rmsd(quantized.structure.coordinates, target.coordinates):.2f} A")
    print(f"  TM-score change from quantization: {quantized_tm - baseline_tm:+.4f} "
          f"(paper: < 0.001)")

    output = write_pdb(quantized.structure, "quickstart_prediction.pdb")
    print(f"\nQuantized prediction written to {output} (CA trace, PDB format).")


if __name__ == "__main__":
    length = int(sys.argv[1]) if len(sys.argv) > 1 else 72
    main(length)
