"""LightNobel reproduction library.

Reproduces "LightNobel: Improving Sequence Length Limitation in Protein
Structure Prediction Model via Adaptive Activation Quantization" (ISCA 2025):
the Token-wise Adaptive Activation Quantization (AAQ) algorithm, an
ESMFold-like Protein Structure Prediction Model substrate, the LightNobel
accelerator simulator, GPU baseline models, and the paper's full evaluation
suite.

Sub-packages
------------
``repro.core``
    AAQ and baseline quantization schemes (the paper's contribution).
``repro.ppm``
    Numpy ESMFold-like folding trunk with activation tap points.
``repro.proteins`` / ``repro.metrics``
    Synthetic protein/dataset substrate and structure-quality metrics.
``repro.hardware`` / ``repro.gpu``
    LightNobel accelerator simulator and A100/H100 analytical baselines.
``repro.sim``
    Unified simulation-backend layer: every latency number flows through a
    :class:`~repro.sim.session.SimulationSession` (batch API, backend
    registry, process-pool ``sweep()``, on-disk table/report cache keyed by
    stable config digests — see the :mod:`repro.sim` docstring for usage).
``repro.serving``
    Latency/capacity query service over ``repro.sim``: request queue,
    coalescing of duplicate in-flight queries, worker-pool execution and
    service-level stats (see the :mod:`repro.serving` docstring for usage).
``repro.analysis``
    Cost models, activation statistics and design-space exploration.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
