"""Canonical, version-stamped configuration digests.

Every cache layer in the repository — the in-process LRU of
:mod:`repro.ppm.op_table` and the cross-process disk cache of
:mod:`repro.sim.cache` — needs a *stable* identity for a configuration
object: equal configs must map to equal keys across processes and Python
versions, and any field change must change the key.  ``hash()`` cannot do
this (it is salted per process), and ``repr()`` is not guaranteed canonical,
so this module serializes dataclass fields to a sorted JSON document and
hashes it with SHA-256.

The module is intentionally dependency-free (stdlib only) so the low-level
config modules (:mod:`repro.ppm.config`, :mod:`repro.hardware.config`,
:mod:`repro.gpu.gpu_config`, :mod:`repro.core.aaq`) can import it without
creating package cycles.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Mapping

#: Bump when the canonical serialization below changes shape; stale digests
#: then stop matching and every digest-keyed cache entry invalidates itself.
DIGEST_SCHEMA_VERSION = 1

#: Hex characters kept from the SHA-256 digest (64 bits — ample for cache keys).
DIGEST_LENGTH = 16


def canonicalize(value: Any) -> Any:
    """Reduce ``value`` to a deterministic, JSON-serializable document.

    Dataclasses become ``{class name, sorted field map}`` (recursively),
    mappings become key-sorted lists of pairs, and sequences become lists.
    Unsupported types raise ``TypeError`` rather than falling back to
    ``repr`` so non-canonical inputs are caught at digest time.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__class__": type(value).__name__,
            "fields": {
                f.name: canonicalize(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, Mapping):
        return {
            "__mapping__": sorted(
                (str(key), canonicalize(item)) for key, item in value.items()
            )
        }
    if isinstance(value, (list, tuple)):
        return [canonicalize(item) for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot canonicalize {type(value).__name__!r} for digesting")


def stable_digest(kind: str, value: Any) -> str:
    """Hex digest of ``value`` under the canonical serialization.

    ``kind`` namespaces the digest (two objects with identical fields but
    different roles must not collide on a cache key).
    """
    document = {
        "schema": DIGEST_SCHEMA_VERSION,
        "kind": kind,
        "value": canonicalize(value),
    }
    blob = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:DIGEST_LENGTH]


def config_digest(config: Any) -> str:
    """Digest a configuration dataclass, namespaced by its class name."""
    return stable_digest(type(config).__name__, config)
