"""Accuracy evaluation across quantization schemes and datasets (Fig. 13).

The paper evaluates every scheme on CAMEO, CASP14 and CASP15 (CASP16 ground
truth was unreleased).  Our synthetic catalogues carry the same sequence-length
profiles; dataset difficulty (the paper's baselines: CAMEO ~0.80, CASP14 ~0.52,
CASP15 ~0.54) is reproduced by giving the structure prior a per-dataset noise
level — CAMEO targets are "easier" for the model than CASP targets, exactly as
in reality.  What the experiment must preserve is the *relative* behaviour of
the schemes: sub-INT8 channel/tensor-wise schemes lose accuracy, token-wise
INT8 schemes and AAQ track the FP16 baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional

import numpy as np

from ..core.schemes import QuantizationScheme, all_schemes
from ..ppm.config import PPMConfig
from ..ppm.model import ProteinStructureModel
from ..ppm.quantized import QuantizedPPM
from ..metrics.tm_score import tm_score_structures
from ..proteins.datasets import DatasetCatalog, accuracy_datasets

#: Structure-prior noise per dataset, chosen so the FP16 baseline lands near
#: the paper's reported TM-scores (CAMEO 0.802, CASP14 0.516, CASP15 0.540).
DATASET_PRIOR_NOISE: Dict[str, float] = {
    "CAMEO": 1.4,
    "CASP14": 3.4,
    "CASP15": 3.2,
}


@dataclass
class AccuracyResult:
    """Average TM-score of one scheme on one dataset."""

    dataset: str
    scheme: str
    tm_score: float
    target_count: int


@dataclass
class AccuracyExperiment:
    """Fig. 13 experiment: TM-score per scheme per dataset."""

    config: PPMConfig = field(default_factory=PPMConfig.small)
    seed: int = 0
    targets_per_dataset: int = 3
    max_target_length: int = 96

    def _targets_for(self, catalog: DatasetCatalog) -> List:
        usable = catalog.with_ground_truth()
        targets = []
        for target in list(usable)[: self.targets_per_dataset]:
            targets.append(catalog.structure_for(target, max_length=self.max_target_length))
        return targets

    def run(
        self,
        schemes: Optional[Dict[str, QuantizationScheme]] = None,
        datasets: Optional[Dict[str, DatasetCatalog]] = None,
    ) -> List[AccuracyResult]:
        schemes = schemes or all_schemes()
        datasets = datasets or accuracy_datasets(count=self.targets_per_dataset, seed=self.seed)
        results: List[AccuracyResult] = []
        for dataset_name, catalog in datasets.items():
            noise = DATASET_PRIOR_NOISE.get(dataset_name, self.config.prior_noise)
            dataset_config = replace(self.config, prior_noise=noise)
            model = ProteinStructureModel(dataset_config, seed=self.seed)
            targets = self._targets_for(catalog)
            for scheme_name, scheme in schemes.items():
                quantized = QuantizedPPM(model, scheme)
                scores = [
                    tm_score_structures(quantized.predict(target).structure, target)
                    for target in targets
                ]
                results.append(
                    AccuracyResult(
                        dataset=dataset_name,
                        scheme=scheme_name,
                        tm_score=float(np.mean(scores)) if scores else 0.0,
                        target_count=len(targets),
                    )
                )
        return results


def results_as_table(results: Iterable[AccuracyResult]) -> Dict[str, Dict[str, float]]:
    """Pivot results into {dataset: {scheme: tm_score}} (the Fig. 13 layout)."""
    table: Dict[str, Dict[str, float]] = {}
    for result in results:
        table.setdefault(result.dataset, {})[result.scheme] = result.tm_score
    return table


def accuracy_deltas(table: Dict[str, Dict[str, float]], baseline: str = "Baseline") -> Dict[str, Dict[str, float]]:
    """TM-score change of each scheme relative to the FP16 baseline."""
    deltas: Dict[str, Dict[str, float]] = {}
    for dataset, scores in table.items():
        reference = scores.get(baseline, 0.0)
        deltas[dataset] = {scheme: score - reference for scheme, score in scores.items()}
    return deltas
