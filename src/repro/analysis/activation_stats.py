"""Activation-distribution analysis (Fig. 5, Fig. 6c, Section 3.3/3.4)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..core.groups import GroupStatistics, classification_agreement
from ..ppm.activation_tap import GROUPS, ActivationRecorder
from ..ppm.config import PPMConfig
from ..ppm.model import ProteinStructureModel
from ..proteins.structure import ProteinStructure


@dataclass
class DistributionAnalysis:
    """Channel-wise versus token-wise variance of one activation tensor (Fig. 5)."""

    name: str
    channel_range_spread: float   # spread of per-channel value ranges
    token_range_spread: float     # spread of per-token value ranges
    token_outlier_concentration: float  # fraction of outliers in the top-10% tokens

    @property
    def tokens_vary_more_than_channels(self) -> bool:
        return self.token_range_spread > self.channel_range_spread


def analyze_distribution(name: str, tokens: np.ndarray) -> DistributionAnalysis:
    """Fig. 5 analysis: do value ranges vary more across tokens or channels?"""
    tokens = np.asarray(tokens, dtype=np.float64)
    if tokens.ndim != 2:
        raise ValueError("tokens must be 2-D (num_tokens, hidden_dim)")
    channel_ranges = np.abs(tokens).max(axis=0)
    token_ranges = np.abs(tokens).max(axis=1)

    def spread(values: np.ndarray) -> float:
        center = np.median(values)
        return float(values.std() / max(abs(center), 1e-9))

    mean = tokens.mean()
    std = tokens.std()
    outliers = np.abs(tokens - mean) > 3 * max(std, 1e-12)
    per_token_outliers = outliers.sum(axis=1)
    order = np.argsort(per_token_outliers)[::-1]
    top = max(1, tokens.shape[0] // 10)
    total_outliers = per_token_outliers.sum()
    concentration = (
        float(per_token_outliers[order[:top]].sum() / total_outliers) if total_outliers else 0.0
    )
    return DistributionAnalysis(
        name=name,
        channel_range_spread=spread(channel_ranges),
        token_range_spread=spread(token_ranges),
        token_outlier_concentration=concentration,
    )


def record_activations(
    targets: List[ProteinStructure],
    config: Optional[PPMConfig] = None,
    seed: int = 0,
    keep_arrays: bool = True,
) -> ActivationRecorder:
    """Run the PPM over ``targets`` and collect activation statistics."""
    model = ProteinStructureModel(config or PPMConfig.small(), seed=seed)
    recorder = ActivationRecorder(keep_arrays=keep_arrays)
    for target in targets:
        model.predict_from_structure(target, ctx=recorder)
    return recorder


def figure5_analysis(recorder: ActivationRecorder) -> List[DistributionAnalysis]:
    """Per-tap Fig. 5 analyses from a recorder with kept arrays."""
    return [analyze_distribution(name, tokens) for name, tokens in recorder.arrays.items()]


def figure6c_statistics(recorder: ActivationRecorder) -> List[GroupStatistics]:
    """Group A/B/C statistics (Fig. 6c) from recorded activations.

    Aggregates straight off the recorder's columnar stat buffers (no
    :class:`~repro.ppm.activation_tap.ActivationRecord` materialization);
    numerically identical to ``group_statistics(recorder.records)``.
    """
    mean_abs = recorder.stat_column("mean_abs")
    outliers = recorder.stat_column("outlier_count_3sigma")
    stats: List[GroupStatistics] = []
    for group in GROUPS:
        mask = recorder.group_mask(group)
        if not mask.any():
            continue
        stats.append(
            GroupStatistics(
                group=group,
                mean_abs=float(mean_abs[mask].mean()),
                outliers_per_token=float(outliers[mask].mean()),
                record_count=int(mask.sum()),
            )
        )
    return stats


def group_separation_report(recorder: ActivationRecorder) -> Dict[str, float]:
    """Summary of how well value-range + outlier features separate the groups."""
    stats = {s.group: s for s in figure6c_statistics(recorder)}
    report: Dict[str, float] = {
        "classification_agreement": classification_agreement(recorder.records),
    }
    if "A" in stats and "B" in stats:
        report["value_ratio_a_over_b"] = stats["A"].mean_abs / max(stats["B"].mean_abs, 1e-9)
    if "B" in stats and "C" in stats:
        report["outlier_ratio_b_over_c"] = stats["B"].outliers_per_token / max(
            stats["C"].outliers_per_token, 1e-9
        )
    return report
