"""Design-space exploration: AAQ schemes (Fig. 11) and hardware config (Fig. 12)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # service routing is optional; avoid an import at runtime
    from ..serving.service import LatencyService

from ..core.aaq import AAQConfig
from ..core.token_quant import TokenQuantConfig, token_quantization_rmse
from ..hardware.config import LightNobelConfig
from ..sim import SweepPoint, sweep
from ..ppm.config import PPMConfig
from ..ppm.model import ProteinStructureModel
from ..ppm.quantized import AAQScheme, QuantizedPPM
from ..metrics.tm_score import tm_score_structures
from ..proteins.structure import ProteinStructure

#: Outlier counts explored in Fig. 11.
OUTLIER_SWEEP: Sequence[int] = (128, 64, 32, 16, 8, 4, 0)

#: Inlier precisions explored in Fig. 11.
PRECISION_SWEEP: Sequence[int] = (4, 8)


@dataclass(frozen=True)
class QuantDSEPoint:
    """One point of the Fig. 11 sweep for one activation group."""

    group: str
    inlier_bits: int
    outlier_count: int
    tm_score: float
    bytes_per_token: float
    efficiency: float


def efficiency_metric(tm: float, baseline_tm: float, bytes_per_token: float, hidden_dim: int) -> float:
    """Fig. 11 efficiency: compression gain, sharply discounted by TM-score loss.

    The paper defines efficiency from the quantized-token memory size and the
    resulting TM-score, "decreasing significantly as TM-Score drops".  We use
    ``compression_ratio * max(0, 1 - 25 * tm_drop)``: a configuration that
    keeps accuracy gets credit proportional to how much it shrinks the token;
    one that loses more than ~0.04 TM-score gets no credit.
    """
    fp16_bytes = hidden_dim * 2.0
    compression = fp16_bytes / bytes_per_token
    tm_drop = max(0.0, baseline_tm - tm)
    penalty = max(0.0, 1.0 - 25.0 * tm_drop)
    return compression * penalty / 10.0


class QuantizationDSE:
    """Fig. 11: sweep inlier precision and outlier count per activation group."""

    def __init__(
        self,
        targets: List[ProteinStructure],
        config: Optional[PPMConfig] = None,
        seed: int = 0,
        base_config: Optional[AAQConfig] = None,
    ) -> None:
        if not targets:
            raise ValueError("at least one target protein is required")
        self.targets = targets
        self.ppm_config = config or PPMConfig.small()
        self.model = ProteinStructureModel(self.ppm_config, seed=seed)
        self.base_config = base_config or AAQConfig.paper_optimal()
        self.baseline_tm = self._average_tm(None)

    def _average_tm(self, aaq: Optional[AAQConfig]) -> float:
        scores = []
        for target in self.targets:
            if aaq is None:
                prediction = self.model.predict_from_structure(target)
            else:
                scheme = AAQScheme(aaq)
                prediction = QuantizedPPM(self.model, scheme).predict(target)
            scores.append(tm_score_structures(prediction.structure, target))
        return float(np.mean(scores))

    def sweep_group(
        self,
        group: str,
        outlier_counts: Iterable[int] = OUTLIER_SWEEP,
        precisions: Iterable[int] = PRECISION_SWEEP,
    ) -> List[QuantDSEPoint]:
        """Sweep one group's scheme while the other groups keep the base config."""
        hidden = self.ppm_config.pair_dim
        points: List[QuantDSEPoint] = []
        for bits in precisions:
            for outliers in outlier_counts:
                outliers_clamped = min(outliers, hidden)
                candidate = TokenQuantConfig(inlier_bits=bits, outlier_count=outliers_clamped)
                aaq = self.base_config.replace_group(group, candidate)
                tm = self._average_tm(aaq)
                bytes_per_token = candidate.bytes_per_token(hidden)
                points.append(
                    QuantDSEPoint(
                        group=group,
                        inlier_bits=bits,
                        outlier_count=outliers_clamped,
                        tm_score=tm,
                        bytes_per_token=bytes_per_token,
                        efficiency=efficiency_metric(tm, self.baseline_tm, bytes_per_token, hidden),
                    )
                )
        return points

    @staticmethod
    def best_point(points: List[QuantDSEPoint]) -> QuantDSEPoint:
        return max(points, key=lambda p: p.efficiency)


def quick_group_sweep(
    activations: Dict[str, np.ndarray],
    group: str,
    hidden_dim: int,
    outlier_counts: Iterable[int] = OUTLIER_SWEEP,
    precisions: Iterable[int] = PRECISION_SWEEP,
) -> List[QuantDSEPoint]:
    """RMSE-proxy variant of the Fig. 11 sweep (no model inference).

    Uses recorded activations of the given group and scores configurations by
    reconstruction error instead of TM-score; used by fast unit tests and as a
    sanity cross-check of the full sweep.
    """
    tokens = activations[group]
    signal = float(np.sqrt(np.mean(tokens ** 2))) or 1.0
    points: List[QuantDSEPoint] = []
    for bits in precisions:
        for outliers in outlier_counts:
            outliers_clamped = min(outliers, hidden_dim)
            candidate = TokenQuantConfig(inlier_bits=bits, outlier_count=outliers_clamped)
            rmse = token_quantization_rmse(tokens, candidate)
            pseudo_tm = max(0.0, 1.0 - rmse / signal)
            bytes_per_token = candidate.bytes_per_token(hidden_dim)
            points.append(
                QuantDSEPoint(
                    group=group,
                    inlier_bits=bits,
                    outlier_count=outliers_clamped,
                    tm_score=pseudo_tm,
                    bytes_per_token=bytes_per_token,
                    efficiency=efficiency_metric(pseudo_tm, 1.0, bytes_per_token, hidden_dim),
                )
            )
    return points


# ----------------------------------------------------------------- Fig. 12 DSE
@dataclass(frozen=True)
class HardwareDSEPoint:
    """One point of the Fig. 12 hardware sweep."""

    num_rmpus: int
    vvpus_per_rmpu: int
    average_latency_seconds: float


def hardware_dse(
    sequence_lengths: Iterable[int],
    rmpu_counts: Iterable[int] = (1, 2, 4, 8, 16, 32, 64),
    vvpu_counts: Iterable[int] = (1, 2, 3, 4, 5, 6, 8),
    fixed_vvpus_per_rmpu: int = 4,
    fixed_rmpus: int = 32,
    config: Optional[PPMConfig] = None,
    workers: Optional[int] = None,
    service: Optional["LatencyService"] = None,
) -> Dict[str, List[HardwareDSEPoint]]:
    """Fig. 12: latency versus #VVPUs/RMPU (a) and versus #RMPUs (b).

    Every (hardware config, length) point is independent, so the whole grid is
    submitted to :func:`repro.sim.sweep` as one flat point list; ``workers``
    > 1 shards it across a process pool (serial otherwise, identical numbers
    either way).  With ``service=`` the grid is submitted through a shared
    :class:`~repro.serving.service.LatencyService` instead — the service's
    own worker pool (and coalescing with concurrent tenants) then applies,
    and ``workers`` is ignored.
    """
    config = config or PPMConfig.paper()
    if service is not None and service.session.ppm_config != config:
        raise ValueError("config does not match service.session.ppm_config")
    lengths = list(sequence_lengths)

    vvpu_configs = [
        LightNobelConfig(num_rmpus=fixed_rmpus, vvpus_per_rmpu=v) for v in vvpu_counts
    ]
    rmpu_configs = [
        LightNobelConfig(num_rmpus=r, vvpus_per_rmpu=fixed_vvpus_per_rmpu)
        for r in rmpu_counts
    ]
    grid = vvpu_configs + rmpu_configs
    points = [SweepPoint(hw, n) for hw in grid for n in lengths]
    if service is not None:
        reports = service.query_batch(
            [(p.backend, p.sequence_length) for p in points]
        )
    else:
        reports = sweep(points, ppm_config=config, workers=workers)

    def average_latency(config_index: int) -> float:
        start = config_index * len(lengths)
        block = reports[start : start + len(lengths)]
        return float(np.mean([r.total_seconds for r in block]))

    vvpu_sweep = [
        HardwareDSEPoint(
            num_rmpus=fixed_rmpus,
            vvpus_per_rmpu=hw.vvpus_per_rmpu,
            average_latency_seconds=average_latency(i),
        )
        for i, hw in enumerate(vvpu_configs)
    ]
    rmpu_sweep = [
        HardwareDSEPoint(
            num_rmpus=hw.num_rmpus,
            vvpus_per_rmpu=fixed_vvpus_per_rmpu,
            average_latency_seconds=average_latency(len(vvpu_configs) + i),
        )
        for i, hw in enumerate(rmpu_configs)
    ]
    return {"vvpu_sweep": vvpu_sweep, "rmpu_sweep": rmpu_sweep}


def saturation_point(points: List[HardwareDSEPoint], axis: str, threshold: float = 0.10) -> int:
    """First sweep value beyond which the latency improvement drops below 10%."""
    ordered = sorted(points, key=lambda p: getattr(p, axis))
    for previous, current in zip(ordered, ordered[1:]):
        gain = (previous.average_latency_seconds - current.average_latency_seconds) / max(
            previous.average_latency_seconds, 1e-12
        )
        if gain < threshold:
            return getattr(previous, axis)
    return getattr(ordered[-1], axis)
