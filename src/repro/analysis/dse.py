"""Design-space exploration: AAQ schemes (Fig. 11) and hardware config (Fig. 12)."""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # optional routing targets; avoid imports at runtime
    from ..cluster.planner import CapacityPlan
    from ..cluster.trace import RequestTrace
    from ..serving.service import LatencyService

from ..core.aaq import AAQConfig
from ..core.token_quant import TokenQuantConfig, token_quantization_rmse
from ..hardware.config import LightNobelConfig
from ..sim import SweepPoint, sweep
from ..sim.sweep import resolve_workers
from ..ppm.config import PPMConfig
from ..ppm.model import ProteinStructureModel
from ..ppm.quantized import AAQScheme, QuantizedPPM
from ..metrics.tm_score import tm_score_structures
from ..proteins.structure import ProteinStructure

#: Outlier counts explored in Fig. 11.
OUTLIER_SWEEP: Sequence[int] = (128, 64, 32, 16, 8, 4, 0)

#: Inlier precisions explored in Fig. 11.
PRECISION_SWEEP: Sequence[int] = (4, 8)


@dataclass(frozen=True)
class QuantDSEPoint:
    """One point of the Fig. 11 sweep for one activation group."""

    group: str
    inlier_bits: int
    outlier_count: int
    tm_score: float
    bytes_per_token: float
    efficiency: float


def efficiency_metric(tm: float, baseline_tm: float, bytes_per_token: float, hidden_dim: int) -> float:
    """Fig. 11 efficiency: compression gain, sharply discounted by TM-score loss.

    The paper defines efficiency from the quantized-token memory size and the
    resulting TM-score, "decreasing significantly as TM-Score drops".  We use
    ``compression_ratio * max(0, 1 - 25 * tm_drop)``: a configuration that
    keeps accuracy gets credit proportional to how much it shrinks the token;
    one that loses more than ~0.04 TM-score gets no credit.
    """
    fp16_bytes = hidden_dim * 2.0
    compression = fp16_bytes / bytes_per_token
    tm_drop = max(0.0, baseline_tm - tm)
    penalty = max(0.0, 1.0 - 25.0 * tm_drop)
    return compression * penalty / 10.0


#: Per-worker-process model memo for the sharded Fig. 11 sweep, keyed by
#: (PPM config digest, seed).  Bounded FIFO like the sweep worker sessions.
_QDSE_WORKER_MODELS: Dict[Tuple[str, int], ProteinStructureModel] = {}
_QDSE_WORKER_MODEL_LIMIT = 4


def _qdse_worker_model(ppm_config: PPMConfig, seed: int) -> ProteinStructureModel:
    key = (ppm_config.config_digest(), int(seed))
    model = _QDSE_WORKER_MODELS.get(key)
    if model is None:
        while len(_QDSE_WORKER_MODELS) >= _QDSE_WORKER_MODEL_LIMIT:
            _QDSE_WORKER_MODELS.pop(next(iter(_QDSE_WORKER_MODELS)))
        model = ProteinStructureModel(ppm_config, seed=seed)
        _QDSE_WORKER_MODELS[key] = model
    return model


#: Sweep context installed once per worker process by the pool initializer —
#: the targets (coordinate arrays) and config ship once per worker, not once
#: per grid point.
_QDSE_WORKER_CONTEXT: Dict[str, Tuple[PPMConfig, int, List[ProteinStructure]]] = {}


def _qdse_worker_init(
    ppm_config: PPMConfig, seed: int, targets: List[ProteinStructure]
) -> None:
    _QDSE_WORKER_CONTEXT["sweep"] = (ppm_config, seed, targets)


def _qdse_point_tm(aaq: AAQConfig) -> float:
    """Average TM-score of one AAQ configuration (runs in a pool worker).

    Model construction is seed-deterministic, so a worker's rebuilt model is
    bit-identical to the parent's and pooled ≡ serial holds exactly.
    """
    ppm_config, seed, targets = _QDSE_WORKER_CONTEXT["sweep"]
    model = _qdse_worker_model(ppm_config, seed)
    scheme = AAQScheme(aaq)
    quantized = QuantizedPPM(model, scheme)
    scores = [
        tm_score_structures(quantized.predict(target).structure, target)
        for target in targets
    ]
    return float(np.mean(scores))


class QuantizationDSE:
    """Fig. 11: sweep inlier precision and outlier count per activation group."""

    def __init__(
        self,
        targets: List[ProteinStructure],
        config: Optional[PPMConfig] = None,
        seed: int = 0,
        base_config: Optional[AAQConfig] = None,
    ) -> None:
        if not targets:
            raise ValueError("at least one target protein is required")
        self.targets = targets
        self.ppm_config = config or PPMConfig.small()
        self.seed = int(seed)
        self.model = ProteinStructureModel(self.ppm_config, seed=seed)
        self.base_config = base_config or AAQConfig.paper_optimal()
        self.baseline_tm = self._average_tm(None)

    def _average_tm(self, aaq: Optional[AAQConfig]) -> float:
        scores = []
        for target in self.targets:
            if aaq is None:
                prediction = self.model.predict_from_structure(target)
            else:
                scheme = AAQScheme(aaq)
                prediction = QuantizedPPM(self.model, scheme).predict(target)
            scores.append(tm_score_structures(prediction.structure, target))
        return float(np.mean(scores))

    def _tm_scores(
        self, aaqs: List[AAQConfig], workers: Optional[int]
    ) -> List[float]:
        """TM-scores for many AAQ configs, optionally sharded across a pool.

        Model inference per point dominates the Fig. 11 sweep, so the points
        shard the same way :func:`hardware_dse` shards latency points: a
        process pool with the sweep module's degrade-to-serial contract, and
        pooled ≡ serial results exactly (asserted by ``tests/test_analysis.py``).
        """
        workers = resolve_workers(workers)
        if workers is not None and workers > 1 and len(aaqs) > 1:
            try:
                with ProcessPoolExecutor(
                    max_workers=workers,
                    initializer=_qdse_worker_init,
                    initargs=(self.ppm_config, self.seed, self.targets),
                ) as pool:
                    return list(pool.map(_qdse_point_tm, aaqs))
            except (
                BrokenProcessPool,
                pickle.PicklingError,
                TypeError,
                AttributeError,
                OSError,
                ImportError,
                NotImplementedError,
            ):
                pass  # same fallback taxonomy as repro.sim.sweep.sweep
        return [self._average_tm(aaq) for aaq in aaqs]

    def sweep_group(
        self,
        group: str,
        outlier_counts: Iterable[int] = OUTLIER_SWEEP,
        precisions: Iterable[int] = PRECISION_SWEEP,
        workers: Optional[int] = None,
    ) -> List[QuantDSEPoint]:
        """Sweep one group's scheme while the other groups keep the base config.

        ``workers > 1`` shards the grid's model inferences across a process
        pool (serial otherwise, identical numbers either way).
        """
        hidden = self.ppm_config.pair_dim
        grid: List[Tuple[int, int, TokenQuantConfig]] = []
        for bits in precisions:
            for outliers in outlier_counts:
                outliers_clamped = min(outliers, hidden)
                candidate = TokenQuantConfig(inlier_bits=bits, outlier_count=outliers_clamped)
                grid.append((bits, outliers_clamped, candidate))
        aaqs = [
            self.base_config.replace_group(group, candidate)
            for _, _, candidate in grid
        ]
        tms = self._tm_scores(aaqs, workers)
        points: List[QuantDSEPoint] = []
        for (bits, outliers_clamped, candidate), tm in zip(grid, tms):
            bytes_per_token = candidate.bytes_per_token(hidden)
            points.append(
                QuantDSEPoint(
                    group=group,
                    inlier_bits=bits,
                    outlier_count=outliers_clamped,
                    tm_score=tm,
                    bytes_per_token=bytes_per_token,
                    efficiency=efficiency_metric(tm, self.baseline_tm, bytes_per_token, hidden),
                )
            )
        return points

    @staticmethod
    def best_point(points: List[QuantDSEPoint]) -> QuantDSEPoint:
        return max(points, key=lambda p: p.efficiency)


def quick_group_sweep(
    activations: Dict[str, np.ndarray],
    group: str,
    hidden_dim: int,
    outlier_counts: Iterable[int] = OUTLIER_SWEEP,
    precisions: Iterable[int] = PRECISION_SWEEP,
) -> List[QuantDSEPoint]:
    """RMSE-proxy variant of the Fig. 11 sweep (no model inference).

    Uses recorded activations of the given group and scores configurations by
    reconstruction error instead of TM-score; used by fast unit tests and as a
    sanity cross-check of the full sweep.
    """
    tokens = activations[group]
    signal = float(np.sqrt(np.mean(tokens ** 2))) or 1.0
    points: List[QuantDSEPoint] = []
    for bits in precisions:
        for outliers in outlier_counts:
            outliers_clamped = min(outliers, hidden_dim)
            candidate = TokenQuantConfig(inlier_bits=bits, outlier_count=outliers_clamped)
            rmse = token_quantization_rmse(tokens, candidate)
            pseudo_tm = max(0.0, 1.0 - rmse / signal)
            bytes_per_token = candidate.bytes_per_token(hidden_dim)
            points.append(
                QuantDSEPoint(
                    group=group,
                    inlier_bits=bits,
                    outlier_count=outliers_clamped,
                    tm_score=pseudo_tm,
                    bytes_per_token=bytes_per_token,
                    efficiency=efficiency_metric(pseudo_tm, 1.0, bytes_per_token, hidden_dim),
                )
            )
    return points


# ----------------------------------------------------------------- Fig. 12 DSE
@dataclass(frozen=True)
class HardwareDSEPoint:
    """One point of the Fig. 12 hardware sweep."""

    num_rmpus: int
    vvpus_per_rmpu: int
    average_latency_seconds: float


def hardware_dse(
    sequence_lengths: Iterable[int],
    rmpu_counts: Iterable[int] = (1, 2, 4, 8, 16, 32, 64),
    vvpu_counts: Iterable[int] = (1, 2, 3, 4, 5, 6, 8),
    fixed_vvpus_per_rmpu: int = 4,
    fixed_rmpus: int = 32,
    config: Optional[PPMConfig] = None,
    workers: Optional[int] = None,
    service: Optional["LatencyService"] = None,
) -> Dict[str, List[HardwareDSEPoint]]:
    """Fig. 12: latency versus #VVPUs/RMPU (a) and versus #RMPUs (b).

    Every (hardware config, length) point is independent, so the whole grid is
    submitted to :func:`repro.sim.sweep` as one flat point list; ``workers``
    > 1 shards it across a process pool (serial otherwise, identical numbers
    either way).  With ``service=`` the grid is submitted through a shared
    :class:`~repro.serving.service.LatencyService` instead — the service's
    own worker pool (and coalescing with concurrent tenants) then applies,
    and ``workers`` is ignored.
    """
    config = config or PPMConfig.paper()
    if service is not None and service.session.ppm_config != config:
        raise ValueError("config does not match service.session.ppm_config")
    lengths = list(sequence_lengths)

    vvpu_configs = [
        LightNobelConfig(num_rmpus=fixed_rmpus, vvpus_per_rmpu=v) for v in vvpu_counts
    ]
    rmpu_configs = [
        LightNobelConfig(num_rmpus=r, vvpus_per_rmpu=fixed_vvpus_per_rmpu)
        for r in rmpu_counts
    ]
    grid = vvpu_configs + rmpu_configs
    points = [SweepPoint(hw, n) for hw in grid for n in lengths]
    if service is not None:
        reports = service.query_batch(
            [(p.backend, p.sequence_length) for p in points]
        )
    else:
        reports = sweep(points, ppm_config=config, workers=workers)

    def average_latency(config_index: int) -> float:
        start = config_index * len(lengths)
        block = reports[start : start + len(lengths)]
        return float(np.mean([r.total_seconds for r in block]))

    vvpu_sweep = [
        HardwareDSEPoint(
            num_rmpus=fixed_rmpus,
            vvpus_per_rmpu=hw.vvpus_per_rmpu,
            average_latency_seconds=average_latency(i),
        )
        for i, hw in enumerate(vvpu_configs)
    ]
    rmpu_sweep = [
        HardwareDSEPoint(
            num_rmpus=hw.num_rmpus,
            vvpus_per_rmpu=fixed_vvpus_per_rmpu,
            average_latency_seconds=average_latency(len(vvpu_configs) + i),
        )
        for i, hw in enumerate(rmpu_configs)
    ]
    return {"vvpu_sweep": vvpu_sweep, "rmpu_sweep": rmpu_sweep}


# ------------------------------------------------------------- cluster DSE
def cluster_capacity_dse(
    trace: "RequestTrace",
    backend: object = "lightnobel",
    fleet_sizes: Sequence[int] = (1, 2, 4, 8),
    policies: Sequence[str] = ("fifo", "edf"),
    slo_target: float = 0.95,
    config: Optional[PPMConfig] = None,
    workers: Optional[int] = None,
    service: Optional["LatencyService"] = None,
    same_length_reuse_discount: float = 0.0,
) -> "CapacityPlan":
    """Fleet-level DSE: smallest fleet of ``backend`` workers meeting an SLO.

    The design-space axis here is the *fleet* (size x scheduling policy)
    rather than the chip (Fig. 12's RMPU/VVPU counts): the trace replays
    against every grid cell via :func:`repro.cluster.planner.plan_capacity`,
    sharing one service-time prefetch (sharded across the sweep pool with
    ``workers > 1``, or routed through ``service=``).  Returns the
    :class:`~repro.cluster.planner.CapacityPlan`, whose ``minimal_fleet()`` /
    ``cheapest_plan()`` answer the capacity question directly.
    """
    from ..cluster.fleet import FleetSpec  # local: analysis must stay importable
    from ..cluster.planner import plan_capacity  # without the cluster package

    return plan_capacity(
        trace,
        base_fleet=FleetSpec.homogeneous(backend, 1),
        fleet_sizes=fleet_sizes,
        policies=policies,
        slo_target=slo_target,
        ppm_config=config,
        service=service,
        workers=workers,
        same_length_reuse_discount=same_length_reuse_discount,
    )


def saturation_point(points: List[HardwareDSEPoint], axis: str, threshold: float = 0.10) -> int:
    """First sweep value beyond which the latency improvement drops below 10%."""
    ordered = sorted(points, key=lambda p: getattr(p, axis))
    for previous, current in zip(ordered, ordered[1:]):
        gain = (previous.average_latency_seconds - current.average_latency_seconds) / max(
            previous.average_latency_seconds, 1e-12
        )
        if gain < threshold:
            return getattr(previous, axis)
    return getattr(ordered[-1], axis)
