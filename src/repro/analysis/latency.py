"""Latency breakdown (Fig. 3) and hardware performance comparison (Fig. 14b-d).

Both figures are thin views over the unified simulation layer: a
:class:`~repro.sim.session.SimulationSession` resolves the backends, owns the
cached operator tables and memoizes one report per (backend, length) pair, so
one dataset sweep never simulates the same point twice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, TYPE_CHECKING

from ..hardware.config import LightNobelConfig
from ..ppm.config import PPMConfig
from ..ppm.workload import (
    PHASE_PAIR,
    PHASE_SEQUENCE,
    SUBPHASE_TRI_ATT,
)
from ..sim import AcceleratorVariant, BatchResult, SimulationSession, session_for

if TYPE_CHECKING:  # service routing is optional; avoid an import at runtime
    from ..serving.service import LatencyService


@dataclass
class LatencyBreakdown:
    """Fig. 3: share of end-to-end latency per phase/sub-phase."""

    sequence_length: int
    phase_fractions: Dict[str, float]
    subphase_fractions: Dict[str, float]

    @property
    def folding_block_fraction(self) -> float:
        return self.phase_fractions.get(PHASE_PAIR, 0.0) + self.phase_fractions.get(PHASE_SEQUENCE, 0.0)

    @property
    def pair_dataflow_fraction(self) -> float:
        return self.phase_fractions.get(PHASE_PAIR, 0.0)

    @property
    def triangular_attention_fraction(self) -> float:
        return self.subphase_fractions.get(SUBPHASE_TRI_ATT, 0.0)


def latency_breakdown(
    sequence_length: int,
    gpu: str = "H100",
    config: Optional[PPMConfig] = None,
    session: Optional[SimulationSession] = None,
    service: Optional["LatencyService"] = None,
) -> LatencyBreakdown:
    """End-to-end GPU latency breakdown for one protein (Fig. 3 methodology).

    With ``service=`` the report is fetched through a shared
    :class:`~repro.serving.service.LatencyService` (coalescing with any other
    concurrent caller) instead of the session's direct path.
    """
    if service is not None:
        if session is not None and session is not service.session:
            raise ValueError("pass either session or service, not both")
        session_for(config, service.session)  # validates config match
        report = service.query(gpu.lower(), sequence_length)
    else:
        session = session_for(config, session)
        report = session.simulate(sequence_length, backend=gpu.lower())
    total = report.total_seconds or 1.0
    phase_fractions = {phase: seconds / total for phase, seconds in report.phase_seconds.items()}
    subphase_fractions = {sub: seconds / total for sub, seconds in report.subphase_seconds.items()}
    return LatencyBreakdown(
        sequence_length=sequence_length,
        phase_fractions=phase_fractions,
        subphase_fractions=subphase_fractions,
    )


@dataclass
class HardwareComparison:
    """Fig. 14(b-d): folding-block latency of GPUs (±chunk) vs LightNobel."""

    dataset: str
    lightnobel_seconds: float
    gpu_seconds: Dict[str, float]  # e.g. "A100 (chunk)" -> seconds
    out_of_memory: Dict[str, bool]

    def normalized(self) -> Dict[str, float]:
        """Latencies normalized to LightNobel (the Fig. 14 y-axis)."""
        reference = self.lightnobel_seconds or 1.0
        result = {"LightNobel": 1.0}
        for name, seconds in self.gpu_seconds.items():
            result[name] = seconds / reference
        return result


def compare_hardware_on_lengths(
    dataset: str,
    sequence_lengths: Iterable[int],
    config: Optional[PPMConfig] = None,
    hw_config: Optional[LightNobelConfig] = None,
    gpus: Iterable[str] = ("A100", "H100"),
    exclude_oom: bool = False,
    only_oom_without_chunk: bool = False,
    session: Optional[SimulationSession] = None,
    service: Optional["LatencyService"] = None,
) -> HardwareComparison:
    """Average folding-block latency over a dataset's sequence lengths.

    ``exclude_oom`` drops proteins that do not fit on the GPU without the
    chunk option (the Fig. 14c protocol); ``only_oom_without_chunk`` keeps only
    those proteins (the Fig. 14d protocol).  All latencies come from one
    :class:`~repro.sim.session.SimulationSession` batch, so each distinct
    length builds its operator table exactly once for all backends — or, with
    ``service=``, from one shared :class:`~repro.serving.service.LatencyService`
    batch (same numbers, coalesced with concurrent callers).
    """
    if service is not None:
        if session is not None and session is not service.session:
            raise ValueError("pass either session or service, not both")
        session = session_for(config, service.session)
    else:
        session = session_for(config, session)
    lengths = [int(n) for n in sequence_lengths]
    if not lengths:
        raise ValueError("sequence_lengths must be non-empty")

    reference_gpu = (
        service.register_backend("h100") if service is not None else session.backend("h100")
    )
    if exclude_oom:
        lengths = [n for n in lengths if reference_gpu.model.fits_in_memory(n, chunked=False)]
    if only_oom_without_chunk:
        lengths = [n for n in lengths if not reference_gpu.model.fits_in_memory(n, chunked=False)]
    if not lengths:
        raise ValueError("no proteins remain after the OOM filter")

    if hw_config is not None:
        # Name the custom design point by its digest so two different
        # hw_configs sharing a session never collide in the report memo.
        variant = AcceleratorVariant(
            hw_config=hw_config, name=f"lightnobel-{hw_config.config_digest()}"
        )
        accelerator = (
            service.register_backend(variant)
            if service is not None
            else session.add_backend(variant)
        )
        accelerator_name = accelerator.name
    else:
        accelerator_name = "lightnobel"

    gpu_labels: Dict[str, str] = {}  # display label -> backend name
    for gpu_name in gpus:
        gpu_labels[f"{gpu_name} (chunk)"] = f"{gpu_name.lower()}-chunk"
        gpu_labels[f"{gpu_name} (no chunk)"] = gpu_name.lower()

    names = [accelerator_name, *gpu_labels.values()]
    if service is not None:
        pairs = [(name, n) for n in dict.fromkeys(lengths) for name in names]
        reports = service.query_batch(pairs)
        batch = BatchResult(lengths=lengths, backends=names)
        for (name, n), report in zip(pairs, reports):
            batch.reports[(name, n)] = report
    else:
        batch = session.simulate_batch(lengths, backends=names)
    lightnobel = batch.mean_folding_seconds(accelerator_name)
    gpu_seconds = {
        label: batch.mean_folding_seconds(name) for label, name in gpu_labels.items()
    }
    oom = {label: batch.any_out_of_memory(name) for label, name in gpu_labels.items()}
    return HardwareComparison(
        dataset=dataset,
        lightnobel_seconds=lightnobel,
        gpu_seconds=gpu_seconds,
        out_of_memory=oom,
    )


def average_speedup(comparison: HardwareComparison) -> Dict[str, float]:
    """LightNobel speedup over each GPU configuration."""
    return {
        name: seconds / (comparison.lightnobel_seconds or 1.0)
        for name, seconds in comparison.gpu_seconds.items()
    }
