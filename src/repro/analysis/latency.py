"""Latency breakdown (Fig. 3) and hardware performance comparison (Fig. 14b-d)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from ..hardware.accelerator import LightNobelAccelerator
from ..hardware.config import LightNobelConfig
from ..ppm.config import PPMConfig
from ..ppm.workload import (
    PHASE_INPUT_EMBEDDING,
    PHASE_PAIR,
    PHASE_SEQUENCE,
    PHASE_STRUCTURE,
    SUBPHASE_BIAS_MLP,
    SUBPHASE_TRI_ATT,
    SUBPHASE_TRI_MULT,
)
from ..gpu.gpu_model import GPUModel


@dataclass
class LatencyBreakdown:
    """Fig. 3: share of end-to-end latency per phase/sub-phase."""

    sequence_length: int
    phase_fractions: Dict[str, float]
    subphase_fractions: Dict[str, float]

    @property
    def folding_block_fraction(self) -> float:
        return self.phase_fractions.get(PHASE_PAIR, 0.0) + self.phase_fractions.get(PHASE_SEQUENCE, 0.0)

    @property
    def pair_dataflow_fraction(self) -> float:
        return self.phase_fractions.get(PHASE_PAIR, 0.0)

    @property
    def triangular_attention_fraction(self) -> float:
        return self.subphase_fractions.get(SUBPHASE_TRI_ATT, 0.0)


def latency_breakdown(
    sequence_length: int,
    gpu: str = "H100",
    config: Optional[PPMConfig] = None,
) -> LatencyBreakdown:
    """End-to-end GPU latency breakdown for one protein (Fig. 3 methodology)."""
    config = config or PPMConfig.paper()
    report = GPUModel(gpu, ppm_config=config).simulate(sequence_length, chunked=False)
    total = report.total_seconds or 1.0
    phase_fractions = {phase: seconds / total for phase, seconds in report.phase_seconds.items()}
    subphase_fractions = {sub: seconds / total for sub, seconds in report.subphase_seconds.items()}
    return LatencyBreakdown(
        sequence_length=sequence_length,
        phase_fractions=phase_fractions,
        subphase_fractions=subphase_fractions,
    )


@dataclass
class HardwareComparison:
    """Fig. 14(b-d): folding-block latency of GPUs (±chunk) vs LightNobel."""

    dataset: str
    lightnobel_seconds: float
    gpu_seconds: Dict[str, float]  # e.g. "A100 (chunk)" -> seconds
    out_of_memory: Dict[str, bool]

    def normalized(self) -> Dict[str, float]:
        """Latencies normalized to LightNobel (the Fig. 14 y-axis)."""
        reference = self.lightnobel_seconds or 1.0
        result = {"LightNobel": 1.0}
        for name, seconds in self.gpu_seconds.items():
            result[name] = seconds / reference
        return result


def compare_hardware_on_lengths(
    dataset: str,
    sequence_lengths: Iterable[int],
    config: Optional[PPMConfig] = None,
    hw_config: Optional[LightNobelConfig] = None,
    gpus: Iterable[str] = ("A100", "H100"),
    exclude_oom: bool = False,
    only_oom_without_chunk: bool = False,
) -> HardwareComparison:
    """Average folding-block latency over a dataset's sequence lengths.

    ``exclude_oom`` drops proteins that do not fit on the GPU without the
    chunk option (the Fig. 14c protocol); ``only_oom_without_chunk`` keeps only
    those proteins (the Fig. 14d protocol).
    """
    config = config or PPMConfig.paper()
    lengths = list(sequence_lengths)
    if not lengths:
        raise ValueError("sequence_lengths must be non-empty")

    reference_gpu = GPUModel("H100", ppm_config=config)
    if exclude_oom:
        lengths = [n for n in lengths if reference_gpu.fits_in_memory(n, chunked=False)]
    if only_oom_without_chunk:
        lengths = [n for n in lengths if not reference_gpu.fits_in_memory(n, chunked=False)]
    if not lengths:
        raise ValueError("no proteins remain after the OOM filter")

    accelerator = LightNobelAccelerator(hw_config=hw_config, ppm_config=config)
    lightnobel = sum(accelerator.folding_block_seconds(n) for n in lengths) / len(lengths)

    gpu_seconds: Dict[str, float] = {}
    oom: Dict[str, bool] = {}
    for gpu_name in gpus:
        model = GPUModel(gpu_name, ppm_config=config)
        for chunked, label in ((True, f"{gpu_name} (chunk)"), (False, f"{gpu_name} (no chunk)")):
            reports = [model.simulate(n, chunked=chunked) for n in lengths]
            gpu_seconds[label] = sum(r.folding_block_seconds() for r in reports) / len(reports)
            oom[label] = any(r.out_of_memory for r in reports)
    return HardwareComparison(
        dataset=dataset,
        lightnobel_seconds=lightnobel,
        gpu_seconds=gpu_seconds,
        out_of_memory=oom,
    )


def average_speedup(comparison: HardwareComparison) -> Dict[str, float]:
    """LightNobel speedup over each GPU configuration."""
    return {
        name: seconds / (comparison.lightnobel_seconds or 1.0)
        for name, seconds in comparison.gpu_seconds.items()
    }
