"""Activation/weight size, peak memory, footprint and compute-cost models.

Covers Fig. 4 (activation vs weight size), Table 1 (per-scheme memory
footprint), Fig. 15 (peak memory requirement), and Fig. 16 (computational cost
and memory footprint versus sequence length).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

import numpy as np

from ..core.aaq import AAQConfig
from ..core.schemes import QuantizationScheme, all_schemes
from ..ppm.activation_tap import GROUP_C
from ..ppm.config import PPMConfig
from ..ppm.op_table import OperatorTable, get_op_table
from ..ppm.workload import (
    ENGINE_MATMUL,
    PHASE_PAIR,
    PHASE_SEQUENCE,
    pair_activation_elements,
    score_matrix_elements,
    sequence_activation_elements,
)
from ..gpu.gpu_model import GPUModel

GB = 1e9

#: Trunk (folding blocks + structure module) parameter count at paper scale.
TRUNK_PARAMETERS = 690e6


# --------------------------------------------------------------------- Fig. 4
@dataclass(frozen=True)
class SizePoint:
    """One point of the Fig. 4 curve."""

    sequence_length: int
    weight_gb: float
    activation_gb: float

    @property
    def ratio(self) -> float:
        return self.activation_gb / self.weight_gb if self.weight_gb else 0.0


def weight_size_gb(config: Optional[PPMConfig] = None, include_language_model: bool = True) -> float:
    """Total PPM weight size in GB at FP16 (Fig. 4 horizontal line)."""
    config = config or PPMConfig.paper()
    params = TRUNK_PARAMETERS + (config.language_model_params if include_language_model else 0.0)
    return params * config.weight_bytes / GB


def peak_activation_size_gb(sequence_length: int, config: Optional[PPMConfig] = None) -> float:
    """Peak activation size of the unquantized PPM (Fig. 4 curve)."""
    config = config or PPMConfig.paper()
    gpu = GPUModel("H100", ppm_config=config)
    return gpu.peak_activation_bytes(sequence_length, chunked=False) / GB


def activation_weight_curve(
    sequence_lengths: Iterable[int], config: Optional[PPMConfig] = None
) -> List[SizePoint]:
    """Fig. 4: weight size and peak activation size across sequence lengths."""
    config = config or PPMConfig.paper()
    weights = weight_size_gb(config)
    return [
        SizePoint(n, weights, peak_activation_size_gb(n, config)) for n in sequence_lengths
    ]


# -------------------------------------------------------------------- Table 1
@dataclass(frozen=True)
class FootprintRow:
    """One row of Table 1."""

    scheme: str
    activation_grouping: str
    activation_precision: str
    weight_grouping: str
    weight_precision: str
    activation_gb: float
    weight_gb: float

    @property
    def total_gb(self) -> float:
        return self.activation_gb + self.weight_gb


def total_activation_traffic_gb(sequence_length: int, config: Optional[PPMConfig] = None) -> float:
    """Activation memory footprint of the Pair-dataflow (FP16 GB, Table 1).

    Table 1 reports the activation footprint of one folding block's worth of
    live tensors (activations are reused across the 48 blocks, and the
    attention score matrix is excluded because all compared schemes run with
    low-memory attention at this sequence length).
    """
    config = config or PPMConfig.paper()
    table = get_op_table(config.with_blocks(1), sequence_length)
    mask = (table.phase_mask(PHASE_PAIR) | table.phase_mask(PHASE_SEQUENCE)) & ~table.fusible
    elements = float(np.sum(table.output_elements[mask]))
    return elements * config.activation_bytes / GB


def footprint_table(
    sequence_length: int = 3364,
    config: Optional[PPMConfig] = None,
    schemes: Optional[Dict[str, QuantizationScheme]] = None,
) -> List[FootprintRow]:
    """Table 1: activation/weight/total memory footprint per scheme."""
    config = config or PPMConfig.paper()
    schemes = schemes or all_schemes()
    baseline_activation = total_activation_traffic_gb(sequence_length, config)
    baseline_weight = weight_size_gb(config)
    rows: List[FootprintRow] = []
    for name, scheme in schemes.items():
        activation = baseline_activation * scheme.effective_activation_bytes() / config.activation_bytes
        weight = baseline_weight * scheme.effective_weight_bytes() / config.weight_bytes
        desc = scheme.description
        rows.append(
            FootprintRow(
                scheme=name,
                activation_grouping=desc.activation_grouping,
                activation_precision=desc.activation_precision,
                weight_grouping=desc.weight_grouping,
                weight_precision=desc.weight_precision,
                activation_gb=activation,
                weight_gb=weight,
            )
        )
    return rows


# -------------------------------------------------------------------- Fig. 15
def lightnobel_peak_memory_gb(
    sequence_length: int,
    config: Optional[PPMConfig] = None,
    aaq: Optional[AAQConfig] = None,
    resident_pair_copies: int = 8,
) -> float:
    """Peak memory of LightNobel: quantized pair copies, no score matrix."""
    config = config or PPMConfig.paper()
    aaq = aaq or AAQConfig.paper_optimal()
    hidden = config.pair_dim
    avg_bytes = aaq.average_bits_per_value(hidden) / 8.0
    pair = pair_activation_elements(config, sequence_length) * avg_bytes
    seq = sequence_activation_elements(config, sequence_length) * 2.0
    weights = TRUNK_PARAMETERS * 2.0  # 16-bit trunk weights; ESM-2 runs on the host CPU/GPU
    return (resident_pair_copies * pair + 2 * seq + weights) / GB


def peak_memory_comparison(
    sequence_length: int, config: Optional[PPMConfig] = None
) -> Dict[str, float]:
    """Fig. 15: peak memory (GB) of baseline (±chunk) and LightNobel."""
    config = config or PPMConfig.paper()
    gpu = GPUModel("H100", ppm_config=config)
    return {
        "baseline_no_chunk": gpu.peak_memory_bytes(sequence_length, chunked=False) / GB,
        "baseline_chunk": gpu.peak_memory_bytes(sequence_length, chunked=True) / GB,
        "lightnobel": lightnobel_peak_memory_gb(sequence_length, config),
    }


def max_supported_length(
    memory_budget_gb: float = 80.0,
    config: Optional[PPMConfig] = None,
    upper: int = 20000,
) -> int:
    """Longest sequence LightNobel fits within ``memory_budget_gb`` (Section 8.3)."""
    config = config or PPMConfig.paper()
    low, high = 1, upper
    while low < high:
        mid = (low + high + 1) // 2
        if lightnobel_peak_memory_gb(mid, config) <= memory_budget_gb:
            low = mid
        else:
            high = mid - 1
    return low


# -------------------------------------------------------------------- Fig. 16
def int8_equivalent_cost(workload, aaq: Optional[AAQConfig]) -> float:
    """Computational cost in INT8-equivalent operations (Fig. 16a metric).

    Every MAC is weighted by the product of its operand precisions relative to
    INT8 (multiplication cost scales quadratically with precision); vector
    operations count at 16-bit cost.  ``aaq=None`` is the FP16 baseline.
    Accepts either a :class:`Workload` or an :class:`OperatorTable`.
    """
    table = workload if isinstance(workload, OperatorTable) else OperatorTable.from_workload(workload)
    hidden = table.config.pair_dim
    act_bits = np.empty(len(table.groups))
    for code, group in enumerate(table.groups):
        if aaq is None:
            act_bits[code] = 16.0
        else:
            group_config = aaq.config_for(group or GROUP_C)
            outliers = min(group_config.outlier_count, hidden)
            act_bits[code] = (
                (hidden - outliers) * group_config.inlier_bits + outliers * group_config.outlier_bits
            ) / hidden
    matmul = table.engine_mask(ENGINE_MATMUL) & (table.macs > 0)
    mac_cost = table.macs * (act_bits[table.group_codes] / 8.0) * (16.0 / 8.0)
    vector_cost = table.vector_ops * (16.0 / 8.0)
    return float(np.sum(np.where(matmul, mac_cost, vector_cost)))


def computational_cost_comparison(
    sequence_length: int, config: Optional[PPMConfig] = None
) -> Dict[str, float]:
    """Fig. 16a: INT8-equivalent computational cost, baseline vs LightNobel."""
    config = config or PPMConfig.paper()
    table = get_op_table(config, sequence_length)
    return {
        "baseline": int8_equivalent_cost(table, None),
        "lightnobel": int8_equivalent_cost(table, AAQConfig.paper_optimal()),
    }


def memory_footprint_comparison(
    sequence_length: int, config: Optional[PPMConfig] = None
) -> Dict[str, float]:
    """Fig. 16b: accumulated activation traffic (GB), baseline vs LightNobel."""
    config = config or PPMConfig.paper()
    table = get_op_table(config, sequence_length)
    aaq = AAQConfig.paper_optimal()
    hidden = config.pair_dim
    # The baseline runs with low-memory attention at these lengths and
    # LightNobel's token-wise MHA keeps the score matrix on chip, so neither
    # side writes the fusible intermediates to memory.
    mask = (table.phase_mask(PHASE_PAIR) | table.phase_mask(PHASE_SEQUENCE)) & ~table.fusible
    bytes_per_element = np.array(
        [
            config.activation_bytes
            if group is None
            else aaq.bits_per_token(hidden, group) / hidden / 8.0
            for group in table.groups
        ]
    )
    elements = np.where(mask, table.output_elements, 0.0)
    baseline = float(np.sum(elements * config.activation_bytes))
    lightnobel = float(np.sum(elements * bytes_per_element[table.group_codes]))
    return {"baseline": baseline / GB, "lightnobel": lightnobel / GB}
