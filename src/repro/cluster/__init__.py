"""Trace-driven cluster simulation: fleets, scheduling policies, SLO planning.

The fourth layer of the simulation stack: PR 1 made one simulation cheap
(columnar engine), PR 2 made repeated simulations cheap (sessions, sweeps,
disk cache), PR 3 made concurrent queries cheap (the serving layer) — this
package asks the fleet-level question those layers exist for: **how many
chips, scheduled how, meet what SLO under realistic protein-length traffic,
at what cost** — and, since PR 6, **what happens when the fleet breaks**:
workers crash and restart, stragglers appear, links degrade, and the
closed-loop controllers (admission control, autoscaling) fight back.

Usage
-----
Generate traffic, describe a fleet, replay, read the report::

    from repro.cluster import (
        FleetSpec, SLOPolicy, mixture_lengths, poisson_trace, replay_trace,
    )

    pool, weights = mixture_lengths([(128, 0.6), (256, 0.3), (512, 0.1)])
    trace = poisson_trace(
        rate_rps=80.0, num_requests=500, length_pool=pool,
        length_weights=weights, slo=SLOPolicy(), seed=7,
    )
    fleet = FleetSpec.homogeneous("lightnobel", 4)
    report = replay_trace(trace, fleet, scheduler="edf")
    report.p99_latency_seconds, report.slo_attainment, report.utilization

Multi-chip nodes compose per-chip reports with package-interconnect costs::

    from repro.cluster import MultiChipVariant
    node = MultiChipVariant(base="lightnobel", chips=4)
    fleet = FleetSpec.homogeneous(node, 2)          # 2 nodes x 4 chips

Capacity planning (smallest fleet meeting a 95% SLO)::

    from repro.cluster import plan_capacity
    plan = plan_capacity(trace, fleet_sizes=(1, 2, 4, 8),
                         policies=("fifo", "sjf", "bucketed", "edf"))
    plan.minimal_fleet(), plan.cheapest_plan(), plan.attainment_curve("edf")

Fault injection and closed-loop control (all optional keyword arguments of
:func:`replay_trace`; every default preserves the open-loop replay
bit-for-bit)::

    from repro.cluster import (
        AdmissionController, Autoscaler, FaultSchedule, RecoveryPolicy,
    )
    faults = FaultSchedule.generate(4, trace.duration_seconds, seed=3)
    report = replay_trace(
        trace, fleet, scheduler="edf",
        faults=faults, recovery=RecoveryPolicy(max_retries=2),
        admission=AdmissionController(max_queue_depth=64),
        autoscaler=Autoscaler(min_workers=4, max_workers=8, slo_target=0.99),
    )
    report.retried, report.shed, report.failed, report.availability

The pinned scenario suite and the headline resilience measurement::

    from repro.cluster import resilience_experiment, scenario_suite
    summary = resilience_experiment()           # plan, break, close the loop
    print(*summary.summary_lines(), sep="\\n")

Heterogeneous fleets (PR 8): mixed worker groups with a routing policy on
top of any scheduler, fleet-vs-fleet pricing, and live-traffic replay::

    from repro.cluster import RequestTrace, compare_fleets, mixed_fleet_experiment
    report = replay_trace(trace, mixed_fleet, scheduler="edf", router="cost-greedy")
    summary = mixed_fleet_experiment()          # big+cheap beats all-big, in $/M
    print(*summary.summary_lines(), sep="\\n")

    trace = RequestTrace.from_serving_log(service.request_log())
    replay_trace(trace, fleet)                  # replay yesterday's real traffic

Replays are bit-deterministic for fixed trace/fault seeds; scheduling
policies share priority/deadline semantics with the live
:class:`~repro.serving.service.LatencyService` dispatcher.

Facade
------
This module exports the cluster layer's documented surface: traffic
(:func:`create_trace` plus the named generators), fleets, replay, faults,
control loops, planning, scenarios, and the router/scheduler *factories*
(:func:`create_router`, :func:`create_scheduler` — the repo-wide
``create_*`` family shared with :func:`repro.sim.backend.create_backend`
and :func:`repro.serving.create_service`).

Internal helpers that used to leak through this facade —
``scheduler_name``/``select_worker`` (:mod:`repro.cluster.scheduler`) and
``router_name``/``group_infos`` (:mod:`repro.cluster.routing`) — still
import here but raise a :class:`DeprecationWarning`; import them from their
home modules.
"""

import warnings

from .control import ADMIT_ALL, AdmissionController, Autoscaler
from .des import (
    ClusterReport,
    RequestOutcome,
    prefetch_communication_seconds,
    prefetch_service_times,
    replay_trace,
    replay_trace_outcomes,
)
from .faults import (
    FAIL_FAST,
    NO_FAULTS,
    DegradedLinkWindow,
    FaultSchedule,
    RecoveryPolicy,
    StragglerWindow,
    WorkerCrash,
)
from .fleet import (
    DEFAULT_COST_PER_HOUR,
    FleetSpec,
    MultiChipBackend,
    MultiChipVariant,
    WorkerGroup,
    WorkerHealth,
)
from .planner import (
    CapacityPlan,
    FleetComparison,
    PlanPoint,
    compare_fleets,
    plan_capacity,
    plan_capacity_under_scenarios,
    robust_minimal_fleet,
)
from .routing import (
    ROUTERS,
    CostGreedyRouter,
    GroupInfo,
    LengthThresholdRouter,
    MemoryFitRouter,
    RouterSpec,
    create_router,
)
from .scenarios import (
    ClusterScenario,
    MixedFleetSummary,
    ResilienceSummary,
    mixed_fleet_experiment,
    mixed_fleet_trace,
    named_scenario,
    resilience_experiment,
    scenario_suite,
    small_memory_gpu,
)
from .scheduler import (
    BucketedScheduler,
    EDFScheduler,
    FIFOScheduler,
    SCHEDULERS,
    SJFScheduler,
    Scheduler,
    create_scheduler,
)
from .trace import (
    NO_SLO,
    TRACE_GENERATORS,
    Request,
    RequestTrace,
    SLOPolicy,
    bursty_trace,
    create_trace,
    dataset_lengths,
    diurnal_trace,
    mixture_lengths,
    poisson_trace,
)

__all__ = [
    "ADMIT_ALL",
    "AdmissionController",
    "Autoscaler",
    "BucketedScheduler",
    "CapacityPlan",
    "ClusterReport",
    "ClusterScenario",
    "CostGreedyRouter",
    "DEFAULT_COST_PER_HOUR",
    "DegradedLinkWindow",
    "EDFScheduler",
    "FAIL_FAST",
    "FIFOScheduler",
    "FaultSchedule",
    "FleetComparison",
    "FleetSpec",
    "GroupInfo",
    "LengthThresholdRouter",
    "MemoryFitRouter",
    "MixedFleetSummary",
    "MultiChipBackend",
    "MultiChipVariant",
    "NO_FAULTS",
    "NO_SLO",
    "PlanPoint",
    "ROUTERS",
    "RouterSpec",
    "RecoveryPolicy",
    "Request",
    "RequestOutcome",
    "RequestTrace",
    "ResilienceSummary",
    "SCHEDULERS",
    "SJFScheduler",
    "SLOPolicy",
    "Scheduler",
    "StragglerWindow",
    "TRACE_GENERATORS",
    "WorkerCrash",
    "WorkerGroup",
    "WorkerHealth",
    "bursty_trace",
    "compare_fleets",
    "create_router",
    "create_scheduler",
    "create_trace",
    "dataset_lengths",
    "diurnal_trace",
    "mixed_fleet_experiment",
    "mixed_fleet_trace",
    "mixture_lengths",
    "named_scenario",
    "plan_capacity",
    "plan_capacity_under_scenarios",
    "poisson_trace",
    "prefetch_communication_seconds",
    "prefetch_service_times",
    "replay_trace",
    "replay_trace_outcomes",
    "resilience_experiment",
    "robust_minimal_fleet",
    "scenario_suite",
    "small_memory_gpu",
]

#: Names that used to be exported here -> (home module, attribute).
_DEPRECATED = {
    "group_infos": ("repro.cluster.routing", "group_infos"),
    "router_name": ("repro.cluster.routing", "router_name"),
    "scheduler_name": ("repro.cluster.scheduler", "scheduler_name"),
    "select_worker": ("repro.cluster.scheduler", "select_worker"),
}


def __getattr__(name):
    moved = _DEPRECATED.get(name)
    if moved is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    module_name, attribute = moved
    warnings.warn(
        f"importing {name!r} from {__name__!r} is deprecated; "
        f"import it from {module_name!r}",
        DeprecationWarning,
        stacklevel=2,
    )
    import importlib

    return getattr(importlib.import_module(module_name), attribute)
