"""Trace-driven cluster simulation: fleets, scheduling policies, SLO planning.

The fourth layer of the simulation stack: PR 1 made one simulation cheap
(columnar engine), PR 2 made repeated simulations cheap (sessions, sweeps,
disk cache), PR 3 made concurrent queries cheap (the serving layer) — this
package asks the fleet-level question those layers exist for: **how many
chips, scheduled how, meet what SLO under realistic protein-length traffic,
at what cost**.

Usage
-----
Generate traffic, describe a fleet, replay, read the report::

    from repro.cluster import (
        FleetSpec, SLOPolicy, mixture_lengths, poisson_trace, replay_trace,
    )

    pool, weights = mixture_lengths([(128, 0.6), (256, 0.3), (512, 0.1)])
    trace = poisson_trace(
        rate_rps=80.0, num_requests=500, length_pool=pool,
        length_weights=weights, slo=SLOPolicy(), seed=7,
    )
    fleet = FleetSpec.homogeneous("lightnobel", 4)
    report = replay_trace(trace, fleet, scheduler="edf")
    report.p99_latency_seconds, report.slo_attainment, report.utilization

Multi-chip nodes compose per-chip reports with package-interconnect costs::

    from repro.cluster import MultiChipVariant
    node = MultiChipVariant(base="lightnobel", chips=4)
    fleet = FleetSpec.homogeneous(node, 2)          # 2 nodes x 4 chips

Capacity planning (smallest fleet meeting a 95% SLO)::

    from repro.cluster import plan_capacity
    plan = plan_capacity(trace, fleet_sizes=(1, 2, 4, 8),
                         policies=("fifo", "sjf", "bucketed", "edf"))
    plan.minimal_fleet(), plan.cheapest_plan(), plan.attainment_curve("edf")

Replays are bit-deterministic for a fixed trace seed; scheduling policies
share priority/deadline semantics with the live
:class:`~repro.serving.service.LatencyService` dispatcher.
"""

from .des import (
    ClusterReport,
    RequestOutcome,
    prefetch_service_times,
    replay_trace,
    replay_trace_outcomes,
)
from .fleet import (
    DEFAULT_COST_PER_HOUR,
    FleetSpec,
    MultiChipBackend,
    MultiChipVariant,
    WorkerGroup,
)
from .planner import CapacityPlan, PlanPoint, plan_capacity
from .scheduler import (
    BucketedScheduler,
    EDFScheduler,
    FIFOScheduler,
    SCHEDULERS,
    SJFScheduler,
    Scheduler,
    create_scheduler,
    scheduler_name,
)
from .trace import (
    NO_SLO,
    Request,
    RequestTrace,
    SLOPolicy,
    bursty_trace,
    dataset_lengths,
    mixture_lengths,
    poisson_trace,
)

__all__ = [
    "BucketedScheduler",
    "CapacityPlan",
    "ClusterReport",
    "DEFAULT_COST_PER_HOUR",
    "EDFScheduler",
    "FIFOScheduler",
    "FleetSpec",
    "MultiChipBackend",
    "MultiChipVariant",
    "NO_SLO",
    "PlanPoint",
    "Request",
    "RequestOutcome",
    "RequestTrace",
    "SCHEDULERS",
    "SJFScheduler",
    "SLOPolicy",
    "Scheduler",
    "WorkerGroup",
    "bursty_trace",
    "create_scheduler",
    "dataset_lengths",
    "mixture_lengths",
    "plan_capacity",
    "poisson_trace",
    "prefetch_service_times",
    "replay_trace",
    "replay_trace_outcomes",
    "scheduler_name",
]
