"""Closed-loop control for the cluster replay: admission control + autoscaling.

Two controllers close the loop the open-loop replay of PR 5 left open:

* :class:`AdmissionController` — a bounded queue with priority-aware load
  shedding.  During a flash crowd an unbounded queue converts *every*
  request into an SLO miss (the queue just grows); shedding the overflow —
  low-priority traffic first — keeps the admitted requests' latencies
  honest and makes "how much did we turn away" a first-class number
  (per-class shed accounting in :class:`~repro.cluster.des.ClusterReport`).
* :class:`Autoscaler` — scales the fleet from *observed* signals (queue
  depth per worker, rolling SLO attainment), with the two costs real
  autoscalers pay modeled explicitly: scale-up lag (a provisioned worker
  takes ``scale_up_lag_seconds`` to arrive) and money (every provisioned
  worker-hour lands in ``cost_per_million_requests`` via the time-weighted
  fleet size).

Both are **frozen, stateless decision functions**: the replay owns all
mutable state (queue, rolling window, pending scale-ups) and calls
``admits`` / ``desired_delta`` at deterministic instants, so a controlled
replay is exactly as bit-reproducible as an open-loop one.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import Optional


@dataclass(frozen=True)
class AdmissionController:
    """Bounded queue with priority-aware shedding.

    A request of priority ``p`` is admitted while the scheduler's queue
    depth is below ``limit(p) = ceil(max_queue_depth * min(1, (p + 1) *
    priority_depth_fraction))`` — so with the default fraction 0.5,
    priority-0 traffic is shed once the queue is half full while priority-1
    (and higher) traffic may fill it completely: the flash-crowd overflow
    lands on the best-effort class first, and paying traffic keeps its
    queue headroom.  ``priority_depth_fraction=1.0`` makes shedding
    priority-oblivious; ``max_queue_depth=None`` admits everything (the
    open-loop behavior).
    """

    max_queue_depth: Optional[int] = None
    priority_depth_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1 (or None)")
        if not 0.0 < self.priority_depth_fraction <= 1.0:
            raise ValueError("priority_depth_fraction must be in (0, 1]")

    def depth_limit(self, priority: int) -> Optional[int]:
        """Queue-depth bound for ``priority``-class arrivals (None = unbounded)."""
        if self.max_queue_depth is None:
            return None
        share = min(1.0, (int(priority) + 1) * self.priority_depth_fraction)
        return int(ceil(self.max_queue_depth * share))

    def admits(self, priority: int, queue_depth: int) -> bool:
        """Whether an arrival of ``priority`` joins a queue of ``queue_depth``."""
        limit = self.depth_limit(priority)
        return limit is None or queue_depth < limit


#: Admit everything — the open-loop behavior, as an explicit object.
ADMIT_ALL = AdmissionController(max_queue_depth=None)


@dataclass(frozen=True)
class Autoscaler:
    """Reactive fleet sizing from queue depth and rolling SLO attainment.

    Evaluated every ``interval_seconds`` of simulated time:

    * **scale up** (by ``scale_step``, to at most ``max_workers``) when the
      queue holds more than ``scale_up_queue_per_worker`` requests per
      provisioned worker, or when the rolling SLO attainment over the last
      ``attainment_window`` completions dips below ``slo_target`` — new
      workers arrive ``scale_up_lag_seconds`` later (provisioning lag) and
      cost money from the moment they arrive;
    * **scale down** (to at least ``min_workers``) when the queue is below
      ``scale_down_queue_per_worker`` per worker *and* attainment is
      healthy — only idle workers are retired (never mid-request), and
      retired workers stop accruing cost immediately.

    ``desired_delta`` is a pure function of the observed state, so scaling
    decisions are deterministic and replayable.
    """

    min_workers: int = 1
    max_workers: int = 16
    interval_seconds: float = 0.5
    scale_up_queue_per_worker: float = 4.0
    scale_down_queue_per_worker: float = 0.5
    slo_target: Optional[float] = None
    attainment_window: int = 100
    scale_up_lag_seconds: float = 2.0
    scale_step: int = 1

    def __post_init__(self) -> None:
        if self.min_workers < 1:
            raise ValueError("min_workers must be >= 1")
        if self.max_workers < self.min_workers:
            raise ValueError("max_workers must be >= min_workers")
        if self.interval_seconds <= 0:
            raise ValueError("interval_seconds must be positive")
        if self.scale_up_queue_per_worker <= self.scale_down_queue_per_worker:
            raise ValueError(
                "scale_up_queue_per_worker must exceed scale_down_queue_per_worker"
            )
        if self.slo_target is not None and not 0.0 < self.slo_target <= 1.0:
            raise ValueError("slo_target must be in (0, 1] (or None)")
        if self.attainment_window < 1:
            raise ValueError("attainment_window must be >= 1")
        if self.scale_up_lag_seconds < 0:
            raise ValueError("scale_up_lag_seconds must be >= 0")
        if self.scale_step < 1:
            raise ValueError("scale_step must be >= 1")

    def desired_delta(
        self,
        queue_depth: int,
        active_workers: int,
        pending_scale_ups: int,
        rolling_attainment: float,
    ) -> int:
        """Worker-count change to request at this tick (may be negative).

        ``active_workers`` counts alive, non-retired workers;
        ``pending_scale_ups`` counts requested-but-not-yet-arrived workers
        (they already absorb future load, so the up-trigger considers them —
        no thundering re-request every tick of the provisioning lag).
        """
        provisioned = active_workers + pending_scale_ups
        if provisioned < self.min_workers:
            return self.min_workers - provisioned
        attainment_low = (
            self.slo_target is not None and rolling_attainment < self.slo_target
        )
        queue_high = queue_depth > self.scale_up_queue_per_worker * max(provisioned, 1)
        if (queue_high or attainment_low) and provisioned < self.max_workers:
            return min(self.scale_step, self.max_workers - provisioned)
        queue_low = queue_depth < self.scale_down_queue_per_worker * max(active_workers, 1)
        if (
            queue_low
            and not attainment_low
            and pending_scale_ups == 0
            and active_workers > self.min_workers
        ):
            return -min(self.scale_step, active_workers - self.min_workers)
        return 0
