"""Deterministic discrete-event replay of a trace against a fleet + policy.

:func:`replay_trace` is the cluster-level sibling of
:meth:`repro.sim.session.SimulationSession.simulate`: where the session
answers "how long does one request take on one chip", the replay answers
"what latency distribution, utilization and SLO attainment does this *fleet*
deliver under this *traffic* with this *scheduler*".

The split keeps replay cheap and bit-deterministic:

1. **Prefetch** — every distinct (worker-group backend, protein length) pair
   is simulated once through the shared
   :class:`~repro.sim.session.SimulationSession` (or a
   :class:`~repro.serving.service.LatencyService`, or sharded across
   :func:`repro.sim.sweep.sweep` with ``workers > 1``) — the only stage that
   touches a simulator.
2. **Replay** — a pure-Python event loop over a heap of arrivals,
   completions and (when closed-loop features are on) crash / recovery /
   retry / scale events.  Ties break on (time, kind, sequence) and idle
   workers are claimed lowest-id-first, so a given (trace, fleet, policy,
   faults, controllers) tuple replays to the bit-identical
   :class:`ClusterReport` on every run, machine and process — the property
   the golden tests pin.

Requests whose backend reports out-of-memory at their length are *dropped*
(counted, and counted against SLO attainment), never silently served.
Drops split into three buckets — ``oom_dropped`` (backend cannot serve the
length), ``shed`` (turned away by the :class:`~repro.cluster.control.AdmissionController`),
and ``failed`` (lost to a crash past the retry budget, or starved behind a
permanently dead fleet) — with ``dropped`` remaining their sum, so
``drop_rate`` means what it always did.

``same_length_reuse_discount`` models the shape-reuse effect the lower
layers measure directly (a cached operator table / compiled shape makes a
repeated length far cheaper than a cold one): a request served on a worker
whose *previous* request had the same length runs at a discount, and the
dispatcher prefers shape-matching idle workers.  Length-aware schedulers
form same-length runs and harvest the discount; FIFO interleaves shapes and
mostly does not — the capacity argument for length-bucketed batching.

Closed-loop extensions (all optional; every default preserves the open-loop
replay bit-for-bit):

* ``faults=`` a :class:`~repro.cluster.faults.FaultSchedule` injects worker
  crashes (in-flight work lost, detected after a lag, requeued under the
  ``recovery=`` :class:`~repro.cluster.faults.RecoveryPolicy`), straggler
  windows (dispatch reroutes around them via
  :func:`~repro.cluster.scheduler.select_worker`; an unavoidable straggler
  serves slower), and degraded-link windows (requests on a multi-chip group
  pay the interconnect delta of
  :meth:`~repro.cluster.fleet.MultiChipBackend.degraded_communication_seconds`).
* ``admission=`` an :class:`~repro.cluster.control.AdmissionController`
  bounds the queue with priority-aware shedding.
* ``autoscaler=`` an :class:`~repro.cluster.control.Autoscaler` resizes the
  fleet at fixed simulated-time ticks from observed queue depth and rolling
  SLO attainment, with scale-up lag; the report then prices the replay by
  time-weighted provisioned worker-hours instead of the static fleet rate.

Fault schedules address *base-fleet* worker ids; autoscaled workers never
crash or straggle (the conservative-for-the-autoscaler simplification).
"""

from __future__ import annotations

import heapq
from bisect import insort
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple, TYPE_CHECKING

from ..obs.timeline import TimelineRecorder
from ..ppm.config import PPMConfig
from ..serving.stats import percentile
from ..sim.session import SimulationSession, session_for
from ..sim.sweep import SweepPoint, sweep
from .control import AdmissionController, Autoscaler
from .faults import FaultSchedule, RecoveryPolicy
from .fleet import FleetSpec, MultiChipVariant, WorkerHealth
from .routing import RouterSpec, create_router, group_infos, router_name
from .scheduler import SchedulerSpec, create_scheduler, scheduler_name, select_worker
from .trace import RequestTrace

if TYPE_CHECKING:  # service routing is optional; avoid an import cycle at runtime
    from ..serving.service import LatencyService

#: Event kinds, in tie-break order at one timestamp.  Completions order
#: before arrivals so a worker freed at time t can serve a request arriving
#: at exactly t (the PR 5 invariant — no-fault replays only ever see
#: ``_COMPLETION`` and ``_ARRIVAL``, whose relative order is preserved).
#: Recoveries and arrived scale-ups land *before* arrivals (capacity that
#: comes back at t serves traffic arriving at t); retries land after
#: arrivals (a requeued request queues behind a same-instant fresh arrival);
#: autoscaler ticks observe everything else that happened at their instant.
_COMPLETION, _RECOVER, _CRASH, _SCALE_UP, _ARRIVAL, _RETRY, _AUTOSCALE = range(7)


@dataclass(frozen=True)
class ClusterReport:
    """Fleet-level outcome of one trace replay (the capacity-planning unit).

    ``utilization`` maps each worker-group label to busy-time over the
    group's provisioned capacity (``makespan * workers`` open-loop;
    time-weighted provisioned seconds under an autoscaler);
    ``slo_attainment`` is the fraction of *all* requests (dropped ones
    included) that completed within their deadline — deadline-free requests
    count as met when completed.  ``cost_per_million_requests`` prices the
    replay at the fleet's hourly rate over the makespan (open-loop) or over
    provisioned worker-hours (autoscaled).

    Resilience accounting: ``dropped == oom_dropped + shed + failed``;
    ``retried`` counts requeues after crashes (a request retried twice
    counts twice); ``downtime_seconds`` is summed worker-seconds spent dead;
    ``availability`` is provisioned-minus-dead over provisioned worker-time.
    ``mean_fleet_size`` / ``peak_fleet_size`` / ``worker_hours`` describe
    the provisioned fleet over time (constant open-loop, varying under an
    autoscaler).
    """

    trace_name: str
    fleet_name: str
    policy: str
    num_workers: int
    requests: int
    completed: int
    dropped: int
    makespan_seconds: float
    offered_rps: float
    throughput_rps: float
    mean_latency_seconds: float
    p50_latency_seconds: float
    p99_latency_seconds: float
    mean_wait_seconds: float
    p99_wait_seconds: float
    slo_attainment: float
    deadlines_missed: int
    max_queue_depth: int
    mean_queue_depth: float
    utilization: Mapping[str, float] = field(default_factory=dict)
    per_priority_attainment: Mapping[int, float] = field(default_factory=dict)
    cost_per_million_requests: float = 0.0
    #: Group-routing policy of the replay ("none" = group-oblivious dispatch).
    router: str = "none"
    events_processed: int = 0
    retried: int = 0
    shed: int = 0
    oom_dropped: int = 0
    failed: int = 0
    downtime_seconds: float = 0.0
    availability: float = 1.0
    mean_fleet_size: float = 0.0
    peak_fleet_size: int = 0
    worker_hours: float = 0.0
    shed_by_priority: Mapping[int, int] = field(default_factory=dict)

    @property
    def drop_rate(self) -> float:
        return self.dropped / self.requests if self.requests else 0.0

    @property
    def admitted(self) -> int:
        """Requests past admission control (the shed-conservation partner)."""
        return self.requests - self.shed


#: (group index, sequence length) -> service seconds, or None when the
#: backend cannot serve that length (out of memory).
ServiceTimes = Dict[Tuple[int, int], Optional[float]]

#: (group index, sequence length) -> healthy per-request interconnect
#: seconds (0.0 for single-chip groups) — the base the degraded-link
#: surcharge scales from.
CommunicationTimes = Dict[Tuple[int, int], float]


def prefetch_service_times(
    trace: RequestTrace,
    fleet: FleetSpec,
    ppm_config: Optional[PPMConfig] = None,
    session: Optional[SimulationSession] = None,
    service: Optional["LatencyService"] = None,
    workers: Optional[int] = None,
    length_bucket_size: Optional[int] = None,
) -> ServiceTimes:
    """Simulate every distinct (worker-group backend, length) pair once.

    With ``service=`` the pairs route through a shared
    :class:`~repro.serving.service.LatencyService` (its coalescing and worker
    pool apply); otherwise a session serves them via
    :meth:`~repro.sim.session.SimulationSession.simulate_batch` — one stacked
    vectorized pass per backend over the whole length mix (bit-identical to
    the per-length loop) — optionally warmed by a ``workers``-wide
    :func:`repro.sim.sweep.sweep` whose reports are seeded back into the
    session memo/disk cache first.

    ``length_bucket_size`` trades exactness for fewer simulated points: each
    distinct trace length maps to its shape bucket's *longest* member
    (:meth:`RequestTrace.bucketed_lengths`) and only representatives are
    simulated, so every (group, length) entry carries its representative's
    (conservative, never under-priced) service time.  ``None`` (default)
    keeps the exact per-length behavior.
    """
    representative = trace.bucketed_lengths(length_bucket_size)
    lengths = sorted(set(representative.values()))
    specs = [group.backend for group in fleet.groups]
    times: ServiceTimes = {}
    if service is not None:
        if ppm_config is not None and service.session.ppm_config != ppm_config:
            raise ValueError("ppm_config does not match service.session.ppm_config")
        reports = service.query_batch(
            [(spec, n) for spec in specs for n in lengths]
        )
        by_rep = {}
        for gi in range(len(specs)):
            for li, n in enumerate(lengths):
                report = reports[gi * len(lengths) + li]
                by_rep[(gi, n)] = None if report.out_of_memory else report.total_seconds
        for gi in range(len(specs)):
            for n, rep in representative.items():
                times[(gi, n)] = by_rep[(gi, rep)]
        return times
    session = session_for(ppm_config, session, backends=())
    if workers is not None and workers > 1:
        points = [SweepPoint(spec, n) for spec in specs for n in lengths]
        # The session's recycle setting must reach the sweep workers AND the
        # seed keys, or a recycles-enabled session would be warmed with (and
        # then serve) recycle-free reports — breaking pooled ≡ serial parity.
        reports = sweep(
            points,
            ppm_config=session.ppm_config,
            workers=workers,
            include_recycles=session.include_recycles,
        )
        for point, report in zip(points, reports):
            session.seed_report(
                point.backend,
                point.sequence_length,
                report,
                include_recycles=session.include_recycles,
            )
        # The pool already paid for full reports; consume them from the memo
        # rather than re-pricing in-process.
        batch = session.simulate_batch(lengths, backends=specs)
        for gi in range(len(specs)):
            name = batch.backends[gi]
            for n, rep in representative.items():
                report = batch.report(name, rep)
                times[(gi, n)] = None if report.out_of_memory else report.total_seconds
        return times
    # In-process: the planner only reads the scalar total per (group, length),
    # so take the totals-only stacked fast path — one engine pass per backend,
    # no per-length report assembly.
    totals = session.batch_total_seconds(lengths, backends=specs)
    index = {n: j for j, n in enumerate(lengths)}
    for gi in range(len(specs)):
        for n, rep in representative.items():
            times[(gi, n)] = totals[gi][index[rep]]
    return times


def prefetch_communication_seconds(
    trace: RequestTrace,
    fleet: FleetSpec,
    ppm_config: Optional[PPMConfig] = None,
) -> CommunicationTimes:
    """Healthy per-request interconnect time for every (group, length) pair.

    Pure arithmetic (no simulator): multi-chip groups report
    :meth:`~repro.cluster.fleet.MultiChipBackend.communication_seconds`,
    single-chip groups report 0.0 — which is why degraded-link fault windows
    cannot touch them.  The faulty replay charges
    ``comm * (1 / bandwidth_factor - 1)`` on top of the healthy prefetched
    service time, so fault injection never re-simulates anything.
    """
    lengths = trace.distinct_lengths()
    times: CommunicationTimes = {}
    for gi, group in enumerate(fleet.groups):
        spec = group.backend
        backend = None
        if callable(getattr(spec, "communication_seconds", None)):
            backend = spec
        elif isinstance(spec, MultiChipVariant):
            backend = spec.build(ppm_config)
        for n in lengths:
            times[(gi, n)] = (
                backend.communication_seconds(n) if backend is not None else 0.0
            )
    return times


@dataclass(frozen=True)
class RequestOutcome:
    """Per-request record of one replay (policy-invariant tests read these).

    ``drop_reason`` is ``None`` for served requests and one of ``"oom"``,
    ``"shed"``, ``"failed"`` or ``"starved"`` for dropped ones (``"failed"``
    is a crash past the retry budget; ``"starved"`` is a request still
    queued when the replay ends with no worker ever able to serve it — both
    land in the report's ``failed`` bucket).  ``retries`` counts how many
    times a crash requeued this request before it completed or was dropped.
    """

    request_id: int
    sequence_length: int
    priority: int
    arrival_seconds: float
    start_seconds: float
    finish_seconds: float
    met_deadline: bool
    dropped: bool = False
    drop_reason: Optional[str] = None
    retries: int = 0

    @property
    def latency_seconds(self) -> float:
        return self.finish_seconds - self.arrival_seconds

    @property
    def wait_seconds(self) -> float:
        return self.start_seconds - self.arrival_seconds


def replay_trace(
    trace: RequestTrace,
    fleet: FleetSpec,
    scheduler: SchedulerSpec = "fifo",
    ppm_config: Optional[PPMConfig] = None,
    session: Optional[SimulationSession] = None,
    service: Optional["LatencyService"] = None,
    workers: Optional[int] = None,
    dispatch_overhead_seconds: float = 0.0,
    same_length_reuse_discount: float = 0.0,
    service_times: Optional[ServiceTimes] = None,
    faults: Optional[FaultSchedule] = None,
    recovery: Optional[RecoveryPolicy] = None,
    admission: Optional[AdmissionController] = None,
    autoscaler=None,
    communication_times: Optional[CommunicationTimes] = None,
    router: RouterSpec = None,
    timeline: Optional[TimelineRecorder] = None,
) -> ClusterReport:
    """Replay ``trace`` against ``fleet`` under ``scheduler``; emit a report.

    ``service_times`` short-circuits the prefetch (the planner reuses one
    prefetch across every fleet size and policy it sweeps).
    ``dispatch_overhead_seconds`` is a fixed per-request scheduling cost added
    to every service; ``same_length_reuse_discount`` (in [0, 1)) is the
    service-time fraction saved when a worker serves the same length twice in
    a row (shape/table reuse — 0 models a stateless worker).

    ``router`` selects a group-aware routing policy for heterogeneous fleets
    (:mod:`repro.cluster.routing`): ``None`` keeps the group-oblivious
    baseline (bit-identical to earlier replays), a name/instance routes each
    request to a feasible worker group — requests whose feasible groups are
    all busy wait instead of OOM-dropping.

    ``faults`` / ``recovery`` / ``admission`` / ``autoscaler`` switch on the
    closed-loop extensions (see the module docstring); all default to off,
    in which case the replay is bit-identical to the open-loop one.
    ``autoscaler`` accepts one :class:`~repro.cluster.control.Autoscaler`
    (applied independently to every worker group) or a sequence with one per
    group.

    ``timeline`` attaches a :class:`~repro.obs.timeline.TimelineRecorder`
    that captures the replay's event stream for Chrome trace-event /
    Perfetto export.  Recording is append-only observation — the report is
    bit-identical with or without it.
    """
    report, _ = replay_trace_outcomes(
        trace,
        fleet,
        scheduler=scheduler,
        ppm_config=ppm_config,
        session=session,
        service=service,
        workers=workers,
        dispatch_overhead_seconds=dispatch_overhead_seconds,
        same_length_reuse_discount=same_length_reuse_discount,
        service_times=service_times,
        faults=faults,
        recovery=recovery,
        admission=admission,
        autoscaler=autoscaler,
        communication_times=communication_times,
        router=router,
        timeline=timeline,
    )
    return report


def replay_trace_outcomes(
    trace: RequestTrace,
    fleet: FleetSpec,
    scheduler: SchedulerSpec = "fifo",
    ppm_config: Optional[PPMConfig] = None,
    session: Optional[SimulationSession] = None,
    service: Optional["LatencyService"] = None,
    workers: Optional[int] = None,
    dispatch_overhead_seconds: float = 0.0,
    same_length_reuse_discount: float = 0.0,
    service_times: Optional[ServiceTimes] = None,
    faults: Optional[FaultSchedule] = None,
    recovery: Optional[RecoveryPolicy] = None,
    admission: Optional[AdmissionController] = None,
    autoscaler=None,
    communication_times: Optional[CommunicationTimes] = None,
    router: RouterSpec = None,
    timeline: Optional[TimelineRecorder] = None,
) -> Tuple[ClusterReport, Tuple[RequestOutcome, ...]]:
    """:func:`replay_trace` plus the per-request :class:`RequestOutcome` log."""
    if not 0.0 <= same_length_reuse_discount < 1.0:
        raise ValueError("same_length_reuse_discount must be in [0, 1)")
    if faults is not None and not faults:
        faults = None  # an empty schedule IS the healthy path, bit-for-bit
    if faults is not None and recovery is None:
        recovery = RecoveryPolicy()
    if admission is not None and admission.max_queue_depth is None:
        admission = None  # admit-everything IS the open-loop path
    num_groups = len(fleet.groups)
    # One Autoscaler applies per-group (the same reactive policy sizing each
    # group independently); a sequence supplies one per group.  All groups
    # share one tick chain, so intervals and attainment windows must agree.
    autoscalers: Optional[List[Autoscaler]] = None
    if autoscaler is not None:
        if isinstance(autoscaler, Autoscaler):
            autoscalers = [autoscaler] * num_groups
        else:
            autoscalers = list(autoscaler)
            if len(autoscalers) != num_groups:
                raise ValueError(
                    f"need one autoscaler per worker group "
                    f"({num_groups}), got {len(autoscalers)}"
                )
        first_scaler = autoscalers[0]
        if any(
            a.interval_seconds != first_scaler.interval_seconds
            or a.attainment_window != first_scaler.attainment_window
            for a in autoscalers
        ):
            raise ValueError(
                "per-group autoscalers must share interval_seconds and "
                "attainment_window (they ride one tick chain)"
            )
    policy = create_scheduler(scheduler)
    router_obj = create_router(router)
    if service_times is None:
        service_times = prefetch_service_times(
            trace, fleet, ppm_config=ppm_config, session=session,
            service=service, workers=workers,
        )
    #: length -> router's group-preference order (None = group-oblivious).
    pref_of: Optional[Dict[int, Tuple[int, ...]]] = None
    if router_obj is not None:
        infos = group_infos(fleet, service_times, trace)
        pref_of = {
            n: tuple(router_obj.preference(n, infos))
            for n in trace.distinct_lengths()
        }
    # Per-group queue-depth signal for multi-group autoscaling: a queued
    # request counts toward every group that could serve its length.  The
    # single-group path keeps reading len(policy) directly (bit-compat).
    queued_feasible: Optional[List[int]] = None
    feasible_of: Optional[Dict[int, Tuple[int, ...]]] = None
    if autoscalers is not None and num_groups > 1:
        queued_feasible = [0] * num_groups
        feasible_of = {
            n: (
                pref_of[n]
                if pref_of is not None
                else tuple(
                    gi
                    for gi in range(num_groups)
                    if service_times.get((gi, n)) is not None
                )
            )
            for n in trace.distinct_lengths()
        }
    if (
        faults is not None
        and faults.degraded_links
        and communication_times is None
    ):
        cfg = ppm_config
        if cfg is None and session is not None:
            cfg = session.ppm_config
        if cfg is None and service is not None:
            cfg = service.session.ppm_config
        communication_times = prefetch_communication_seconds(
            trace, fleet, ppm_config=cfg
        )

    group_of = fleet.worker_groups()
    num_workers = len(group_of)
    labels = fleet.group_labels()
    if timeline is not None:
        timeline.configure(
            trace_name=trace.name,
            fleet_name=fleet.name,
            group_labels=labels,
            group_of=tuple(group_of),
        )

    events: List[Tuple[float, int, int, object]] = []
    counter = 0
    for request in trace:
        heapq.heappush(
            events, (request.arrival_seconds, _ARRIVAL, counter, request)
        )
        counter += 1
    if faults is not None:
        for crash in faults.crashes:
            if crash.worker_id < num_workers:
                heapq.heappush(
                    events, (crash.at_seconds, _CRASH, counter, crash)
                )
                counter += 1
    #: Non-tick events pending in the heap — the autoscaler's "is there
    #: still anything to react to" signal (ticks never count themselves,
    #: or the loop would self-sustain forever).
    pending_non_tick = counter
    if autoscalers is not None:
        heapq.heappush(
            events, (first_scaler.interval_seconds, _AUTOSCALE, counter, None)
        )
        counter += 1

    idle: List[int] = list(range(num_workers))  # kept sorted (lowest id first)
    busy_seconds = [0.0] * num_workers
    last_length: List[Optional[int]] = [None] * num_workers
    health: List[WorkerHealth] = [WorkerHealth.HEALTHY] * num_workers
    generation = [0] * num_workers  # bumped per crash; stale-completion guard
    warmup_extra = [0.0] * num_workers
    provision_start = [0.0] * num_workers
    running: Dict[int, Tuple[object, float, float]] = {}  # worker -> (req, start, finish)
    down_since: Dict[int, float] = {}
    attempts: Dict[int, int] = {}  # request id -> crash-requeues so far

    outcomes: List[RequestOutcome] = []
    latencies: List[float] = []
    waits: List[float] = []
    met_by_priority: Dict[int, int] = {}
    total_by_priority: Dict[int, int] = {}
    shed_by_priority: Dict[int, int] = {}
    completed = dropped = deadlines_missed = 0
    retried = shed = oom_dropped = failed = 0
    events_processed = 0
    max_queue_depth = 0
    queue_depth_sum = 0
    last_time = trace.duration_seconds
    in_flight = 0
    pending_up = [0] * num_groups  # requested-but-not-yet-arrived, per group
    provisioned_done = [0.0] * num_groups  # retired workers' worker-seconds
    active_count = num_workers  # provisioned (non-retired) workers right now
    peak_fleet = num_workers
    downtime_total = 0.0
    recent_met: deque = deque(
        maxlen=first_scaler.attainment_window if autoscalers else 1
    )

    def note_queued(request, sign: int) -> None:
        """Maintain the per-group feasible-queue counters (multi-group only)."""
        if queued_feasible is not None:
            for qgi in feasible_of[request.sequence_length]:
                queued_feasible[qgi] += sign

    def record_drop(request, now: float, reason: str, start: Optional[float] = None) -> None:
        nonlocal dropped, deadlines_missed, shed, oom_dropped, failed
        dropped += 1
        if reason == "shed":
            shed += 1
            shed_by_priority[request.priority] = (
                shed_by_priority.get(request.priority, 0) + 1
            )
        elif reason == "oom":
            oom_dropped += 1
        else:  # "failed" or "starved" — the lost-to-the-fleet bucket
            failed += 1
        total_by_priority[request.priority] = (
            total_by_priority.get(request.priority, 0) + 1
        )
        if request.deadline_seconds is not None:
            deadlines_missed += 1
        if autoscalers is not None:
            recent_met.append(0)
        outcomes.append(
            RequestOutcome(
                request_id=request.id,
                sequence_length=request.sequence_length,
                priority=request.priority,
                arrival_seconds=request.arrival_seconds,
                start_seconds=start if start is not None else now,
                finish_seconds=now,
                met_deadline=False,
                dropped=True,
                drop_reason=reason,
                retries=attempts.get(request.id, 0),
            )
        )
        if timeline is not None:
            timeline.drop(now, request.id, reason)

    def dispatch(now: float) -> None:
        nonlocal counter, in_flight, pending_non_tick
        straggling = faults.straggling_workers(now) if faults is not None else frozenset()
        #: Popped requests whose feasible groups are all busy (routed mode):
        #: requeued after the drain so they keep their queue position and the
        #: scheduler can offer the *next* request to the still-idle workers.
        deferred: List = []
        while idle and len(policy):
            request = policy.pop(now)
            note_queued(request, -1)
            if pref_of is not None:
                prefs = pref_of[request.sequence_length]
                if not prefs:
                    # No group in the fleet can ever hold this length.
                    record_drop(request, now, "oom")
                    continue
                worker = None
                for candidate_group in prefs:
                    tier = [w for w in idle if group_of[w] == candidate_group]
                    if tier:
                        worker = select_worker(
                            tier,
                            request.sequence_length,
                            last_length,
                            same_length_reuse_discount > 0.0,
                            straggling,
                        )
                        idle.remove(worker)
                        break
                if worker is None:
                    deferred.append(request)
                    continue
                gi = group_of[worker]
                seconds = service_times[(gi, request.sequence_length)]
            else:
                worker = select_worker(
                    idle,
                    request.sequence_length,
                    last_length,
                    same_length_reuse_discount > 0.0,
                    straggling,
                )
                gi = group_of[worker]
                seconds = service_times[(gi, request.sequence_length)]
                if seconds is None:
                    # The claimed worker's group cannot serve this length;
                    # the group-oblivious baseline drops it (pass ``router=``
                    # to retry other groups).  The worker itself stays idle.
                    insort(idle, worker)
                    record_drop(request, now, "oom")
                    continue
            if last_length[worker] == request.sequence_length:
                seconds *= 1.0 - same_length_reuse_discount
            last_length[worker] = request.sequence_length
            if faults is not None:
                slowdown = faults.slowdown_at(worker, now)
                if slowdown != 1.0:
                    seconds *= slowdown
                link_factor = faults.link_factor_at(gi, now)
                if link_factor < 1.0 and communication_times is not None:
                    comm = communication_times[(gi, request.sequence_length)]
                    seconds += comm * (1.0 / link_factor - 1.0)
            extra = warmup_extra[worker]
            if extra:
                warmup_extra[worker] = 0.0
            if health[worker] is WorkerHealth.WARMING:
                health[worker] = WorkerHealth.HEALTHY
            start = now
            finish = start + dispatch_overhead_seconds + seconds + extra
            busy_seconds[worker] += dispatch_overhead_seconds + seconds + extra
            running[worker] = (request, start, finish)
            in_flight += 1
            heapq.heappush(
                events,
                (finish, _COMPLETION, counter,
                 (worker, generation[worker], request, start)),
            )
            counter += 1
            pending_non_tick += 1
            if timeline is not None:
                timeline.dispatch(
                    start, finish, worker, request.id, request.sequence_length
                )
        # Reversed so repeated requeue-at-head restores the original order.
        for request in reversed(deferred):
            policy.requeue(request)
            note_queued(request, 1)

    while events:
        time_now, kind, _, payload = heapq.heappop(events)
        if kind != _AUTOSCALE:
            pending_non_tick -= 1
        if kind == _COMPLETION:
            worker, gen, request, start = payload
            if gen != generation[worker]:
                continue  # the worker crashed mid-service; the crash handled it
        events_processed += 1
        if kind in (_COMPLETION, _ARRIVAL, _RETRY):
            # Control-plane events (crashes, recoveries, scale changes,
            # ticks) move state but not the clock the makespan reads — a
            # restart long after the last request must not inflate it.
            last_time = max(last_time, time_now)
        if kind == _ARRIVAL:
            if timeline is not None:
                timeline.arrival(
                    time_now, payload.id, payload.sequence_length, payload.priority
                )
            if admission is not None and not admission.admits(
                payload.priority, len(policy)
            ):
                record_drop(payload, time_now, "shed")
            else:
                policy.push(payload)
                note_queued(payload, 1)
        elif kind == _RETRY:
            if timeline is not None:
                timeline.retry(time_now, payload.id)
            policy.push(payload)  # retries bypass admission: already accepted
            note_queued(payload, 1)
        elif kind == _COMPLETION:
            running.pop(worker, None)
            in_flight -= 1
            insort(idle, worker)
            completed += 1
            latency = time_now - request.arrival_seconds
            latencies.append(latency)
            waits.append(start - request.arrival_seconds)
            met = (
                request.deadline_seconds is None
                or time_now <= request.deadline_seconds + 1e-12
            )
            if not met:
                deadlines_missed += 1
            total_by_priority[request.priority] = (
                total_by_priority.get(request.priority, 0) + 1
            )
            if met:
                met_by_priority[request.priority] = (
                    met_by_priority.get(request.priority, 0) + 1
                )
            if autoscalers is not None:
                recent_met.append(1 if met else 0)
            outcomes.append(
                RequestOutcome(
                    request_id=request.id,
                    sequence_length=request.sequence_length,
                    priority=request.priority,
                    arrival_seconds=request.arrival_seconds,
                    start_seconds=start,
                    finish_seconds=time_now,
                    met_deadline=met,
                    retries=attempts.get(request.id, 0),
                )
            )
            if timeline is not None:
                timeline.complete(time_now, worker, request.id, met)
        elif kind == _CRASH:
            crash = payload
            w = crash.worker_id
            if health[w] in (WorkerHealth.HEALTHY, WorkerHealth.WARMING):
                health[w] = WorkerHealth.DEAD
                generation[w] += 1
                down_since[w] = time_now
                if timeline is not None:
                    timeline.crash(time_now, w)
                if w in idle:
                    idle.remove(w)
                victim = running.pop(w, None)
                if victim is not None:
                    request, start, finish = victim
                    in_flight -= 1
                    if timeline is not None:
                        timeline.abort(time_now, w, request.id)
                    busy_seconds[w] -= finish - time_now  # unserved remainder
                    detect = time_now + crash.detection_lag_seconds
                    used = attempts.get(request.id, 0)
                    if recovery.gives_up(used):
                        record_drop(request, detect, "failed", start=start)
                    else:
                        attempts[request.id] = used + 1
                        retried += 1
                        heapq.heappush(
                            events,
                            (detect + recovery.backoff_seconds(used),
                             _RETRY, counter, request),
                        )
                        counter += 1
                        pending_non_tick += 1
                if crash.restart_after_seconds is not None:
                    heapq.heappush(
                        events,
                        (time_now + crash.restart_after_seconds,
                         _RECOVER, counter, crash),
                    )
                    counter += 1
                    pending_non_tick += 1
        elif kind == _RECOVER:
            crash = payload
            w = crash.worker_id
            if health[w] is WorkerHealth.DEAD:
                downtime_total += time_now - down_since.pop(w)
                warmup_extra[w] = crash.warmup_seconds
                health[w] = (
                    WorkerHealth.WARMING if crash.warmup_seconds > 0
                    else WorkerHealth.HEALTHY
                )
                last_length[w] = None  # restarted cold: no shape to reuse
                insort(idle, w)
                if timeline is not None:
                    timeline.recover(time_now, w)
        elif kind == _SCALE_UP:
            up_group = payload if payload is not None else 0
            pending_up[up_group] -= 1
            w = len(group_of)
            group_of.append(up_group)
            busy_seconds.append(0.0)
            last_length.append(None)
            health.append(WorkerHealth.HEALTHY)
            generation.append(0)
            warmup_extra.append(0.0)
            provision_start.append(time_now)
            active_count += 1
            peak_fleet = max(peak_fleet, active_count)
            insort(idle, w)
            if timeline is not None:
                timeline.scale_up(time_now, w, up_group)
        elif kind == _AUTOSCALE:
            if timeline is not None:
                timeline.autoscale(time_now)
            window = len(recent_met)
            attainment = sum(recent_met) / window if window else 1.0
            for gi_scale, scaler in enumerate(autoscalers):
                if num_groups == 1:
                    # The homogeneous signals of PR 6, bit-for-bit: whole
                    # queue, whole fleet.
                    depth_signal = len(policy)
                    alive = sum(
                        1 for h in health
                        if h in (WorkerHealth.HEALTHY, WorkerHealth.WARMING)
                    )
                else:
                    depth_signal = queued_feasible[gi_scale]
                    alive = sum(
                        1 for w, h in enumerate(health)
                        if group_of[w] == gi_scale
                        and h in (WorkerHealth.HEALTHY, WorkerHealth.WARMING)
                    )
                delta = scaler.desired_delta(
                    depth_signal, alive, pending_up[gi_scale], attainment
                )
                if delta > 0:
                    arrive = time_now + scaler.scale_up_lag_seconds
                    for _ in range(delta):
                        heapq.heappush(
                            events, (arrive, _SCALE_UP, counter, gi_scale)
                        )
                        counter += 1
                        pending_non_tick += 1
                        pending_up[gi_scale] += 1
                elif delta < 0:
                    # Retire idle healthy workers only, highest id first —
                    # never a busy, warming, or dead one (a dead worker may
                    # still owe a restart; retiring it would double-account
                    # its lifetime).
                    retirable = [
                        w for w in reversed(idle)
                        if health[w] is WorkerHealth.HEALTHY
                        and group_of[w] == gi_scale
                    ][:-delta]
                    for w in retirable:
                        idle.remove(w)
                        health[w] = WorkerHealth.RETIRED
                        provisioned_done[gi_scale] += (
                            time_now - provision_start[w]
                        )
                        active_count -= 1
                        if timeline is not None:
                            timeline.retire(time_now, w)
            if pending_non_tick > 0 or len(policy) > 0 or in_flight > 0:
                heapq.heappush(
                    events,
                    (time_now + first_scaler.interval_seconds,
                     _AUTOSCALE, counter, None),
                )
                counter += 1
        dispatch(time_now)
        depth = len(policy)
        max_queue_depth = max(max_queue_depth, depth)
        queue_depth_sum += depth
        if timeline is not None:
            timeline.queue_depth(time_now, depth)

    makespan = last_time
    # Requests still queued were starved: every worker (routed mode: every
    # worker of their feasible groups) is dead with no restart coming, or
    # retired, so nothing will ever serve them.
    while len(policy):
        request = policy.pop(makespan)
        record_drop(request, makespan, "starved")
    for w, since in down_since.items():
        downtime_total += max(0.0, makespan - since)
    total_workers = len(group_of)
    provisioned_by_group = [
        provisioned_done[g]
        + sum(
            max(0.0, makespan - provision_start[w])
            for w in range(total_workers)
            if group_of[w] == g and health[w] is not WorkerHealth.RETIRED
        )
        for g in range(num_groups)
    ]
    provisioned_total = (
        provisioned_by_group[0]
        if num_groups == 1
        else sum(provisioned_by_group)
    )

    requests = len(trace)
    utilization = {}
    for index, label in enumerate(labels):
        members = [w for w, g in enumerate(group_of) if g == index]
        busy = sum(busy_seconds[w] for w in members)
        if autoscalers is None:
            capacity = len(members) * makespan
        else:
            capacity = provisioned_by_group[index]
        utilization[label] = busy / capacity if capacity > 0 else 0.0

    if autoscalers is None:
        cost = (
            fleet.cost_per_hour * (makespan / 3600.0) / completed * 1e6
            if completed
            else 0.0
        )
        worker_hours = num_workers * makespan / 3600.0
        mean_fleet = float(num_workers)
    else:
        # Worker-hours priced per group at that group's per-worker rate; one
        # group reduces to exactly the homogeneous expression of PR 6.
        provisioned_dollars = sum(
            (group.hourly_cost / group.count) * (provisioned_by_group[g] / 3600.0)
            for g, group in enumerate(fleet.groups)
        )
        cost = provisioned_dollars / completed * 1e6 if completed else 0.0
        worker_hours = provisioned_total / 3600.0
        mean_fleet = provisioned_total / makespan if makespan > 0 else float(num_workers)

    attained = sum(met_by_priority.values())
    report = ClusterReport(
        trace_name=trace.name,
        fleet_name=fleet.name,
        policy=scheduler_name(scheduler),
        num_workers=num_workers,
        requests=requests,
        completed=completed,
        dropped=dropped,
        makespan_seconds=makespan,
        offered_rps=trace.offered_rps,
        throughput_rps=completed / makespan if makespan > 0 else 0.0,
        mean_latency_seconds=sum(latencies) / len(latencies) if latencies else 0.0,
        p50_latency_seconds=percentile(latencies, 50.0),
        p99_latency_seconds=percentile(latencies, 99.0),
        mean_wait_seconds=sum(waits) / len(waits) if waits else 0.0,
        p99_wait_seconds=percentile(waits, 99.0),
        slo_attainment=attained / requests if requests else 0.0,
        deadlines_missed=deadlines_missed,
        max_queue_depth=max_queue_depth,
        mean_queue_depth=queue_depth_sum / events_processed if events_processed else 0.0,
        utilization=utilization,
        per_priority_attainment={
            priority: met_by_priority.get(priority, 0) / total
            for priority, total in sorted(total_by_priority.items())
        },
        cost_per_million_requests=cost,
        router=router_name(router),
        events_processed=events_processed,
        retried=retried,
        shed=shed,
        oom_dropped=oom_dropped,
        failed=failed,
        downtime_seconds=downtime_total,
        availability=(
            max(0.0, 1.0 - downtime_total / provisioned_total)
            if provisioned_total > 0
            else 1.0
        ),
        mean_fleet_size=mean_fleet,
        peak_fleet_size=peak_fleet,
        worker_hours=worker_hours,
        shed_by_priority=dict(sorted(shed_by_priority.items())),
    )
    return report, tuple(outcomes)
