"""Deterministic discrete-event replay of a trace against a fleet + policy.

:func:`replay_trace` is the cluster-level sibling of
:meth:`repro.sim.session.SimulationSession.simulate`: where the session
answers "how long does one request take on one chip", the replay answers
"what latency distribution, utilization and SLO attainment does this *fleet*
deliver under this *traffic* with this *scheduler*".

The split keeps replay cheap and bit-deterministic:

1. **Prefetch** — every distinct (worker-group backend, protein length) pair
   is simulated once through the shared
   :class:`~repro.sim.session.SimulationSession` (or a
   :class:`~repro.serving.service.LatencyService`, or sharded across
   :func:`repro.sim.sweep.sweep` with ``workers > 1``) — the only stage that
   touches a simulator.
2. **Replay** — a pure-Python event loop over a heap of arrivals and
   completions.  Ties break on (time, kind, sequence) and idle workers are
   claimed lowest-id-first, so a given (trace, fleet, policy) replays to the
   bit-identical :class:`ClusterReport` on every run, machine and process —
   the property the golden tests pin.

Requests whose backend reports out-of-memory at their length are *dropped*
(counted, and counted against SLO attainment), never silently served.

``same_length_reuse_discount`` models the shape-reuse effect the lower
layers measure directly (a cached operator table / compiled shape makes a
repeated length far cheaper than a cold one): a request served on a worker
whose *previous* request had the same length runs at a discount, and the
dispatcher prefers shape-matching idle workers.  Length-aware schedulers
form same-length runs and harvest the discount; FIFO interleaves shapes and
mostly does not — the capacity argument for length-bucketed batching.
"""

from __future__ import annotations

import heapq
from bisect import insort
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple, TYPE_CHECKING

from ..ppm.config import PPMConfig
from ..serving.stats import percentile
from ..sim.session import SimulationSession, session_for
from ..sim.sweep import SweepPoint, sweep
from .fleet import FleetSpec
from .scheduler import SchedulerSpec, create_scheduler, scheduler_name
from .trace import RequestTrace

if TYPE_CHECKING:  # service routing is optional; avoid an import cycle at runtime
    from ..serving.service import LatencyService

#: Completion events order before arrivals at the same timestamp, so a worker
#: freed at time t can serve a request arriving at exactly t.
_COMPLETION, _ARRIVAL = 0, 1


@dataclass(frozen=True)
class ClusterReport:
    """Fleet-level outcome of one trace replay (the capacity-planning unit).

    ``utilization`` maps each worker-group label to busy-time over
    ``makespan * workers``; ``slo_attainment`` is the fraction of *all*
    requests (dropped ones included) that completed within their deadline —
    deadline-free requests count as met when completed.
    ``cost_per_million_requests`` prices the replay at the fleet's hourly
    rate over the makespan.
    """

    trace_name: str
    fleet_name: str
    policy: str
    num_workers: int
    requests: int
    completed: int
    dropped: int
    makespan_seconds: float
    offered_rps: float
    throughput_rps: float
    mean_latency_seconds: float
    p50_latency_seconds: float
    p99_latency_seconds: float
    mean_wait_seconds: float
    p99_wait_seconds: float
    slo_attainment: float
    deadlines_missed: int
    max_queue_depth: int
    mean_queue_depth: float
    utilization: Mapping[str, float] = field(default_factory=dict)
    per_priority_attainment: Mapping[int, float] = field(default_factory=dict)
    cost_per_million_requests: float = 0.0
    events_processed: int = 0

    @property
    def drop_rate(self) -> float:
        return self.dropped / self.requests if self.requests else 0.0


#: (group index, sequence length) -> service seconds, or None when the
#: backend cannot serve that length (out of memory).
ServiceTimes = Dict[Tuple[int, int], Optional[float]]


def prefetch_service_times(
    trace: RequestTrace,
    fleet: FleetSpec,
    ppm_config: Optional[PPMConfig] = None,
    session: Optional[SimulationSession] = None,
    service: Optional["LatencyService"] = None,
    workers: Optional[int] = None,
) -> ServiceTimes:
    """Simulate every distinct (worker-group backend, length) pair once.

    With ``service=`` the pairs route through a shared
    :class:`~repro.serving.service.LatencyService` (its coalescing and worker
    pool apply); otherwise a session serves them, optionally warmed by a
    ``workers``-wide :func:`repro.sim.sweep.sweep` whose reports are seeded
    back into the session memo/disk cache first.
    """
    lengths = trace.distinct_lengths()
    specs = [group.backend for group in fleet.groups]
    times: ServiceTimes = {}
    if service is not None:
        if ppm_config is not None and service.session.ppm_config != ppm_config:
            raise ValueError("ppm_config does not match service.session.ppm_config")
        reports = service.query_batch(
            [(spec, n) for spec in specs for n in lengths]
        )
        for gi in range(len(specs)):
            for li, n in enumerate(lengths):
                report = reports[gi * len(lengths) + li]
                times[(gi, n)] = None if report.out_of_memory else report.total_seconds
        return times
    session = session_for(ppm_config, session, backends=())
    if workers is not None and workers > 1:
        points = [SweepPoint(spec, n) for spec in specs for n in lengths]
        # The session's recycle setting must reach the sweep workers AND the
        # seed keys, or a recycles-enabled session would be warmed with (and
        # then serve) recycle-free reports — breaking pooled ≡ serial parity.
        reports = sweep(
            points,
            ppm_config=session.ppm_config,
            workers=workers,
            include_recycles=session.include_recycles,
        )
        for point, report in zip(points, reports):
            session.seed_report(
                point.backend,
                point.sequence_length,
                report,
                include_recycles=session.include_recycles,
            )
    for gi, spec in enumerate(specs):
        for n in lengths:
            report = session.simulate(n, backend=spec)
            times[(gi, n)] = None if report.out_of_memory else report.total_seconds
    return times


@dataclass(frozen=True)
class RequestOutcome:
    """Per-request record of one replay (policy-invariant tests read these)."""

    request_id: int
    sequence_length: int
    priority: int
    arrival_seconds: float
    start_seconds: float
    finish_seconds: float
    met_deadline: bool
    dropped: bool = False

    @property
    def latency_seconds(self) -> float:
        return self.finish_seconds - self.arrival_seconds

    @property
    def wait_seconds(self) -> float:
        return self.start_seconds - self.arrival_seconds


def replay_trace(
    trace: RequestTrace,
    fleet: FleetSpec,
    scheduler: SchedulerSpec = "fifo",
    ppm_config: Optional[PPMConfig] = None,
    session: Optional[SimulationSession] = None,
    service: Optional["LatencyService"] = None,
    workers: Optional[int] = None,
    dispatch_overhead_seconds: float = 0.0,
    same_length_reuse_discount: float = 0.0,
    service_times: Optional[ServiceTimes] = None,
) -> ClusterReport:
    """Replay ``trace`` against ``fleet`` under ``scheduler``; emit a report.

    ``service_times`` short-circuits the prefetch (the planner reuses one
    prefetch across every fleet size and policy it sweeps).
    ``dispatch_overhead_seconds`` is a fixed per-request scheduling cost added
    to every service; ``same_length_reuse_discount`` (in [0, 1)) is the
    service-time fraction saved when a worker serves the same length twice in
    a row (shape/table reuse — 0 models a stateless worker).
    """
    report, _ = replay_trace_outcomes(
        trace,
        fleet,
        scheduler=scheduler,
        ppm_config=ppm_config,
        session=session,
        service=service,
        workers=workers,
        dispatch_overhead_seconds=dispatch_overhead_seconds,
        same_length_reuse_discount=same_length_reuse_discount,
        service_times=service_times,
    )
    return report


def replay_trace_outcomes(
    trace: RequestTrace,
    fleet: FleetSpec,
    scheduler: SchedulerSpec = "fifo",
    ppm_config: Optional[PPMConfig] = None,
    session: Optional[SimulationSession] = None,
    service: Optional["LatencyService"] = None,
    workers: Optional[int] = None,
    dispatch_overhead_seconds: float = 0.0,
    same_length_reuse_discount: float = 0.0,
    service_times: Optional[ServiceTimes] = None,
) -> Tuple[ClusterReport, Tuple[RequestOutcome, ...]]:
    """:func:`replay_trace` plus the per-request :class:`RequestOutcome` log."""
    if not 0.0 <= same_length_reuse_discount < 1.0:
        raise ValueError("same_length_reuse_discount must be in [0, 1)")
    policy = create_scheduler(scheduler)
    if service_times is None:
        service_times = prefetch_service_times(
            trace, fleet, ppm_config=ppm_config, session=session,
            service=service, workers=workers,
        )

    group_of = fleet.worker_groups()
    num_workers = len(group_of)
    labels = fleet.group_labels()

    events: List[Tuple[float, int, int, object]] = []
    counter = 0
    for request in trace:
        heapq.heappush(
            events, (request.arrival_seconds, _ARRIVAL, counter, request)
        )
        counter += 1

    idle: List[int] = list(range(num_workers))  # kept sorted (lowest id first)
    busy_seconds = [0.0] * num_workers
    last_length: List[Optional[int]] = [None] * num_workers

    outcomes: List[RequestOutcome] = []
    latencies: List[float] = []
    waits: List[float] = []
    met_by_priority: Dict[int, int] = {}
    total_by_priority: Dict[int, int] = {}
    completed = dropped = deadlines_missed = 0
    events_processed = 0
    max_queue_depth = 0
    queue_depth_sum = 0
    last_time = trace.duration_seconds

    def claim_worker(length: int) -> int:
        """Lowest-id idle worker, preferring one whose last shape matches."""
        if same_length_reuse_discount > 0.0:
            for position, worker in enumerate(idle):
                if last_length[worker] == length:
                    return idle.pop(position)
        return idle.pop(0)

    def dispatch(now: float) -> None:
        nonlocal counter, dropped, deadlines_missed
        while idle and len(policy):
            request = policy.pop(now)
            worker = claim_worker(request.sequence_length)
            seconds = service_times[
                (group_of[worker], request.sequence_length)
            ]
            if seconds is None:
                # The claimed worker's group cannot serve this length; with
                # heterogeneous fleets a smarter router could retry another
                # group, but the baseline replay models group-oblivious
                # dispatch.  The worker itself stays idle.
                insort(idle, worker)
                dropped += 1
                total_by_priority[request.priority] = (
                    total_by_priority.get(request.priority, 0) + 1
                )
                if request.deadline_seconds is not None:
                    deadlines_missed += 1
                outcomes.append(
                    RequestOutcome(
                        request_id=request.id,
                        sequence_length=request.sequence_length,
                        priority=request.priority,
                        arrival_seconds=request.arrival_seconds,
                        start_seconds=now,
                        finish_seconds=now,
                        met_deadline=False,
                        dropped=True,
                    )
                )
                continue
            if last_length[worker] == request.sequence_length:
                seconds *= 1.0 - same_length_reuse_discount
            last_length[worker] = request.sequence_length
            start = now
            finish = start + dispatch_overhead_seconds + seconds
            busy_seconds[worker] += dispatch_overhead_seconds + seconds
            heapq.heappush(
                events, (finish, _COMPLETION, counter, (worker, request, start))
            )
            counter += 1

    while events:
        time_now, kind, _, payload = heapq.heappop(events)
        events_processed += 1
        last_time = max(last_time, time_now)
        if kind == _ARRIVAL:
            policy.push(payload)
        else:
            worker, request, start = payload
            insort(idle, worker)
            completed += 1
            latency = time_now - request.arrival_seconds
            latencies.append(latency)
            waits.append(start - request.arrival_seconds)
            met = (
                request.deadline_seconds is None
                or time_now <= request.deadline_seconds + 1e-12
            )
            if not met:
                deadlines_missed += 1
            total_by_priority[request.priority] = (
                total_by_priority.get(request.priority, 0) + 1
            )
            if met:
                met_by_priority[request.priority] = (
                    met_by_priority.get(request.priority, 0) + 1
                )
            outcomes.append(
                RequestOutcome(
                    request_id=request.id,
                    sequence_length=request.sequence_length,
                    priority=request.priority,
                    arrival_seconds=request.arrival_seconds,
                    start_seconds=start,
                    finish_seconds=time_now,
                    met_deadline=met,
                )
            )
        dispatch(time_now)
        depth = len(policy)
        max_queue_depth = max(max_queue_depth, depth)
        queue_depth_sum += depth

    makespan = last_time
    requests = len(trace)
    utilization = {}
    for index, label in enumerate(labels):
        members = [w for w, g in enumerate(group_of) if g == index]
        busy = sum(busy_seconds[w] for w in members)
        capacity = len(members) * makespan
        utilization[label] = busy / capacity if capacity > 0 else 0.0

    attained = sum(met_by_priority.values())
    report = ClusterReport(
        trace_name=trace.name,
        fleet_name=fleet.name,
        policy=scheduler_name(scheduler),
        num_workers=num_workers,
        requests=requests,
        completed=completed,
        dropped=dropped,
        makespan_seconds=makespan,
        offered_rps=trace.offered_rps,
        throughput_rps=completed / makespan if makespan > 0 else 0.0,
        mean_latency_seconds=sum(latencies) / len(latencies) if latencies else 0.0,
        p50_latency_seconds=percentile(latencies, 50.0),
        p99_latency_seconds=percentile(latencies, 99.0),
        mean_wait_seconds=sum(waits) / len(waits) if waits else 0.0,
        p99_wait_seconds=percentile(waits, 99.0),
        slo_attainment=attained / requests if requests else 0.0,
        deadlines_missed=deadlines_missed,
        max_queue_depth=max_queue_depth,
        mean_queue_depth=queue_depth_sum / events_processed if events_processed else 0.0,
        utilization=utilization,
        per_priority_attainment={
            priority: met_by_priority.get(priority, 0) / total
            for priority, total in sorted(total_by_priority.items())
        },
        cost_per_million_requests=(
            fleet.cost_per_hour * (makespan / 3600.0) / completed * 1e6
            if completed
            else 0.0
        ),
        events_processed=events_processed,
    )
    return report, tuple(outcomes)
