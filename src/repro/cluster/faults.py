"""Deterministic fault injection and recovery policies for the cluster replay.

A production fleet is never the always-healthy machine the open-loop replay
of PR 5 assumed: workers crash and restart (with a detection lag before the
control plane notices, and a warm-up cost before the restarted worker is as
fast as a hot one), individual workers straggle for a while (thermal
throttling, noisy neighbors), and the package/node interconnect degrades
(flaky links, congested fabrics).  A :class:`FaultSchedule` pins all of this
as *data*: frozen, picklable windows and point events that
:func:`repro.cluster.des.replay_trace` folds into its discrete-event loop.

The determinism discipline matches :mod:`repro.cluster.trace`: a schedule is
either hand-built (tests pin exact instants) or generated from one seeded
``numpy`` RNG (:meth:`FaultSchedule.generate`), so a (trace, fleet, schedule)
triple replays to the bit-identical :class:`~repro.cluster.des.ClusterReport`
on every run, machine and process.

:class:`RecoveryPolicy` decides what happens to the request a crashing
worker was serving: requeue with exponential backoff (bounded retries) or
fail fast.  Retries re-enter the *scheduler*, so a retried request competes
under the same policy as fresh arrivals — no side channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .._digest import stable_digest


@dataclass(frozen=True)
class WorkerCrash:
    """One worker failure (and optional restart) at an absolute trace time.

    The in-flight request (if any) is lost at ``at_seconds`` but only
    *handled* at ``at_seconds + detection_lag_seconds`` — the health-check
    interval every real control plane pays before requeueing or failing the
    lost work.  ``restart_after_seconds=None`` means the worker never comes
    back; otherwise it rejoins the idle pool at ``at + restart_after`` with
    cold caches and a one-off ``warmup_seconds`` surcharge on its first
    service (weights reload / shape-cache refill).
    """

    worker_id: int
    at_seconds: float
    restart_after_seconds: Optional[float] = 30.0
    detection_lag_seconds: float = 0.5
    warmup_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.worker_id < 0:
            raise ValueError("worker_id must be >= 0")
        if self.at_seconds < 0:
            raise ValueError("at_seconds must be >= 0")
        if self.detection_lag_seconds < 0:
            raise ValueError("detection_lag_seconds must be >= 0")
        if self.restart_after_seconds is not None and self.restart_after_seconds <= 0:
            raise ValueError("restart_after_seconds must be positive (or None)")
        if self.warmup_seconds < 0:
            raise ValueError("warmup_seconds must be >= 0")


@dataclass(frozen=True)
class StragglerWindow:
    """One worker running ``slowdown_factor``-times slower for a while.

    Applied at dispatch time: a request *started* inside the window pays the
    full slowdown (windows opening mid-service do not retroactively stretch
    in-flight work — the deterministic simplification).  Overlapping windows
    on one worker multiply.
    """

    worker_id: int
    start_seconds: float
    end_seconds: float
    slowdown_factor: float = 4.0

    def __post_init__(self) -> None:
        if self.worker_id < 0:
            raise ValueError("worker_id must be >= 0")
        if self.end_seconds <= self.start_seconds:
            raise ValueError("end_seconds must exceed start_seconds")
        if self.slowdown_factor < 1.0:
            raise ValueError("slowdown_factor must be >= 1")

    def active_at(self, now: float) -> bool:
        return self.start_seconds <= now < self.end_seconds


@dataclass(frozen=True)
class DegradedLinkWindow:
    """A worker group's :class:`~repro.hardware.interconnect.ChipLinkSpec`
    bandwidth dropping to ``bandwidth_factor`` of nominal for a while.

    Requests dispatched to the group inside the window pay their per-request
    interconnect time scaled by ``1 / bandwidth_factor`` (the whole
    collective cost — bandwidth and protocol latency — degrades together).
    Only multi-chip backends have an interconnect component; single-chip
    groups are unaffected, which is exactly the resilience argument for
    them.  Overlapping windows on one group take the *worst* factor.
    """

    group_index: int
    start_seconds: float
    end_seconds: float
    bandwidth_factor: float = 0.25

    def __post_init__(self) -> None:
        if self.group_index < 0:
            raise ValueError("group_index must be >= 0")
        if self.end_seconds <= self.start_seconds:
            raise ValueError("end_seconds must exceed start_seconds")
        if not 0.0 < self.bandwidth_factor <= 1.0:
            raise ValueError("bandwidth_factor must be in (0, 1]")

    def active_at(self, now: float) -> bool:
        return self.start_seconds <= now < self.end_seconds


@dataclass(frozen=True)
class FaultSchedule:
    """Every fault the replay will inject, pinned as frozen data."""

    crashes: Tuple[WorkerCrash, ...] = ()
    stragglers: Tuple[StragglerWindow, ...] = ()
    degraded_links: Tuple[DegradedLinkWindow, ...] = ()
    name: str = ""

    def __bool__(self) -> bool:
        return bool(self.crashes or self.stragglers or self.degraded_links)

    def slowdown_at(self, worker_id: int, now: float) -> float:
        """Combined straggler slowdown on ``worker_id`` at time ``now``."""
        factor = 1.0
        for window in self.stragglers:
            if window.worker_id == worker_id and window.active_at(now):
                factor *= window.slowdown_factor
        return factor

    def straggling_workers(self, now: float) -> frozenset:
        """Worker ids inside an active straggler window at time ``now``."""
        return frozenset(
            w.worker_id for w in self.stragglers if w.active_at(now)
        )

    def link_factor_at(self, group_index: int, now: float) -> float:
        """Worst active bandwidth factor for ``group_index`` at time ``now``."""
        factor = 1.0
        for window in self.degraded_links:
            if window.group_index == group_index and window.active_at(now):
                factor = min(factor, window.bandwidth_factor)
        return factor

    def config_digest(self) -> str:
        """Stable content hash (cache/golden key for faulty replays)."""
        return stable_digest(
            "FaultSchedule",
            {
                "crashes": [
                    (c.worker_id, c.at_seconds, c.restart_after_seconds,
                     c.detection_lag_seconds, c.warmup_seconds)
                    for c in self.crashes
                ],
                "stragglers": [
                    (s.worker_id, s.start_seconds, s.end_seconds, s.slowdown_factor)
                    for s in self.stragglers
                ],
                "degraded_links": [
                    (d.group_index, d.start_seconds, d.end_seconds, d.bandwidth_factor)
                    for d in self.degraded_links
                ],
            },
        )

    @classmethod
    def generate(
        cls,
        num_workers: int,
        duration_seconds: float,
        seed: int = 0,
        crashes_per_worker: float = 0.5,
        mean_downtime_seconds: float = 10.0,
        detection_lag_seconds: float = 0.25,
        warmup_seconds: float = 0.0,
        stragglers_per_worker: float = 0.5,
        mean_straggle_seconds: float = 5.0,
        straggler_slowdown: float = 4.0,
        degraded_link_groups: Tuple[int, ...] = (),
        degraded_link_fraction: float = 0.2,
        degraded_bandwidth_factor: float = 0.25,
        name: str = "generated",
    ) -> "FaultSchedule":
        """Sample a schedule from one seeded RNG (trace-style determinism).

        Per worker, crash instants are uniform over the duration with an
        expected count of ``crashes_per_worker`` and exponential downtimes;
        straggler windows likewise.  Each group in ``degraded_link_groups``
        gets one degraded window covering ``degraded_link_fraction`` of the
        duration at a uniform start.  All draws come from
        ``numpy.random.default_rng(seed)`` in a fixed order, so the schedule
        is bit-identical for a given argument tuple.
        """
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if duration_seconds <= 0:
            raise ValueError("duration_seconds must be positive")
        rng = np.random.default_rng(seed)
        crashes = []
        for worker in range(num_workers):
            count = int(rng.poisson(crashes_per_worker))
            instants = np.sort(rng.uniform(0.0, duration_seconds, size=count))
            downtimes = rng.exponential(scale=mean_downtime_seconds, size=count)
            for at, downtime in zip(instants, downtimes):
                crashes.append(
                    WorkerCrash(
                        worker_id=worker,
                        at_seconds=float(at),
                        restart_after_seconds=float(max(downtime, 1e-3)),
                        detection_lag_seconds=detection_lag_seconds,
                        warmup_seconds=warmup_seconds,
                    )
                )
        stragglers = []
        for worker in range(num_workers):
            count = int(rng.poisson(stragglers_per_worker))
            starts = np.sort(rng.uniform(0.0, duration_seconds, size=count))
            spans = rng.exponential(scale=mean_straggle_seconds, size=count)
            for start, span in zip(starts, spans):
                stragglers.append(
                    StragglerWindow(
                        worker_id=worker,
                        start_seconds=float(start),
                        end_seconds=float(start + max(span, 1e-3)),
                        slowdown_factor=straggler_slowdown,
                    )
                )
        degraded = []
        for group in degraded_link_groups:
            span = degraded_link_fraction * duration_seconds
            start = float(rng.uniform(0.0, max(duration_seconds - span, 1e-9)))
            degraded.append(
                DegradedLinkWindow(
                    group_index=int(group),
                    start_seconds=start,
                    end_seconds=start + span,
                    bandwidth_factor=degraded_bandwidth_factor,
                )
            )
        return cls(
            crashes=tuple(crashes),
            stragglers=tuple(stragglers),
            degraded_links=tuple(degraded),
            name=name,
        )


#: The empty schedule: replaying with it is bit-identical to replaying
#: without one (asserted by the zero-fault property tests).
NO_FAULTS = FaultSchedule(name="none")


@dataclass(frozen=True)
class RecoveryPolicy:
    """What happens to a request lost to a worker crash.

    After the crash is detected, the request is requeued into the scheduler
    ``backoff_base_seconds * backoff_multiplier**attempt`` later (attempt 0
    is the first retry), at most ``max_retries`` times; past the bound — or
    immediately, with ``fail_fast=True`` — it is counted *failed* (one of
    the three drop buckets of :class:`~repro.cluster.des.ClusterReport`).
    """

    max_retries: int = 2
    backoff_base_seconds: float = 0.05
    backoff_multiplier: float = 2.0
    fail_fast: bool = False

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base_seconds < 0:
            raise ValueError("backoff_base_seconds must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")

    def backoff_seconds(self, attempt: int) -> float:
        """Requeue delay before retry number ``attempt`` (0-based)."""
        return self.backoff_base_seconds * self.backoff_multiplier ** attempt

    def gives_up(self, attempts_used: int) -> bool:
        return self.fail_fast or attempts_used >= self.max_retries


#: Fail every lost request immediately (the no-retry baseline).
FAIL_FAST = RecoveryPolicy(max_retries=0, fail_fast=True)
