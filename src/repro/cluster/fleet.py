"""Fleet descriptions: multi-chip backends and multi-node worker groups.

Two layers sit between a single-chip :class:`~repro.sim.backend.LatencyBackend`
and a cluster:

* :class:`MultiChipBackend` / :class:`MultiChipVariant` — a *node*: ``chips``
  copies of one backend sharding each request, composed from the per-chip
  :class:`~repro.sim.backend.SimReport` plus all-gather costs from
  :class:`~repro.hardware.interconnect.ChipLinkSpec` (the package-scale
  crossbar model).  The variant is a frozen, picklable spec, so multi-chip
  design points fan out across :func:`repro.sim.sweep.sweep` workers exactly
  like the single-chip variants do.
* :class:`FleetSpec` / :class:`WorkerGroup` — the fleet: how many workers of
  which backend (possibly heterogeneous), each with an hourly cost so a
  :class:`~repro.cluster.des.ClusterReport` can price SLO attainment in
  dollars per million requests.

Nothing here simulates traffic — a fleet is pure description; the
discrete-event replay (:mod:`repro.cluster.des`) pulls per-request service
times for each group's backend through the shared simulation session.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum
from typing import Any, List, Optional, Tuple

from .._digest import stable_digest
from ..hardware.interconnect import ChipLinkSpec
from ..ppm.config import PPMConfig
from ..ppm.op_table import OperatorTable, get_op_table
from ..sim.backend import LatencyBackend, SimReport, create_backend


class WorkerHealth(Enum):
    """Lifecycle state of one worker during a closed-loop replay.

    ``HEALTHY`` serves traffic at nominal speed; ``WARMING`` is a restarted
    worker whose first request pays the crash's warm-up surcharge; ``DEAD``
    is crashed and (maybe) awaiting restart — still provisioned, still
    costing money, serving nothing; ``RETIRED`` was removed by the
    autoscaler and stopped costing the moment it left.  Straggling is a
    *window* property of the fault schedule, not a state transition — a
    straggler is HEALTHY hardware running slow.
    """

    HEALTHY = "healthy"
    WARMING = "warming"
    DEAD = "dead"
    RETIRED = "retired"


class MultiChipBackend:
    """``chips`` copies of one backend serving a single request cooperatively.

    The pair representation is sharded row-wise across the chips: compute
    phases scale down by the chip count, while every folding block pays
    ``syncs_per_block`` all-gathers of the full pair tensor over the package
    interconnect.  Composition keeps the repo-wide determinism bar — the
    report is arithmetic over the inner :class:`~repro.sim.backend.SimReport`,
    so multi-chip numbers are exactly reproducible wherever the single-chip
    numbers are.

    Memory relief from sharding is *not* modeled: an inner out-of-memory
    verdict is passed through unchanged (conservative for GPU backends).
    """

    def __init__(
        self,
        inner: LatencyBackend,
        chips: int = 2,
        link: ChipLinkSpec = ChipLinkSpec(),
        name: Optional[str] = None,
    ) -> None:
        if chips < 1:
            raise ValueError("chips must be >= 1")
        self.inner = inner
        self.chips = int(chips)
        self.link = link
        self.ppm_config = inner.ppm_config
        self.name = name or f"{inner.name}-x{self.chips}"

    def communication_seconds(self, sequence_length: int) -> float:
        """Interconnect time per request at ``sequence_length`` residues."""
        cfg = self.ppm_config
        pair_bytes = (
            float(sequence_length) ** 2 * cfg.pair_dim * cfg.activation_bytes
        )
        syncs = cfg.num_blocks * self.link.syncs_per_block
        return syncs * self.link.allgather_seconds(pair_bytes, self.chips)

    def simulate_table(self, table: OperatorTable) -> SimReport:
        inner = self.inner.simulate_table(table)
        comm = self.communication_seconds(table.sequence_length)
        scale = 1.0 / self.chips
        details = dict(inner.details)
        details.update(
            {
                "chips": float(self.chips),
                "communication_seconds": comm,
                "single_chip_seconds": inner.total_seconds,
            }
        )
        return SimReport(
            backend=self.name,
            sequence_length=table.sequence_length,
            total_seconds=inner.total_seconds * scale + comm,
            phase_seconds={k: v * scale for k, v in inner.phase_seconds.items()},
            subphase_seconds={k: v * scale for k, v in inner.subphase_seconds.items()},
            out_of_memory=inner.out_of_memory,
            details=details,
        )

    def degraded_communication_seconds(
        self, sequence_length: int, bandwidth_factor: float
    ) -> float:
        """Interconnect time when the link runs at ``bandwidth_factor`` of nominal.

        The whole collective cost (port bandwidth *and* protocol latency)
        scales by ``1 / bandwidth_factor`` — a flaky link retries its
        protocol handshakes too.  The degraded-link fault windows of
        :class:`repro.cluster.faults.DegradedLinkWindow` charge exactly this
        delta over the healthy prefetch, so faulty replays stay pure
        arithmetic over prefetched numbers.
        """
        if not 0.0 < bandwidth_factor <= 1.0:
            raise ValueError("bandwidth_factor must be in (0, 1]")
        return self.communication_seconds(sequence_length) / bandwidth_factor

    def parallel_efficiency(self, sequence_length: int) -> float:
        """Achieved speedup over one chip, divided by the chip count.

        Derived from the same ``simulate_table`` composition the replay uses,
        so the efficiency can never drift from the reported numbers.
        """
        table = get_op_table(self.ppm_config, sequence_length)
        single = self.inner.simulate_table(table).total_seconds
        multi = self.simulate_table(table).total_seconds
        return (single / multi) / self.chips if multi > 0 else 0.0

    def config_digest(self) -> str:
        return stable_digest(
            type(self).__name__,
            {
                "inner": self.inner.config_digest(),
                "chips": self.chips,
                "link": self.link,
            },
        )


@dataclass(frozen=True)
class MultiChipVariant:
    """Picklable spec for a multi-chip node backend (sweep fan-out friendly).

    ``base`` is any spec :func:`repro.sim.backend.create_backend` resolves —
    keep it a registry name or frozen variant so the spec ships across
    process boundaries.
    """

    base: Any = "lightnobel"
    chips: int = 2
    link: ChipLinkSpec = ChipLinkSpec()
    name: Optional[str] = None

    def build(self, ppm_config: Optional[PPMConfig] = None) -> MultiChipBackend:
        return MultiChipBackend(
            inner=create_backend(self.base, ppm_config),
            chips=self.chips,
            link=self.link,
            name=self.name,
        )


# ------------------------------------------------------------------ the fleet
#: Reference hourly worker cost by base backend name (USD/hour, cloud-shaped:
#: GPUs at on-demand rates, the accelerator at an amortized-ASIC rate).  A
#: :class:`WorkerGroup` may override per group; multi-chip nodes multiply the
#: base rate by their chip count.
DEFAULT_COST_PER_HOUR = {
    "lightnobel": 1.6,
    "a100": 4.1,
    "h100": 8.2,
}
FALLBACK_COST_PER_HOUR = 4.0


def _base_cost(spec: Any) -> float:
    """Hourly cost of one worker built from ``spec`` (default table lookup)."""
    if isinstance(spec, MultiChipVariant):
        return _base_cost(spec.base) * spec.chips
    label = spec if isinstance(spec, str) else getattr(spec, "name", None) or ""
    label = str(label).lower()
    if label.endswith("-chunk"):
        label = label[: -len("-chunk")]
    return DEFAULT_COST_PER_HOUR.get(label, FALLBACK_COST_PER_HOUR)


@dataclass(frozen=True)
class WorkerGroup:
    """``count`` identical workers of one backend spec."""

    backend: Any = "lightnobel"
    count: int = 1
    cost_per_hour: Optional[float] = None

    def __post_init__(self) -> None:
        if int(self.count) < 1:
            raise ValueError("worker count must be >= 1")

    @property
    def hourly_cost(self) -> float:
        per_worker = (
            float(self.cost_per_hour)
            if self.cost_per_hour is not None
            else _base_cost(self.backend)
        )
        return per_worker * self.count


@dataclass(frozen=True)
class FleetSpec:
    """A named, possibly heterogeneous collection of worker groups."""

    groups: Tuple[WorkerGroup, ...] = (WorkerGroup(),)
    name: str = ""

    def __post_init__(self) -> None:
        if not self.groups:
            raise ValueError("a fleet needs at least one worker group")

    @classmethod
    def homogeneous(
        cls,
        backend: Any = "lightnobel",
        count: int = 1,
        cost_per_hour: Optional[float] = None,
        name: str = "",
    ) -> "FleetSpec":
        return cls(
            groups=(WorkerGroup(backend=backend, count=count, cost_per_hour=cost_per_hour),),
            name=name or f"{_group_label(backend)}x{count}",
        )

    @property
    def num_workers(self) -> int:
        return sum(g.count for g in self.groups)

    @property
    def cost_per_hour(self) -> float:
        return sum(g.hourly_cost for g in self.groups)

    def with_size(self, count: int) -> "FleetSpec":
        """A homogeneous fleet rescaled to ``count`` workers (planner sweeps)."""
        if len(self.groups) != 1:
            raise ValueError("with_size only applies to homogeneous fleets")
        group = replace(self.groups[0], count=int(count))
        return FleetSpec(groups=(group,), name=f"{_group_label(group.backend)}x{count}")

    def worker_groups(self) -> List[int]:
        """Group index of every worker, in deterministic worker-id order."""
        assignment: List[int] = []
        for index, group in enumerate(self.groups):
            assignment.extend([index] * group.count)
        return assignment

    def group_labels(self) -> Tuple[str, ...]:
        """Per-group display labels, disambiguated when two groups share one.

        Two groups of the same backend (differing only in count or cost) are
        legal; suffixing duplicates keeps per-group report mappings (e.g.
        :attr:`~repro.cluster.des.ClusterReport.utilization`) lossless.
        """
        raw = [_group_label(g.backend) for g in self.groups]
        if len(set(raw)) == len(raw):
            return tuple(raw)
        return tuple(f"{label}#{index}" for index, label in enumerate(raw))

    def config_digest(self) -> str:
        return stable_digest(
            "FleetSpec",
            {
                "groups": [
                    (_spec_digest(g.backend), g.count, g.hourly_cost)
                    for g in self.groups
                ],
            },
        )


def _spec_digest(spec: Any) -> str:
    """Content hash of a worker group's backend spec (fleet digest key).

    Labels alone under-key (two ``MultiChipVariant`` nodes differing only in
    link parameters share a label but replay differently), so prefer the
    spec's own ``config_digest``, then a structural hash of the frozen spec,
    and fall back to the label only for opaque objects.
    """
    digest = getattr(spec, "config_digest", None)
    if callable(digest):
        return f"{type(spec).__name__}:{digest()}"
    try:
        return stable_digest("fleet-backend-spec", spec)
    except TypeError:
        return _group_label(spec)


def _group_label(spec: Any) -> str:
    """Stable display label for a worker group's backend spec."""
    if isinstance(spec, str):
        return spec.lower()
    name = getattr(spec, "name", None)
    if isinstance(name, str) and name:
        return name
    if isinstance(spec, MultiChipVariant):
        return f"{_group_label(spec.base)}-x{spec.chips}"
    return type(spec).__name__.lower()
