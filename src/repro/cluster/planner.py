"""Capacity planning: the smallest (or cheapest) fleet that meets an SLO.

:func:`plan_capacity` sweeps fleet sizes x scheduling policies over one
trace and returns a :class:`CapacityPlan` answering the operator questions:

* the **minimal fleet size** per policy whose
  :attr:`~repro.cluster.des.ClusterReport.slo_attainment` reaches the
  target — the Fig.-12-style saturation knee, but for SLO capacity instead
  of single-request latency,
* the **cheapest plan** overall (a better policy often meets the SLO with
  fewer, or cheaper, workers — that delta is the point of the subsystem).

:func:`compare_fleets` prices *arbitrary* fleets — mixed ones included —
against each other on one trace: a couple of big-memory nodes backstopping
a sea of cheap small-memory ones (dispatched through a
:mod:`repro.cluster.routing` policy) versus the homogeneous alternatives.
The answer is the mixed-fleet claim in dollars: which fleet meets the SLO
at the lowest cost per million requests.

The expensive stage — simulating every distinct (backend, length) pair — is
shared across the whole grid: one :func:`~repro.cluster.des.prefetch_service_times`
call (sharded across :func:`repro.sim.sweep.sweep`'s process pool with
``workers > 1``) feeds every replay, because fleet size and policy change
queueing, never per-request service time.  ``compare_fleets`` extends the
sharing across fleets: backend specs are deduplicated by content digest, so
a backend appearing in five candidate fleets is simulated once.  Replays
themselves are pure Python and deterministic, so a plan is exactly
reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, TYPE_CHECKING

from ..ppm.config import PPMConfig
from ..sim.session import SimulationSession
from .des import ClusterReport, ServiceTimes, prefetch_service_times, replay_trace
from .fleet import FleetSpec, WorkerGroup, _spec_digest
from .routing import RouterSpec
from .scheduler import SchedulerSpec, scheduler_name
from .trace import RequestTrace

if TYPE_CHECKING:  # optional routing + scenarios, kept import-cycle free
    from ..serving.service import LatencyService
    from .scenarios import ClusterScenario


@dataclass(frozen=True)
class PlanPoint:
    """One (fleet size, policy) cell of the capacity grid."""

    fleet: FleetSpec
    policy: str
    report: ClusterReport

    def meets(self, slo_target: float) -> bool:
        return self.report.slo_attainment >= slo_target


@dataclass(frozen=True)
class CapacityPlan:
    """Outcome of one :func:`plan_capacity` sweep."""

    trace_name: str
    slo_target: float
    points: Tuple[PlanPoint, ...]

    def for_policy(self, policy: str) -> List[PlanPoint]:
        return [p for p in self.points if p.policy == policy]

    def policies(self) -> List[str]:
        seen = dict.fromkeys(p.policy for p in self.points)
        return list(seen)

    def minimal_fleet(self, policy: Optional[str] = None) -> Optional[PlanPoint]:
        """Smallest fleet meeting the SLO target (optionally for one policy).

        Ties across policies at the same size resolve to the cheaper, then
        higher-attainment, point.
        """
        candidates = [
            p
            for p in (self.points if policy is None else self.for_policy(policy))
            if p.report.slo_attainment >= self.slo_target
        ]
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda p: (
                p.fleet.num_workers,
                p.fleet.cost_per_hour,
                -p.report.slo_attainment,
            ),
        )

    def cheapest_plan(self) -> Optional[PlanPoint]:
        """Lowest cost-per-million point meeting the SLO target."""
        candidates = [
            p for p in self.points if p.report.slo_attainment >= self.slo_target
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda p: p.report.cost_per_million_requests)

    def attainment_curve(self, policy: str) -> List[Tuple[int, float]]:
        """(fleet size, SLO attainment) pairs — the fleet-size-vs-SLO curve."""
        return [
            (p.fleet.num_workers, p.report.slo_attainment)
            for p in sorted(self.for_policy(policy), key=lambda p: p.fleet.num_workers)
        ]


def plan_capacity(
    trace: RequestTrace,
    base_fleet: Optional[FleetSpec] = None,
    fleet_sizes: Sequence[int] = (1, 2, 4, 8),
    policies: Sequence[SchedulerSpec] = ("fifo", "edf"),
    slo_target: float = 0.95,
    ppm_config: Optional[PPMConfig] = None,
    session: Optional[SimulationSession] = None,
    service: Optional["LatencyService"] = None,
    workers: Optional[int] = None,
    dispatch_overhead_seconds: float = 0.0,
    same_length_reuse_discount: float = 0.0,
    length_bucket_size: Optional[int] = None,
    router: RouterSpec = None,
) -> CapacityPlan:
    """Sweep ``fleet_sizes`` x ``policies`` over ``trace``; rank against the SLO.

    ``base_fleet`` must be homogeneous (its single worker group is rescaled
    to each size; default: one ``"lightnobel"`` group).  ``workers > 1``
    shards the one shared service-time prefetch across the sweep process
    pool; the replays themselves are cheap and run serially.

    ``length_bucket_size`` forwards to
    :func:`~repro.cluster.des.prefetch_service_times`: the prefetch simulates
    only one (conservative, bucket-max) representative per shape bucket,
    shrinking the planner grid's simulation cost from O(distinct lengths) to
    O(buckets).  Default ``None`` keeps exact per-length pricing.
    """
    if not 0.0 < slo_target <= 1.0:
        raise ValueError("slo_target must be in (0, 1]")
    base_fleet = base_fleet or FleetSpec.homogeneous("lightnobel", 1)
    if len(base_fleet.groups) != 1:
        # Fail before the prefetch: with_size() would raise anyway, but only
        # after the expensive service-time stage already ran.
        raise ValueError("base_fleet must be homogeneous for a fleet-size sweep")
    # One prefetch serves the whole grid: service times depend only on the
    # worker group's backend and the request length.
    times = prefetch_service_times(
        trace,
        base_fleet,
        ppm_config=ppm_config,
        session=session,
        service=service,
        workers=workers,
        length_bucket_size=length_bucket_size,
    )
    points: List[PlanPoint] = []
    for size in sorted(dict.fromkeys(int(s) for s in fleet_sizes)):
        fleet = base_fleet.with_size(size)
        for policy in policies:
            # Scheduler *instances* are stateful (bucket cursors, quotas):
            # every grid cell replays against a fresh copy so a cell's report
            # is identical to a standalone replay of that cell.
            fresh = getattr(policy, "fresh", None)
            cell_policy = fresh() if callable(fresh) and not isinstance(policy, type) else policy
            report = replay_trace(
                trace,
                fleet,
                scheduler=cell_policy,
                service_times=times,
                dispatch_overhead_seconds=dispatch_overhead_seconds,
                same_length_reuse_discount=same_length_reuse_discount,
                router=router,
            )
            points.append(
                PlanPoint(fleet=fleet, policy=scheduler_name(policy), report=report)
            )
    return CapacityPlan(
        trace_name=trace.name, slo_target=slo_target, points=tuple(points)
    )


@dataclass(frozen=True)
class FleetComparison:
    """Outcome of one :func:`compare_fleets` sweep across candidate fleets."""

    trace_name: str
    slo_target: float
    points: Tuple[PlanPoint, ...]

    def for_fleet(self, name: str) -> List[PlanPoint]:
        return [p for p in self.points if p.fleet.name == name]

    def fleet_names(self) -> List[str]:
        return list(dict.fromkeys(p.fleet.name for p in self.points))

    def meeting(self) -> List[PlanPoint]:
        """Every (fleet, policy) cell whose attainment reaches the target."""
        return [
            p for p in self.points if p.report.slo_attainment >= self.slo_target
        ]

    def cheapest_plan(self) -> Optional[PlanPoint]:
        """Lowest cost-per-million cell meeting the SLO target."""
        candidates = self.meeting()
        if not candidates:
            return None
        return min(candidates, key=lambda p: p.report.cost_per_million_requests)

    def cheapest_per_fleet(self) -> Dict[str, Optional[PlanPoint]]:
        """Each fleet's cheapest SLO-meeting cell (None = never meets it)."""
        result: Dict[str, Optional[PlanPoint]] = {}
        for name in self.fleet_names():
            meeting = [
                p
                for p in self.for_fleet(name)
                if p.report.slo_attainment >= self.slo_target
            ]
            result[name] = (
                min(meeting, key=lambda p: p.report.cost_per_million_requests)
                if meeting
                else None
            )
        return result

    def summary_lines(self) -> Tuple[str, ...]:
        lines = []
        for name, point in self.cheapest_per_fleet().items():
            if point is None:
                lines.append(f"{name}: never meets {self.slo_target:.0%} SLO")
            else:
                lines.append(
                    f"{name}: ${point.report.cost_per_million_requests:.2f}/M"
                    f" at {point.report.slo_attainment:.4f} SLO"
                    f" ({point.policy}, router={point.report.router})"
                )
        return tuple(lines)


def compare_fleets(
    trace: RequestTrace,
    fleets: Sequence[FleetSpec],
    policies: Sequence[SchedulerSpec] = ("edf",),
    slo_target: float = 0.95,
    router: RouterSpec = None,
    ppm_config: Optional[PPMConfig] = None,
    session: Optional[SimulationSession] = None,
    service: Optional["LatencyService"] = None,
    workers: Optional[int] = None,
    dispatch_overhead_seconds: float = 0.0,
    same_length_reuse_discount: float = 0.0,
    length_bucket_size: Optional[int] = None,
) -> FleetComparison:
    """Price arbitrary (mixed included) fleets against one trace and SLO.

    The mixed-fleet sibling of :func:`plan_capacity`: instead of rescaling
    one homogeneous group, every candidate :class:`~repro.cluster.fleet.FleetSpec`
    replays as-is — heterogeneous groups, per-group costs and all — under
    every policy, with ``router`` applied to each replay (pass e.g.
    ``"cost-greedy"`` so a mixed fleet actually exploits its cheap groups;
    ``None`` replays the group-oblivious baseline).

    Backend specs are deduplicated across fleets by content digest, so the
    prefetch simulates each distinct backend once no matter how many
    candidate fleets share it.
    """
    if not 0.0 < slo_target <= 1.0:
        raise ValueError("slo_target must be in (0, 1]")
    if not fleets:
        raise ValueError("compare_fleets needs at least one candidate fleet")
    # One prefetch prices each distinct backend spec once; per-fleet tables
    # are then re-keyed views of it.
    distinct: Dict[str, object] = {}
    for fleet in fleets:
        for group in fleet.groups:
            distinct.setdefault(_spec_digest(group.backend), group.backend)
    digests = list(distinct)
    synthetic = FleetSpec(
        groups=tuple(
            WorkerGroup(backend=distinct[d], count=1) for d in digests
        ),
        name="compare-fleets-prefetch",
    )
    shared = prefetch_service_times(
        trace,
        synthetic,
        ppm_config=ppm_config,
        session=session,
        service=service,
        workers=workers,
        length_bucket_size=length_bucket_size,
    )
    source_index = {d: i for i, d in enumerate(digests)}
    lengths = trace.distinct_lengths()
    points: List[PlanPoint] = []
    for fleet in fleets:
        times: ServiceTimes = {}
        for gi, group in enumerate(fleet.groups):
            src = source_index[_spec_digest(group.backend)]
            for n in lengths:
                times[(gi, n)] = shared[(src, n)]
        for policy in policies:
            fresh = getattr(policy, "fresh", None)
            cell_policy = (
                fresh()
                if callable(fresh) and not isinstance(policy, type)
                else policy
            )
            report = replay_trace(
                trace,
                fleet,
                scheduler=cell_policy,
                service_times=times,
                dispatch_overhead_seconds=dispatch_overhead_seconds,
                same_length_reuse_discount=same_length_reuse_discount,
                router=router,
            )
            points.append(
                PlanPoint(
                    fleet=fleet, policy=scheduler_name(policy), report=report
                )
            )
    return FleetComparison(
        trace_name=trace.name, slo_target=slo_target, points=tuple(points)
    )


def plan_capacity_under_scenarios(
    scenarios: Sequence["ClusterScenario"],
    base_fleet: Optional[FleetSpec] = None,
    fleet_sizes: Sequence[int] = (1, 2, 4, 8),
    policies: Sequence[SchedulerSpec] = ("fifo", "edf"),
    slo_target: float = 0.95,
    ppm_config: Optional[PPMConfig] = None,
    session: Optional[SimulationSession] = None,
    service: Optional["LatencyService"] = None,
    workers: Optional[int] = None,
    dispatch_overhead_seconds: float = 0.0,
    same_length_reuse_discount: float = 0.0,
    length_bucket_size: Optional[int] = None,
) -> Dict[str, CapacityPlan]:
    """One :class:`CapacityPlan` per scenario, sharing prefetches across them.

    The scenario-aware sibling of :func:`plan_capacity`: every
    :class:`~repro.cluster.scenarios.ClusterScenario` replays the full
    (fleet size x policy) grid *with its faults and controllers applied*, so
    a plan answers "how big must the fleet be to survive this situation",
    not just "to serve this traffic".  Scenarios sharing a trace (the pinned
    suite does) share one service-time prefetch.  Feed the result to
    :func:`robust_minimal_fleet` for the fleet that survives *every*
    scenario.
    """
    if not 0.0 < slo_target <= 1.0:
        raise ValueError("slo_target must be in (0, 1]")
    base_fleet = base_fleet or FleetSpec.homogeneous("lightnobel", 1)
    if len(base_fleet.groups) != 1:
        raise ValueError("base_fleet must be homogeneous for a fleet-size sweep")
    sizes = sorted(dict.fromkeys(int(s) for s in fleet_sizes))
    times_by_trace: Dict[str, object] = {}
    plans: Dict[str, CapacityPlan] = {}
    for scenario in scenarios:
        digest = scenario.trace.config_digest()
        if digest not in times_by_trace:
            times_by_trace[digest] = prefetch_service_times(
                scenario.trace,
                base_fleet,
                ppm_config=ppm_config,
                session=session,
                service=service,
                workers=workers,
                length_bucket_size=length_bucket_size,
            )
        times = times_by_trace[digest]
        points: List[PlanPoint] = []
        for size in sizes:
            fleet = base_fleet.with_size(size)
            for policy in policies:
                fresh = getattr(policy, "fresh", None)
                cell_policy = (
                    fresh()
                    if callable(fresh) and not isinstance(policy, type)
                    else policy
                )
                report = scenario.replay(
                    fleet,
                    scheduler=cell_policy,
                    service_times=times,
                    dispatch_overhead_seconds=dispatch_overhead_seconds,
                    same_length_reuse_discount=same_length_reuse_discount,
                )
                points.append(
                    PlanPoint(
                        fleet=fleet, policy=scheduler_name(policy), report=report
                    )
                )
        plans[scenario.name] = CapacityPlan(
            trace_name=scenario.trace.name,
            slo_target=slo_target,
            points=tuple(points),
        )
    return plans


def robust_minimal_fleet(
    plans: Mapping[str, CapacityPlan],
    policy: Optional[str] = None,
) -> Optional[PlanPoint]:
    """Smallest (fleet size, policy) cell meeting its target in *every* plan.

    Attainment is not guaranteed monotone in fleet size under faults (a
    bigger fleet draws a different fault overlap), so this intersects the
    grids cell-by-cell rather than taking the max of per-scenario minima.
    Returns the qualifying cell's point from an arbitrary plan (they share
    fleet and policy; reports differ per scenario), or ``None`` when no
    cell survives everywhere.
    """
    if not plans:
        return None
    survivors: Optional[Dict[Tuple[int, str], PlanPoint]] = None
    for plan in plans.values():
        cells = {
            (p.fleet.num_workers, p.policy): p
            for p in plan.points
            if (policy is None or p.policy == policy)
            and p.report.slo_attainment >= plan.slo_target
        }
        if survivors is None:
            survivors = cells
        else:
            survivors = {k: v for k, v in survivors.items() if k in cells}
    if not survivors:
        return None
    return min(
        survivors.values(),
        key=lambda p: (
            p.fleet.num_workers,
            p.fleet.cost_per_hour,
            -p.report.slo_attainment,
        ),
    )
