"""Group-aware routing policies for heterogeneous fleets.

A *scheduler* (:mod:`repro.cluster.scheduler`) decides **which request**
dispatches next; a *router* decides **which worker group** may serve it.
The baseline replay is group-oblivious: the popped request claims the
lowest-id idle worker, and if that worker's group cannot hold the length
(out of memory) the request is dropped.  On a mixed fleet — big-memory
nodes for long sequences, cheap nodes for short ones — that baseline
squanders exactly the heterogeneity the fleet was bought for, so
:func:`repro.cluster.des.replay_trace` accepts a ``router=``:

* :class:`MemoryFitRouter` — any group whose backend fits the length
  (per the OOM model baked into the prefetched service times), in fleet
  order.  The minimal correctness router: nothing OOM-drops that some
  group could have served.
* :class:`CostGreedyRouter` — feasible groups, cheapest per-worker rate
  first, *with spill*: when every worker of a cheaper group is busy, the
  request runs on the next-cheapest idle group rather than waiting — the
  work-conserving discipline that lets two big nodes backstop a sea of
  cheap ones.
* :class:`LengthThresholdRouter` — requests at or above
  ``threshold_residues`` prefer the biggest-memory groups (keeping the
  big nodes' queue slots for the traffic only they can serve), shorter
  requests prefer the smallest-memory (cheapest-capacity) groups; both
  spill to the remaining feasible groups when their preference is busy.

A router maps a request's length to a *preference order* over feasible
group indices — pure, deterministic functions of the
:class:`GroupInfo` table the replay derives from its prefetched service
times, so routed replays keep the repo's bit-reproducibility bar.  A
request whose preference list is empty (no group can serve the length at
all) still OOM-drops; a request whose feasible groups are all busy stays
queued instead of dropping — the replay defers it and retries on the next
event.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple, Type, Union

from .fleet import FleetSpec
from .trace import RequestTrace


@dataclass(frozen=True)
class GroupInfo:
    """What a router may know about one worker group.

    Derived by :func:`group_infos` from the fleet spec and the prefetched
    service times — ``feasible_lengths`` holds exactly the trace lengths the
    group's backend serves without OOM, and ``max_feasible_length`` is their
    max (0 when the group serves nothing), the "memory size" proxy routers
    rank by.
    """

    index: int
    label: str
    per_worker_cost: float
    feasible_lengths: frozenset
    max_feasible_length: int

    def fits(self, length: int) -> bool:
        return length in self.feasible_lengths


def group_infos(
    fleet: FleetSpec,
    service_times: Mapping[Tuple[int, int], Optional[float]],
    trace: RequestTrace,
) -> Tuple[GroupInfo, ...]:
    """The per-group routing table for one (fleet, trace) replay."""
    labels = fleet.group_labels()
    lengths = trace.distinct_lengths()
    infos = []
    for gi, group in enumerate(fleet.groups):
        feasible = frozenset(
            n for n in lengths if service_times.get((gi, n)) is not None
        )
        infos.append(
            GroupInfo(
                index=gi,
                label=labels[gi],
                per_worker_cost=group.hourly_cost / group.count,
                feasible_lengths=feasible,
                max_feasible_length=max(feasible) if feasible else 0,
            )
        )
    return tuple(infos)


class MemoryFitRouter:
    """Feasible groups in fleet order — route around OOM, nothing more."""

    name = "memory-fit"

    def preference(
        self, length: int, groups: Sequence[GroupInfo]
    ) -> Tuple[int, ...]:
        return tuple(g.index for g in groups if g.fits(length))


class CostGreedyRouter:
    """Cheapest feasible group first, spilling to pricier groups when busy."""

    name = "cost-greedy"

    def preference(
        self, length: int, groups: Sequence[GroupInfo]
    ) -> Tuple[int, ...]:
        feasible = [g for g in groups if g.fits(length)]
        feasible.sort(key=lambda g: (g.per_worker_cost, g.index))
        return tuple(g.index for g in feasible)


@dataclass(frozen=True)
class LengthThresholdRouter:
    """Reserve big-memory groups for long requests; spill both ways when busy.

    Requests of ``threshold_residues`` or more prefer groups by descending
    memory headroom (``max_feasible_length``); shorter requests prefer
    ascending — the small/cheap groups absorb the short tail so the big
    nodes' capacity is standing free when a long protein arrives.  Every
    feasible group stays in the preference list, so neither class ever
    waits while some feasible worker idles.
    """

    threshold_residues: int = 512

    name = "length-threshold"

    def __post_init__(self) -> None:
        if int(self.threshold_residues) < 1:
            raise ValueError("threshold_residues must be >= 1")

    def preference(
        self, length: int, groups: Sequence[GroupInfo]
    ) -> Tuple[int, ...]:
        feasible = [g for g in groups if g.fits(length)]
        if length >= self.threshold_residues:
            feasible.sort(key=lambda g: (-g.max_feasible_length, g.index))
        else:
            feasible.sort(key=lambda g: (g.max_feasible_length, g.index))
        return tuple(g.index for g in feasible)


#: Registry of router names accepted everywhere a router spec is taken.
ROUTERS: Dict[str, Type] = {
    "memory-fit": MemoryFitRouter,
    "cost-greedy": CostGreedyRouter,
    "length-threshold": LengthThresholdRouter,
}

RouterSpec = Union[str, object, Type, None]


def create_router(spec: RouterSpec):
    """Resolve a router spec: a registry name, a class, an instance, or None."""
    if spec is None:
        return None
    if isinstance(spec, str):
        try:
            return ROUTERS[spec.lower()]()
        except KeyError:
            raise ValueError(
                f"unknown router {spec!r}; expected one of {sorted(ROUTERS)}"
            ) from None
    if isinstance(spec, type):
        return spec()
    if callable(getattr(spec, "preference", None)):
        return spec
    raise TypeError(f"cannot build a router from {type(spec).__name__!r}")


def router_name(spec: RouterSpec) -> str:
    """Display name of a router spec without instantiating twice."""
    if spec is None:
        return "none"
    if isinstance(spec, str):
        return spec.lower()
    name = getattr(spec, "name", None)
    if isinstance(name, str) and name:
        return name
    return (
        spec.__name__.lower()
        if isinstance(spec, type)
        else type(spec).__name__.lower()
    )
