"""Pinned closed-loop scenarios: traffic + faults + controllers as one object.

A :class:`ClusterScenario` bundles everything :func:`repro.cluster.des.replay_trace`
needs besides the fleet: the trace, the fault schedule, the recovery policy
and the (optional) admission controller and autoscaler.  :func:`scenario_suite`
pins the three canonical scenarios the golden tests replay —

* ``diurnal`` — sinusoidal load with a flash crowd, healthy fleet (the
  traffic shape capacity planning should size for),
* ``flash-crowd`` — the same traffic behind a bounded queue (admission
  control sheds the spike's overflow instead of poisoning every later
  request's latency),
* ``faulty`` — the same traffic on a fleet that crashes and straggles,
  closed-loop: bounded retries, admission control and an SLO-tracking
  autoscaler.

All three derive from seeded generators, so a (scenario, fleet) pair
replays to the bit-identical report everywhere — the same golden discipline
as the plain traces.

:func:`resilience_experiment` is the headline measurement of this layer:
size the *smallest* fleet that meets a 99% SLO on healthy traffic (via
:func:`~repro.cluster.planner.plan_capacity`), then show that under the
failure scenario (a) that fixed fleet misses the SLO, and (b) the same
fleet with admission control and an autoscaler meets it — with
dollars-per-million-requests for both, so the cost of resilience is a
number, not an adjective.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dataclass_replace
from typing import Optional, Sequence, Tuple, TYPE_CHECKING

from .._digest import stable_digest
from ..gpu.gpu_config import GPUS, GPUSpec
from ..ppm.config import PPMConfig
from ..sim.session import SimulationSession
from .control import AdmissionController, Autoscaler
from .des import (
    ClusterReport,
    RequestOutcome,
    ServiceTimes,
    prefetch_service_times,
    replay_trace_outcomes,
)
from .faults import NO_FAULTS, FaultSchedule, RecoveryPolicy
from .fleet import FleetSpec, MultiChipVariant, WorkerGroup
from .planner import FleetComparison, PlanPoint, compare_fleets, plan_capacity
from .routing import RouterSpec
from .scheduler import SchedulerSpec
from .trace import (
    RequestTrace,
    SLOPolicy,
    bursty_trace,
    diurnal_trace,
    mixture_lengths,
)

if TYPE_CHECKING:  # optional routing, kept import-cycle free
    from ..obs.timeline import TimelineRecorder
    from ..serving.service import LatencyService


@dataclass(frozen=True)
class ClusterScenario:
    """One replayable situation: traffic plus faults plus control loops."""

    name: str
    trace: RequestTrace
    faults: FaultSchedule = NO_FAULTS
    recovery: RecoveryPolicy = RecoveryPolicy()
    admission: Optional[AdmissionController] = None
    autoscaler: Optional[Autoscaler] = None

    def replay(
        self,
        fleet: FleetSpec,
        scheduler: SchedulerSpec = "edf",
        ppm_config: Optional[PPMConfig] = None,
        session: Optional[SimulationSession] = None,
        service: Optional["LatencyService"] = None,
        service_times: Optional[ServiceTimes] = None,
        dispatch_overhead_seconds: float = 0.0,
        same_length_reuse_discount: float = 0.0,
        router: RouterSpec = None,
        timeline: Optional["TimelineRecorder"] = None,
    ) -> ClusterReport:
        report, _ = self.replay_outcomes(
            fleet,
            scheduler=scheduler,
            ppm_config=ppm_config,
            session=session,
            service=service,
            service_times=service_times,
            dispatch_overhead_seconds=dispatch_overhead_seconds,
            same_length_reuse_discount=same_length_reuse_discount,
            router=router,
            timeline=timeline,
        )
        return report

    def replay_outcomes(
        self,
        fleet: FleetSpec,
        scheduler: SchedulerSpec = "edf",
        ppm_config: Optional[PPMConfig] = None,
        session: Optional[SimulationSession] = None,
        service: Optional["LatencyService"] = None,
        service_times: Optional[ServiceTimes] = None,
        dispatch_overhead_seconds: float = 0.0,
        same_length_reuse_discount: float = 0.0,
        router: RouterSpec = None,
        timeline: Optional["TimelineRecorder"] = None,
    ) -> Tuple[ClusterReport, Tuple[RequestOutcome, ...]]:
        return replay_trace_outcomes(
            self.trace,
            fleet,
            scheduler=scheduler,
            ppm_config=ppm_config,
            session=session,
            service=service,
            service_times=service_times,
            dispatch_overhead_seconds=dispatch_overhead_seconds,
            same_length_reuse_discount=same_length_reuse_discount,
            faults=self.faults,
            recovery=self.recovery,
            admission=self.admission,
            autoscaler=self.autoscaler,
            router=router,
            timeline=timeline,
        )

    def config_digest(self) -> str:
        """Stable content hash over everything that shapes a replay."""
        return stable_digest(
            "ClusterScenario",
            {
                "trace": self.trace.config_digest(),
                "faults": self.faults.config_digest(),
                "recovery": (
                    self.recovery.max_retries,
                    self.recovery.backoff_base_seconds,
                    self.recovery.backoff_multiplier,
                    self.recovery.fail_fast,
                ),
                "admission": (
                    None
                    if self.admission is None
                    else (
                        self.admission.max_queue_depth,
                        self.admission.priority_depth_fraction,
                    )
                ),
                "autoscaler": (
                    None
                    if self.autoscaler is None
                    else (
                        self.autoscaler.min_workers,
                        self.autoscaler.max_workers,
                        self.autoscaler.interval_seconds,
                        self.autoscaler.scale_up_queue_per_worker,
                        self.autoscaler.scale_down_queue_per_worker,
                        self.autoscaler.slo_target,
                        self.autoscaler.attainment_window,
                        self.autoscaler.scale_up_lag_seconds,
                        self.autoscaler.scale_step,
                    )
                ),
            },
        )


# ---------------------------------------------------------------- the suite
#: Length mix and SLO shared by the pinned scenarios (the PR 5 golden mix).
SCENARIO_MIX = ((32, 0.6), (96, 0.25), (160, 0.15))
SCENARIO_SLO = SLOPolicy(base_seconds=0.035, per_residue_seconds=2.0e-4)


def scenario_trace(
    seed: int = 11,
    rate_rps: float = 300.0,
    num_requests: int = 900,
) -> RequestTrace:
    """The shared diurnal-with-flash-crowd traffic of the pinned suite.

    A compressed diurnal cycle (~1.2 s period, +-55% swing) with a 5x flash
    crowd a third of the way in — short enough to replay in milliseconds,
    long enough to hold several autoscaler reaction windows.
    """
    pool, weights = mixture_lengths(SCENARIO_MIX)
    return diurnal_trace(
        rate_rps=rate_rps,
        num_requests=num_requests,
        length_pool=pool,
        length_weights=weights,
        slo=SCENARIO_SLO,
        period_seconds=1.2,
        amplitude=0.55,
        flash_at_seconds=1.0,
        flash_duration_seconds=0.25,
        flash_factor=5.0,
        seed=seed,
    )


def scenario_faults(
    num_workers: int,
    duration_seconds: float,
    seed: int = 11,
) -> FaultSchedule:
    """The pinned failure pattern scaled to a fleet and trace duration.

    Roughly one crash per worker (short exponential downtimes with a warm-up
    surcharge on restart), one straggler window per worker, and one
    degraded-link window over the (single) group — dense enough that a
    minimally-sized fleet visibly suffers, mild enough that a closed-loop
    fleet can absorb it.
    """
    return FaultSchedule.generate(
        num_workers=num_workers,
        duration_seconds=duration_seconds,
        seed=seed,
        crashes_per_worker=1.0,
        mean_downtime_seconds=duration_seconds * 0.12,
        detection_lag_seconds=0.002,
        warmup_seconds=0.004,
        stragglers_per_worker=1.0,
        mean_straggle_seconds=duration_seconds * 0.05,
        straggler_slowdown=3.0,
        degraded_link_groups=(0,),
        degraded_link_fraction=0.15,
        degraded_bandwidth_factor=0.5,
        name="pinned-faults",
    )


def scenario_controllers(
    baseline_workers: int,
    slo_target: float = 0.99,
) -> Tuple[AdmissionController, Autoscaler]:
    """The pinned closed-loop controllers sized around a baseline fleet.

    Admission is a wide safety valve (it sheds only a catastrophic backlog,
    low priority first); the autoscaler holds the baseline as its floor and
    buys up to 2x the baseline when rolling attainment dips below the
    target or the queue grows — reacting every 20 simulated milliseconds
    with a 60 ms provisioning lag.
    """
    admission = AdmissionController(
        max_queue_depth=max(32, 16 * baseline_workers),
        priority_depth_fraction=0.5,
    )
    autoscaler = Autoscaler(
        min_workers=baseline_workers,
        max_workers=max(2 * baseline_workers, baseline_workers + 2),
        interval_seconds=0.02,
        scale_up_queue_per_worker=3.0,
        scale_down_queue_per_worker=0.5,
        slo_target=slo_target,
        attainment_window=50,
        scale_up_lag_seconds=0.06,
        scale_step=1,
    )
    return admission, autoscaler


def scenario_suite(
    seed: int = 11,
    num_workers: int = 4,
    slo_target: float = 0.99,
) -> Tuple[ClusterScenario, ...]:
    """The three pinned scenarios the golden tests (and CI smoke) replay."""
    trace = scenario_trace(seed=seed)
    faults = scenario_faults(num_workers, trace.duration_seconds, seed=seed)
    admission, autoscaler = scenario_controllers(num_workers, slo_target)
    return (
        ClusterScenario(name="diurnal", trace=trace),
        ClusterScenario(name="flash-crowd", trace=trace, admission=admission),
        ClusterScenario(
            name="faulty",
            trace=trace,
            faults=faults,
            recovery=RecoveryPolicy(max_retries=2, backoff_base_seconds=0.005),
            admission=admission,
            autoscaler=autoscaler,
        ),
    )


def named_scenario(name: str, **kwargs) -> ClusterScenario:
    """Look up one pinned scenario by name (CLI/smoke entry point)."""
    suite = scenario_suite(**kwargs)
    for scenario in suite:
        if scenario.name == name:
            return scenario
    raise ValueError(
        f"unknown scenario {name!r}; expected one of "
        f"{[s.name for s in suite]}"
    )


# ----------------------------------------------------- headline measurement
@dataclass(frozen=True)
class ResilienceSummary:
    """Outcome of :func:`resilience_experiment` — the cost of resilience.

    ``healthy`` is the planner-sized fleet on fault-free traffic;
    ``faulty_fixed`` is the same fixed fleet under the failure scenario
    (open loop, retries only); ``faulty_controlled`` adds admission control
    and the autoscaler.  The acceptance claim of this layer:
    ``faulty_fixed`` misses the SLO target, ``faulty_controlled`` meets it.
    """

    slo_target: float
    planned_workers: int
    healthy: ClusterReport
    faulty_fixed: ClusterReport
    faulty_controlled: ClusterReport

    @property
    def fixed_meets_slo(self) -> bool:
        return self.faulty_fixed.slo_attainment >= self.slo_target

    @property
    def controlled_meets_slo(self) -> bool:
        return self.faulty_controlled.slo_attainment >= self.slo_target

    def summary_lines(self) -> Tuple[str, ...]:
        def fmt(tag: str, report: ClusterReport) -> str:
            return (
                f"{tag}: slo={report.slo_attainment:.4f}"
                f" cost=${report.cost_per_million_requests:.2f}/M"
                f" mean_fleet={report.mean_fleet_size:.2f}"
                f" shed={report.shed} failed={report.failed}"
                f" retried={report.retried}"
                f" availability={report.availability:.4f}"
            )

        return (
            f"planned fleet: {self.planned_workers} workers"
            f" @ {self.slo_target:.0%} SLO",
            fmt("healthy        ", self.healthy),
            fmt("faulty (fixed) ", self.faulty_fixed),
            fmt("faulty (closed)", self.faulty_controlled),
        )


def resilience_experiment(
    ppm_config: Optional[PPMConfig] = None,
    session: Optional[SimulationSession] = None,
    service: Optional["LatencyService"] = None,
    backend_spec=None,
    fleet_sizes: Sequence[int] = (2, 3, 4, 5, 6, 8),
    slo_target: float = 0.99,
    scheduler: SchedulerSpec = "edf",
    same_length_reuse_discount: float = 0.25,
    seed: int = 11,
    workers: Optional[int] = None,
) -> ResilienceSummary:
    """Plan a healthy fleet, then break it — and close the loop.

    1. Size the smallest fleet meeting ``slo_target`` on the healthy
       diurnal/flash trace (one shared prefetch feeds the whole grid).
    2. Replay the failure scenario on that *fixed* fleet: retries only.
    3. Replay it again with the pinned admission controller and autoscaler
       (floor = planned size, ceiling = 2x).

    Returns the three reports; ``summary_lines()`` formats the comparison
    the docs quote.
    """
    if backend_spec is None:
        backend_spec = MultiChipVariant(base="h100-chunk", chips=2)
    trace = scenario_trace(seed=seed)
    base_fleet = FleetSpec.homogeneous(backend_spec, 1)
    times = prefetch_service_times(
        trace,
        base_fleet,
        ppm_config=ppm_config,
        session=session,
        service=service,
        workers=workers,
    )
    plan = plan_capacity(
        trace,
        base_fleet=base_fleet,
        fleet_sizes=fleet_sizes,
        policies=(scheduler,),
        slo_target=slo_target,
        same_length_reuse_discount=same_length_reuse_discount,
        # plan_capacity re-prefetches unless given a service_times shortcut;
        # replay_trace accepts ours directly below, and the planner shares
        # the session memo cache, so the prefetch above is the only slow one.
        ppm_config=ppm_config,
        session=session,
        service=service,
    )
    minimal = plan.minimal_fleet()
    if minimal is None:
        raise ValueError(
            f"no fleet size in {tuple(fleet_sizes)} meets the"
            f" {slo_target:.0%} SLO on the healthy trace"
        )
    planned = minimal.fleet.num_workers
    fleet = base_fleet.with_size(planned)
    healthy = minimal.report
    faults = scenario_faults(planned, trace.duration_seconds, seed=seed)
    recovery = RecoveryPolicy(max_retries=2, backoff_base_seconds=0.005)
    admission, autoscaler = scenario_controllers(planned, slo_target)
    faulty_fixed, _ = replay_trace_outcomes(
        trace,
        fleet,
        scheduler=scheduler,
        service_times=times,
        same_length_reuse_discount=same_length_reuse_discount,
        faults=faults,
        recovery=recovery,
    )
    faulty_controlled, _ = replay_trace_outcomes(
        trace,
        fleet,
        scheduler=scheduler,
        service_times=times,
        same_length_reuse_discount=same_length_reuse_discount,
        faults=faults,
        recovery=recovery,
        admission=admission,
        autoscaler=autoscaler,
    )
    return ResilienceSummary(
        slo_target=slo_target,
        planned_workers=planned,
        healthy=healthy,
        faulty_fixed=faulty_fixed,
        faulty_controlled=faulty_controlled,
    )


# ------------------------------------------------- mixed-fleet measurement
#: Long-tail traffic of the mixed-fleet experiment: mostly short proteins, a
#: 6% tail of 512-residue ones — the length the small-memory node cannot
#: hold.  Deadlines are per-token with enough headroom that a 512 served
#: promptly on a big node meets its SLO, but an OOM-drop never does.
MIXED_FLEET_MIX = ((32, 0.55), (96, 0.27), (160, 0.12), (512, 0.06))
MIXED_FLEET_SLO = SLOPolicy(base_seconds=0.1, per_residue_seconds=6.0e-3)


def small_memory_gpu(memory_gb: float = 8.0) -> GPUSpec:
    """The "cheap node" of the mixed-fleet experiment: an A100 cut to 8 GB.

    Same compute and bandwidth, a fraction of the memory — so it serves the
    short-protein traffic at full speed and OOMs on the 512-residue tail
    (the tiny-config peak memory crosses 8 GB between n=384 and n=512).
    Priced below the big nodes via an explicit per-group rate; the point of
    the experiment is that memory, not FLOPs, is what the big nodes charge
    for.
    """
    return dataclass_replace(GPUS["A100"], name=f"a100-{memory_gb:g}g", memory_gb=memory_gb)


def mixed_fleet_trace(
    seed: int = 11,
    rate_rps: float = 15.0,
    num_requests: int = 360,
) -> RequestTrace:
    """The pinned long-tail bursty traffic the mixed-fleet golden replays."""
    pool, weights = mixture_lengths(MIXED_FLEET_MIX)
    return bursty_trace(
        rate_rps=rate_rps,
        num_requests=num_requests,
        length_pool=pool,
        length_weights=weights,
        slo=MIXED_FLEET_SLO,
        seed=seed,
        name="long-tail",
    )


def mixed_fleet_candidates(
    big_spec="h100-chunk",
    cheap_cost_per_hour: float = 2.05,
    big_counts: Sequence[int] = (2, 3),
    cheap_counts: Sequence[int] = (2, 3),
    homogeneous_sizes: Sequence[int] = (6, 7, 8),
) -> Tuple[FleetSpec, ...]:
    """The candidate fleets the experiment prices against each other.

    Mixed fleets pair ``big_counts`` big-memory workers with
    ``cheap_counts`` small-memory ones; homogeneous fleets are the big node
    alone at ``homogeneous_sizes`` and the cheap node alone (which can never
    meet a high SLO — the 512 tail OOMs — priced to prove it, not to win).
    """
    cheap = small_memory_gpu()
    fleets = []
    for big in big_counts:
        for small in cheap_counts:
            fleets.append(
                FleetSpec(
                    groups=(
                        WorkerGroup(backend=big_spec, count=big),
                        WorkerGroup(
                            backend=cheap,
                            count=small,
                            cost_per_hour=cheap_cost_per_hour,
                        ),
                    ),
                    name=f"mixed-{big}big-{small}small",
                )
            )
    for size in homogeneous_sizes:
        fleets.append(FleetSpec.homogeneous(big_spec, size))
    fleets.append(
        FleetSpec(
            groups=(
                WorkerGroup(
                    backend=cheap,
                    count=max(homogeneous_sizes),
                    cost_per_hour=cheap_cost_per_hour,
                ),
            ),
            name=f"{cheap.name.lower()}x{max(homogeneous_sizes)}",
        )
    )
    return tuple(fleets)


@dataclass(frozen=True)
class MixedFleetSummary:
    """Outcome of :func:`mixed_fleet_experiment` — heterogeneity in dollars.

    ``best_mixed`` / ``best_homogeneous`` are each side's cheapest
    SLO-meeting cell (``None`` when that side never meets the target); the
    claim of this layer is :attr:`mixed_wins` — a mixed fleet meets the SLO
    at strictly lower cost per million requests than the best homogeneous
    fleet.
    """

    slo_target: float
    comparison: FleetComparison
    best_mixed: Optional[PlanPoint]
    best_homogeneous: Optional[PlanPoint]

    @property
    def mixed_wins(self) -> bool:
        if self.best_mixed is None:
            return False
        if self.best_homogeneous is None:
            return True
        return (
            self.best_mixed.report.cost_per_million_requests
            < self.best_homogeneous.report.cost_per_million_requests
        )

    def summary_lines(self) -> Tuple[str, ...]:
        def fmt(tag: str, point: Optional[PlanPoint]) -> str:
            if point is None:
                return f"{tag}: no fleet meets {self.slo_target:.0%}"
            return (
                f"{tag}: {point.fleet.name}"
                f" ${point.report.cost_per_million_requests:.2f}/M"
                f" slo={point.report.slo_attainment:.4f}"
                f" ({point.fleet.cost_per_hour:.2f} $/h)"
            )

        return (
            fmt("mixed      ", self.best_mixed),
            fmt("homogeneous", self.best_homogeneous),
        )


def mixed_fleet_experiment(
    ppm_config: Optional[PPMConfig] = None,
    session: Optional[SimulationSession] = None,
    service: Optional["LatencyService"] = None,
    slo_target: float = 0.95,
    scheduler: SchedulerSpec = "edf",
    router: RouterSpec = "cost-greedy",
    seed: int = 11,
    workers: Optional[int] = None,
) -> MixedFleetSummary:
    """Price mixed fleets against homogeneous ones on long-tail traffic.

    The headline heterogeneity measurement: a 6% tail of 512-residue
    requests OOMs on the cheap small-memory node, so an all-cheap fleet can
    never reach a 95% SLO; an all-big fleet meets it but pays big-node
    rates for traffic that is 94% short.  A mixed fleet — two big-memory
    workers backstopping a couple of cheap ones, dispatched through the
    ``router`` (cost-greedy with spill by default) — meets the same SLO at
    strictly lower $/M: the big nodes serve only what only they can serve.
    """
    trace = mixed_fleet_trace(seed=seed)
    comparison = compare_fleets(
        trace,
        mixed_fleet_candidates(),
        policies=(scheduler,),
        slo_target=slo_target,
        router=router,
        ppm_config=ppm_config,
        session=session,
        service=service,
        workers=workers,
    )
    by_side: dict = {"mixed": [], "homogeneous": []}
    for point in comparison.meeting():
        side = "mixed" if len(point.fleet.groups) > 1 else "homogeneous"
        by_side[side].append(point)
    pick = lambda side: (
        min(
            by_side[side],
            key=lambda p: p.report.cost_per_million_requests,
        )
        if by_side[side]
        else None
    )
    return MixedFleetSummary(
        slo_target=slo_target,
        comparison=comparison,
        best_mixed=pick("mixed"),
        best_homogeneous=pick("homogeneous"),
    )
