"""Pluggable queueing policies for the cluster discrete-event replay.

A scheduler is the pending-request pool of :func:`repro.cluster.des.replay_trace`:
arrivals are :meth:`~Scheduler.push`-ed, and whenever a worker goes idle the
replay :meth:`~Scheduler.pop`-s the next request to serve.  Policies differ
only in the pop order:

* :class:`FIFOScheduler` — arrival order (the baseline every serving stack
  starts with, and the one a burst of short proteins behind a 3,000-residue
  target punishes hardest),
* :class:`SJFScheduler` — shortest protein first (service time is monotone in
  length, so length is the shortest-job proxy that needs no simulator),
* :class:`BucketedScheduler` — length-bucketed batching: requests group into
  power-of-two length buckets, shorter buckets drain first, FIFO within a
  bucket — the padded-batch discipline real protein-serving systems use, and
  a fairer SJF (no starvation *within* a bucket),
* :class:`EDFScheduler` — priority, then earliest deadline first, via the
  *same* :func:`repro.serving.api.dispatch_order_key` the live
  :class:`~repro.serving.service.LatencyService` dispatcher sorts by — one
  definition of priority/deadline semantics across the simulated fleet and
  the real queue.

All policies break residual ties by arrival sequence, so every replay is
bit-deterministic.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Deque, Dict, List, Optional, Protocol, Tuple, Type, Union, runtime_checkable

from ..serving.api import dispatch_order_key
from .trace import Request


@runtime_checkable
class Scheduler(Protocol):
    """Pending-request pool with a policy-defined pop order."""

    name: str

    def push(self, request: Request) -> None:
        """Admit one arrived request."""
        ...

    def pop(self, now: float) -> Optional[Request]:
        """Next request to dispatch at time ``now`` (``None`` when empty)."""
        ...

    def requeue(self, request: Request) -> None:
        """Return a popped-but-undispatchable request without losing its turn.

        Routed replays pop a request, discover every feasible worker group
        is busy, and put it back; the request must keep (at least) its old
        position so deferral never reorders requests the policy considered
        equal.  Heap policies re-push (the key is stable); FIFO-shaped
        policies put it back at the head.
        """
        ...

    def fresh(self) -> "Scheduler":
        """An empty scheduler with the same policy configuration.

        Schedulers are stateful; anything replaying one policy spec against
        several traces/fleets (the planner grid) takes a fresh instance per
        replay via this hook.
        """
        ...

    def __len__(self) -> int:
        ...


class FIFOScheduler:
    """Arrival order, no reordering."""

    name = "fifo"

    def __init__(self) -> None:
        self._queue: Deque[Request] = deque()

    def push(self, request: Request) -> None:
        self._queue.append(request)

    def pop(self, now: float) -> Optional[Request]:
        return self._queue.popleft() if self._queue else None

    def requeue(self, request: Request) -> None:
        self._queue.appendleft(request)

    def fresh(self) -> "FIFOScheduler":
        return FIFOScheduler()

    def __len__(self) -> int:
        return len(self._queue)


class SJFScheduler:
    """Shortest protein first (non-preemptive), ties by arrival sequence."""

    name = "sjf"

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, Request]] = []

    def push(self, request: Request) -> None:
        heapq.heappush(self._heap, (request.sequence_length, request.id, request))

    def pop(self, now: float) -> Optional[Request]:
        return heapq.heappop(self._heap)[2] if self._heap else None

    def requeue(self, request: Request) -> None:
        self.push(request)  # the heap key is stable, so position is restored

    def fresh(self) -> "SJFScheduler":
        return SJFScheduler()

    def __len__(self) -> int:
        return len(self._heap)


class BucketedScheduler:
    """Length-bucketed batching: same-shape runs, deadline-ordered buckets.

    Requests group into geometric length buckets (powers of two from
    ``min_bucket``) — the padding granularity under which same-bucket
    requests share one compiled shape/operator table.  Dispatch drains up to
    ``batch_size`` requests from one bucket consecutively (the same-shape run
    that harvests shape-reuse on a worker), then re-selects the bucket whose
    *head* request sorts first under :func:`~repro.serving.api.dispatch_order_key`
    — so no bucket starves longer than ``batch_size`` head-of-line services,
    unlike a strict shortest-bucket-first discipline.
    """

    name = "bucketed"

    def __init__(self, min_bucket: int = 64, batch_size: int = 8) -> None:
        if min_bucket < 1:
            raise ValueError("min_bucket must be >= 1")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.min_bucket = int(min_bucket)
        self.batch_size = int(batch_size)
        self._buckets: Dict[int, Deque[Request]] = {}
        self._size = 0
        self._current: Optional[int] = None
        self._quota = 0

    def bucket_of(self, length: int) -> int:
        """Upper edge of the bucket holding ``length`` (power-of-two padding)."""
        edge = self.min_bucket
        while edge < length:
            edge *= 2
        return edge

    def push(self, request: Request) -> None:
        edge = self.bucket_of(request.sequence_length)
        self._buckets.setdefault(edge, deque()).append(request)
        self._size += 1

    def requeue(self, request: Request) -> None:
        edge = self.bucket_of(request.sequence_length)
        self._buckets.setdefault(edge, deque()).appendleft(request)
        self._size += 1

    def _head_key(self, edge: int) -> Tuple[int, float, int]:
        head = self._buckets[edge][0]
        return dispatch_order_key(head.priority, head.deadline_seconds, head.id)

    def pop(self, now: float) -> Optional[Request]:
        if not self._size:
            return None
        if (
            self._current is None
            or self._quota <= 0
            or not self._buckets.get(self._current)
        ):
            self._current = min(
                (e for e, q in self._buckets.items() if q), key=self._head_key
            )
            self._quota = self.batch_size
        self._quota -= 1
        self._size -= 1
        bucket = self._buckets[self._current]
        request = bucket.popleft()
        if not bucket:
            del self._buckets[self._current]
        return request

    def fresh(self) -> "BucketedScheduler":
        return BucketedScheduler(min_bucket=self.min_bucket, batch_size=self.batch_size)

    def __len__(self) -> int:
        return self._size


class EDFScheduler:
    """Priority tiers, earliest deadline first within a tier, then FIFO.

    Sorts by :func:`repro.serving.api.dispatch_order_key` — the identical
    comparator the serving dispatcher uses — so deadline-free, single-class
    traffic degrades to exact FIFO.
    """

    name = "edf"

    def __init__(self) -> None:
        self._heap: List[Tuple[Tuple[int, float, int], Request]] = []

    def push(self, request: Request) -> None:
        key = dispatch_order_key(
            request.priority, request.deadline_seconds, request.id
        )
        heapq.heappush(self._heap, (key, request))

    def pop(self, now: float) -> Optional[Request]:
        return heapq.heappop(self._heap)[1] if self._heap else None

    def requeue(self, request: Request) -> None:
        self.push(request)  # the heap key is stable, so position is restored

    def fresh(self) -> "EDFScheduler":
        return EDFScheduler()

    def __len__(self) -> int:
        return len(self._heap)


#: Registry of policy names accepted everywhere a scheduler spec is taken.
SCHEDULERS: Dict[str, Type] = {
    "fifo": FIFOScheduler,
    "sjf": SJFScheduler,
    "bucketed": BucketedScheduler,
    "edf": EDFScheduler,
}

SchedulerSpec = Union[str, Scheduler, Type]


def create_scheduler(spec: SchedulerSpec = "fifo") -> Scheduler:
    """Resolve a scheduler spec: a registry name, a class, or an instance.

    Instances are returned as-is (callers that pass one own its lifecycle —
    schedulers are stateful, so each replay should get a fresh one).
    """
    if isinstance(spec, str):
        try:
            return SCHEDULERS[spec.lower()]()
        except KeyError:
            raise ValueError(
                f"unknown scheduler {spec!r}; expected one of {sorted(SCHEDULERS)}"
            ) from None
    if isinstance(spec, type):
        return spec()
    if isinstance(spec, Scheduler):
        return spec
    raise TypeError(f"cannot build a scheduler from {type(spec).__name__!r}")


def select_worker(
    idle: List[int],
    sequence_length: int,
    last_length: List[Optional[int]],
    prefer_shape: bool,
    straggling: frozenset = frozenset(),
) -> int:
    """Pick (and remove) the worker that should serve the next request.

    The routing policy shared by every scheduler: prefer a **healthy**
    worker over one inside a straggler window (rerouting around degraded
    hardware is a scheduler decision, not a fault-model one), and within a
    health tier prefer a shape-matching worker (``prefer_shape``, i.e. a
    nonzero same-length reuse discount) and then the lowest id.  With no
    stragglers this reduces exactly to the PR 5 claim order — shape match
    first, else lowest id — so healthy-path replays are bit-identical.
    Only a worker that is actually in ``idle`` is ever returned; if every
    idle worker straggles, the least-bad (lowest-id/shape-matching)
    straggler is used rather than leaving the request queued.
    """
    if straggling:
        tiers = (
            [w for w in idle if w not in straggling],
            [w for w in idle if w in straggling],
        )
    else:
        tiers = (idle,)
    for tier in tiers:
        if not tier:
            continue
        worker = tier[0]
        if prefer_shape:
            for candidate in tier:
                if last_length[candidate] == sequence_length:
                    worker = candidate
                    break
        idle.remove(worker)
        return worker
    raise ValueError("select_worker called with no idle workers")


def scheduler_name(spec: SchedulerSpec) -> str:
    """Display name of a scheduler spec without instantiating twice."""
    if isinstance(spec, str):
        return spec.lower()
    name = getattr(spec, "name", None)
    if isinstance(name, str) and name:
        return name
    return spec.__name__.lower() if isinstance(spec, type) else type(spec).__name__.lower()
