"""CI smoke entry: a small trace replayed under two policies, deterministically.

Run as ``PYTHONPATH=src python -m repro.cluster.smoke``.  Generates a bursty
trace on the tiny configuration, replays it against a 3-worker fleet under
FIFO and EDF (sharing one service-time prefetch), asserts bit-determinism
(two replays of the same trace produce identical :class:`ClusterReport`
objects) and the deadline-count dominance of EDF, then exits 0 — the cluster
sibling of :mod:`repro.sim.smoke` and :mod:`repro.serving.smoke`.  Every
cache write is sandboxed in a throwaway directory.
"""

from __future__ import annotations

import sys
import tempfile

from ..ppm.config import PPMConfig
from ..sim.cache import sandbox_cache_dir
from ..sim.session import SimulationSession
from .des import prefetch_service_times, replay_trace
from .fleet import FleetSpec
from .trace import SLOPolicy, bursty_trace, mixture_lengths


def main() -> int:
    config = PPMConfig.tiny()
    pool, weights = mixture_lengths([(24, 0.6), (48, 0.3), (96, 0.1)])
    trace = bursty_trace(
        rate_rps=400.0,
        num_requests=150,
        length_pool=pool,
        length_weights=weights,
        slo=SLOPolicy(base_seconds=0.03, per_residue_seconds=2.0e-4),
        seed=11,
    )
    fleet = FleetSpec.homogeneous("h100-chunk", 3)

    with tempfile.TemporaryDirectory(prefix="repro-cluster-smoke-") as cache_dir:
        # Sandbox every cache write in the throwaway directory, as the test
        # suite's conftest does — nothing lands in the runner workspace/home.
        with sandbox_cache_dir(cache_dir):
            session = SimulationSession(ppm_config=config, cache_dir=cache_dir)
            times = prefetch_service_times(trace, fleet, session=session)
            reports = {}
            for policy in ("fifo", "edf"):
                first = replay_trace(
                    trace, fleet, scheduler=policy, service_times=times
                )
                again = replay_trace(
                    trace, fleet, scheduler=policy, service_times=times
                )
                if first != again:
                    print(
                        f"FAIL: {policy} replay is not deterministic", file=sys.stderr
                    )
                    return 1
                reports[policy] = first
                print(
                    f"replay[{policy}] completed={first.completed}"
                    f" p50={first.p50_latency_seconds * 1e3:.2f} ms"
                    f" p99={first.p99_latency_seconds * 1e3:.2f} ms"
                    f" slo={first.slo_attainment:.3f}"
                    f" util={ {k: round(v, 3) for k, v in first.utilization.items()} }"
                    f" events={first.events_processed}"
                )

    if reports["fifo"].completed != len(trace) or reports["edf"].completed != len(trace):
        print("FAIL: replay lost requests", file=sys.stderr)
        return 1
    if reports["edf"].deadlines_missed > reports["fifo"].deadlines_missed:
        print("FAIL: EDF missed more deadlines than FIFO", file=sys.stderr)
        return 1
    print("smoke ok: deterministic 3-worker replay, FIFO vs EDF, sandboxed cache")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
