"""CI smoke entry: small cluster replays, deterministically, healthy or faulty.

Run as ``PYTHONPATH=src python -m repro.cluster.smoke [--scenario NAME]``.

* ``--scenario healthy`` (default) — the PR 5 smoke: a bursty trace on the
  tiny configuration replayed against a 3-worker fleet under FIFO and EDF
  (sharing one service-time prefetch), asserting bit-determinism and the
  deadline-count dominance of EDF.
* ``--scenario faulty`` (or ``diurnal`` / ``flash-crowd``) — one pinned
  scenario from :func:`repro.cluster.scenarios.scenario_suite` replayed
  twice against a 4-worker multi-chip fleet, asserting bit-determinism of
  the *closed-loop* path (faults, retries, admission control, autoscaler)
  and the drop-accounting identity ``dropped == oom + shed + failed``.
* ``--scenario hetero`` — long-tail traffic on a mixed fleet (one big-memory
  worker, two cheap small-memory ones): cost-greedy routing must complete
  everything with zero OOM drops where the unrouted baseline drops the
  512-residue tail, deterministically.
* ``--scenario log-replay`` — a live :class:`~repro.serving.service.LatencyService`
  batch, its request log exported via
  :meth:`~repro.cluster.trace.RequestTrace.from_serving_log`, replayed
  through the simulator: digest-stable and bit-deterministic.

Both modes print the drop split (``oom``/``shed``/``failed``) so a CI log
shows where requests went, and every cache write is sandboxed in a
throwaway directory — the cluster sibling of :mod:`repro.sim.smoke` and
:mod:`repro.serving.smoke`.
"""

from __future__ import annotations

import argparse
import sys
import tempfile

from ..ppm.config import PPMConfig
from ..sim.cache import sandbox_cache_dir
from ..sim.session import SimulationSession
from .des import prefetch_service_times, replay_trace
from .fleet import FleetSpec, MultiChipVariant
from .scenarios import named_scenario
from .trace import SLOPolicy, bursty_trace, mixture_lengths


def _drop_split(report) -> str:
    return (
        f"drops[oom={report.oom_dropped} shed={report.shed}"
        f" failed={report.failed} total={report.dropped}]"
    )


def _healthy(cache_dir: str) -> int:
    config = PPMConfig.tiny()
    pool, weights = mixture_lengths([(24, 0.6), (48, 0.3), (96, 0.1)])
    trace = bursty_trace(
        rate_rps=400.0,
        num_requests=150,
        length_pool=pool,
        length_weights=weights,
        slo=SLOPolicy(base_seconds=0.03, per_residue_seconds=2.0e-4),
        seed=11,
    )
    fleet = FleetSpec.homogeneous("h100-chunk", 3)
    session = SimulationSession(ppm_config=config, cache_dir=cache_dir)
    times = prefetch_service_times(trace, fleet, session=session)
    reports = {}
    for policy in ("fifo", "edf"):
        first = replay_trace(trace, fleet, scheduler=policy, service_times=times)
        again = replay_trace(trace, fleet, scheduler=policy, service_times=times)
        if first != again:
            print(f"FAIL: {policy} replay is not deterministic", file=sys.stderr)
            return 1
        reports[policy] = first
        print(
            f"replay[{policy}] completed={first.completed}"
            f" p50={first.p50_latency_seconds * 1e3:.2f} ms"
            f" p99={first.p99_latency_seconds * 1e3:.2f} ms"
            f" slo={first.slo_attainment:.3f}"
            f" util={ {k: round(v, 3) for k, v in first.utilization.items()} }"
            f" events={first.events_processed}"
            f" {_drop_split(first)}"
        )
    if reports["fifo"].completed != len(trace) or reports["edf"].completed != len(trace):
        print("FAIL: replay lost requests", file=sys.stderr)
        return 1
    if reports["edf"].deadlines_missed > reports["fifo"].deadlines_missed:
        print("FAIL: EDF missed more deadlines than FIFO", file=sys.stderr)
        return 1
    print("smoke ok: deterministic 3-worker replay, FIFO vs EDF, sandboxed cache")
    return 0


def _scenario(name: str, cache_dir: str) -> int:
    config = PPMConfig.tiny()
    scenario = named_scenario(name, num_workers=4)
    fleet = FleetSpec.homogeneous(MultiChipVariant(base="h100-chunk", chips=2), 4)
    session = SimulationSession(ppm_config=config, cache_dir=cache_dir)
    times = prefetch_service_times(scenario.trace, fleet, session=session)
    first = scenario.replay(
        fleet, service_times=times, same_length_reuse_discount=0.25,
        ppm_config=config,
    )
    again = scenario.replay(
        fleet, service_times=times, same_length_reuse_discount=0.25,
        ppm_config=config,
    )
    if first != again:
        print(f"FAIL: scenario {name!r} replay is not deterministic", file=sys.stderr)
        return 1
    print(
        f"scenario[{name}] completed={first.completed}/{first.requests}"
        f" slo={first.slo_attainment:.4f}"
        f" retried={first.retried}"
        f" availability={first.availability:.4f}"
        f" mean_fleet={first.mean_fleet_size:.2f}"
        f" peak_fleet={first.peak_fleet_size}"
        f" events={first.events_processed}"
        f" {_drop_split(first)}"
    )
    if first.dropped != first.oom_dropped + first.shed + first.failed:
        print("FAIL: drop split does not sum to total drops", file=sys.stderr)
        return 1
    if first.completed + first.dropped != first.requests:
        print("FAIL: requests not conserved", file=sys.stderr)
        return 1
    print(f"smoke ok: deterministic closed-loop replay of scenario {name!r}")
    return 0


def _hetero(cache_dir: str) -> int:
    """Mixed-fleet smoke: routed dispatch beats OOM drops, deterministically."""
    from .fleet import WorkerGroup
    from .scenarios import mixed_fleet_trace, small_memory_gpu

    config = PPMConfig.tiny()
    trace = mixed_fleet_trace(seed=11, rate_rps=15.0, num_requests=80)
    fleet = FleetSpec(
        groups=(
            WorkerGroup(backend="h100-chunk", count=1),
            WorkerGroup(backend=small_memory_gpu(), count=2, cost_per_hour=2.05),
        ),
        name="hetero-smoke",
    )
    session = SimulationSession(ppm_config=config, cache_dir=cache_dir)
    times = prefetch_service_times(trace, fleet, session=session)
    routed = replay_trace(
        trace, fleet, scheduler="edf", router="cost-greedy", service_times=times
    )
    again = replay_trace(
        trace, fleet, scheduler="edf", router="cost-greedy", service_times=times
    )
    if routed != again:
        print("FAIL: routed mixed-fleet replay is not deterministic", file=sys.stderr)
        return 1
    unrouted = replay_trace(trace, fleet, scheduler="edf", service_times=times)
    print(
        f"hetero[router={routed.router}] completed={routed.completed}/{routed.requests}"
        f" slo={routed.slo_attainment:.4f}"
        f" util={ {k: round(v, 3) for k, v in routed.utilization.items()} }"
        f" {_drop_split(routed)}"
    )
    print(
        f"hetero[router={unrouted.router}] completed={unrouted.completed}/{unrouted.requests}"
        f" {_drop_split(unrouted)}"
    )
    if routed.oom_dropped != 0 or routed.completed != routed.requests:
        print("FAIL: router left OOM drops on a fleet that can serve everything",
              file=sys.stderr)
        return 1
    if unrouted.oom_dropped == 0:
        print("FAIL: unrouted baseline shows no OOM drops — smoke traffic has no"
              " long tail, routing is untested", file=sys.stderr)
        return 1
    if min(routed.utilization.values()) <= 0.0:
        print("FAIL: a worker group sat completely idle under routing", file=sys.stderr)
        return 1
    print("smoke ok: cost-greedy routing on a mixed fleet, zero OOM drops")
    return 0


def _log_replay(cache_dir: str) -> int:
    """Serving-log round trip: live traffic becomes a replayable trace."""
    from ..serving.api import LatencyRequest
    from ..serving.service import LatencyService
    from .trace import RequestTrace

    config = PPMConfig.tiny()
    requests = [
        LatencyRequest(
            backend="h100-chunk",
            sequence_length=n,
            priority=i % 2,
            deadline_seconds=0.5 + 0.01 * i,
        )
        for i, n in enumerate((24, 48, 96, 24, 48, 96, 24, 48))
    ]
    service = LatencyService(
        ppm_config=config, workers=2, cache_dir=cache_dir, autostart=False
    )
    tickets = service.submit_batch(requests)
    with service:
        for ticket in tickets:
            service.result(ticket, timeout=120.0).raise_for_error()
        records = service.request_log()
    trace = RequestTrace.from_serving_log(records)
    if len(trace) != len(requests):
        print("FAIL: serving log lost requests on the way to a trace", file=sys.stderr)
        return 1
    if trace.config_digest() != RequestTrace.from_serving_log(records).config_digest():
        print("FAIL: log-derived trace digest is unstable", file=sys.stderr)
        return 1
    fleet = FleetSpec.homogeneous("h100-chunk", 2)
    session = SimulationSession(ppm_config=config, cache_dir=cache_dir)
    times = prefetch_service_times(trace, fleet, session=session)
    first = replay_trace(trace, fleet, scheduler="edf", service_times=times)
    again = replay_trace(trace, fleet, scheduler="edf", service_times=times)
    if first != again:
        print("FAIL: log-derived trace does not replay deterministically", file=sys.stderr)
        return 1
    print(
        f"log-replay digest={trace.config_digest()[:12]}"
        f" requests={first.requests} completed={first.completed}"
        f" slo={first.slo_attainment:.4f} {_drop_split(first)}"
    )
    if first.completed != first.requests:
        print("FAIL: replay of logged traffic lost requests", file=sys.stderr)
        return 1
    print("smoke ok: LatencyService log -> RequestTrace -> deterministic replay")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scenario",
        default="healthy",
        choices=("healthy", "diurnal", "flash-crowd", "faulty", "hetero", "log-replay"),
        help=(
            "healthy = PR 5 FIFO/EDF smoke; diurnal/flash-crowd/faulty = pinned "
            "closed-loop scenarios; hetero = routed mixed-fleet replay; "
            "log-replay = serving-log -> trace round trip"
        ),
    )
    args = parser.parse_args(argv)
    with tempfile.TemporaryDirectory(prefix="repro-cluster-smoke-") as cache_dir:
        # Sandbox every cache write in the throwaway directory, as the test
        # suite's conftest does — nothing lands in the runner workspace/home.
        with sandbox_cache_dir(cache_dir):
            if args.scenario == "healthy":
                return _healthy(cache_dir)
            if args.scenario == "hetero":
                return _hetero(cache_dir)
            if args.scenario == "log-replay":
                return _log_replay(cache_dir)
            return _scenario(args.scenario, cache_dir)


if __name__ == "__main__":
    raise SystemExit(main())
