"""Seeded request traces: protein-length traffic with deadlines and priorities.

A cluster experiment starts from a :class:`RequestTrace` — a deterministic,
seed-reproducible stream of :class:`Request` objects, each an arrival time
plus a protein length plus SLO annotations (priority class, absolute
deadline).  Two arrival processes are provided:

* :func:`poisson_trace` — memoryless arrivals at a fixed offered rate, the
  steady-traffic baseline,
* :func:`bursty_trace` — a two-state (on/off) modulated Poisson process whose
  bursts are what separate scheduling policies: FIFO queues a burst behind
  whatever long protein arrived first, deadline/length-aware policies do not.

Lengths come from pluggable samplers: :func:`dataset_lengths` resamples the
empirical length distribution of a synthetic CAMEO/CASP catalogue
(:mod:`repro.proteins.datasets`), :func:`mixture_lengths` draws from an
explicit (length, weight) mix — the "90% short, 10% huge" traffic shape every
protein-serving fleet actually sees.

Deadlines follow the serving convention of per-token SLOs: a request's
deadline is ``arrival + base + per_residue * length``, so long proteins get
proportionally more headroom and "SLO attainment" compares like with like.
All randomness flows through one ``numpy`` generator seeded from the trace
seed, so a trace is bit-identical across processes and platforms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .._digest import stable_digest
from ..proteins.datasets import build_catalog


@dataclass(frozen=True)
class Request:
    """One serving request of a cluster trace.

    ``deadline_seconds`` is *absolute* trace time (``None`` = no deadline);
    ``priority`` follows :func:`repro.serving.api.dispatch_order_key`
    semantics (higher dispatches first).
    """

    id: int
    arrival_seconds: float
    sequence_length: int
    priority: int = 0
    deadline_seconds: Optional[float] = None

    @property
    def deadline_slack_seconds(self) -> Optional[float]:
        """Deadline headroom at arrival (``None`` when no deadline is set)."""
        if self.deadline_seconds is None:
            return None
        return self.deadline_seconds - self.arrival_seconds


@dataclass(frozen=True)
class SLOPolicy:
    """How a trace annotates requests with deadlines and priorities.

    ``deadline = arrival + base_seconds + per_residue_seconds * length`` —
    the per-token SLO shape.  ``priority_weights`` gives the class mix:
    ``(0.9, 0.1)`` makes 10% of requests priority 1 (higher), the rest
    priority 0.  ``(1.0,)`` (the default) is single-class traffic.
    """

    base_seconds: float = 0.05
    per_residue_seconds: float = 2.5e-4
    priority_weights: Tuple[float, ...] = (1.0,)

    def deadline_for(self, arrival_seconds: float, length: int) -> float:
        return arrival_seconds + self.base_seconds + self.per_residue_seconds * length


#: A no-deadline, single-class annotation (pure arrival/length traffic).
NO_SLO = SLOPolicy(base_seconds=0.0, per_residue_seconds=0.0)


@dataclass(frozen=True)
class RequestTrace:
    """A deterministic stream of requests plus the knobs that produced it."""

    name: str
    requests: Tuple[Request, ...]
    seed: int
    #: Mean offered request rate implied by the generator (requests/second).
    offered_rps: float

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[Request]:
        return iter(self.requests)

    def lengths(self) -> List[int]:
        return [r.sequence_length for r in self.requests]

    def distinct_lengths(self) -> List[int]:
        return sorted(set(self.lengths()))

    def length_mix(self) -> Dict[int, int]:
        """Distinct length -> request count (the trace's traffic mix)."""
        mix: Dict[int, int] = {}
        for r in self.requests:
            mix[r.sequence_length] = mix.get(r.sequence_length, 0) + 1
        return dict(sorted(mix.items()))

    def bucketed_lengths(self, bucket_size: Optional[int]) -> Dict[int, int]:
        """Distinct length -> its shape-bucket representative length.

        The representative is the *longest* length in the bucket
        (:func:`repro.serving.api.length_bucket` boundaries), so bucketed
        service-time estimates are conservative — a bucket never under-prices
        its members.  ``bucket_size=None``/0 is the identity map (exact
        per-length simulation).
        """
        from ..serving.api import length_bucket

        distinct = self.distinct_lengths()
        if not bucket_size or int(bucket_size) <= 0:
            return {n: n for n in distinct}
        by_bucket: Dict[int, int] = {}
        for n in distinct:  # ascending, so the last write is the bucket max
            by_bucket[length_bucket(n, bucket_size)] = n
        return {n: by_bucket[length_bucket(n, bucket_size)] for n in distinct}

    @property
    def duration_seconds(self) -> float:
        """Span from time zero to the latest arrival.

        Takes the max rather than trusting ``requests[-1]``: traces imported
        from serving logs (fulfillment order) or merged from several sources
        are not necessarily sorted by arrival.
        """
        if not self.requests:
            return 0.0
        return max(r.arrival_seconds for r in self.requests)

    @classmethod
    def from_serving_log(
        cls,
        records: Sequence,
        name: str = "serving-log",
        include_errors: bool = False,
        rebase_arrivals: bool = True,
    ) -> "RequestTrace":
        """Build a replayable trace from a ``LatencyService`` request log.

        ``records`` is any sequence of
        :class:`repro.serving.api.RequestLogRecord`-shaped objects (duck
        typed, so deserialized dicts-turned-namespaces work too).  The log is
        in *fulfillment* order with arrivals relative to service start and
        deadlines relative to submission; this converts to the trace
        convention — sorted by arrival (ties broken by ticket id), ids
        renumbered 0..n-1, deadlines made absolute
        (``arrival + relative deadline``).  ``rebase_arrivals`` shifts the
        first arrival to t=0 so a replay does not spend idle simulated time
        waiting out the service's warm-up gap; the shift preserves every
        inter-arrival gap and relative deadline.

        Error-outcome requests are dropped by default (they never executed a
        real simulation, so replaying them would model traffic that the
        service rejected); pass ``include_errors=True`` to keep them.

        The result is a plain deterministic :class:`RequestTrace`: building
        it twice from the same log — in the same process or another — yields
        identical ``config_digest()`` values, so replay results are cacheable
        and comparable across runs.
        """
        kept = [
            r
            for r in records
            if include_errors or getattr(r, "outcome", "ok") == "ok"
        ]
        ordered = sorted(
            kept, key=lambda r: (float(r.arrival_seconds), int(r.ticket_id))
        )
        base = float(ordered[0].arrival_seconds) if (ordered and rebase_arrivals) else 0.0
        requests = []
        for i, record in enumerate(ordered):
            arrival = float(record.arrival_seconds) - base
            relative_deadline = record.deadline_seconds
            requests.append(
                Request(
                    id=i,
                    arrival_seconds=arrival,
                    sequence_length=int(record.sequence_length),
                    priority=int(record.priority),
                    deadline_seconds=(
                        None
                        if relative_deadline is None
                        else arrival + float(relative_deadline)
                    ),
                )
            )
        trace = cls(
            name=name,
            requests=tuple(requests),
            seed=0,
            offered_rps=0.0,
        )
        duration = trace.duration_seconds
        if duration > 0:
            trace = cls(
                name=name,
                requests=trace.requests,
                seed=0,
                offered_rps=len(requests) / duration,
            )
        return trace

    def config_digest(self) -> str:
        """Stable content hash (cache key for replay/planner results)."""
        return stable_digest(
            "RequestTrace",
            {
                "name": self.name,
                "seed": self.seed,
                "requests": [
                    (
                        r.id,
                        r.arrival_seconds,
                        r.sequence_length,
                        r.priority,
                        r.deadline_seconds,
                    )
                    for r in self.requests
                ],
            },
        )


# ------------------------------------------------------------ length samplers
def dataset_lengths(
    dataset: str,
    count: int = 32,
    seed: int = 0,
    max_length: Optional[int] = None,
) -> Tuple[int, ...]:
    """Length pool resampled from a synthetic CAMEO/CASP catalogue.

    ``max_length`` truncates the pool the same way numeric experiments cap
    very long anchors (the 6,879-residue CASP16 target would dominate any
    small-config replay).
    """
    catalog = build_catalog(dataset, count=count, seed=seed)
    lengths = catalog.lengths()
    if max_length is not None:
        lengths = [min(n, int(max_length)) for n in lengths]
    return tuple(lengths)


def mixture_lengths(mix: Sequence[Tuple[int, float]]) -> Tuple[Tuple[int, ...], Tuple[float, ...]]:
    """Split an explicit (length, weight) mix into aligned pools/weights."""
    if not mix:
        raise ValueError("mixture must contain at least one (length, weight) pair")
    lengths = tuple(int(n) for n, _ in mix)
    raw = np.asarray([w for _, w in mix], dtype=float)
    if np.any(raw < 0) or raw.sum() <= 0:
        raise ValueError("mixture weights must be non-negative and sum > 0")
    return lengths, tuple(raw / raw.sum())


def _sample_lengths(
    rng: np.random.Generator,
    count: int,
    length_pool: Sequence[int],
    length_weights: Optional[Sequence[float]],
) -> np.ndarray:
    pool = np.asarray(list(length_pool), dtype=np.int64)
    if pool.size == 0:
        raise ValueError("length pool must not be empty")
    probabilities = None
    if length_weights is not None:
        probabilities = np.asarray(list(length_weights), dtype=float)
        if probabilities.shape != pool.shape:
            raise ValueError("length_weights must align with the length pool")
        probabilities = probabilities / probabilities.sum()
    return rng.choice(pool, size=count, p=probabilities)


def _sample_priorities(
    rng: np.random.Generator, count: int, weights: Sequence[float]
) -> np.ndarray:
    levels = np.arange(len(weights))
    probabilities = np.asarray(list(weights), dtype=float)
    probabilities = probabilities / probabilities.sum()
    return rng.choice(levels, size=count, p=probabilities)


def _annotate(
    arrivals: np.ndarray,
    lengths: np.ndarray,
    priorities: np.ndarray,
    slo: SLOPolicy,
) -> Tuple[Request, ...]:
    requests = []
    has_deadline = slo.base_seconds > 0 or slo.per_residue_seconds > 0
    for i, (arrival, length, priority) in enumerate(zip(arrivals, lengths, priorities)):
        deadline = slo.deadline_for(float(arrival), int(length)) if has_deadline else None
        requests.append(
            Request(
                id=i,
                arrival_seconds=float(arrival),
                sequence_length=int(length),
                priority=int(priority),
                deadline_seconds=deadline,
            )
        )
    return tuple(requests)


# --------------------------------------------------------- arrival generators
#: Registered arrival processes for :func:`create_trace`.
TRACE_GENERATORS: Dict[str, "object"] = {}


def _register_trace(name: str):
    def _wrap(fn):
        TRACE_GENERATORS[name] = fn
        return fn

    return _wrap


def create_trace(kind: str, **kwargs) -> RequestTrace:
    """Build a trace by generator name — the ``create_*`` factory of this module.

    ``kind`` is one of :data:`TRACE_GENERATORS` (``"poisson"``, ``"bursty"``,
    ``"diurnal"``); remaining keyword arguments go to the generator verbatim,
    e.g. ``create_trace("poisson", rate_rps=80.0, num_requests=500,
    length_pool=pool)``.  The same naming family as
    :func:`repro.sim.backend.create_backend`,
    :func:`repro.cluster.routing.create_router`,
    :func:`repro.cluster.scheduler.create_scheduler`, and
    :func:`repro.serving.service.create_service`.
    """
    try:
        generator = TRACE_GENERATORS[kind]
    except KeyError:
        known = ", ".join(sorted(TRACE_GENERATORS))
        raise ValueError(f"unknown trace kind {kind!r}; expected one of: {known}") from None
    return generator(**kwargs)


@_register_trace("poisson")
def poisson_trace(
    rate_rps: float,
    num_requests: int,
    length_pool: Sequence[int],
    length_weights: Optional[Sequence[float]] = None,
    slo: SLOPolicy = SLOPolicy(),
    seed: int = 0,
    name: str = "poisson",
) -> RequestTrace:
    """Poisson arrivals at ``rate_rps`` over a length pool (seed-deterministic)."""
    if rate_rps <= 0:
        raise ValueError("rate_rps must be positive")
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(scale=1.0 / rate_rps, size=num_requests)
    arrivals = np.cumsum(gaps)
    lengths = _sample_lengths(rng, num_requests, length_pool, length_weights)
    priorities = _sample_priorities(rng, num_requests, slo.priority_weights)
    return RequestTrace(
        name=name,
        requests=_annotate(arrivals, lengths, priorities, slo),
        seed=seed,
        offered_rps=float(rate_rps),
    )


@_register_trace("diurnal")
def diurnal_trace(
    rate_rps: float,
    num_requests: int,
    length_pool: Sequence[int],
    length_weights: Optional[Sequence[float]] = None,
    slo: SLOPolicy = SLOPolicy(),
    period_seconds: float = 60.0,
    amplitude: float = 0.6,
    flash_at_seconds: Optional[float] = None,
    flash_duration_seconds: float = 2.0,
    flash_factor: float = 6.0,
    seed: int = 0,
    name: str = "diurnal",
) -> RequestTrace:
    """Sinusoidally modulated arrivals with an optional flash crowd.

    The instantaneous rate is ``rate_rps * (1 + amplitude * sin(2*pi*t /
    period_seconds))`` — a compressed diurnal cycle (peak traffic
    ``(1+amplitude)x`` the mean, trough ``(1-amplitude)x``) — multiplied by
    ``flash_factor`` inside the optional flash-crowd window starting at
    ``flash_at_seconds``.  Arrivals are generated iteratively: each gap is
    exponential at the rate evaluated at the previous arrival (the standard
    piecewise approximation of an inhomogeneous Poisson process), all from
    one seeded generator, so the trace is bit-deterministic like its
    siblings.  This is the traffic shape the closed-loop scenario suite
    pins: the trough is where an autoscaler earns its keep, the flash crowd
    is where admission control does.
    """
    if rate_rps <= 0:
        raise ValueError("rate_rps must be positive")
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    if not 0.0 <= amplitude < 1.0:
        raise ValueError("amplitude must be in [0, 1)")
    if period_seconds <= 0:
        raise ValueError("period_seconds must be positive")
    if flash_factor < 1.0:
        raise ValueError("flash_factor must be >= 1")
    if flash_duration_seconds <= 0:
        raise ValueError("flash_duration_seconds must be positive")
    rng = np.random.default_rng(seed)
    arrivals = np.empty(num_requests, dtype=float)
    t = 0.0
    two_pi = 2.0 * np.pi
    for i in range(num_requests):
        rate = rate_rps * (1.0 + amplitude * np.sin(two_pi * t / period_seconds))
        if (
            flash_at_seconds is not None
            and flash_at_seconds <= t < flash_at_seconds + flash_duration_seconds
        ):
            rate *= flash_factor
        t += float(rng.exponential(scale=1.0 / rate))
        arrivals[i] = t
    lengths = _sample_lengths(rng, num_requests, length_pool, length_weights)
    priorities = _sample_priorities(rng, num_requests, slo.priority_weights)
    return RequestTrace(
        name=name,
        requests=_annotate(arrivals, lengths, priorities, slo),
        seed=seed,
        offered_rps=float(rate_rps),
    )


@_register_trace("bursty")
def bursty_trace(
    rate_rps: float,
    num_requests: int,
    length_pool: Sequence[int],
    length_weights: Optional[Sequence[float]] = None,
    slo: SLOPolicy = SLOPolicy(),
    burst_factor: float = 8.0,
    burst_fraction: float = 0.25,
    mean_burst_requests: float = 12.0,
    seed: int = 0,
    name: str = "bursty",
) -> RequestTrace:
    """On/off modulated Poisson arrivals with mean offered rate ``rate_rps``.

    The process alternates between an *on* state arriving at
    ``burst_factor``-times the baseline-adjusted rate and an *off* state whose
    rate is scaled down so the long-run mean stays at ``rate_rps``;
    ``burst_fraction`` is the fraction of requests issued inside bursts and
    ``mean_burst_requests`` the geometric mean burst size.  Bursts are the
    trace feature that separates queueing policies: a burst landing behind one
    long protein is exactly the head-of-line blocking FIFO cannot undo.
    """
    if not 0.0 < burst_fraction < 1.0:
        raise ValueError("burst_fraction must be in (0, 1)")
    if burst_factor <= 1.0:
        raise ValueError("burst_factor must exceed 1")
    rng = np.random.default_rng(seed)
    # Per-state rates chosen so the request-weighted harmonic mean is rate_rps:
    #   burst_fraction / on_rate + (1 - burst_fraction) / off_rate = 1 / rate_rps
    on_rate = burst_factor * rate_rps
    off_rate = (1.0 - burst_fraction) / (1.0 / rate_rps - burst_fraction / on_rate)
    gaps = np.empty(num_requests, dtype=float)
    issued = 0
    in_burst = False
    while issued < num_requests:
        if in_burst:
            run = max(1, int(rng.geometric(1.0 / mean_burst_requests)))
            rate = on_rate
        else:
            mean_off = mean_burst_requests * (1.0 - burst_fraction) / burst_fraction
            run = max(1, int(rng.geometric(1.0 / mean_off)))
            rate = off_rate
        run = min(run, num_requests - issued)
        gaps[issued : issued + run] = rng.exponential(scale=1.0 / rate, size=run)
        issued += run
        in_burst = not in_burst
    arrivals = np.cumsum(gaps)
    lengths = _sample_lengths(rng, num_requests, length_pool, length_weights)
    priorities = _sample_priorities(rng, num_requests, slo.priority_weights)
    return RequestTrace(
        name=name,
        requests=_annotate(arrivals, lengths, priorities, slo),
        seed=seed,
        offered_rps=float(rate_rps),
    )
