"""Token-wise Adaptive Activation Quantization (AAQ) — the paper's contribution.

AAQ combines the token-wise quantizer of :mod:`repro.core.token_quant` with a
per-group adaptation of precision and outlier handling (Section 4.2):

* Group A (pre-LayerNorm, residual stream): INT8 inliers + 4 outliers,
* Group B (post-LayerNorm):                 INT4 inliers + 4 outliers,
* Group C (remaining activations):          INT4 inliers, no outlier handling,

with weights left unquantized at 16-bit fixed point.  These defaults are the
optimum found by the paper's design-space exploration (Fig. 11); the
exploration itself is reproduced in :mod:`repro.analysis.dse`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Mapping, Optional

import numpy as np

from .._digest import config_digest as _config_digest
from ..ppm.activation_tap import GROUP_A, GROUP_B, GROUP_C, GROUPS, TransformingContext
from .token_quant import TokenQuantConfig, fake_quantize_tokens, packed_fake_quantize_tokens

#: Weight precision of LightNobel (16-bit fixed point, not quantized).
WEIGHT_BITS = 16


@dataclass(frozen=True)
class AAQConfig:
    """Per-group token-wise quantization configuration."""

    group_configs: Mapping[str, TokenQuantConfig] = field(
        default_factory=lambda: {
            GROUP_A: TokenQuantConfig(inlier_bits=8, outlier_count=4),
            GROUP_B: TokenQuantConfig(inlier_bits=4, outlier_count=4),
            GROUP_C: TokenQuantConfig(inlier_bits=4, outlier_count=0),
        }
    )
    weight_bits: int = WEIGHT_BITS

    def __post_init__(self) -> None:
        missing = [g for g in GROUPS if g not in self.group_configs]
        if missing:
            raise ValueError(f"AAQConfig is missing groups: {missing}")

    def __hash__(self) -> int:
        # The generated frozen-dataclass hash trips over the mapping field;
        # hash the key-sorted items instead, consistent with field equality
        # (equal mappings sort to equal item tuples).
        return hash((tuple(sorted(self.group_configs.items())), self.weight_bits))

    @classmethod
    def paper_optimal(cls) -> "AAQConfig":
        """The configuration selected by the paper's DSE (Fig. 11)."""
        return cls()

    @classmethod
    def uniform(cls, inlier_bits: int, outlier_count: int) -> "AAQConfig":
        """A non-adaptive configuration applying one scheme to every group.

        Used by the ablation study comparing adaptive against single-scheme
        token-wise quantization.
        """
        config = TokenQuantConfig(inlier_bits=inlier_bits, outlier_count=outlier_count)
        return cls(group_configs={g: config for g in GROUPS})

    def replace_group(self, group: str, config: TokenQuantConfig) -> "AAQConfig":
        """Copy of this configuration with one group's scheme replaced."""
        if group not in GROUPS:
            raise ValueError(f"unknown group {group!r}")
        updated = dict(self.group_configs)
        updated[group] = config
        return replace(self, group_configs=updated)

    def config_for(self, group: str) -> TokenQuantConfig:
        return self.group_configs[group]

    def config_digest(self) -> str:
        """Canonical hash of the per-group schemes (for digest-keyed caches)."""
        return _config_digest(self)

    # -------------------------------------------------------------- accounting
    def bits_per_token(self, hidden_dim: int, group: str) -> float:
        """Packed size (bits) of one quantized token of the given group."""
        return self.config_for(group).bits_per_token(hidden_dim)

    def average_bits_per_value(self, hidden_dim: int, group_weights: Optional[Dict[str, float]] = None) -> float:
        """Average storage bits per activation value across groups.

        ``group_weights`` gives the fraction of activation volume in each
        group; the default weighting reflects the pair dataflow where most
        activation volume is Group C (post-linear intermediates), a smaller
        share is Group B and the residual stream is Group A.
        """
        weights = group_weights or {GROUP_A: 0.25, GROUP_B: 0.25, GROUP_C: 0.5}
        total_weight = sum(weights.values())
        bits = 0.0
        for group, weight in weights.items():
            bits += weight * self.bits_per_token(hidden_dim, group) / hidden_dim
        return bits / total_weight


class AAQQuantizer:
    """Applies AAQ fake-quantization to activations, by group.

    ``use_packed=True`` routes every tap through the
    :class:`~repro.core.token_quant.PackedQuantizedTensor` pack/unpack round
    trip — the exact storage path of the hardware — instead of the fused
    fake-quantization expression.  Both produce identical reconstructions;
    the packed path is what the layout parity tests exercise end to end.
    """

    def __init__(self, config: Optional[AAQConfig] = None, use_packed: bool = False) -> None:
        self.config = config or AAQConfig.paper_optimal()
        self.use_packed = use_packed

    def _function(self) -> Callable[[np.ndarray, TokenQuantConfig], np.ndarray]:
        return packed_fake_quantize_tokens if self.use_packed else fake_quantize_tokens

    def quantize(self, group: str, values: np.ndarray) -> np.ndarray:
        """Fake-quantize an activation tensor belonging to ``group``."""
        return self._function()(values, self.config.config_for(group))

    def transform_for(self, group: str) -> Callable[[np.ndarray], np.ndarray]:
        """A callable suitable for :class:`TransformingContext`."""
        group_config = self.config.config_for(group)
        function = self._function()
        return lambda values: function(values, group_config)

    def make_context(self, recorder=None) -> TransformingContext:
        """Build an activation context injecting AAQ at every tap point."""
        return TransformingContext(
            transforms={group: self.transform_for(group) for group in GROUPS},
            recorder=recorder,
        )
