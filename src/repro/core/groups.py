"""Activation group classification (Section 4.2, Fig. 6).

The paper groups Pair-Representation activations into three classes by two
features measured per token: the average absolute value and the average number
of 3-sigma outliers.

* **Group A** — pre-LayerNorm residual-stream activations: large values
  (average ≈ 82) and outliers present (≈ 2.3 per token).
* **Group B** — post-LayerNorm activations before a linear layer: small values
  (≈ 4.1) but outliers still present (≈ 1.7 per token).
* **Group C** — everything else in the pair dataflow: small values (≈ 3.9) and
  almost no outliers (≈ 0.6 per token).

The PPM substrate labels its tap points structurally (it knows which
activations sit before/after LayerNorm), so the classifier here serves two
purposes: validating that the structural labels agree with the data-driven
classification (a reproduction of the paper's Fig. 6c analysis) and
classifying activations of models without structural labels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

import numpy as np

from ..ppm.activation_tap import GROUP_A, GROUP_B, GROUP_C, ActivationRecord


@dataclass(frozen=True)
class GroupThresholds:
    """Decision thresholds separating the three activation groups.

    ``large_value`` splits Group A (above) from Groups B/C (below); the split
    is relative to the normalized post-LayerNorm magnitude, so it is expressed
    as a ratio of the observed median magnitude rather than an absolute value.
    ``outlier_presence`` splits Group B (above) from Group C (below).
    """

    large_value_ratio: float = 4.0
    outlier_presence: float = 1.0


@dataclass(frozen=True)
class GroupStatistics:
    """Per-group aggregate statistics (the quantities plotted in Fig. 6c)."""

    group: str
    mean_abs: float
    outliers_per_token: float
    record_count: int


def classify_record(
    record: ActivationRecord,
    reference_magnitude: float,
    thresholds: GroupThresholds = GroupThresholds(),
) -> str:
    """Classify a single activation record into Group A, B or C."""
    if record.mean_abs > thresholds.large_value_ratio * reference_magnitude:
        return GROUP_A
    if record.outlier_count_3sigma >= thresholds.outlier_presence:
        return GROUP_B
    return GROUP_C


def classify_records(
    records: Iterable[ActivationRecord],
    thresholds: GroupThresholds = GroupThresholds(),
) -> Dict[str, str]:
    """Classify every record; returns a mapping of tap name to group."""
    records = list(records)
    if not records:
        return {}
    reference = float(np.median([r.mean_abs for r in records]))
    reference = max(reference, 1e-9)
    return {r.name: classify_record(r, reference, thresholds) for r in records}


def group_statistics(records: Iterable[ActivationRecord]) -> List[GroupStatistics]:
    """Aggregate Fig. 6c-style statistics from structurally labelled records."""
    by_group: Dict[str, List[ActivationRecord]] = {GROUP_A: [], GROUP_B: [], GROUP_C: []}
    for record in records:
        by_group.setdefault(record.group, []).append(record)
    stats = []
    for group in (GROUP_A, GROUP_B, GROUP_C):
        members = by_group[group]
        if not members:
            continue
        stats.append(
            GroupStatistics(
                group=group,
                mean_abs=float(np.mean([r.mean_abs for r in members])),
                outliers_per_token=float(np.mean([r.outlier_count_3sigma for r in members])),
                record_count=len(members),
            )
        )
    return stats


def classification_agreement(
    records: Iterable[ActivationRecord],
    thresholds: GroupThresholds = GroupThresholds(),
) -> float:
    """Fraction of records whose data-driven class matches the structural label.

    Used to reproduce the paper's claim that the two features (value range and
    outlier presence) are sufficient to separate the groups.
    """
    records = list(records)
    if not records:
        return 1.0
    predicted = classify_records(records, thresholds)
    matches = sum(1 for r in records if predicted[r.name] == r.group)
    return matches / len(records)
