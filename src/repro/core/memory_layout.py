"""Packed memory layout for quantized tokens (Section 4.3, Fig. 7).

Quantized tokens are stored as: inlier values, then outlier values, then the
scaling factor, then outlier indices.  Multiple tokens are grouped into blocks
sized to the memory-channel width so one block read fills a whole burst.  The
Token Aligner of the accelerator decodes these blocks back into per-token
scratchpad lines.

The layout object below computes exact byte offsets, block packing and
bandwidth utilization; the hardware simulator and the footprint models consume
these numbers, and the tests assert the pack/unpack round trip is lossless.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from .token_quant import (
    INDEX_BITS,
    SCALE_BITS,
    PackedQuantizedTensor,
    QuantizedToken,
    TokenQuantConfig,
)


@dataclass(frozen=True)
class TokenLayout:
    """Byte offsets of the fields of one packed token."""

    inlier_bytes: float
    outlier_bytes: float
    scale_bytes: float
    index_bytes: float

    @property
    def total_bytes(self) -> float:
        return self.inlier_bytes + self.outlier_bytes + self.scale_bytes + self.index_bytes

    def field_offsets(self) -> Tuple[float, float, float, float]:
        """Start offsets of (inliers, outliers, scale, indices) in bytes."""
        inlier_start = 0.0
        outlier_start = inlier_start + self.inlier_bytes
        scale_start = outlier_start + self.outlier_bytes
        index_start = scale_start + self.scale_bytes
        return inlier_start, outlier_start, scale_start, index_start


def token_layout(config: TokenQuantConfig, hidden_dim: int) -> TokenLayout:
    """Field sizes (bytes) of one token quantized under ``config``."""
    outliers = min(config.outlier_count, hidden_dim)
    inliers = hidden_dim - outliers
    return TokenLayout(
        inlier_bytes=inliers * config.inlier_bits / 8.0,
        outlier_bytes=outliers * config.outlier_bits / 8.0,
        scale_bytes=SCALE_BITS / 8.0,
        index_bytes=outliers * INDEX_BITS / 8.0,
    )


@dataclass
class MemoryBlock:
    """A channel-width block holding several packed tokens."""

    token_indices: List[int]
    used_bytes: float
    capacity_bytes: float

    @property
    def utilization(self) -> float:
        return self.used_bytes / self.capacity_bytes if self.capacity_bytes else 0.0


@dataclass
class BlockedLayout:
    """Packing of a set of tokens into channel-width memory blocks."""

    blocks: List[MemoryBlock]
    token_bytes: float
    channel_bytes: float

    @property
    def total_bytes(self) -> float:
        return len(self.blocks) * self.channel_bytes

    @property
    def payload_bytes(self) -> float:
        return sum(block.used_bytes for block in self.blocks)

    @property
    def utilization(self) -> float:
        return self.payload_bytes / self.total_bytes if self.blocks else 0.0


def pack_tokens_into_blocks(
    num_tokens: int,
    config: TokenQuantConfig,
    hidden_dim: int,
    channel_bytes: int = 64,
) -> BlockedLayout:
    """Group ``num_tokens`` quantized tokens into channel-width blocks.

    Tokens of the same quantization scheme have identical packed size, so the
    packing is a simple greedy fill; the returned layout exposes the number of
    blocks (memory transactions) and the achieved bandwidth utilization.
    """
    if channel_bytes <= 0:
        raise ValueError("channel_bytes must be positive")
    per_token = token_layout(config, hidden_dim).total_bytes
    if per_token > channel_bytes:
        # A token spans multiple channel beats; blocks hold one token each,
        # rounded up to a whole number of beats.
        beats = int(np.ceil(per_token / channel_bytes))
        blocks = [
            MemoryBlock(token_indices=[i], used_bytes=per_token, capacity_bytes=beats * channel_bytes)
            for i in range(num_tokens)
        ]
        return BlockedLayout(blocks=blocks, token_bytes=per_token, channel_bytes=channel_bytes)

    tokens_per_block = int(channel_bytes // per_token)
    blocks = []
    for start in range(0, num_tokens, tokens_per_block):
        indices = list(range(start, min(start + tokens_per_block, num_tokens)))
        blocks.append(
            MemoryBlock(
                token_indices=indices,
                used_bytes=len(indices) * per_token,
                capacity_bytes=channel_bytes,
            )
        )
    return BlockedLayout(blocks=blocks, token_bytes=per_token, channel_bytes=channel_bytes)


def pack_packed_tensor(packed: PackedQuantizedTensor) -> np.ndarray:
    """Vectorized Fig. 7 serialization of a whole :class:`PackedQuantizedTensor`.

    Emits exactly the same flat array as :func:`pack_quantized_tokens` applied
    to ``packed.to_tokens()`` — per token: inliers, outliers, the two scaling
    factors, then the outlier indices — but in one ``hstack`` over the columnar
    fields instead of a Python loop over tokens.
    """
    rows = np.hstack(
        [
            np.asarray(packed.inlier_values, dtype=np.float64),
            np.asarray(packed.outlier_values, dtype=np.float64),
            np.asarray(packed.scales, dtype=np.float64)[:, None],
            np.asarray(packed.outlier_scales, dtype=np.float64)[:, None],
            np.asarray(packed.outlier_indices, dtype=np.float64),
        ]
    )
    return rows.reshape(-1)


def unpack_packed_tensor(flat: np.ndarray, template: PackedQuantizedTensor) -> PackedQuantizedTensor:
    """Vectorized inverse of :func:`pack_packed_tensor` (layout from ``template``)."""
    num_tokens = template.num_tokens
    n_in = template.inlier_values.shape[-1]
    n_out = template.outlier_values.shape[-1]
    rows = np.asarray(flat, dtype=np.float64).reshape(num_tokens, n_in + n_out + 2 + n_out)
    return PackedQuantizedTensor(
        inlier_values=rows[:, :n_in],
        inlier_indices=template.inlier_indices,
        outlier_values=rows[:, n_in:n_in + n_out],
        outlier_indices=rows[:, n_in + n_out + 2:].astype(np.int64),
        scales=rows[:, n_in + n_out],
        outlier_scales=rows[:, n_in + n_out + 1],
        hidden_dim=template.hidden_dim,
        config=template.config,
    )


def blocked_layout_for(packed: PackedQuantizedTensor, channel_bytes: int = 64) -> BlockedLayout:
    """Channel-width block packing of a whole packed tensor (Fig. 7 blocks)."""
    return pack_tokens_into_blocks(
        packed.num_tokens, packed.config, packed.hidden_dim, channel_bytes=channel_bytes
    )


def pack_quantized_tokens(tokens) -> np.ndarray:
    """Serialize quantized tokens into a flat byte-granular array (for tests).

    The serialization follows the Fig. 7 field order.  Values are stored one
    byte per field element (sub-byte fields are padded up), which keeps the
    round trip exact; the *size accounting* used by the experiments relies on
    :func:`token_layout`, not on this test-oriented serializer.  Accepts a
    :class:`PackedQuantizedTensor` (fast columnar path) or a sequence of
    :class:`QuantizedToken` objects.
    """
    if isinstance(tokens, PackedQuantizedTensor):
        return pack_packed_tensor(tokens)
    parts: List[np.ndarray] = []
    for token in tokens:
        parts.append(np.asarray(token.inlier_values, dtype=np.float64))
        parts.append(np.asarray(token.outlier_values, dtype=np.float64))
        parts.append(np.asarray([token.scale, token.outlier_scale], dtype=np.float64))
        parts.append(np.asarray(token.outlier_indices, dtype=np.float64))
    if not parts:
        return np.empty(0, dtype=np.float64)
    return np.concatenate(parts)


def unpack_quantized_tokens(
    packed: np.ndarray,
    template: Sequence[QuantizedToken],
) -> List[QuantizedToken]:
    """Inverse of :func:`pack_quantized_tokens`, using tokens as layout templates."""
    cursor = 0
    restored: List[QuantizedToken] = []
    for token in template:
        n_in = token.inlier_values.size
        n_out = token.outlier_values.size
        inliers = packed[cursor:cursor + n_in]
        cursor += n_in
        outliers = packed[cursor:cursor + n_out]
        cursor += n_out
        scale, outlier_scale = packed[cursor:cursor + 2]
        cursor += 2
        indices = packed[cursor:cursor + n_out].astype(np.int64)
        cursor += n_out
        restored.append(
            QuantizedToken(
                inlier_values=inliers,
                inlier_indices=token.inlier_indices,
                outlier_values=outliers,
                outlier_indices=indices,
                scale=float(scale),
                outlier_scale=float(outlier_scale),
                hidden_dim=token.hidden_dim,
                config=token.config,
            )
        )
    return restored
