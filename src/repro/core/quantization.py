"""Uniform symmetric quantization primitives (Section 2.2 / Equation 1).

All quantizers here are *fake-quantizers*: they quantize to an integer grid
and immediately dequantize back to floating point.  That is exactly what the
paper's accuracy study needs (the quantization error is what matters), while
the size/footprint accounting uses the bit-widths directly.

Granularities follow Section 2.2:

* tensor-wise  — one scaling factor for the whole tensor,
* channel-wise — one scaling factor per channel (last-axis index),
* token-wise   — one scaling factor per token (vector along the last axis).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def integer_bounds(bits: int) -> int:
    """Largest representable magnitude of a signed ``bits``-bit integer grid."""
    if bits < 2 or bits > 32:
        raise ValueError("bits must be between 2 and 32")
    return 2 ** (bits - 1) - 1


def symmetric_scale(max_abs: np.ndarray | float, bits: int) -> np.ndarray | float:
    """Scaling factor of Equation 1: ``sigma = M / (2^(m-1) - 1)``."""
    qmax = integer_bounds(bits)
    return np.maximum(np.asarray(max_abs, dtype=np.float64), 1e-12) / qmax


def quantize_values(values: np.ndarray, scale: np.ndarray | float, bits: int) -> np.ndarray:
    """Quantize ``values`` onto the signed integer grid defined by ``scale``."""
    qmax = integer_bounds(bits)
    quantized = np.round(values / scale)
    return np.clip(quantized, -qmax, qmax)


def dequantize_values(quantized: np.ndarray, scale: np.ndarray | float) -> np.ndarray:
    """Map integer-grid values back to real values."""
    return quantized * scale


@dataclass(frozen=True)
class QuantizationError:
    """Error summary of a quantize/dequantize round trip."""

    rmse: float
    max_abs_error: float
    relative_rmse: float


def quantization_error(original: np.ndarray, reconstructed: np.ndarray) -> QuantizationError:
    """RMSE / max error / relative RMSE between an array and its reconstruction."""
    diff = np.asarray(original, dtype=np.float64) - np.asarray(reconstructed, dtype=np.float64)
    rmse = float(np.sqrt(np.mean(diff ** 2)))
    denom = float(np.sqrt(np.mean(np.asarray(original, dtype=np.float64) ** 2)))
    return QuantizationError(
        rmse=rmse,
        max_abs_error=float(np.max(np.abs(diff))) if diff.size else 0.0,
        relative_rmse=rmse / max(denom, 1e-12),
    )


def fake_quantize_tensorwise(values: np.ndarray, bits: int) -> np.ndarray:
    """Quantize/dequantize with a single scaling factor for the whole tensor."""
    values = np.asarray(values, dtype=np.float64)
    scale = symmetric_scale(np.max(np.abs(values)) if values.size else 0.0, bits)
    return dequantize_values(quantize_values(values, scale, bits), scale)


def fake_quantize_channelwise(values: np.ndarray, bits: int) -> np.ndarray:
    """Quantize/dequantize with one scaling factor per channel (last axis)."""
    values = np.asarray(values, dtype=np.float64)
    flat = values.reshape(-1, values.shape[-1])
    max_abs = np.max(np.abs(flat), axis=0)
    scale = symmetric_scale(max_abs, bits)
    reconstructed = dequantize_values(quantize_values(flat, scale, bits), scale)
    return reconstructed.reshape(values.shape)


def fake_quantize_tokenwise(values: np.ndarray, bits: int) -> np.ndarray:
    """Quantize/dequantize with one scaling factor per token (last-axis vector)."""
    values = np.asarray(values, dtype=np.float64)
    flat = values.reshape(-1, values.shape[-1])
    max_abs = np.max(np.abs(flat), axis=-1, keepdims=True)
    scale = symmetric_scale(max_abs, bits)
    reconstructed = dequantize_values(quantize_values(flat, scale, bits), scale)
    return reconstructed.reshape(values.shape)


GRANULARITY_FUNCTIONS = {
    "tensor": fake_quantize_tensorwise,
    "channel": fake_quantize_channelwise,
    "token": fake_quantize_tokenwise,
}


def fake_quantize(values: np.ndarray, bits: int, granularity: str = "token") -> np.ndarray:
    """Dispatch fake quantization by granularity name."""
    try:
        function = GRANULARITY_FUNCTIONS[granularity]
    except KeyError:
        raise ValueError(
            f"unknown granularity {granularity!r}; expected one of {sorted(GRANULARITY_FUNCTIONS)}"
        ) from None
    return function(values, bits)
