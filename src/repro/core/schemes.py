"""Quantization schemes compared in the paper (Table 1, Fig. 13).

Each scheme bundles three things:

1. **Activation transforms** — per-group fake-quantization callables injected
   into the PPM forward pass for the accuracy experiments.  The coverage per
   group follows each method's published behaviour (e.g. SmoothQuant and
   LLM.int8() only quantize linear-layer inputs, so the pre-LayerNorm residual
   stream — Group A — stays in FP16; LightNobel quantizes all three groups).
2. **Weight handling** — MEFold and Tender quantize weights (INT4), the other
   baselines use INT8 or FP16 weights; LightNobel keeps 16-bit weights.
3. **Footprint accounting** — effective bits per activation/weight element and
   the fraction of the Pair-Representation activation volume covered, used to
   regenerate Table 1.

These are functional equivalents, not line-by-line ports, of the cited
systems: what matters for the reproduction is the quantization granularity,
precision and coverage each method applies, which is what drives both the
accuracy ordering of Fig. 13 and the footprint ordering of Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from ..ppm.activation_tap import GROUP_A, GROUP_B, GROUP_C, GROUPS, TransformingContext
from .aaq import AAQConfig, AAQQuantizer
from .quantization import fake_quantize_channelwise, fake_quantize_tensorwise, fake_quantize_tokenwise
from .token_quant import TokenQuantConfig, fake_quantize_tokens

Transform = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class SchemeDescription:
    """Row metadata of Table 1."""

    name: str
    activation_grouping: str
    activation_precision: str
    weight_grouping: str
    weight_precision: str


@dataclass
class QuantizationScheme:
    """A complete activation/weight quantization scheme."""

    description: SchemeDescription
    activation_transforms: Dict[str, Transform] = field(default_factory=dict)
    #: Effective stored bits per *quantized* activation value.
    activation_bits: float = 16.0
    #: Fraction of the quantizable Pair-Representation activation volume the
    #: scheme actually quantizes (drives the Table 1 footprint).
    activation_coverage: float = 0.0
    #: Stored bits per weight value.
    weight_bits: float = 16.0
    #: Per-group weight fake-quantization bits (None = weights untouched).
    weight_quant_bits: Optional[int] = None
    weight_quant_granularity: str = "tensor"

    @property
    def name(self) -> str:
        return self.description.name

    def make_context(self, recorder=None) -> TransformingContext:
        """Activation context applying this scheme's activation quantization."""
        return TransformingContext(transforms=dict(self.activation_transforms), recorder=recorder)

    def quantize_weights(self, model) -> int:
        """Fake-quantize the model's weights in place (returns #tensors touched).

        Only schemes with ``weight_quant_bits`` set modify weights; LayerNorm
        scale/shift parameters and biases are left untouched, as is standard.
        """
        if self.weight_quant_bits is None:
            return 0
        touched = 0
        for module in (model.input_embedding, model.trunk, model.structure_module):
            for name, parameter in module.named_parameters():
                leaf = name.rsplit(".", 1)[-1]
                if leaf not in ("weight",):
                    continue
                if self.weight_quant_granularity == "channel":
                    parameter[...] = fake_quantize_channelwise(parameter, self.weight_quant_bits)
                else:
                    parameter[...] = fake_quantize_tensorwise(parameter, self.weight_quant_bits)
                touched += 1
        return touched

    def effective_activation_bytes(self, baseline_bytes: float = 2.0) -> float:
        """Average bytes per activation element over the quantizable volume."""
        quantized_bytes = self.activation_bits / 8.0
        return (
            self.activation_coverage * quantized_bytes
            + (1.0 - self.activation_coverage) * baseline_bytes
        )

    def effective_weight_bytes(self) -> float:
        return self.weight_bits / 8.0


# --------------------------------------------------------------------------- helpers
def _tokenwise(bits: int) -> Transform:
    return lambda values: fake_quantize_tokenwise(values, bits)


def _tensorwise(bits: int) -> Transform:
    return lambda values: fake_quantize_tensorwise(values, bits)


def _channelwise(bits: int) -> Transform:
    return lambda values: fake_quantize_channelwise(values, bits)


def _tokenwise_with_outliers(bits: int, outliers: int) -> Transform:
    config = TokenQuantConfig(inlier_bits=bits, outlier_count=outliers)
    return lambda values: fake_quantize_tokens(values, config)


# --------------------------------------------------------------------------- schemes
def baseline_fp16() -> QuantizationScheme:
    """The unquantized ESMFold baseline (FP16 activations and weights)."""
    return QuantizationScheme(
        description=SchemeDescription(
            name="Baseline",
            activation_grouping="No Quant.",
            activation_precision="FP16",
            weight_grouping="No Quant.",
            weight_precision="FP16",
        ),
        activation_transforms={},
        activation_bits=16.0,
        activation_coverage=0.0,
        weight_bits=16.0,
    )


def smoothquant() -> QuantizationScheme:
    """SmoothQuant: token-wise INT8 activations, channel-wise INT8 weights.

    SmoothQuant migrates outlier magnitude from activations into weights and
    quantizes the inputs of linear layers; the residual stream (Group A) is
    not quantized.
    """
    return QuantizationScheme(
        description=SchemeDescription(
            name="SmoothQuant",
            activation_grouping="Token-wise",
            activation_precision="INT8",
            weight_grouping="Channel-wise",
            weight_precision="INT8",
        ),
        activation_transforms={GROUP_B: _tokenwise(8), GROUP_C: _tokenwise(8)},
        activation_bits=8.0,
        activation_coverage=0.52,
        weight_bits=8.0,
        weight_quant_bits=8,
        weight_quant_granularity="channel",
    )


def llm_int8() -> QuantizationScheme:
    """LLM.int8(): token-wise INT8 with FP16 outlier decomposition."""
    return QuantizationScheme(
        description=SchemeDescription(
            name="LLM.int8()",
            activation_grouping="Token-wise",
            activation_precision="INT8/FP16",
            weight_grouping="Channel-wise",
            weight_precision="INT8/FP16",
        ),
        activation_transforms={
            GROUP_B: _tokenwise_with_outliers(8, 4),
            GROUP_C: _tokenwise_with_outliers(8, 4),
        },
        activation_bits=8.5,
        activation_coverage=0.52,
        weight_bits=8.1,
        weight_quant_bits=8,
        weight_quant_granularity="channel",
    )


def ptq4protein() -> QuantizationScheme:
    """PTQ4Protein: tensor-wise INT8 activations and weights."""
    return QuantizationScheme(
        description=SchemeDescription(
            name="PTQ4Protein",
            activation_grouping="Tensor-wise",
            activation_precision="INT8",
            weight_grouping="Tensor-wise",
            weight_precision="INT8",
        ),
        activation_transforms={GROUP_B: _tensorwise(8), GROUP_C: _tensorwise(8)},
        activation_bits=8.0,
        activation_coverage=0.33,
        weight_bits=8.0,
        weight_quant_bits=8,
        weight_quant_granularity="tensor",
    )


def tender() -> QuantizationScheme:
    """Tender: channel-wise INT4 activations and weights.

    Channel-wise INT4 cannot represent the token-concentrated outliers of the
    PPM pair activations, which is what produces the TM-score drop in Fig. 13.
    """
    return QuantizationScheme(
        description=SchemeDescription(
            name="Tender",
            activation_grouping="Channel-Wise",
            activation_precision="INT4",
            weight_grouping="Channel-wise",
            weight_precision="INT4",
        ),
        activation_transforms={
            GROUP_A: _channelwise(4),
            GROUP_B: _channelwise(4),
            GROUP_C: _channelwise(4),
        },
        activation_bits=4.0,
        activation_coverage=0.33,
        weight_bits=4.0,
        weight_quant_bits=4,
        weight_quant_granularity="channel",
    )


def mefold() -> QuantizationScheme:
    """MEFold: weight-only INT4 quantization, activations stay FP16."""
    return QuantizationScheme(
        description=SchemeDescription(
            name="MEFold",
            activation_grouping="No Quant.",
            activation_precision="FP16",
            weight_grouping="Tensor-wise",
            weight_precision="INT4/FP16",
        ),
        activation_transforms={},
        activation_bits=16.0,
        activation_coverage=0.0,
        weight_bits=4.2,
        weight_quant_bits=4,
        weight_quant_granularity="channel",
    )


def lightnobel_aaq(config: Optional[AAQConfig] = None) -> QuantizationScheme:
    """LightNobel's Token-wise Adaptive Activation Quantization."""
    quantizer = AAQQuantizer(config or AAQConfig.paper_optimal())
    hidden_dim = 128  # paper-scale pair hidden dim for the accounting
    average_bits = quantizer.config.average_bits_per_value(hidden_dim)
    return QuantizationScheme(
        description=SchemeDescription(
            name="LightNobel (AAQ)",
            activation_grouping="Token-wise",
            activation_precision="INT4/INT8/INT16",
            weight_grouping="No Quant.",
            weight_precision="INT16",
        ),
        activation_transforms={group: quantizer.transform_for(group) for group in GROUPS},
        activation_bits=average_bits,
        activation_coverage=0.92,
        weight_bits=16.0,
    )


SCHEME_FACTORIES: Dict[str, Callable[[], QuantizationScheme]] = {
    "Baseline": baseline_fp16,
    "SmoothQuant": smoothquant,
    "LLM.int8()": llm_int8,
    "PTQ4Protein": ptq4protein,
    "Tender": tender,
    "MEFold": mefold,
    "LightNobel (AAQ)": lightnobel_aaq,
}


def all_schemes() -> Dict[str, QuantizationScheme]:
    """Fresh instances of every scheme compared in the paper."""
    return {name: factory() for name, factory in SCHEME_FACTORIES.items()}


def get_scheme(name: str) -> QuantizationScheme:
    """Instantiate one scheme by its Table 1 name."""
    try:
        return SCHEME_FACTORIES[name]()
    except KeyError:
        raise ValueError(f"unknown scheme {name!r}; expected one of {sorted(SCHEME_FACTORIES)}") from None
