"""Token-wise quantization with dynamic top-k outlier handling (Section 4.1).

This is the baseline quantization underlying AAQ: every token (a vector along
the hidden dimension, e.g. a (1, 1, Hz) slice of the Pair Representation) is
quantized independently with

* a **dynamic scaling factor** computed at runtime from the token's inliers,
* **dynamic outlier handling**: the ``k`` largest-magnitude values of the
  token are carved out and stored separately at INT16 precision (the paper's
  top-k selection, implemented in hardware by the VVPU's bitonic sorter),
* **uniform symmetric quantization** of the remaining inliers at INT4/INT8.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from .quantization import dequantize_values, integer_bounds, quantize_values, symmetric_scale

#: Precision used for outlier values (paper: INT16 to minimize information loss).
OUTLIER_BITS = 16

#: Precision used for per-token scaling factors in the packed layout (FP16).
SCALE_BITS = 16

#: Precision used for each outlier index in the packed layout.
INDEX_BITS = 8


@dataclass(frozen=True)
class TokenQuantConfig:
    """Quantization scheme applied to one token.

    Parameters mirror the knobs explored in the paper's design-space
    exploration (Fig. 11): inlier precision (4 or 8 bit) and the number of
    outliers handled per token (0 disables outlier handling).
    """

    inlier_bits: int = 8
    outlier_count: int = 4
    outlier_bits: int = OUTLIER_BITS

    def __post_init__(self) -> None:
        if self.inlier_bits not in (2, 3, 4, 6, 8, 16):
            raise ValueError(f"unsupported inlier precision: {self.inlier_bits}")
        if self.outlier_count < 0:
            raise ValueError("outlier_count must be non-negative")
        if self.outlier_bits not in (8, 16, 32):
            raise ValueError(f"unsupported outlier precision: {self.outlier_bits}")

    def bits_per_token(self, hidden_dim: int) -> float:
        """Storage cost of one quantized token in bits (Fig. 7 layout).

        inliers + outlier values + outlier indices + one scaling factor.
        """
        outliers = min(self.outlier_count, hidden_dim)
        inliers = hidden_dim - outliers
        return (
            inliers * self.inlier_bits
            + outliers * self.outlier_bits
            + outliers * INDEX_BITS
            + SCALE_BITS
        )

    def bytes_per_token(self, hidden_dim: int) -> float:
        return self.bits_per_token(hidden_dim) / 8.0

    def compression_ratio(self, hidden_dim: int, baseline_bits: int = 16) -> float:
        """Size reduction versus an unquantized token at ``baseline_bits``."""
        return (hidden_dim * baseline_bits) / self.bits_per_token(hidden_dim)


@dataclass
class QuantizedToken:
    """One token in the packed representation of Fig. 7."""

    inlier_values: np.ndarray      # signed integers on the inlier grid
    inlier_indices: np.ndarray     # positions of inliers within the token
    outlier_values: np.ndarray     # INT16-grid integers for outliers
    outlier_indices: np.ndarray    # positions of outliers within the token
    scale: float                   # per-token scaling factor (inliers)
    outlier_scale: float           # scaling factor for the outlier grid
    hidden_dim: int
    config: TokenQuantConfig

    def dequantize(self) -> np.ndarray:
        """Reconstruct the token vector."""
        token = np.zeros(self.hidden_dim, dtype=np.float64)
        token[self.inlier_indices] = dequantize_values(self.inlier_values, self.scale)
        if self.outlier_indices.size:
            token[self.outlier_indices] = dequantize_values(self.outlier_values, self.outlier_scale)
        return token

    def bits(self) -> float:
        return self.config.bits_per_token(self.hidden_dim)


def select_outliers(token: np.ndarray, count: int) -> np.ndarray:
    """Indices of the ``count`` largest-magnitude values of ``token`` (top-k)."""
    if count <= 0:
        return np.empty(0, dtype=np.int64)
    count = min(count, token.size)
    return np.argpartition(np.abs(token), -count)[-count:]


def quantize_token(token: np.ndarray, config: TokenQuantConfig) -> QuantizedToken:
    """Quantize a single token vector with dynamic outlier handling."""
    token = np.asarray(token, dtype=np.float64).reshape(-1)
    hidden_dim = token.size
    outlier_indices = np.sort(select_outliers(token, config.outlier_count))
    mask = np.ones(hidden_dim, dtype=bool)
    mask[outlier_indices] = False
    inlier_indices = np.nonzero(mask)[0]

    inliers = token[inlier_indices]
    outliers = token[outlier_indices]

    inlier_scale = float(symmetric_scale(np.max(np.abs(inliers)) if inliers.size else 0.0, config.inlier_bits))
    outlier_scale = float(
        symmetric_scale(np.max(np.abs(outliers)) if outliers.size else 0.0, config.outlier_bits)
    )
    return QuantizedToken(
        inlier_values=quantize_values(inliers, inlier_scale, config.inlier_bits),
        inlier_indices=inlier_indices,
        outlier_values=quantize_values(outliers, outlier_scale, config.outlier_bits),
        outlier_indices=outlier_indices,
        scale=inlier_scale,
        outlier_scale=outlier_scale,
        hidden_dim=hidden_dim,
        config=config,
    )


def quantize_tokens(tokens: np.ndarray, config: TokenQuantConfig) -> List[QuantizedToken]:
    """Quantize a 2-D array of tokens (rows are tokens) one token at a time."""
    tokens = np.asarray(tokens, dtype=np.float64)
    if tokens.ndim != 2:
        raise ValueError("tokens must be a 2-D array of shape (num_tokens, hidden_dim)")
    return [quantize_token(row, config) for row in tokens]


def fake_quantize_tokens(values: np.ndarray, config: TokenQuantConfig) -> np.ndarray:
    """Vectorized token-wise fake quantization with top-k outlier handling.

    Equivalent to ``quantize_token`` + ``dequantize`` applied to every token of
    ``values`` (tokens are vectors along the last axis), but implemented with
    array operations so it can be injected into the PPM forward pass cheaply.
    """
    values = np.asarray(values, dtype=np.float64)
    original_shape = values.shape
    flat = values.reshape(-1, original_shape[-1])
    num_tokens, hidden_dim = flat.shape
    count = min(config.outlier_count, hidden_dim)

    abs_values = np.abs(flat)
    if count > 0:
        outlier_positions = np.argpartition(abs_values, -count, axis=-1)[:, -count:]
        outlier_mask = np.zeros_like(flat, dtype=bool)
        rows = np.repeat(np.arange(num_tokens), count)
        outlier_mask[rows, outlier_positions.reshape(-1)] = True
    else:
        outlier_mask = np.zeros_like(flat, dtype=bool)

    inlier_abs = np.where(outlier_mask, 0.0, abs_values)
    inlier_max = inlier_abs.max(axis=-1, keepdims=True)
    inlier_scale = symmetric_scale(inlier_max, config.inlier_bits)
    inlier_recon = dequantize_values(
        quantize_values(flat, inlier_scale, config.inlier_bits), inlier_scale
    )

    if count > 0:
        outlier_abs = np.where(outlier_mask, abs_values, 0.0)
        outlier_max = outlier_abs.max(axis=-1, keepdims=True)
        outlier_scale = symmetric_scale(outlier_max, config.outlier_bits)
        outlier_recon = dequantize_values(
            quantize_values(flat, outlier_scale, config.outlier_bits), outlier_scale
        )
        reconstructed = np.where(outlier_mask, outlier_recon, inlier_recon)
    else:
        reconstructed = inlier_recon
    return reconstructed.reshape(original_shape)


def token_quantization_rmse(values: np.ndarray, config: TokenQuantConfig) -> float:
    """RMSE of the token-wise fake-quantization round trip."""
    reconstructed = fake_quantize_tokens(values, config)
    return float(np.sqrt(np.mean((np.asarray(values, dtype=np.float64) - reconstructed) ** 2)))
