"""Token-wise quantization with dynamic top-k outlier handling (Section 4.1).

This is the baseline quantization underlying AAQ: every token (a vector along
the hidden dimension, e.g. a (1, 1, Hz) slice of the Pair Representation) is
quantized independently with

* a **dynamic scaling factor** computed at runtime from the token's inliers,
* **dynamic outlier handling**: the ``k`` largest-magnitude values of the
  token are carved out and stored separately at INT16 precision (the paper's
  top-k selection, implemented in hardware by the VVPU's bitonic sorter),
* **uniform symmetric quantization** of the remaining inliers at INT4/INT8.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from .quantization import dequantize_values, integer_bounds, quantize_values, symmetric_scale

#: Precision used for outlier values (paper: INT16 to minimize information loss).
OUTLIER_BITS = 16

#: Precision used for per-token scaling factors in the packed layout (FP16).
SCALE_BITS = 16

#: Precision used for each outlier index in the packed layout.
INDEX_BITS = 8


@dataclass(frozen=True)
class TokenQuantConfig:
    """Quantization scheme applied to one token.

    Parameters mirror the knobs explored in the paper's design-space
    exploration (Fig. 11): inlier precision (4 or 8 bit) and the number of
    outliers handled per token (0 disables outlier handling).
    """

    inlier_bits: int = 8
    outlier_count: int = 4
    outlier_bits: int = OUTLIER_BITS

    def __post_init__(self) -> None:
        if self.inlier_bits not in (2, 3, 4, 6, 8, 16):
            raise ValueError(f"unsupported inlier precision: {self.inlier_bits}")
        if self.outlier_count < 0:
            raise ValueError("outlier_count must be non-negative")
        if self.outlier_bits not in (8, 16, 32):
            raise ValueError(f"unsupported outlier precision: {self.outlier_bits}")

    def bits_per_token(self, hidden_dim: int) -> float:
        """Storage cost of one quantized token in bits (Fig. 7 layout).

        inliers + outlier values + outlier indices + one scaling factor.
        """
        outliers = min(self.outlier_count, hidden_dim)
        inliers = hidden_dim - outliers
        return (
            inliers * self.inlier_bits
            + outliers * self.outlier_bits
            + outliers * INDEX_BITS
            + SCALE_BITS
        )

    def bytes_per_token(self, hidden_dim: int) -> float:
        return self.bits_per_token(hidden_dim) / 8.0

    def compression_ratio(self, hidden_dim: int, baseline_bits: int = 16) -> float:
        """Size reduction versus an unquantized token at ``baseline_bits``."""
        return (hidden_dim * baseline_bits) / self.bits_per_token(hidden_dim)


@dataclass
class QuantizedToken:
    """One token in the packed representation of Fig. 7."""

    inlier_values: np.ndarray      # signed integers on the inlier grid
    inlier_indices: np.ndarray     # positions of inliers within the token
    outlier_values: np.ndarray     # INT16-grid integers for outliers
    outlier_indices: np.ndarray    # positions of outliers within the token
    scale: float                   # per-token scaling factor (inliers)
    outlier_scale: float           # scaling factor for the outlier grid
    hidden_dim: int
    config: TokenQuantConfig

    def dequantize(self) -> np.ndarray:
        """Reconstruct the token vector."""
        token = np.zeros(self.hidden_dim, dtype=np.float64)
        token[self.inlier_indices] = dequantize_values(self.inlier_values, self.scale)
        if self.outlier_indices.size:
            token[self.outlier_indices] = dequantize_values(self.outlier_values, self.outlier_scale)
        return token

    def bits(self) -> float:
        return self.config.bits_per_token(self.hidden_dim)


def select_outliers(token: np.ndarray, count: int) -> np.ndarray:
    """Indices of the ``count`` largest-magnitude values of ``token`` (top-k)."""
    if count <= 0:
        return np.empty(0, dtype=np.int64)
    count = min(count, token.size)
    return np.argpartition(np.abs(token), -count)[-count:]


@dataclass
class PackedQuantizedTensor:
    """A batch of quantized tokens in struct-of-arrays (columnar) layout.

    The per-token representation of Fig. 7 stored as one array per field:
    row ``i`` of every array describes token ``i``.  ``pack`` replaces the
    per-token Python loop of :func:`quantize_tokens` with batched array
    operations; ``unpack`` is the vectorized inverse.  All tokens share one
    :class:`TokenQuantConfig`, so the field shapes are rectangular:
    ``(num_tokens, hidden_dim - k)`` inliers and ``(num_tokens, k)`` outliers,
    where ``k = min(outlier_count, hidden_dim)``.
    """

    inlier_values: np.ndarray      # (T, H-k) signed integers on the inlier grid
    inlier_indices: np.ndarray     # (T, H-k) positions of inliers within each token
    outlier_values: np.ndarray     # (T, k) INT16-grid integers for outliers
    outlier_indices: np.ndarray    # (T, k) positions of outliers within each token
    scales: np.ndarray             # (T,) per-token scaling factors (inliers)
    outlier_scales: np.ndarray     # (T,) per-token scaling factors (outlier grid)
    hidden_dim: int
    config: TokenQuantConfig

    @classmethod
    def pack(cls, tokens: np.ndarray, config: TokenQuantConfig) -> "PackedQuantizedTensor":
        """Quantize a 2-D array of tokens (rows are tokens) in one batched pass.

        Numerically identical to applying :func:`quantize_token` row by row:
        the same top-k selection, the same per-token scaling factors and the
        same integer grids, just computed with axis-wise array operations.
        """
        tokens = np.asarray(tokens, dtype=np.float64)
        if tokens.ndim != 2:
            raise ValueError("tokens must be a 2-D array of shape (num_tokens, hidden_dim)")
        num_tokens, hidden_dim = tokens.shape
        count = min(config.outlier_count, hidden_dim)

        abs_values = np.abs(tokens)
        inlier_mask = np.ones_like(tokens, dtype=bool)
        if count > 0:
            outlier_indices = np.sort(
                np.argpartition(abs_values, -count, axis=-1)[:, -count:], axis=-1
            )
            np.put_along_axis(inlier_mask, outlier_indices, False, axis=-1)
        else:
            outlier_indices = np.empty((num_tokens, 0), dtype=np.int64)
        inlier_indices = np.nonzero(inlier_mask)[1].reshape(num_tokens, hidden_dim - count)

        inliers = np.take_along_axis(tokens, inlier_indices, axis=-1)
        outliers = np.take_along_axis(tokens, outlier_indices, axis=-1)

        inlier_max = np.abs(inliers).max(axis=-1) if inliers.shape[-1] else np.zeros(num_tokens)
        outlier_max = np.abs(outliers).max(axis=-1) if count else np.zeros(num_tokens)
        scales = np.asarray(symmetric_scale(inlier_max, config.inlier_bits))
        outlier_scales = np.asarray(symmetric_scale(outlier_max, config.outlier_bits))
        return cls(
            inlier_values=quantize_values(inliers, scales[:, None], config.inlier_bits),
            inlier_indices=inlier_indices,
            outlier_values=quantize_values(outliers, outlier_scales[:, None], config.outlier_bits),
            outlier_indices=outlier_indices,
            scales=scales,
            outlier_scales=outlier_scales,
            hidden_dim=hidden_dim,
            config=config,
        )

    def unpack(self) -> np.ndarray:
        """Reconstruct the full ``(num_tokens, hidden_dim)`` array (vectorized)."""
        tokens = np.zeros((self.num_tokens, self.hidden_dim), dtype=np.float64)
        if self.inlier_indices.shape[-1]:
            np.put_along_axis(
                tokens,
                self.inlier_indices,
                dequantize_values(self.inlier_values, self.scales[:, None]),
                axis=-1,
            )
        if self.outlier_indices.shape[-1]:
            np.put_along_axis(
                tokens,
                self.outlier_indices,
                dequantize_values(self.outlier_values, self.outlier_scales[:, None]),
                axis=-1,
            )
        return tokens

    # ------------------------------------------------------------- accounting
    @property
    def num_tokens(self) -> int:
        return int(self.scales.shape[0])

    def __len__(self) -> int:
        return self.num_tokens

    def bits(self) -> float:
        """Total packed size of the batch in bits (Fig. 7 layout accounting)."""
        return self.num_tokens * self.config.bits_per_token(self.hidden_dim)

    # ---------------------------------------------------------- compatibility
    def token(self, index: int) -> QuantizedToken:
        """The ``index``-th token as a per-token :class:`QuantizedToken` view."""
        return QuantizedToken(
            inlier_values=self.inlier_values[index],
            inlier_indices=self.inlier_indices[index],
            outlier_values=self.outlier_values[index],
            outlier_indices=self.outlier_indices[index],
            scale=float(self.scales[index]),
            outlier_scale=float(self.outlier_scales[index]),
            hidden_dim=self.hidden_dim,
            config=self.config,
        )

    def to_tokens(self) -> List[QuantizedToken]:
        """Materialize the legacy list-of-tokens representation."""
        return [self.token(i) for i in range(self.num_tokens)]

    @classmethod
    def from_tokens(cls, tokens: List[QuantizedToken]) -> "PackedQuantizedTensor":
        """Build the columnar layout from per-token objects (inverse of ``to_tokens``)."""
        if not tokens:
            raise ValueError("from_tokens requires at least one token")
        first = tokens[0]
        return cls(
            inlier_values=np.stack([t.inlier_values for t in tokens]),
            inlier_indices=np.stack([t.inlier_indices for t in tokens]),
            outlier_values=np.stack([t.outlier_values for t in tokens]),
            outlier_indices=np.stack([t.outlier_indices for t in tokens]),
            scales=np.array([t.scale for t in tokens], dtype=np.float64),
            outlier_scales=np.array([t.outlier_scale for t in tokens], dtype=np.float64),
            hidden_dim=first.hidden_dim,
            config=first.config,
        )


def quantize_token(token: np.ndarray, config: TokenQuantConfig) -> QuantizedToken:
    """Quantize a single token vector with dynamic outlier handling."""
    token = np.asarray(token, dtype=np.float64).reshape(-1)
    hidden_dim = token.size
    outlier_indices = np.sort(select_outliers(token, config.outlier_count))
    mask = np.ones(hidden_dim, dtype=bool)
    mask[outlier_indices] = False
    inlier_indices = np.nonzero(mask)[0]

    inliers = token[inlier_indices]
    outliers = token[outlier_indices]

    inlier_scale = float(symmetric_scale(np.max(np.abs(inliers)) if inliers.size else 0.0, config.inlier_bits))
    outlier_scale = float(
        symmetric_scale(np.max(np.abs(outliers)) if outliers.size else 0.0, config.outlier_bits)
    )
    return QuantizedToken(
        inlier_values=quantize_values(inliers, inlier_scale, config.inlier_bits),
        inlier_indices=inlier_indices,
        outlier_values=quantize_values(outliers, outlier_scale, config.outlier_bits),
        outlier_indices=outlier_indices,
        scale=inlier_scale,
        outlier_scale=outlier_scale,
        hidden_dim=hidden_dim,
        config=config,
    )


def quantize_tokens_packed(tokens: np.ndarray, config: TokenQuantConfig) -> PackedQuantizedTensor:
    """Quantize a 2-D array of tokens into the columnar packed layout."""
    return PackedQuantizedTensor.pack(tokens, config)


def quantize_tokens(tokens: np.ndarray, config: TokenQuantConfig) -> List[QuantizedToken]:
    """Quantize a 2-D array of tokens (rows are tokens).

    The quantization itself runs through the batched
    :meth:`PackedQuantizedTensor.pack`; only the returned per-token views are
    materialized as objects, for callers that want the legacy list API.
    """
    return PackedQuantizedTensor.pack(tokens, config).to_tokens()


def packed_fake_quantize_tokens(values: np.ndarray, config: TokenQuantConfig) -> np.ndarray:
    """Token-wise fake quantization through the packed pack/unpack round trip.

    Produces the same reconstruction as :func:`fake_quantize_tokens` but by
    exercising the exact storage path of the hardware (top-k split, per-token
    scales, integer grids, scatter-based reassembly), which is what the
    packed-layout parity tests and the packed AAQ contexts run.
    """
    values = np.asarray(values, dtype=np.float64)
    original_shape = values.shape
    flat = values.reshape(-1, original_shape[-1])
    return PackedQuantizedTensor.pack(flat, config).unpack().reshape(original_shape)


def fake_quantize_tokens(values: np.ndarray, config: TokenQuantConfig) -> np.ndarray:
    """Vectorized token-wise fake quantization with top-k outlier handling.

    Equivalent to ``quantize_token`` + ``dequantize`` applied to every token of
    ``values`` (tokens are vectors along the last axis), but implemented with
    array operations so it can be injected into the PPM forward pass cheaply.
    """
    values = np.asarray(values, dtype=np.float64)
    original_shape = values.shape
    flat = values.reshape(-1, original_shape[-1])
    num_tokens, hidden_dim = flat.shape
    count = min(config.outlier_count, hidden_dim)

    abs_values = np.abs(flat)
    if count > 0:
        outlier_positions = np.argpartition(abs_values, -count, axis=-1)[:, -count:]
        outlier_mask = np.zeros_like(flat, dtype=bool)
        rows = np.repeat(np.arange(num_tokens), count)
        outlier_mask[rows, outlier_positions.reshape(-1)] = True
    else:
        outlier_mask = np.zeros_like(flat, dtype=bool)

    inlier_abs = np.where(outlier_mask, 0.0, abs_values)
    inlier_max = inlier_abs.max(axis=-1, keepdims=True)
    inlier_scale = symmetric_scale(inlier_max, config.inlier_bits)
    inlier_recon = dequantize_values(
        quantize_values(flat, inlier_scale, config.inlier_bits), inlier_scale
    )

    if count > 0:
        outlier_abs = np.where(outlier_mask, abs_values, 0.0)
        outlier_max = outlier_abs.max(axis=-1, keepdims=True)
        outlier_scale = symmetric_scale(outlier_max, config.outlier_bits)
        outlier_recon = dequantize_values(
            quantize_values(flat, outlier_scale, config.outlier_bits), outlier_scale
        )
        reconstructed = np.where(outlier_mask, outlier_recon, inlier_recon)
    else:
        reconstructed = inlier_recon
    return reconstructed.reshape(original_shape)


def token_quantization_rmse(values: np.ndarray, config: TokenQuantConfig) -> float:
    """RMSE of the token-wise fake-quantization round trip."""
    reconstructed = fake_quantize_tokens(values, config)
    return float(np.sqrt(np.mean((np.asarray(values, dtype=np.float64) - reconstructed) ** 2)))
