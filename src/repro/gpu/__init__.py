"""Analytical GPU baseline models (A100 / H100) for the PPM workload."""

from .end_to_end import EndToEndComparison, EndToEndResult, SYSTEM_PROFILES, SystemProfile
from .gpu_config import A100, GPUS, GPUSpec, H100, get_gpu
from .gpu_model import CHUNK_ROWS, GPULatencyReport, GPUModel

__all__ = [
    "A100",
    "CHUNK_ROWS",
    "EndToEndComparison",
    "EndToEndResult",
    "GPULatencyReport",
    "GPUModel",
    "GPUS",
    "GPUSpec",
    "H100",
    "SYSTEM_PROFILES",
    "SystemProfile",
    "get_gpu",
]
