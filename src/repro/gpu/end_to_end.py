"""End-to-end PPM system comparison (Fig. 14a).

The paper compares LightNobel against eight complete PPM systems.  Only
ESMFold's dataflow is rebuilt in this repository; the other systems differ in
their *input embedding* strategy (MSA database search vs. protein language
model), folding-trunk optimizations and quantization, which the paper itself
characterizes at the phase level (Section 8.2).  We therefore model each
system as phase-level multipliers applied to the shared ESMFold-on-H100
baseline phases, with LightNobel's folding-block time coming from the
accelerator simulator.  The multipliers encode each system's published
behaviour (e.g. AlphaFold2/AlphaFold3's database search dominates input
embedding; MEFold/PTQ4Protein add dequantization overhead to the trunk).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, TYPE_CHECKING

from ..ppm.config import PPMConfig
from ..ppm.workload import PHASE_INPUT_EMBEDDING, PHASE_PAIR, PHASE_SEQUENCE, PHASE_STRUCTURE
from ..hardware.accelerator import LightNobelAccelerator
from .gpu_model import GPUModel

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from ..serving.service import LatencyService
    from ..sim.session import SimulationSession


@dataclass(frozen=True)
class SystemProfile:
    """Phase-level behaviour of one end-to-end PPM system.

    Multipliers scale the corresponding ESMFold-on-H100 phase latency; a
    multiplier of 1.0 means "same as the ESMFold baseline".  MSA-based systems
    additionally pay ``input_embedding_fixed_seconds`` of database search,
    which is sequence-length-insensitive and dominates their end-to-end time.
    """

    name: str
    input_embedding_factor: float
    folding_factor: float
    structure_factor: float
    input_embedding_fixed_seconds: float = 0.0
    uses_language_model: bool = True


#: Profiles of the systems in Fig. 14(a).  Database-search systems pay a large
#: fixed input-embedding cost; quantized-on-GPU systems pay trunk overhead for
#: runtime (de)quantization; FastFold/ColabFold accelerate parts of the stack.
SYSTEM_PROFILES: Dict[str, SystemProfile] = {
    "ESMFold (Baseline)": SystemProfile("ESMFold (Baseline)", 1.0, 1.0, 1.0),
    "AlphaFold2": SystemProfile(
        "AlphaFold2", 1.0, 1.35, 1.2, input_embedding_fixed_seconds=600.0, uses_language_model=False
    ),
    "AlphaFold3": SystemProfile(
        "AlphaFold3", 1.0, 1.25, 1.3, input_embedding_fixed_seconds=300.0, uses_language_model=False
    ),
    "FastFold": SystemProfile(
        "FastFold", 1.0, 0.95, 1.0, input_embedding_fixed_seconds=170.0, uses_language_model=False
    ),
    "ColabFold": SystemProfile(
        "ColabFold", 1.0, 1.0, 1.0, input_embedding_fixed_seconds=28.0, uses_language_model=False
    ),
    "PTQ4Protein": SystemProfile("PTQ4Protein", 1.0, 1.25, 1.0),
    "MEFold": SystemProfile("MEFold", 1.0, 2.9, 1.0),
    "LightNobel": SystemProfile("LightNobel", 1.0, 0.0, 1.0),  # folding comes from the simulator
}


@dataclass
class EndToEndResult:
    """End-to-end latency of one system on one protein."""

    system: str
    sequence_length: int
    input_embedding_seconds: float
    folding_seconds: float
    structure_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.input_embedding_seconds + self.folding_seconds + self.structure_seconds


class EndToEndComparison:
    """Builds the Fig. 14(a) comparison across PPM systems."""

    def __init__(
        self,
        ppm_config: Optional[PPMConfig] = None,
        gpu: str = "H100",
        accelerator: Optional[LightNobelAccelerator] = None,
        session: Optional["SimulationSession"] = None,
        service: Optional["LatencyService"] = None,
    ) -> None:
        # Imported here, not at module top: repro.sim resolves backends via
        # this package, so a module-level import would be circular.
        from ..sim.backend import AcceleratorBackend
        from ..sim.session import session_for

        if service is not None:
            if session is not None and session is not service.session:
                raise ValueError("pass either session or service, not both")
            session = service.session
        self._service = service
        self.session = session_for(ppm_config, session)
        self.ppm_config = self.session.ppm_config
        self._gpu_backend = self._register(gpu.lower())
        self.gpu_model = self._gpu_backend.model
        self.accelerator = accelerator or LightNobelAccelerator(ppm_config=self.ppm_config)
        # Registered under a digest-derived name so a custom accelerator in a
        # shared session never hijacks the plain "lightnobel" binding.
        wrapped = AcceleratorBackend(simulator=self.accelerator)
        wrapped.name = f"lightnobel-{wrapped.config_digest()}"
        self._accelerator_backend = self._register(wrapped, name=wrapped.name)

    def _register(self, spec, name: Optional[str] = None):
        if self._service is not None:
            return self._service.register_backend(spec, name=name)
        if name is None and isinstance(spec, str):
            return self.session.backend(spec)
        return self.session.add_backend(spec, name=name)

    def _simulate(self, sequence_length: int, backend_name: str):
        """One report, via the shared service when configured, else the session."""
        if self._service is not None:
            return self._service.query(backend_name, sequence_length)
        return self.session.simulate(sequence_length, backend=backend_name)

    def baseline_phases(self, sequence_length: int) -> Dict[str, float]:
        """ESMFold-on-GPU phase seconds, simulated once per (gpu, length).

        Routed through the session memo, so :meth:`compare` evaluating eight
        system profiles at one length costs one GPU simulation, not eight.
        """
        report = self._simulate(sequence_length, self._gpu_backend.name)
        folding = report.phase_seconds.get(PHASE_PAIR, 0.0) + report.phase_seconds.get(PHASE_SEQUENCE, 0.0)
        return {
            "input_embedding": report.phase_seconds.get(PHASE_INPUT_EMBEDDING, 0.0),
            "folding": folding,
            "structure": report.phase_seconds.get(PHASE_STRUCTURE, 0.0),
        }

    def evaluate_system(self, system: str, sequence_length: int) -> EndToEndResult:
        profile = SYSTEM_PROFILES[system]
        phases = self.baseline_phases(sequence_length)
        folding = phases["folding"] * profile.folding_factor
        if system == "LightNobel":
            folding = self._simulate(
                sequence_length, self._accelerator_backend.name
            ).folding_block_seconds
        return EndToEndResult(
            system=system,
            sequence_length=sequence_length,
            input_embedding_seconds=(
                phases["input_embedding"] * profile.input_embedding_factor
                + profile.input_embedding_fixed_seconds
            ),
            folding_seconds=folding,
            structure_seconds=phases["structure"] * profile.structure_factor,
        )

    def compare(self, sequence_lengths: Iterable[int]) -> Dict[str, float]:
        """Average end-to-end latency per system over the given proteins."""
        lengths = list(sequence_lengths)
        totals: Dict[str, float] = {}
        for system in SYSTEM_PROFILES:
            values = [self.evaluate_system(system, n).total_seconds for n in lengths]
            totals[system] = sum(values) / len(values) if values else 0.0
        return totals

    def normalized_to_lightnobel(self, sequence_lengths: Iterable[int]) -> Dict[str, float]:
        """Fig. 14(a): latency of every system normalized to LightNobel."""
        totals = self.compare(sequence_lengths)
        reference = totals.get("LightNobel", 1.0) or 1.0
        return {system: value / reference for system, value in totals.items()}
