"""GPU hardware specifications used by the analytical baseline model."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .._digest import config_digest as _config_digest


@dataclass(frozen=True)
class GPUSpec:
    """Envelope of one baseline GPU (datasheet values).

    ``compute_efficiency`` and ``bandwidth_efficiency`` are the achieved
    fractions of peak on the PPM's small-hidden-dimension kernels; the paper
    observes that the workload is memory-bound with low tensor-core
    utilization, which is why H100's 5x higher INT8 throughput barely helps.
    """

    name: str
    fp16_tflops: float
    int8_tops: float
    hbm_bandwidth_gbps: float
    memory_gb: float
    power_w: float
    area_mm2: float
    kernel_launch_us: float = 8.0
    compute_efficiency: float = 0.35
    bandwidth_efficiency: float = 0.75

    @property
    def effective_flops(self) -> float:
        return self.fp16_tflops * 1e12 * self.compute_efficiency

    @property
    def effective_bandwidth(self) -> float:
        return self.hbm_bandwidth_gbps * 1e9 * self.bandwidth_efficiency

    def config_digest(self) -> str:
        """Canonical hash of every field, shared by the LRU and disk caches."""
        return _config_digest(self)


A100 = GPUSpec(
    name="A100",
    fp16_tflops=312.0,
    int8_tops=624.0,
    hbm_bandwidth_gbps=2039.0,
    memory_gb=80.0,
    power_w=300.0,
    area_mm2=826.0,
    kernel_launch_us=3.0,
    compute_efficiency=0.32,
)

H100 = GPUSpec(
    name="H100",
    fp16_tflops=756.0,
    int8_tops=3026.0,
    hbm_bandwidth_gbps=2000.0,
    memory_gb=80.0,
    power_w=350.0,
    area_mm2=814.0,
    kernel_launch_us=2.5,
    compute_efficiency=0.35,
)

GPUS: Dict[str, GPUSpec] = {"A100": A100, "H100": H100}


def get_gpu(name: str) -> GPUSpec:
    try:
        return GPUS[name]
    except KeyError:
        raise ValueError(f"unknown GPU {name!r}; expected one of {sorted(GPUS)}") from None
