"""Analytical A100/H100 performance and memory model for the PPM baseline.

The paper's GPU measurements (Nsight Systems on real hardware) show two
regimes: without chunking, the Pair-Representation kernels are memory-bound
and peak memory explodes with the attention score matrix; with chunking
(OpenFold-style low-memory attention, the ``Chunk4`` option), peak memory
drops but kernel-launch overhead and reduced tensor-core utilization inflate
latency.  This model captures both regimes per operator of the shared
:mod:`repro.ppm.workload` graph:

* per-op latency = max(compute time, memory time) + kernel launches,
* chunked execution splits pair-phase kernels along the first sequence axis,
  multiplying kernel count, adding intermediate-tensor re-reads and lowering
  tensor-core efficiency,
* peak memory = weights + resident activations (score matrices dominate
  without chunking).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..ppm.config import PPMConfig
from ..ppm.op_table import OperatorTable, StackedOperatorTable, get_op_table
from ..ppm.workload import (
    ENGINE_MATMUL,
    PHASE_INPUT_EMBEDDING,
    PHASE_PAIR,
    PHASE_SEQUENCE,
    PHASE_STRUCTURE,
    Operator,
    Workload,
    pair_activation_elements,
    score_matrix_elements,
    sequence_activation_elements,
)
from .gpu_config import GPUSpec, get_gpu

#: Rows processed per chunk under the Chunk4-style low-memory attention.
CHUNK_ROWS = 4

#: Tensor-core efficiency multiplier when kernels are chunked into small tiles.
CHUNK_COMPUTE_PENALTY = 0.55

#: Extra activation traffic factor from re-reading chunked intermediates.
CHUNK_TRAFFIC_FACTOR = 1.4

#: Number of live Pair-Representation copies during a folding block
#: (input, residual, normalized, projections).
RESIDENT_PAIR_COPIES = 6

#: Resident pair copies under chunked execution: chunking removes the score
#: matrix but keeps redundant per-chunk intermediates alive (Section 8.3).
CHUNK_RESIDENT_PAIR_COPIES = 18

#: FP16 bytes per element on the GPU baseline.
FP16_BYTES = 2.0


@dataclass
class GPULatencyReport:
    """Latency breakdown of one PPM inference on a GPU."""

    gpu: str
    sequence_length: int
    chunked: bool
    total_seconds: float
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    subphase_seconds: Dict[str, float] = field(default_factory=dict)
    kernel_count: float = 0.0
    out_of_memory: bool = False

    def folding_block_seconds(self) -> float:
        return self.phase_seconds.get(PHASE_PAIR, 0.0) + self.phase_seconds.get(PHASE_SEQUENCE, 0.0)


class GPUModel:
    """Roofline + kernel-overhead model of ESMFold inference on one GPU."""

    def __init__(
        self,
        gpu: GPUSpec | str = "H100",
        ppm_config: Optional[PPMConfig] = None,
    ) -> None:
        self.gpu = get_gpu(gpu) if isinstance(gpu, str) else gpu
        self.ppm_config = ppm_config or PPMConfig.paper()
        self._fits_cache: Dict[Tuple[int, bool], bool] = {}

    # ------------------------------------------------------------------ timing
    def operator_seconds(self, op: Operator, chunked: bool) -> tuple:
        """(seconds, kernel count) for one operator."""
        compute_eff = self.gpu.effective_flops
        chunk_applies = chunked and op.phase == PHASE_PAIR
        if chunk_applies:
            compute_eff *= CHUNK_COMPUTE_PENALTY

        flops = op.flops
        compute_time = flops / compute_eff if op.engine == ENGINE_MATMUL else flops / (
            self.gpu.effective_flops * 0.1
        )

        traffic = (op.input_elements + op.output_elements) * FP16_BYTES + op.weight_elements * FP16_BYTES
        if chunk_applies:
            traffic *= CHUNK_TRAFFIC_FACTOR
        memory_time = traffic / self.gpu.effective_bandwidth

        if chunk_applies:
            # Chunked pair kernels launch one kernel per CHUNK_ROWS rows of the
            # (Ns, Ns, Hz) pair tensor, i.e. roughly Ns / CHUNK_ROWS kernels.
            tokens = max(1.0, op.output_elements / max(self.ppm_config.pair_dim, 1))
            rows = tokens ** 0.5
            kernels = max(1.0, rows / CHUNK_ROWS)
        else:
            kernels = 1.0
        launch_time = kernels * self.gpu.kernel_launch_us * 1e-6
        return max(compute_time, memory_time) + launch_time, kernels

    def simulate_workload_legacy(self, workload: Workload, chunked: bool = False) -> GPULatencyReport:
        """Reference implementation: one Python iteration per operator."""
        phase_seconds: Dict[str, float] = {}
        subphase_seconds: Dict[str, float] = {}
        total = 0.0
        kernels = 0.0
        for op in workload.operators:
            seconds, op_kernels = self.operator_seconds(op, chunked)
            total += seconds
            kernels += op_kernels
            phase_seconds[op.phase] = phase_seconds.get(op.phase, 0.0) + seconds
            if op.subphase:
                subphase_seconds[op.subphase] = subphase_seconds.get(op.subphase, 0.0) + seconds
        oom = not self.fits_in_memory(workload.sequence_length, chunked=chunked)
        return GPULatencyReport(
            gpu=self.gpu.name,
            sequence_length=workload.sequence_length,
            chunked=chunked,
            total_seconds=total,
            phase_seconds=phase_seconds,
            subphase_seconds=subphase_seconds,
            kernel_count=kernels,
            out_of_memory=oom,
        )

    def _operator_columns(self, table, chunked: bool) -> Tuple[np.ndarray, np.ndarray]:
        """(seconds, kernels) per-operator arrays over table columns.

        ``table`` is anything exposing the columnar protocol — an
        :class:`OperatorTable` or a :class:`~repro.ppm.op_table.StackedOperatorTable`.
        Purely elementwise, so stacked evaluation matches the per-length call
        bit for bit.
        """
        eff = self.gpu.effective_flops
        is_matmul = table.engine_mask(ENGINE_MATMUL)
        chunk_applies = table.phase_mask(PHASE_PAIR) & chunked

        flops = table.flops
        matmul_eff = np.where(chunk_applies, eff * CHUNK_COMPUTE_PENALTY, eff)
        compute_time = np.where(is_matmul, flops / matmul_eff, flops / (eff * 0.1))

        traffic = (
            table.input_elements + table.output_elements
        ) * FP16_BYTES + table.weight_elements * FP16_BYTES
        traffic = np.where(chunk_applies, traffic * CHUNK_TRAFFIC_FACTOR, traffic)
        memory_time = traffic / self.gpu.effective_bandwidth

        tokens = np.maximum(1.0, table.output_elements / max(self.ppm_config.pair_dim, 1))
        kernels = np.where(chunk_applies, np.maximum(1.0, tokens ** 0.5 / CHUNK_ROWS), 1.0)
        seconds = np.maximum(compute_time, memory_time) + kernels * (
            self.gpu.kernel_launch_us * 1e-6
        )
        return seconds, kernels

    def _assemble_report(
        self,
        table: OperatorTable,
        seconds: np.ndarray,
        kernels: np.ndarray,
        chunked: bool,
    ) -> GPULatencyReport:
        return self._finish_report(
            table,
            float(seconds.sum()),
            float(kernels.sum()),
            chunked,
            table.weighted_sums("phase", seconds),
            table.weighted_sums("subphase", seconds),
        )

    def _finish_report(
        self,
        table: OperatorTable,
        total_seconds: float,
        kernel_count: float,
        chunked: bool,
        phase_seconds: Dict[str, float],
        subphase_seconds: Dict[str, float],
    ) -> GPULatencyReport:
        return GPULatencyReport(
            gpu=self.gpu.name,
            sequence_length=table.sequence_length,
            chunked=chunked,
            total_seconds=total_seconds,
            phase_seconds=phase_seconds,
            subphase_seconds={sub: s for sub, s in subphase_seconds.items() if sub},
            kernel_count=kernel_count,
            out_of_memory=not self.fits_in_memory(table.sequence_length, chunked=chunked),
        )

    def simulate_table(self, table: OperatorTable, chunked: bool = False) -> GPULatencyReport:
        """Vectorized roofline model over the columns of an :class:`OperatorTable`."""
        seconds, kernels = self._operator_columns(table, chunked)
        return self._assemble_report(table, seconds, kernels, chunked)

    def simulate_stack(
        self, stack: StackedOperatorTable, chunked: bool = False
    ) -> List[GPULatencyReport]:
        """One roofline pass over a whole length mix; one report per segment.

        Elementwise arithmetic runs once over the stack, phase/subphase
        reductions once over combined (segment, label) bins, totals over
        contiguous slices — all bit-identical to :meth:`simulate_table`.
        """
        seconds, kernels = self._operator_columns(stack, chunked)
        phase_dicts = stack.segment_weighted_sums_all("phase", seconds)
        subphase_dicts = stack.segment_weighted_sums_all("subphase", seconds)
        # One 2-row axis-sum per segment totals seconds and kernels together;
        # pairwise summation runs over each contiguous row exactly as it does
        # over the standalone per-length array.
        pair = np.vstack((seconds, kernels))
        reports = []
        for i, sl in enumerate(stack.segments):
            total_seconds, kernel_count = pair[:, sl].sum(axis=1).tolist()
            reports.append(
                self._finish_report(
                    stack.tables[i],
                    total_seconds,
                    kernel_count,
                    chunked,
                    phase_dicts[i],
                    subphase_dicts[i],
                )
            )
        return reports

    def simulate_stack_totals(
        self, stack: StackedOperatorTable, chunked: bool = False
    ) -> List[float]:
        """Per-segment ``total_seconds`` only — no report materialization.

        Same contiguous-slice sums as :meth:`simulate_stack` (``ndarray.sum``
        delegates to ``np.add.reduce``), so each float is bit-identical to the
        full-report path; memory feasibility is the caller's concern (see
        :meth:`fits_in_memory`, which is memoized).
        """
        seconds, _ = self._operator_columns(stack, chunked)
        total = np.add.reduce
        return np.fromiter(
            (total(seconds[sl]) for sl in stack.segments),
            dtype=np.float64,
            count=stack.num_segments,
        ).tolist()

    def simulate_workload(self, workload: Workload, chunked: bool = False) -> GPULatencyReport:
        """Simulate an explicit workload through the columnar engine."""
        return self.simulate_table(OperatorTable.from_workload(workload), chunked=chunked)

    def simulate(self, sequence_length: int, chunked: bool = False) -> GPULatencyReport:
        table = get_op_table(self.ppm_config, sequence_length)
        return self.simulate_table(table, chunked=chunked)

    # ------------------------------------------------------------------ memory
    def weight_bytes(self, include_language_model: bool = True) -> float:
        """Model weights resident on the GPU (trunk + optionally ESM-2 3B)."""
        config = self.ppm_config
        trunk_params = 690e6  # ESMFold folding trunk + structure module
        total = trunk_params * FP16_BYTES
        if include_language_model:
            total += config.language_model_params * FP16_BYTES
        return total

    def peak_activation_bytes(self, sequence_length: int, chunked: bool = False) -> float:
        """Peak resident activation memory of the Pair-Representation dataflow."""
        config = self.ppm_config
        n = sequence_length
        pair = pair_activation_elements(config, n) * FP16_BYTES
        seq = sequence_activation_elements(config, n) * FP16_BYTES
        resident = RESIDENT_PAIR_COPIES * pair + 2 * seq
        if chunked:
            # Chunking materializes only CHUNK_ROWS rows of the score matrix
            # but keeps redundant per-chunk pair intermediates resident.
            score = score_matrix_elements(config, n) / n * CHUNK_ROWS * FP16_BYTES
            resident = CHUNK_RESIDENT_PAIR_COPIES * pair + 2 * seq + score
        else:
            score = score_matrix_elements(config, n) * FP16_BYTES
            resident += 2.0 * score  # scores + softmax output live simultaneously
        return resident

    def peak_memory_bytes(self, sequence_length: int, chunked: bool = False) -> float:
        return self.weight_bytes() + self.peak_activation_bytes(sequence_length, chunked=chunked)

    def fits_in_memory(self, sequence_length: int, chunked: bool = False) -> bool:
        key = (int(sequence_length), bool(chunked))
        cached = self._fits_cache.get(key)
        if cached is None:
            cached = self._fits_cache[key] = (
                self.peak_memory_bytes(sequence_length, chunked=chunked)
                <= self.gpu.memory_gb * 1e9
            )
        return cached

    def max_sequence_length(self, chunked: bool = False, upper: int = 20000) -> int:
        """Longest sequence that fits in GPU memory (binary search)."""
        low, high = 1, upper
        while low < high:
            mid = (low + high + 1) // 2
            if self.fits_in_memory(mid, chunked=chunked):
                low = mid
            else:
                high = mid - 1
        return low
