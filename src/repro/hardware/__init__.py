"""LightNobel accelerator simulator: RMPU, VVPU, memory, latency, area/power."""

from .accelerator import LatencyReport, LightNobelAccelerator, OperatorLatency
from .area_power import AreaPowerModel, ComponentCost, GPU_ENVELOPES, efficiency_versus_gpu
from .config import LightNobelConfig
from .interconnect import ChipLinkSpec, CrossbarNetwork, ScratchpadSpec, TokenAligner, default_scratchpads
from .memory import HBMModel, MemoryTransaction
from .pe import (
    DynamicAccumulationLogic,
    PECluster,
    PELane,
    ProcessingElement,
    SUPPORTED_LANE_GROUPS,
    chunks_for_bits,
    units_per_mac,
)
from .rmpu import RMPU, RDAReport
from .validation import CrossValidationResult, cross_validate, rtl_reference_seconds
from .vvpu import VVPU, VVPUTimings, bitonic_stage_count, bitonic_topk

__all__ = [
    "AreaPowerModel",
    "ComponentCost",
    "CrossValidationResult",
    "ChipLinkSpec",
    "CrossbarNetwork",
    "DynamicAccumulationLogic",
    "GPU_ENVELOPES",
    "HBMModel",
    "LatencyReport",
    "LightNobelAccelerator",
    "LightNobelConfig",
    "MemoryTransaction",
    "OperatorLatency",
    "PECluster",
    "PELane",
    "ProcessingElement",
    "RDAReport",
    "RMPU",
    "SUPPORTED_LANE_GROUPS",
    "ScratchpadSpec",
    "TokenAligner",
    "VVPU",
    "VVPUTimings",
    "bitonic_stage_count",
    "bitonic_topk",
    "chunks_for_bits",
    "cross_validate",
    "default_scratchpads",
    "efficiency_versus_gpu",
    "rtl_reference_seconds",
    "units_per_mac",
]
