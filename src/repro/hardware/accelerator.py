"""LightNobel accelerator: cycle-level latency simulation (Section 6).

The simulator consumes the operator graph of :mod:`repro.ppm.workload` and an
AAQ configuration, and models the three pipelined engines of the accelerator:

* RMPU — bit-decomposed matrix throughput with DAL utilization,
* VVPU — vector operations plus runtime quantization (top-k, scaling, packing),
* HBM  — burst-aligned activation traffic at the quantized sizes.

Per the paper, the overall latency of each pipeline stage is the longest of
the engine delays for that stage; the end-to-end latency is their sum.  The
token-wise MHA optimization (Section 5.4) keeps the attention score matrix on
chip, which removes both its DRAM traffic and its quantization cost.

The hot path is columnar: :meth:`LightNobelAccelerator.simulate` fetches the
LRU-cached :class:`~repro.ppm.op_table.OperatorTable` and evaluates all engine
latencies as vectorized expressions over its columns.  The original
per-operator loop is kept as :meth:`simulate_workload_legacy` and serves as
the numerical reference for the parity tests and perf benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.aaq import AAQConfig
from ..ppm.activation_tap import GROUP_C
from ..ppm.config import PPMConfig
from ..ppm.op_table import OperatorTable, StackedOperatorTable, get_op_table
from ..ppm.workload import (
    ENGINE_MATMUL,
    PHASE_INPUT_EMBEDDING,
    PHASE_PAIR,
    PHASE_SEQUENCE,
    PHASE_STRUCTURE,
    Operator,
    Workload,
)
from .config import LightNobelConfig
from .memory import HBMModel
from .pe import units_per_mac
from .rmpu import RMPU
from .vvpu import VVPU


@dataclass
class OperatorLatency:
    """Latency contributions of one operator (in cycles)."""

    name: str
    phase: str
    subphase: str
    rmpu_cycles: float
    vvpu_cycles: float
    memory_cycles: float

    @property
    def stage_cycles(self) -> float:
        """Pipeline-stage latency: the slowest engine bounds the stage."""
        return max(self.rmpu_cycles, self.vvpu_cycles, self.memory_cycles)

    @property
    def bottleneck(self) -> str:
        values = {
            "rmpu": self.rmpu_cycles,
            "vvpu": self.vvpu_cycles,
            "memory": self.memory_cycles,
        }
        return max(values, key=values.get)


@dataclass
class _LatencyColumns:
    """Columnar per-operator latencies backing a lazily-built object list."""

    names: Sequence[str]
    phase_codes: np.ndarray
    phases: Tuple[str, ...]
    subphase_codes: np.ndarray
    subphases: Tuple[str, ...]
    rmpu_cycles: np.ndarray
    vvpu_cycles: np.ndarray
    memory_cycles: np.ndarray

    def materialize(self) -> List[OperatorLatency]:
        return [
            OperatorLatency(
                name=name,
                phase=self.phases[p],
                subphase=self.subphases[s],
                rmpu_cycles=float(r),
                vvpu_cycles=float(v),
                memory_cycles=float(m),
            )
            for name, p, s, r, v, m in zip(
                self.names,
                self.phase_codes,
                self.subphase_codes,
                self.rmpu_cycles,
                self.vvpu_cycles,
                self.memory_cycles,
            )
        ]


@dataclass
class LatencyReport:
    """Result of simulating one PPM inference on LightNobel."""

    sequence_length: int
    total_cycles: float
    total_seconds: float
    phase_cycles: Dict[str, float] = field(default_factory=dict)
    subphase_cycles: Dict[str, float] = field(default_factory=dict)
    dram_bytes: float = 0.0
    _latencies: Optional[List[OperatorLatency]] = None
    _columns: Optional[_LatencyColumns] = None

    @property
    def operator_latencies(self) -> List[OperatorLatency]:
        """Per-operator latencies (materialized on demand on the columnar path)."""
        if self._latencies is None:
            self._latencies = self._columns.materialize() if self._columns else []
        return self._latencies

    def phase_seconds(self, clock_hz: float) -> Dict[str, float]:
        return {phase: cycles / clock_hz for phase, cycles in self.phase_cycles.items()}

    def bottleneck_share(self) -> Dict[str, float]:
        """Fraction of stage latency bound by each engine."""
        if self._columns is not None:
            stacked = np.vstack(
                [
                    self._columns.rmpu_cycles,
                    self._columns.vvpu_cycles,
                    self._columns.memory_cycles,
                ]
            )
            stage = stacked.max(axis=0)
            winner = stacked.argmax(axis=0)
            sums = np.bincount(winner, weights=stage, minlength=3)
            total = float(sums.sum()) or 1.0
            return {
                "rmpu": float(sums[0]) / total,
                "vvpu": float(sums[1]) / total,
                "memory": float(sums[2]) / total,
            }
        totals: Dict[str, float] = {"rmpu": 0.0, "vvpu": 0.0, "memory": 0.0}
        for op in self.operator_latencies:
            totals[op.bottleneck] += op.stage_cycles
        total = sum(totals.values()) or 1.0
        return {k: v / total for k, v in totals.items()}


class LightNobelAccelerator:
    """Latency simulator for the LightNobel accelerator."""

    def __init__(
        self,
        hw_config: Optional[LightNobelConfig] = None,
        ppm_config: Optional[PPMConfig] = None,
        aaq_config: Optional[AAQConfig] = None,
        tokenwise_mha: bool = True,
    ) -> None:
        self.hw_config = hw_config or LightNobelConfig.paper()
        self.ppm_config = ppm_config or PPMConfig.paper()
        self.aaq_config = aaq_config or AAQConfig.paper_optimal()
        self.tokenwise_mha = tokenwise_mha
        self.rmpu = RMPU(self.hw_config)
        self.vvpu = VVPU(self.hw_config)
        self.hbm = HBMModel(self.hw_config)

    # ------------------------------------------------------------------ sizing
    def activation_bytes_per_element(self, group: Optional[str]) -> float:
        """Stored bytes per activation element for a given AAQ group."""
        if group is None:
            return self.ppm_config.activation_bytes
        hidden = self.ppm_config.pair_dim
        return self.aaq_config.bits_per_token(hidden, group) / hidden / 8.0

    def operator_dram_bytes(self, op: Operator) -> float:
        """DRAM traffic of one operator under AAQ and token-wise MHA."""
        if op.fusible and self.tokenwise_mha:
            return 0.0
        in_bytes = op.input_elements * self.activation_bytes_per_element(op.output_group or GROUP_C)
        out_bytes = op.output_elements * self.activation_bytes_per_element(op.output_group)
        weight_bytes = op.weight_elements * 2.0  # 16-bit weights, streamed once
        return in_bytes + out_bytes + weight_bytes

    # --------------------------------------------------- per-group constants
    def _group_parameters(
        self, groups: Tuple[Optional[str], ...]
    ) -> Dict[str, np.ndarray]:
        """Per-group scalars of the engine models, indexed by table group code.

        Mirrors, term by term, the arithmetic of :meth:`RMPU.operator_cycles`,
        :meth:`VVPU.quantization_cycles` and :meth:`operator_dram_bytes` so the
        vectorized path is bit-identical to the legacy per-operator loop.
        """
        rmpu_hidden = self.rmpu.config_hidden_dim()
        quant_hidden = self.ppm_config.pair_dim
        units_base = self.rmpu.units_per_cycle()
        count = len(groups)
        avg_units = np.zeros(count)
        rmpu_denominator = np.ones(count)
        quant_cycles_per_token = np.zeros(count)
        bytes_out = np.zeros(count)
        bytes_in = np.zeros(count)
        quantized = np.zeros(count, dtype=bool)
        for code, group in enumerate(groups):
            effective = group or GROUP_C
            quant = self.aaq_config.config_for(effective)
            outliers = min(quant.outlier_count, rmpu_hidden)
            inlier_fraction = (rmpu_hidden - outliers) / rmpu_hidden
            avg_units[code] = (
                inlier_fraction * units_per_mac(quant.inlier_bits, 16.0)
                + (1 - inlier_fraction) * units_per_mac(quant.outlier_bits, 16.0)
            )
            utilization = self.rmpu.utilization_for(quant, rmpu_hidden, 16.0)
            rmpu_denominator[code] = units_base * utilization

            per_token = self.vvpu.timings.quantize_passes
            if quant.outlier_count > 0:
                per_token += self.vvpu.timings.topk_cycles(quant_hidden)
            else:
                per_token += 1
            quant_cycles_per_token[code] = per_token

            bytes_out[code] = self.activation_bytes_per_element(group)
            bytes_in[code] = self.activation_bytes_per_element(effective)
            quantized[code] = group is not None
        return {
            "avg_units": avg_units,
            "rmpu_denominator": rmpu_denominator,
            "quant_cycles_per_token": quant_cycles_per_token,
            "bytes_out": bytes_out,
            "bytes_in": bytes_in,
            "quantized": quantized,
        }

    # -------------------------------------------------------------- simulation
    def simulate_operator(self, op: Operator) -> OperatorLatency:
        """Legacy per-operator reference model (kept for parity checks)."""
        quantize_output = op.output_group is not None and not (op.fusible and self.tokenwise_mha)
        rmpu_cycles = 0.0
        vvpu_cycles = 0.0
        if op.engine == ENGINE_MATMUL:
            rmpu_cycles = self.rmpu.operator_cycles(op, aaq=self.aaq_config)
        else:
            vvpu_cycles = self.vvpu.operator_cycles(op)
        if quantize_output:
            tokens = op.output_elements / self.ppm_config.pair_dim
            group_config = self.aaq_config.config_for(op.output_group)
            vvpu_cycles += self.vvpu.quantization_cycles(
                tokens, self.ppm_config.pair_dim, group_config.outlier_count
            )
        memory_cycles = self.hbm.transfer_cycles(self.operator_dram_bytes(op))
        return OperatorLatency(
            name=op.name,
            phase=op.phase,
            subphase=op.subphase,
            rmpu_cycles=rmpu_cycles,
            vvpu_cycles=vvpu_cycles,
            memory_cycles=memory_cycles,
        )

    def simulate_workload_legacy(self, workload: Workload) -> LatencyReport:
        """Reference implementation: one Python iteration per operator."""
        operator_latencies = [self.simulate_operator(op) for op in workload.operators]
        phase_cycles: Dict[str, float] = {}
        subphase_cycles: Dict[str, float] = {}
        total = 0.0
        dram_bytes = 0.0
        for op, latency in zip(workload.operators, operator_latencies):
            stage = latency.stage_cycles + self.hw_config.per_op_overhead_cycles
            total += stage
            phase_cycles[op.phase] = phase_cycles.get(op.phase, 0.0) + stage
            if op.subphase:
                subphase_cycles[op.subphase] = subphase_cycles.get(op.subphase, 0.0) + stage
            dram_bytes += self.operator_dram_bytes(op)
        total += self.hw_config.pipeline_fill_cycles
        return LatencyReport(
            sequence_length=workload.sequence_length,
            total_cycles=total,
            total_seconds=total / self.hw_config.cycles_per_second,
            phase_cycles=phase_cycles,
            subphase_cycles=subphase_cycles,
            dram_bytes=dram_bytes,
            _latencies=operator_latencies,
        )

    def _engine_cycles(self, table) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """(rmpu, vvpu, memory, dram) per-operator arrays over table columns.

        ``table`` is anything exposing the columnar protocol — an
        :class:`OperatorTable` or a :class:`~repro.ppm.op_table.StackedOperatorTable`.
        Every expression is elementwise, so evaluating a stacked concatenation
        yields, per segment, bit-identical values to the per-length call.
        """
        params = self._group_parameters(table.groups)
        g = table.group_codes
        fill = float(self.hw_config.pipeline_fill_cycles)

        # RMPU: bit-decomposed matmul throughput under the group's AAQ scheme.
        is_matmul = table.engine_mask(ENGINE_MATMUL)
        rmpu_cycles = np.where(
            is_matmul & (table.macs > 0),
            (table.macs * params["avg_units"][g]) / params["rmpu_denominator"][g] + fill,
            0.0,
        )

        # VVPU: vector operators plus runtime quantization of quantized outputs.
        vvpu_cycles = np.where(
            ~is_matmul & (table.vector_ops > 0),
            table.vector_ops / self.vvpu.lanes() + fill,
            0.0,
        )
        on_chip = table.fusible & self.tokenwise_mha
        quantize_output = params["quantized"][g] & ~on_chip
        tokens = table.output_elements / self.ppm_config.pair_dim
        vvpus = max(1, self.hw_config.num_vvpus)
        vvpu_cycles = vvpu_cycles + np.where(
            quantize_output, tokens * params["quant_cycles_per_token"][g] / vvpus, 0.0
        )

        # HBM: burst-aligned traffic at the quantized activation sizes.
        dram = np.where(
            on_chip,
            0.0,
            table.input_elements * params["bytes_in"][g]
            + table.output_elements * params["bytes_out"][g]
            + table.weight_elements * 2.0,
        )
        burst = self.hw_config.burst_bytes
        memory_cycles = np.where(
            dram > 0, np.ceil(dram / burst) * burst / self.hbm.bytes_per_cycle, 0.0
        )
        return rmpu_cycles, vvpu_cycles, memory_cycles, dram

    def _assemble_report(
        self,
        table: OperatorTable,
        rmpu_cycles: np.ndarray,
        vvpu_cycles: np.ndarray,
        memory_cycles: np.ndarray,
        dram: np.ndarray,
    ) -> LatencyReport:
        """Reduce per-operator engine cycles to one :class:`LatencyReport`."""
        stage = (
            np.maximum(np.maximum(rmpu_cycles, vvpu_cycles), memory_cycles)
            + self.hw_config.per_op_overhead_cycles
        )
        return self._finish_report(
            table,
            stage,
            rmpu_cycles,
            vvpu_cycles,
            memory_cycles,
            dram,
            table.weighted_sums("phase", stage),
            table.weighted_sums("subphase", stage),
        )

    def _finish_report(
        self,
        table: OperatorTable,
        stage: np.ndarray,
        rmpu_cycles: np.ndarray,
        vvpu_cycles: np.ndarray,
        memory_cycles: np.ndarray,
        dram: np.ndarray,
        phase_cycles: Dict[str, float],
        subphase_cycles: Dict[str, float],
    ) -> LatencyReport:
        total = float(stage.sum()) + self.hw_config.pipeline_fill_cycles
        return LatencyReport(
            sequence_length=table.sequence_length,
            total_cycles=total,
            total_seconds=total / self.hw_config.cycles_per_second,
            phase_cycles=phase_cycles,
            subphase_cycles={sub: c for sub, c in subphase_cycles.items() if sub},
            dram_bytes=float(dram.sum()),
            _columns=_LatencyColumns(
                names=table.names,
                phase_codes=table.phase_codes,
                phases=table.phases,
                subphase_codes=table.subphase_codes,
                subphases=table.subphases,
                rmpu_cycles=rmpu_cycles,
                vvpu_cycles=vvpu_cycles,
                memory_cycles=memory_cycles,
            ),
        )

    def simulate_table(self, table: OperatorTable) -> LatencyReport:
        """Vectorized simulation over the columns of an :class:`OperatorTable`."""
        rmpu, vvpu, memory, dram = self._engine_cycles(table)
        return self._assemble_report(table, rmpu, vvpu, memory, dram)

    def simulate_stack(self, stack: StackedOperatorTable) -> List[LatencyReport]:
        """One vectorized pass over a whole length mix; one report per segment.

        The engine arithmetic runs once over the stacked concatenation, the
        phase/subphase reductions once over combined (segment, label) bins,
        and per-segment totals over contiguous slices — all accumulation
        orders match the per-length call, so every returned report is
        bit-identical to :meth:`simulate_table` on that length (asserted by
        ``tests/test_stacked_table.py``).
        """
        rmpu, vvpu, memory, dram = self._engine_cycles(stack)
        stage = (
            np.maximum(np.maximum(rmpu, vvpu), memory)
            + self.hw_config.per_op_overhead_cycles
        )
        phase_dicts = stack.segment_weighted_sums_all("phase", stage)
        subphase_dicts = stack.segment_weighted_sums_all("subphase", stage)
        return [
            self._finish_report(
                stack.tables[i],
                stage[sl],
                rmpu[sl],
                vvpu[sl],
                memory[sl],
                dram[sl],
                phase_dicts[i],
                subphase_dicts[i],
            )
            for i, sl in enumerate(stack.segments)
        ]

    def simulate_stack_totals(self, stack: StackedOperatorTable) -> List[float]:
        """Per-segment ``total_seconds`` only — no report materialization.

        Totals-only consumers (the planner's service-time prefetch prices
        thousands of lengths and reads nothing but the scalar) skip the
        per-segment ``LatencyReport`` assembly entirely.  Each total is the
        same contiguous-slice sum :meth:`simulate_table` computes
        (``ndarray.sum`` delegates to ``np.add.reduce``), so the floats are
        bit-identical to the full-report path.
        """
        rmpu, vvpu, memory, _ = self._engine_cycles(stack)
        # Same max/max/add chain as the report paths, fused in place (the
        # intermediates are private here, and in-place ufuncs produce the
        # identical floats).
        stage = np.maximum(rmpu, vvpu)
        np.maximum(stage, memory, out=stage)
        stage += self.hw_config.per_op_overhead_cycles
        total = np.add.reduce
        totals = np.fromiter(
            (total(stage[sl]) for sl in stack.segments),
            dtype=np.float64,
            count=stack.num_segments,
        )
        # Elementwise add/divide on float64 matches the per-report scalar
        # arithmetic bit for bit.
        return (
            (totals + self.hw_config.pipeline_fill_cycles)
            / self.hw_config.cycles_per_second
        ).tolist()

    def simulate_workload(self, workload: Workload) -> LatencyReport:
        """Simulate an explicit workload through the columnar engine."""
        return self.simulate_table(OperatorTable.from_workload(workload))

    def simulate(self, sequence_length: int, include_recycles: bool = False) -> LatencyReport:
        """Simulate one inference at ``sequence_length`` residues."""
        table = get_op_table(self.ppm_config, sequence_length, include_recycles=include_recycles)
        return self.simulate_table(table)

    # ------------------------------------------------------------- convenience
    def folding_block_seconds(self, sequence_length: int) -> float:
        """Latency of the Protein Folding Block phases only (Fig. 14b-d metric)."""
        report = self.simulate(sequence_length)
        cycles = report.phase_cycles.get(PHASE_PAIR, 0.0) + report.phase_cycles.get(PHASE_SEQUENCE, 0.0)
        return cycles / self.hw_config.cycles_per_second

    def accelerated_phases(self) -> tuple:
        return (PHASE_PAIR, PHASE_SEQUENCE)

    def unaccelerated_phases(self) -> tuple:
        return (PHASE_INPUT_EMBEDDING, PHASE_STRUCTURE)
