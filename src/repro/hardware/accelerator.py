"""LightNobel accelerator: cycle-level latency simulation (Section 6).

The simulator consumes the operator graph of :mod:`repro.ppm.workload` and an
AAQ configuration, and models the three pipelined engines of the accelerator:

* RMPU — bit-decomposed matrix throughput with DAL utilization,
* VVPU — vector operations plus runtime quantization (top-k, scaling, packing),
* HBM  — burst-aligned activation traffic at the quantized sizes.

Per the paper, the overall latency of each pipeline stage is the longest of
the engine delays for that stage; the end-to-end latency is their sum.  The
token-wise MHA optimization (Section 5.4) keeps the attention score matrix on
chip, which removes both its DRAM traffic and its quantization cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..core.aaq import AAQConfig
from ..ppm.activation_tap import GROUP_C
from ..ppm.config import PPMConfig
from ..ppm.workload import (
    ENGINE_MATMUL,
    PHASE_INPUT_EMBEDDING,
    PHASE_PAIR,
    PHASE_SEQUENCE,
    PHASE_STRUCTURE,
    Operator,
    Workload,
    build_model_ops,
)
from .config import LightNobelConfig
from .memory import HBMModel
from .rmpu import RMPU
from .vvpu import VVPU


@dataclass
class OperatorLatency:
    """Latency contributions of one operator (in cycles)."""

    name: str
    phase: str
    subphase: str
    rmpu_cycles: float
    vvpu_cycles: float
    memory_cycles: float

    @property
    def stage_cycles(self) -> float:
        """Pipeline-stage latency: the slowest engine bounds the stage."""
        return max(self.rmpu_cycles, self.vvpu_cycles, self.memory_cycles)

    @property
    def bottleneck(self) -> str:
        values = {
            "rmpu": self.rmpu_cycles,
            "vvpu": self.vvpu_cycles,
            "memory": self.memory_cycles,
        }
        return max(values, key=values.get)


@dataclass
class LatencyReport:
    """Result of simulating one PPM inference on LightNobel."""

    sequence_length: int
    total_cycles: float
    total_seconds: float
    operator_latencies: list = field(default_factory=list)
    phase_cycles: Dict[str, float] = field(default_factory=dict)
    subphase_cycles: Dict[str, float] = field(default_factory=dict)
    dram_bytes: float = 0.0

    def phase_seconds(self, clock_hz: float) -> Dict[str, float]:
        return {phase: cycles / clock_hz for phase, cycles in self.phase_cycles.items()}

    def bottleneck_share(self) -> Dict[str, float]:
        """Fraction of stage latency bound by each engine."""
        totals: Dict[str, float] = {"rmpu": 0.0, "vvpu": 0.0, "memory": 0.0}
        for op in self.operator_latencies:
            totals[op.bottleneck] += op.stage_cycles
        total = sum(totals.values()) or 1.0
        return {k: v / total for k, v in totals.items()}


class LightNobelAccelerator:
    """Latency simulator for the LightNobel accelerator."""

    def __init__(
        self,
        hw_config: Optional[LightNobelConfig] = None,
        ppm_config: Optional[PPMConfig] = None,
        aaq_config: Optional[AAQConfig] = None,
        tokenwise_mha: bool = True,
    ) -> None:
        self.hw_config = hw_config or LightNobelConfig.paper()
        self.ppm_config = ppm_config or PPMConfig.paper()
        self.aaq_config = aaq_config or AAQConfig.paper_optimal()
        self.tokenwise_mha = tokenwise_mha
        self.rmpu = RMPU(self.hw_config)
        self.vvpu = VVPU(self.hw_config)
        self.hbm = HBMModel(self.hw_config)

    # ------------------------------------------------------------------ sizing
    def activation_bytes_per_element(self, group: Optional[str]) -> float:
        """Stored bytes per activation element for a given AAQ group."""
        if group is None:
            return self.ppm_config.activation_bytes
        hidden = self.ppm_config.pair_dim
        return self.aaq_config.bits_per_token(hidden, group) / hidden / 8.0

    def operator_dram_bytes(self, op: Operator) -> float:
        """DRAM traffic of one operator under AAQ and token-wise MHA."""
        if op.fusible and self.tokenwise_mha:
            return 0.0
        in_bytes = op.input_elements * self.activation_bytes_per_element(op.output_group or GROUP_C)
        out_bytes = op.output_elements * self.activation_bytes_per_element(op.output_group)
        weight_bytes = op.weight_elements * 2.0  # 16-bit weights, streamed once
        return in_bytes + out_bytes + weight_bytes

    # -------------------------------------------------------------- simulation
    def simulate_operator(self, op: Operator) -> OperatorLatency:
        quantize_output = op.output_group is not None and not (op.fusible and self.tokenwise_mha)
        rmpu_cycles = 0.0
        vvpu_cycles = 0.0
        if op.engine == ENGINE_MATMUL:
            rmpu_cycles = self.rmpu.operator_cycles(op, aaq=self.aaq_config)
        else:
            vvpu_cycles = self.vvpu.operator_cycles(op)
        if quantize_output:
            tokens = op.output_elements / self.ppm_config.pair_dim
            group_config = self.aaq_config.config_for(op.output_group)
            vvpu_cycles += self.vvpu.quantization_cycles(
                tokens, self.ppm_config.pair_dim, group_config.outlier_count
            )
        memory_cycles = self.hbm.transfer_cycles(self.operator_dram_bytes(op))
        return OperatorLatency(
            name=op.name,
            phase=op.phase,
            subphase=op.subphase,
            rmpu_cycles=rmpu_cycles,
            vvpu_cycles=vvpu_cycles,
            memory_cycles=memory_cycles,
        )

    def simulate_workload(self, workload: Workload) -> LatencyReport:
        operator_latencies = [self.simulate_operator(op) for op in workload.operators]
        phase_cycles: Dict[str, float] = {}
        subphase_cycles: Dict[str, float] = {}
        total = 0.0
        dram_bytes = 0.0
        for op, latency in zip(workload.operators, operator_latencies):
            stage = latency.stage_cycles + self.hw_config.per_op_overhead_cycles
            total += stage
            phase_cycles[op.phase] = phase_cycles.get(op.phase, 0.0) + stage
            if op.subphase:
                subphase_cycles[op.subphase] = subphase_cycles.get(op.subphase, 0.0) + stage
            dram_bytes += self.operator_dram_bytes(op)
        total += self.hw_config.pipeline_fill_cycles
        return LatencyReport(
            sequence_length=workload.sequence_length,
            total_cycles=total,
            total_seconds=total / self.hw_config.cycles_per_second,
            operator_latencies=operator_latencies,
            phase_cycles=phase_cycles,
            subphase_cycles=subphase_cycles,
            dram_bytes=dram_bytes,
        )

    def simulate(self, sequence_length: int, include_recycles: bool = False) -> LatencyReport:
        """Simulate one inference at ``sequence_length`` residues."""
        workload = build_model_ops(self.ppm_config, sequence_length, include_recycles=include_recycles)
        return self.simulate_workload(workload)

    # ------------------------------------------------------------- convenience
    def folding_block_seconds(self, sequence_length: int) -> float:
        """Latency of the Protein Folding Block phases only (Fig. 14b-d metric)."""
        report = self.simulate(sequence_length)
        cycles = report.phase_cycles.get(PHASE_PAIR, 0.0) + report.phase_cycles.get(PHASE_SEQUENCE, 0.0)
        return cycles / self.hw_config.cycles_per_second

    def accelerated_phases(self) -> tuple:
        return (PHASE_PAIR, PHASE_SEQUENCE)

    def unaccelerated_phases(self) -> tuple:
        return (PHASE_INPUT_EMBEDDING, PHASE_STRUCTURE)
