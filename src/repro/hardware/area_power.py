"""Area and power model of the LightNobel accelerator (Table 2, Section 8.4).

Component-level area (mm^2) and power (mW) figures follow the paper's 28 nm
synthesis results; this module reproduces the composition (32 RMPUs, 128
VVPUs, crossbar networks, scratchpads, controller), regenerates the Table 2
breakdown, and computes the efficiency comparison against A100/H100.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .config import LightNobelConfig


@dataclass(frozen=True)
class ComponentCost:
    """Area/power of one hardware component, possibly instantiated many times."""

    name: str
    area_mm2: float
    power_mw: float
    count: int = 1

    @property
    def total_area_mm2(self) -> float:
        return self.area_mm2 * self.count

    @property
    def total_power_mw(self) -> float:
        return self.power_mw * self.count


@dataclass(frozen=True)
class AreaPowerModel:
    """Composable area/power model using the paper's per-module constants.

    Per-instance constants are (area mm^2, power mW) pairs at 28 nm / 1 GHz.
    They compose to the Table 2 totals: ~178.8 mm^2 and ~67.8 W for the
    default 32-RMPU / 128-VVPU configuration, with the crossbar networks the
    dominant contributor (~70% of area).
    """

    config: LightNobelConfig = LightNobelConfig.paper()

    # Shared front-end
    token_aligner: tuple = (0.005, 0.105)
    # Per-RMPU components (sum: 1.127 mm^2, 589.147 mW per RMPU)
    rmpu_engine: tuple = (1.017, 473.903)
    rda: tuple = (0.005, 2.844)
    rmpu_output_fifo: tuple = (0.105, 112.400)
    # Per-VVPU components (sum: ~0.218 mm^2, ~72 mW per VVPU)
    simd_lanes_128: tuple = (0.115, 36.068)
    local_crossbar: tuple = (0.102, 35.000)
    ssu: tuple = (0.001, 0.902)
    # Shared back-end
    global_crossbar: tuple = (112.400, 39668.033)
    scratchpads: tuple = (2.023, 309.907)
    controller_others: tuple = (0.188, 147.775)

    # ------------------------------------------------------------- composition
    def rmpu_cost(self) -> ComponentCost:
        """One RMPU: engine + RDA + output FIFO."""
        area = self.rmpu_engine[0] + self.rda[0] + self.rmpu_output_fifo[0]
        power = self.rmpu_engine[1] + self.rda[1] + self.rmpu_output_fifo[1]
        return ComponentCost("rmpu", area, power, count=self.config.num_rmpus)

    def vvpu_cost(self) -> ComponentCost:
        """One VVPU: 128 SIMD lanes + local crossbar + SSU."""
        area = self.simd_lanes_128[0] + self.local_crossbar[0] + self.ssu[0]
        power = self.simd_lanes_128[1] + self.local_crossbar[1] + self.ssu[1]
        return ComponentCost("vvpu", area, power, count=self.config.num_vvpus)

    def shared_costs(self) -> List[ComponentCost]:
        return [
            ComponentCost("token_aligner", *self.token_aligner),
            ComponentCost("global_crossbar", *self.global_crossbar),
            ComponentCost("scratchpads", *self.scratchpads),
            ComponentCost("controller_and_others", *self.controller_others),
        ]

    def breakdown(self) -> Dict[str, Dict[str, float]]:
        """Table 2: per-module totals plus the accelerator total."""
        rows: Dict[str, Dict[str, float]] = {}
        rmpu = self.rmpu_cost()
        vvpu = self.vvpu_cost()
        rows[f"RMPU (x{rmpu.count})"] = {
            "area_mm2": rmpu.total_area_mm2,
            "power_w": rmpu.total_power_mw / 1000.0,
        }
        rows[f"VVPU (x{vvpu.count})"] = {
            "area_mm2": vvpu.total_area_mm2,
            "power_w": vvpu.total_power_mw / 1000.0,
        }
        for component in self.shared_costs():
            rows[component.name] = {
                "area_mm2": component.total_area_mm2,
                "power_w": component.total_power_mw / 1000.0,
            }
        rows["total"] = {
            "area_mm2": sum(r["area_mm2"] for r in rows.values()),
            "power_w": sum(r["power_w"] for r in rows.values()),
        }
        return rows

    def total_area_mm2(self) -> float:
        return self.breakdown()["total"]["area_mm2"]

    def total_power_w(self) -> float:
        return self.breakdown()["total"]["power_w"]

    def crossbar_share(self) -> Dict[str, float]:
        """Area/power share of the crossbar networks (GCN + all LCNs)."""
        breakdown = self.breakdown()
        crossbar_area = self.global_crossbar[0] + self.local_crossbar[0] * self.config.num_vvpus
        crossbar_power_w = (
            self.global_crossbar[1] + self.local_crossbar[1] * self.config.num_vvpus
        ) / 1000.0
        return {
            "area_share": crossbar_area / breakdown["total"]["area_mm2"],
            "power_share": crossbar_power_w / breakdown["total"]["power_w"],
        }


#: Reference GPU envelopes used for the efficiency comparison in Section 8.4.
GPU_ENVELOPES = {
    "A100": {"area_mm2": 826.0, "power_w": 300.0, "process_nm": 7},
    "H100": {"area_mm2": 814.0, "power_w": 350.0, "process_nm": 4},
}


def efficiency_versus_gpu(
    model: Optional[AreaPowerModel] = None,
    speedup_over_gpu: Optional[Dict[str, float]] = None,
) -> Dict[str, Dict[str, float]]:
    """Area/power ratios and power-efficiency gain versus A100/H100.

    ``speedup_over_gpu`` maps GPU name to LightNobel's measured speedup on
    that GPU's workload; the power-efficiency gain is
    ``speedup x (GPU power / LightNobel power)``, the quantity the abstract's
    37.29x / 43.35x figures report.
    """
    model = model or AreaPowerModel()
    speedup_over_gpu = speedup_over_gpu or {"A100": 1.0, "H100": 1.0}
    total_area = model.total_area_mm2()
    total_power = model.total_power_w()
    result: Dict[str, Dict[str, float]] = {}
    for gpu, envelope in GPU_ENVELOPES.items():
        speedup = speedup_over_gpu.get(gpu, 1.0)
        result[gpu] = {
            "area_ratio": total_area / envelope["area_mm2"],
            "power_ratio": total_power / envelope["power_w"],
            "power_efficiency_gain": speedup * envelope["power_w"] / total_power,
        }
    return result
