"""LightNobel accelerator configuration (Section 5, Section 7.2)."""

from __future__ import annotations

from dataclasses import dataclass, replace

from .._digest import config_digest as _config_digest


@dataclass(frozen=True)
class LightNobelConfig:
    """Hardware parameters of the LightNobel accelerator.

    Defaults follow the paper's final design point: 32 RMPUs with 4 VVPUs per
    RMPU (128 VVPUs total), 1 GHz clock, 80 GB of HBM2E across 5 stacks with a
    2 TB/s aggregate bandwidth (matched to the A100/H100 baselines).
    """

    num_rmpus: int = 32
    vvpus_per_rmpu: int = 4
    clock_ghz: float = 1.0

    # RMPU microarchitecture (Fig. 9)
    pe_clusters_per_rmpu: int = 4
    pe_lanes_per_cluster: int = 20
    pes_per_lane: int = 8
    multipliers_per_pe: int = 16      # minimal 4-bit computation units
    chunk_bits: int = 4               # minimum precision chunk handled by the RDA

    # VVPU microarchitecture (Fig. 10)
    simd_lanes_per_vvpu: int = 128
    vvpu_operand_bits: int = 16

    # Memory system
    hbm_stacks: int = 5
    hbm_capacity_gb: float = 80.0
    hbm_bandwidth_gbps: float = 2000.0   # 2 TB/s, matching the GPU baselines
    #: Achieved fraction of peak bandwidth on token-granular block reads
    #: (row activation and channel imbalance overheads from the Ramulator-style
    #: memory simulation).
    hbm_efficiency: float = 0.6
    memory_channel_bytes: int = 64
    burst_bytes: int = 32

    # On-chip scratchpads (Table 2)
    token_scratchpad_kb: int = 128
    weight_scratchpad_kb: int = 64
    output_scratchpad_kb: int = 128

    # Pipeline bookkeeping
    pipeline_fill_cycles: int = 32
    #: Per-operator scheduling overhead (controller dispatch, scratchpad swap,
    #: crossbar reconfiguration) visible between pipeline stages.
    per_op_overhead_cycles: int = 1500

    def __post_init__(self) -> None:
        if self.num_rmpus <= 0 or self.vvpus_per_rmpu <= 0:
            raise ValueError("RMPU and VVPU counts must be positive")
        if self.clock_ghz <= 0 or self.hbm_bandwidth_gbps <= 0:
            raise ValueError("clock and bandwidth must be positive")

    @classmethod
    def paper(cls) -> "LightNobelConfig":
        """The design point evaluated in the paper (32 RMPUs, 4 VVPUs each)."""
        return cls()

    def with_rmpus(self, num_rmpus: int) -> "LightNobelConfig":
        return replace(self, num_rmpus=num_rmpus)

    def with_vvpus_per_rmpu(self, vvpus_per_rmpu: int) -> "LightNobelConfig":
        return replace(self, vvpus_per_rmpu=vvpus_per_rmpu)

    # ------------------------------------------------------------------ derived
    @property
    def num_vvpus(self) -> int:
        return self.num_rmpus * self.vvpus_per_rmpu

    @property
    def pes_per_rmpu(self) -> int:
        return self.pe_clusters_per_rmpu * self.pe_lanes_per_cluster * self.pes_per_lane

    @property
    def multiplier_units_per_rmpu(self) -> int:
        """4-bit multiplier units available per RMPU per cycle."""
        return self.pes_per_rmpu * self.multipliers_per_pe

    @property
    def total_multiplier_units(self) -> int:
        return self.multiplier_units_per_rmpu * self.num_rmpus

    @property
    def total_simd_lanes(self) -> int:
        return self.num_vvpus * self.simd_lanes_per_vvpu

    @property
    def cycles_per_second(self) -> float:
        return self.clock_ghz * 1e9

    @property
    def bytes_per_cycle(self) -> float:
        """HBM bytes deliverable per clock cycle (after achieved efficiency)."""
        return self.hbm_bandwidth_gbps * 1e9 * self.hbm_efficiency / self.cycles_per_second

    def int8_tops(self) -> float:
        """Peak INT8-equivalent TOPS (2 ops per MAC, 8 units per INT8 MAC)."""
        macs_per_cycle = self.total_multiplier_units / 8.0
        return 2.0 * macs_per_cycle * self.cycles_per_second / 1e12

    def config_digest(self) -> str:
        """Canonical hash of every field, shared by the LRU and disk caches."""
        return _config_digest(self)
