"""Token Aligner, scratchpads and crossbar networks (Section 5.1, Fig. 8)."""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import Optional

from ..core.memory_layout import BlockedLayout
from .config import LightNobelConfig


@dataclass(frozen=True)
class ScratchpadSpec:
    """A simple capacity/bandwidth model of one on-chip scratchpad."""

    name: str
    capacity_kb: int
    line_bytes: int = 64

    @property
    def capacity_bytes(self) -> int:
        return self.capacity_kb * 1024

    def fits(self, bytes_needed: float) -> bool:
        return bytes_needed <= self.capacity_bytes

    def lines_for(self, bytes_needed: float) -> int:
        return int(ceil(bytes_needed / self.line_bytes))


class TokenAligner:
    """Decodes packed token blocks into token-wise scratchpad lines (Section 5.1)."""

    def __init__(self, config: Optional[LightNobelConfig] = None) -> None:
        self.config = config or LightNobelConfig.paper()

    def realign_cycles(self, layout: BlockedLayout) -> float:
        """One block is decoded per cycle; double buffering hides memory latency."""
        return float(len(layout.blocks))

    def scratchpad_lines(self, layout: BlockedLayout) -> int:
        """Scratchpad lines after realignment (one line per token)."""
        return sum(len(block.token_indices) for block in layout.blocks)


class CrossbarNetwork:
    """Swizzle-switch crossbar: port-contention model for GCN/LCN transfers."""

    def __init__(self, ports: int, port_bytes_per_cycle: int = 32) -> None:
        if ports <= 0 or port_bytes_per_cycle <= 0:
            raise ValueError("ports and port width must be positive")
        self.ports = ports
        self.port_bytes_per_cycle = port_bytes_per_cycle

    @property
    def bisection_bytes_per_cycle(self) -> float:
        return self.ports * self.port_bytes_per_cycle

    def transfer_cycles(self, total_bytes: float, active_ports: Optional[int] = None) -> float:
        """Cycles to move ``total_bytes`` spread across ``active_ports`` ports."""
        ports = self.ports if active_ports is None else min(active_ports, self.ports)
        if ports <= 0:
            raise ValueError("active_ports must be positive")
        per_port = total_bytes / ports
        return per_port / self.port_bytes_per_cycle


@dataclass(frozen=True)
class ChipLinkSpec:
    """Chip-to-chip interconnect of a multi-chip package or node (frozen, picklable).

    Reuses the :class:`CrossbarNetwork` contention model at package scale: a
    fleet node exposes one crossbar port per chip, each moving
    ``port_bytes_per_cycle`` at ``clock_hz``.  ``hop_latency_seconds`` is the
    fixed per-synchronization latency (link + protocol), paid once per
    collective regardless of payload.  ``syncs_per_block`` is how many
    all-gathers of the pair representation one folding block needs when its
    rows/columns are sharded across chips (row-wise and column-wise attention
    each resynchronize once).
    """

    port_bytes_per_cycle: int = 64
    clock_hz: float = 1.0e9
    hop_latency_seconds: float = 2.0e-6
    syncs_per_block: int = 2

    def network(self, chips: int) -> CrossbarNetwork:
        """The package crossbar for a ``chips``-wide node."""
        return CrossbarNetwork(ports=chips, port_bytes_per_cycle=self.port_bytes_per_cycle)

    def allgather_seconds(self, total_bytes: float, chips: int) -> float:
        """Time to all-gather ``total_bytes`` sharded across ``chips`` chips.

        Each chip contributes a ``1/chips`` shard and must receive the other
        ``chips - 1`` shards through its own port, all ports active in
        parallel — aggregate traffic ``total_bytes * (chips - 1)`` spread
        over ``chips`` ports, so per-chip receive time *grows* toward
        ``total_bytes / port_bandwidth`` as the fan-out widens.  Every
        collective pays the fixed hop latency once.
        """
        if chips <= 1:
            return 0.0
        aggregate = total_bytes * (chips - 1)
        cycles = self.network(chips).transfer_cycles(aggregate)
        return cycles / self.clock_hz + self.hop_latency_seconds


def default_scratchpads(config: Optional[LightNobelConfig] = None) -> dict:
    """The four scratchpads of Fig. 8 with the paper's capacities."""
    config = config or LightNobelConfig.paper()
    return {
        "token_0": ScratchpadSpec("token_0", config.token_scratchpad_kb),
        "token_1": ScratchpadSpec("token_1", config.token_scratchpad_kb),
        "weight": ScratchpadSpec("weight", config.weight_scratchpad_kb),
        "output": ScratchpadSpec("output", config.output_scratchpad_kb),
    }
