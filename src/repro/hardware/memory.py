"""HBM2E memory-system model (the role Ramulator plays in the paper)."""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import Optional

from .config import LightNobelConfig


@dataclass(frozen=True)
class MemoryTransaction:
    """One block transfer: requested payload and the bus bytes it occupies."""

    payload_bytes: float
    bus_bytes: float
    cycles: float

    @property
    def efficiency(self) -> float:
        return self.payload_bytes / self.bus_bytes if self.bus_bytes else 0.0


class HBMModel:
    """Bandwidth/burst-alignment model of the 5-stack HBM2E system."""

    def __init__(self, config: Optional[LightNobelConfig] = None) -> None:
        self.config = config or LightNobelConfig.paper()

    @property
    def bytes_per_cycle(self) -> float:
        return self.config.bytes_per_cycle

    def transaction(self, payload_bytes: float) -> MemoryTransaction:
        """Burst-align a payload and report the cycles it occupies on the bus."""
        if payload_bytes < 0:
            raise ValueError("payload_bytes must be non-negative")
        if payload_bytes == 0:
            return MemoryTransaction(0.0, 0.0, 0.0)
        burst = self.config.burst_bytes
        bus_bytes = ceil(payload_bytes / burst) * burst
        return MemoryTransaction(
            payload_bytes=payload_bytes,
            bus_bytes=bus_bytes,
            cycles=bus_bytes / self.bytes_per_cycle,
        )

    def transfer_cycles(self, payload_bytes: float) -> float:
        """Cycles needed to move ``payload_bytes`` through the HBM interface."""
        return self.transaction(payload_bytes).cycles

    def fits(self, resident_bytes: float) -> bool:
        """Whether a resident set fits in the 80 GB device memory."""
        return resident_bytes <= self.config.hbm_capacity_gb * 1e9
