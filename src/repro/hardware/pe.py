"""RMPU compute hierarchy: PE, PE Lane, PE Cluster and the DAL (Fig. 9).

The models here answer two questions the cycle-level simulator needs:

* how many minimal 4-bit multiplier units does one multiply-accumulate need,
  given the precisions of its two operands (bit-level decomposition, Fig. 9a),
* how many PE Lanes does one token's dot product occupy, and what hardware
  utilization results after the DAL's 4-lane / 5-lane rounding (Fig. 9c/e).

They are exercised directly by the unit tests and consumed by
:class:`repro.hardware.rmpu.RMPU` for throughput estimation.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import Tuple

from ..core.token_quant import TokenQuantConfig

#: Allowed PE-Lane groupings of the dynamically reconfigurable adder tree
#: (Fig. 9d): sums over 2 PEs, 4/5/8/16 lanes, or the whole 80-lane engine.
SUPPORTED_LANE_GROUPS: Tuple[int, ...] = (4, 5, 8, 16, 20)


def chunks_for_bits(bits: float, chunk_bits: int = 4) -> int:
    """Number of minimum-precision chunks needed to cover ``bits``."""
    if bits <= 0:
        raise ValueError("bits must be positive")
    return int(ceil(bits / chunk_bits))


def units_per_mac(activation_bits: float, weight_bits: float = 16, chunk_bits: int = 4) -> int:
    """4-bit multiplier units consumed by one MAC between the two precisions."""
    return chunks_for_bits(activation_bits, chunk_bits) * chunks_for_bits(weight_bits, chunk_bits)


@dataclass(frozen=True)
class ProcessingElement:
    """One PE: 16 minimal multipliers, one 16x16-bit multiply per cycle."""

    multipliers: int = 16
    chunk_bits: int = 4

    def units_for(self, activation_bits: float, weight_bits: float = 16) -> int:
        return units_per_mac(activation_bits, weight_bits, self.chunk_bits)

    def macs_per_cycle(self, activation_bits: float, weight_bits: float = 16) -> float:
        """How many MACs of the given precision one PE retires per cycle."""
        return self.multipliers / self.units_for(activation_bits, weight_bits)


@dataclass(frozen=True)
class PELane:
    """8 PEs plus a 4-to-1 adder tree; supports the 2-PE and 8-PE dataflows."""

    pes: int = 8
    pe: ProcessingElement = ProcessingElement()

    @property
    def multiplier_units(self) -> int:
        return self.pes * self.pe.multipliers

    def macs_per_cycle(self, activation_bits: float, weight_bits: float = 16) -> float:
        return self.pes * self.pe.macs_per_cycle(activation_bits, weight_bits)


@dataclass(frozen=True)
class DynamicAccumulationLogic:
    """DAL: rounds a lane requirement up to a supported adder-tree grouping."""

    def lanes_granted(self, lanes_required: float) -> int:
        for group in SUPPORTED_LANE_GROUPS:
            if lanes_required <= group:
                return group
        return SUPPORTED_LANE_GROUPS[-1]


@dataclass(frozen=True)
class PECluster:
    """20 PE Lanes plus the DAL (Fig. 9c)."""

    lanes: int = 20
    lane: PELane = PELane()
    dal: DynamicAccumulationLogic = DynamicAccumulationLogic()

    @property
    def multiplier_units(self) -> int:
        return self.lanes * self.lane.multiplier_units

    def dot_product_units(
        self, hidden_dim: int, quant: TokenQuantConfig, weight_bits: float = 16
    ) -> int:
        """4-bit units needed for one quantized-token x weight-vector dot product.

        Follows the paper's worked example: a 128-dim token with 124 INT4
        inliers and 4 INT16 outliers against INT16 weights needs
        ``4*124 + 16*4 = 560`` units.
        """
        outliers = min(quant.outlier_count, hidden_dim)
        inliers = hidden_dim - outliers
        inlier_units = inliers * units_per_mac(quant.inlier_bits, weight_bits)
        outlier_units = outliers * units_per_mac(quant.outlier_bits, weight_bits)
        return inlier_units + outlier_units

    def lanes_required(
        self, hidden_dim: int, quant: TokenQuantConfig, weight_bits: float = 16
    ) -> Tuple[int, float]:
        """(lanes granted by the DAL, resulting utilization) for one dot product."""
        units = self.dot_product_units(hidden_dim, quant, weight_bits)
        raw_lanes = units / self.lane.multiplier_units
        granted = self.dal.lanes_granted(raw_lanes)
        utilization = units / (granted * self.lane.multiplier_units)
        return granted, utilization

    def tokens_in_parallel(
        self, hidden_dim: int, quant: TokenQuantConfig, weight_bits: float = 16
    ) -> int:
        """Dot products the cluster sustains per cycle under the DAL grouping."""
        granted, _ = self.lanes_required(hidden_dim, quant, weight_bits)
        return max(1, self.lanes // granted)
