"""Reconfigurable Matrix Processing Unit: throughput model (Section 5.2)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.aaq import AAQConfig
from ..core.token_quant import TokenQuantConfig
from ..ppm.activation_tap import GROUP_C
from ..ppm.workload import Operator
from .config import LightNobelConfig
from .pe import PECluster, units_per_mac


@dataclass(frozen=True)
class RDAReport:
    """Work done by the Reconfigurable Data Aligner for one operator."""

    tokens: float
    chunks_per_token: float

    @property
    def alignment_cycles(self) -> float:
        # The RDA realigns one token per cycle per RMPU; chunk splitting is
        # pipelined with the engine so only the per-token pass is visible.
        return self.tokens


class RMPU:
    """Throughput model of one (or a pool of) RMPU(s)."""

    def __init__(self, config: Optional[LightNobelConfig] = None) -> None:
        self.config = config or LightNobelConfig.paper()
        self.cluster = PECluster()

    # ----------------------------------------------------------------- queries
    def units_per_cycle(self, num_rmpus: Optional[int] = None) -> float:
        """4-bit multiplier units available per cycle across ``num_rmpus``."""
        rmpus = self.config.num_rmpus if num_rmpus is None else num_rmpus
        return float(self.config.multiplier_units_per_rmpu * rmpus)

    def utilization_for(self, quant: TokenQuantConfig, hidden_dim: int, weight_bits: float = 16) -> float:
        """Engine utilization after DAL lane rounding for one token shape."""
        _, utilization = self.cluster.lanes_required(hidden_dim, quant, weight_bits)
        return utilization

    # ------------------------------------------------------------------ timing
    def operator_cycles(
        self,
        op: Operator,
        aaq: Optional[AAQConfig] = None,
        num_rmpus: Optional[int] = None,
        weight_bits: float = 16.0,
    ) -> float:
        """Compute cycles for one matmul operator under a quantization config.

        The cost is the total number of 4-bit multiplier units the operator
        needs (bit-decomposed MACs) divided by the units available per cycle,
        corrected by the DAL utilization for the operator's activation group.
        Unquantized execution (``aaq is None``) uses 16-bit activations.
        """
        if op.macs <= 0:
            return 0.0
        hidden_dim = self.config_hidden_dim()
        if aaq is None:
            quant = TokenQuantConfig(inlier_bits=16, outlier_count=0)
        else:
            group = op.output_group or GROUP_C
            quant = aaq.config_for(group)

        outliers = min(quant.outlier_count, hidden_dim)
        inlier_fraction = (hidden_dim - outliers) / hidden_dim
        average_units = (
            inlier_fraction * units_per_mac(quant.inlier_bits, weight_bits)
            + (1 - inlier_fraction) * units_per_mac(quant.outlier_bits, weight_bits)
        )
        total_units = op.macs * average_units
        utilization = self.utilization_for(quant, hidden_dim, weight_bits)
        units_per_cycle = self.units_per_cycle(num_rmpus) * utilization
        compute_cycles = total_units / units_per_cycle
        return compute_cycles + self.config.pipeline_fill_cycles

    def config_hidden_dim(self) -> int:
        """Hidden dimension assumed for token-shaped dot products (paper: 128)."""
        return 128

    def rda_report(self, op: Operator) -> RDAReport:
        tokens = op.input_elements / self.config_hidden_dim()
        return RDAReport(tokens=tokens, chunks_per_token=self.config_hidden_dim() / 4)
