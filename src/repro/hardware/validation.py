"""Cross-validation of the Python simulator against an RTL-style reference.

Section 6 of the paper validates the Python cycle-accurate simulator against
RTL simulation and reports per-dataset discrepancies of 1.81-4.63% (3.30% on
average), attributed to per-stage tail latency that shrinks as sequence length
grows.  We reproduce that methodology: the "RTL reference" model re-simulates
every operator with the per-stage effects the fast analytical model ignores
(pipeline drain, scratchpad swap gaps and crossbar arbitration per stage), and
the cross-validation reports the relative discrepancy between the two.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from ..ppm.config import PPMConfig
from .accelerator import LightNobelAccelerator
from .config import LightNobelConfig

#: Extra cycles per pipeline stage that RTL exposes but the analytical model
#: hides: pipeline drain, double-buffer swap and crossbar arbitration.
RTL_STAGE_OVERHEAD_CYCLES = 96.0


@dataclass(frozen=True)
class CrossValidationResult:
    """Discrepancy between the analytical simulator and the RTL reference."""

    dataset: str
    simulator_seconds: float
    rtl_seconds: float

    @property
    def discrepancy(self) -> float:
        return abs(self.rtl_seconds - self.simulator_seconds) / self.rtl_seconds


def rtl_reference_seconds(
    accelerator: LightNobelAccelerator, sequence_length: int
) -> float:
    """Latency of the RTL-style reference model for one sequence length."""
    report = accelerator.simulate(sequence_length)
    stage_count = len(report.operator_latencies)
    extra_cycles = stage_count * RTL_STAGE_OVERHEAD_CYCLES
    return (report.total_cycles + extra_cycles) / accelerator.hw_config.cycles_per_second


def cross_validate(
    dataset_lengths: Dict[str, Iterable[int]],
    hw_config: Optional[LightNobelConfig] = None,
    ppm_config: Optional[PPMConfig] = None,
) -> Dict[str, CrossValidationResult]:
    """Simulator-vs-RTL discrepancy per dataset (Section 6 cross-validation)."""
    accelerator = LightNobelAccelerator(hw_config=hw_config, ppm_config=ppm_config)
    results: Dict[str, CrossValidationResult] = {}
    for dataset, lengths in dataset_lengths.items():
        lengths = list(lengths)
        if not lengths:
            continue
        sim_total = 0.0
        rtl_total = 0.0
        for length in lengths:
            report = accelerator.simulate(length)
            sim_total += report.total_seconds
            rtl_total += rtl_reference_seconds(accelerator, length)
        results[dataset] = CrossValidationResult(
            dataset=dataset,
            simulator_seconds=sim_total / len(lengths),
            rtl_seconds=rtl_total / len(lengths),
        )
    return results
