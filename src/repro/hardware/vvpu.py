"""Versatile Vector Processing Unit: functional top-k and timing model (Section 5.3)."""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, log2
from typing import Optional, Tuple

import numpy as np

from ..ppm.workload import Operator
from .config import LightNobelConfig


def bitonic_stage_count(n: int) -> int:
    """Number of compare-exchange stages of a bitonic sorting network of size n."""
    if n <= 1:
        return 0
    k = ceil(log2(n))
    return k * (k + 1) // 2


def bitonic_topk(values: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray, int]:
    """Top-k selection via an explicit bitonic sorting network.

    Returns ``(top_values, top_indices, stages)`` where ``stages`` is the
    number of parallel compare-exchange stages executed — the quantity the
    latency model charges.  The network operates on the next power-of-two
    padded array, tracking indices exactly as the VVPU hardware does, so the
    result can be checked against ``np.argpartition`` in tests.
    """
    values = np.asarray(values, dtype=np.float64).reshape(-1)
    n = values.size
    if k <= 0:
        return np.empty(0), np.empty(0, dtype=np.int64), 0
    k = min(k, n)
    size = 1 << ceil(log2(max(n, 1)))
    padded = np.full(size, -np.inf)
    padded[:n] = values
    indices = np.arange(size)

    stages = 0
    length = 2
    while length <= size:
        direction_block = length
        step = length // 2
        while step >= 1:
            partner = np.arange(size) ^ step
            ascending = (np.arange(size) & direction_block) == 0
            keep = np.where(
                (np.arange(size) < partner)
                & (((padded > padded[partner]) & ascending) | ((padded < padded[partner]) & ~ascending)),
                True,
                False,
            )
            swap_targets = np.nonzero(keep)[0]
            for i in swap_targets:
                j = partner[i]
                padded[i], padded[j] = padded[j], padded[i]
                indices[i], indices[j] = indices[j], indices[i]
            stages += 1
            step //= 2
        length *= 2

    order = np.argsort(padded)[::-1][:k]
    return padded[order], indices[order], stages


@dataclass(frozen=True)
class VVPUTimings:
    """Cycle counts for the vector operations the PPM needs, per token."""

    layer_norm_passes: int = 4
    softmax_passes: int = 5
    residual_passes: int = 1
    quantize_passes: int = 2      # scale + pack (LCN reorder overlaps)

    def topk_cycles(self, hidden_dim: int) -> int:
        return bitonic_stage_count(hidden_dim)


class VVPU:
    """Timing model for the pool of VVPUs."""

    def __init__(self, config: Optional[LightNobelConfig] = None) -> None:
        self.config = config or LightNobelConfig.paper()
        self.timings = VVPUTimings()

    def lanes(self, num_vvpus: Optional[int] = None) -> float:
        vvpus = self.config.num_vvpus if num_vvpus is None else num_vvpus
        return float(vvpus * self.config.simd_lanes_per_vvpu)

    def operator_cycles(self, op: Operator, num_vvpus: Optional[int] = None) -> float:
        """Cycles to execute one vector operator across the VVPU pool."""
        if op.vector_ops <= 0:
            return 0.0
        return op.vector_ops / self.lanes(num_vvpus) + self.config.pipeline_fill_cycles

    def quantization_cycles(
        self,
        tokens: float,
        hidden_dim: int,
        outlier_count: int,
        num_vvpus: Optional[int] = None,
    ) -> float:
        """Cycles to runtime-quantize ``tokens`` tokens (top-k + scale + pack).

        Each VVPU quantizes one token at a time: the bitonic network provides
        the top-k outliers and the running maximum, then the SIMD lanes scale
        and the LCN/SSU pack the token (Section 5.3, "Runtime Quantization").
        Tokens are distributed across the VVPU pool.
        """
        vvpus = self.config.num_vvpus if num_vvpus is None else num_vvpus
        per_token = self.timings.quantize_passes
        if outlier_count > 0:
            per_token += self.timings.topk_cycles(hidden_dim)
        else:
            per_token += 1  # max-only search for the scaling factor
        return tokens * per_token / max(1, vvpus)
