"""Structure-quality and quantization-error metrics."""

from .gdt import gdt_ts, lddt
from .kabsch import Superposition, kabsch, superpose
from .rmsd import distance_rmse, quantization_rmse, rmsd
from .tm_score import d0_from_length, tm_score, tm_score_structures

__all__ = [
    "Superposition",
    "d0_from_length",
    "distance_rmse",
    "gdt_ts",
    "kabsch",
    "lddt",
    "quantization_rmse",
    "rmsd",
    "superpose",
    "tm_score",
    "tm_score_structures",
]
