"""GDT-TS and lDDT structure quality metrics (secondary metrics in CASP)."""

from __future__ import annotations

import numpy as np

from .kabsch import superpose


def gdt_ts(predicted: np.ndarray, reference: np.ndarray) -> float:
    """Global Distance Test - Total Score.

    Fraction of residues within 1, 2, 4 and 8 Angstrom of the reference after
    superposition, averaged.  Returned on a 0-1 scale.
    """
    predicted = np.asarray(predicted, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    if predicted.shape != reference.shape:
        raise ValueError("predicted and reference must have the same shape")
    aligned = superpose(predicted, reference)
    distances = np.linalg.norm(aligned - reference, axis=1)
    fractions = [float(np.mean(distances <= cutoff)) for cutoff in (1.0, 2.0, 4.0, 8.0)]
    return float(np.mean(fractions))


def lddt(
    predicted: np.ndarray,
    reference: np.ndarray,
    inclusion_radius: float = 15.0,
    exclude_neighbors: int = 1,
) -> float:
    """Local Distance Difference Test on CA atoms (superposition-free).

    For every pair of residues within ``inclusion_radius`` in the reference,
    the predicted pairwise distance is compared to the reference distance; the
    score is the fraction preserved within 0.5/1/2/4 Angstrom tolerances.
    """
    predicted = np.asarray(predicted, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    if predicted.shape != reference.shape:
        raise ValueError("predicted and reference must have the same shape")
    n = predicted.shape[0]
    ref_dist = np.linalg.norm(reference[:, None, :] - reference[None, :, :], axis=-1)
    pred_dist = np.linalg.norm(predicted[:, None, :] - predicted[None, :, :], axis=-1)
    idx = np.arange(n)
    neighbor_mask = np.abs(idx[:, None] - idx[None, :]) > exclude_neighbors
    pair_mask = (ref_dist <= inclusion_radius) & neighbor_mask
    if not np.any(pair_mask):
        return 1.0
    deltas = np.abs(ref_dist - pred_dist)[pair_mask]
    preserved = [float(np.mean(deltas <= tol)) for tol in (0.5, 1.0, 2.0, 4.0)]
    return float(np.mean(preserved))
