"""Kabsch superposition: optimal rigid-body alignment of two point sets."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Superposition:
    """Rigid transform (rotation + translation) aligning mobile onto reference."""

    rotation: np.ndarray
    translation: np.ndarray
    rmsd: float

    def apply(self, coordinates: np.ndarray) -> np.ndarray:
        """Apply the transform to a set of coordinates of shape ``(N, 3)``."""
        return coordinates @ self.rotation.T + self.translation


def kabsch(mobile: np.ndarray, reference: np.ndarray, weights: np.ndarray | None = None) -> Superposition:
    """Compute the least-squares rigid transform aligning ``mobile`` to ``reference``.

    Both inputs have shape ``(N, 3)``.  ``weights`` optionally weights each
    point (used by the iterative TM-score alignment to focus on well-aligned
    residues).
    """
    mobile = np.asarray(mobile, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    if mobile.shape != reference.shape or mobile.ndim != 2 or mobile.shape[1] != 3:
        raise ValueError("mobile and reference must both have shape (N, 3)")
    if mobile.shape[0] == 0:
        raise ValueError("cannot superpose empty point sets")

    if weights is None:
        weights = np.ones(mobile.shape[0])
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (mobile.shape[0],):
        raise ValueError("weights must have shape (N,)")
    total = weights.sum()
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    w = weights / total

    mobile_center = (w[:, None] * mobile).sum(axis=0)
    reference_center = (w[:, None] * reference).sum(axis=0)
    mobile_centered = mobile - mobile_center
    reference_centered = reference - reference_center

    covariance = (w[:, None] * mobile_centered).T @ reference_centered
    u, _, vt = np.linalg.svd(covariance)
    d = np.sign(np.linalg.det(vt.T @ u.T))
    correction = np.diag([1.0, 1.0, d])
    rotation = vt.T @ correction @ u.T

    aligned = mobile_centered @ rotation.T + reference_center
    diff = aligned - reference
    rmsd = float(np.sqrt(np.mean(np.sum(diff * diff, axis=1))))
    translation = reference_center - (mobile_center @ rotation.T)
    return Superposition(rotation=rotation, translation=translation, rmsd=rmsd)


def superpose(mobile: np.ndarray, reference: np.ndarray) -> np.ndarray:
    """Return ``mobile`` rigidly superposed onto ``reference``."""
    transform = kabsch(mobile, reference)
    return transform.apply(mobile)
