"""Root-mean-square deviation metrics."""

from __future__ import annotations

import numpy as np

from .kabsch import kabsch


def rmsd(predicted: np.ndarray, reference: np.ndarray, superpose: bool = True) -> float:
    """RMSD between two coordinate sets of shape ``(N, 3)``.

    When ``superpose`` is True (the default) the optimal rigid-body alignment
    is applied first, which is the convention in structural biology.
    """
    predicted = np.asarray(predicted, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    if predicted.shape != reference.shape:
        raise ValueError("predicted and reference must have the same shape")
    if superpose:
        return kabsch(predicted, reference).rmsd
    diff = predicted - reference
    return float(np.sqrt(np.mean(np.sum(diff * diff, axis=1))))


def distance_rmse(predicted_distances: np.ndarray, reference_distances: np.ndarray) -> float:
    """RMSE between two pairwise-distance matrices (superposition-free)."""
    predicted_distances = np.asarray(predicted_distances, dtype=np.float64)
    reference_distances = np.asarray(reference_distances, dtype=np.float64)
    if predicted_distances.shape != reference_distances.shape:
        raise ValueError("distance matrices must have the same shape")
    diff = predicted_distances - reference_distances
    return float(np.sqrt(np.mean(diff * diff)))


def quantization_rmse(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """RMSE between an activation tensor and its quantize/dequantize round trip."""
    original = np.asarray(original, dtype=np.float64)
    reconstructed = np.asarray(reconstructed, dtype=np.float64)
    if original.shape != reconstructed.shape:
        raise ValueError("original and reconstructed must have the same shape")
    return float(np.sqrt(np.mean((original - reconstructed) ** 2)))
