"""TM-score (Template Modeling score) between predicted and reference structures.

TM-score (Zhang & Skolnick, 2004) measures global structural similarity on a
0-1 scale with a length-dependent distance normalization ``d0`` that makes the
score comparable across protein sizes.  Scores above 0.5 indicate the two
structures share the same fold.  The paper reports TM-score for every accuracy
experiment (Fig. 11, Fig. 13), so this implementation follows the reference
definition, including the iterative superposition search over seed fragments
that the original TM-score program uses.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from ..proteins.structure import ProteinStructure
from .kabsch import kabsch


def d0_from_length(length: int) -> float:
    """Length-dependent normalization distance ``d0`` of the TM-score."""
    if length <= 21:
        return 0.5
    return max(0.5, 1.24 * (length - 15) ** (1.0 / 3.0) - 1.8)


def _tm_from_distances(squared_distances: np.ndarray, d0: float, normalization: int) -> float:
    return float(np.sum(1.0 / (1.0 + squared_distances / (d0 * d0))) / normalization)


def _seed_fragments(length: int, sizes: Iterable[int]) -> Iterable[slice]:
    for size in sizes:
        size = min(size, length)
        if size < 3:
            continue
        step = max(1, size // 2)
        for start in range(0, length - size + 1, step):
            yield slice(start, start + size)


def tm_score(
    predicted: np.ndarray,
    reference: np.ndarray,
    normalization_length: Optional[int] = None,
    max_iterations: int = 20,
) -> float:
    """Compute the TM-score of ``predicted`` against ``reference``.

    Both inputs are CA coordinate arrays of shape ``(N, 3)`` with residue i of
    one corresponding to residue i of the other (sequence-dependent alignment,
    as used when scoring predictions of a known target).

    The optimal superposition for TM-score is not the global RMSD alignment, so
    we follow the standard heuristic: seed alignments from contiguous fragments
    plus the global alignment, then iteratively re-superpose on the subset of
    residues currently within ``d0``-scaled distance, keeping the best score.
    """
    predicted = np.asarray(predicted, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    if predicted.shape != reference.shape or predicted.ndim != 2 or predicted.shape[1] != 3:
        raise ValueError("predicted and reference must both have shape (N, 3)")
    length = predicted.shape[0]
    if length < 3:
        raise ValueError("TM-score requires at least 3 residues")
    normalization = normalization_length or length
    d0 = d0_from_length(normalization)

    best = 0.0
    fragment_sizes = (length, max(length // 2, 4), max(length // 4, 4))
    for fragment in _seed_fragments(length, fragment_sizes):
        try:
            transform = kabsch(predicted[fragment], reference[fragment])
        except np.linalg.LinAlgError:  # pragma: no cover - degenerate fragment
            continue
        aligned = transform.apply(predicted)
        score = _refine_alignment(aligned, predicted, reference, d0, normalization, max_iterations)
        best = max(best, score)
    return min(1.0, best)


def _refine_alignment(
    aligned: np.ndarray,
    predicted: np.ndarray,
    reference: np.ndarray,
    d0: float,
    normalization: int,
    max_iterations: int,
) -> float:
    """Iteratively re-superpose on residues within the inclusion cutoff."""
    best = 0.0
    cutoff = max(d0, 4.5)
    for _ in range(max_iterations):
        squared = np.sum((aligned - reference) ** 2, axis=1)
        best = max(best, _tm_from_distances(squared, d0, normalization))
        mask = squared <= cutoff * cutoff
        if mask.sum() < 3:
            cutoff += 1.0
            if cutoff > 3 * max(d0, 4.5) + 10:
                break
            continue
        transform = kabsch(predicted[mask], reference[mask])
        new_aligned = transform.apply(predicted)
        if np.allclose(new_aligned, aligned, atol=1e-9):
            squared = np.sum((new_aligned - reference) ** 2, axis=1)
            best = max(best, _tm_from_distances(squared, d0, normalization))
            break
        aligned = new_aligned
    return best


def tm_score_structures(predicted: ProteinStructure, reference: ProteinStructure) -> float:
    """TM-score between two :class:`ProteinStructure` objects of the same protein."""
    if len(predicted) != len(reference):
        raise ValueError("structures must have the same number of residues")
    return tm_score(predicted.coordinates, reference.coordinates)
