"""Unified observability: tracing, typed metrics, and DES timeline export.

Three small, dependency-free (stdlib-only) subsystems that every other
layer wires into rather than reinventing:

* :mod:`repro.obs.tracing` — :class:`Tracer` / :class:`Span`: per-request
  span traces recorded by :class:`~repro.serving.service.LatencyService`,
  carried across the wire via ``LatencyRequest.trace_id`` / the
  ``X-Trace-Id`` header, served back by ``GET /v1/trace/<id>``.
* :mod:`repro.obs.metrics` — :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` (constant-memory exponential buckets) behind a
  :class:`MetricsRegistry`; :mod:`repro.obs.prom` renders any registry as
  Prometheus text exposition (``/metrics?format=prom``) and parses it back
  for validation.
* :mod:`repro.obs.timeline` — :class:`TimelineRecorder`: the cluster DES
  event stream captured via ``replay_trace(timeline=...)`` and exported as
  Chrome trace-event / Perfetto JSON, without perturbing bit-determinism.

``python -m repro.obs.smoke`` exercises all three end to end.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    DEFAULT_LATENCY_BUCKETS,
    exponential_buckets,
)
from .prom import render as render_prometheus, parse as parse_prometheus
from .timeline import TimelineRecorder
from .tracing import Span, Tracer, new_trace_id

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "DEFAULT_LATENCY_BUCKETS",
    "exponential_buckets",
    "render_prometheus",
    "parse_prometheus",
    "TimelineRecorder",
    "Span",
    "Tracer",
    "new_trace_id",
]
