"""Typed metric primitives: Counter / Gauge / Histogram behind a registry.

The serving and cluster layers each grew ad-hoc health reporting (plain int
counters, latency reservoirs, bespoke JSON blobs).  This module gives them
one vocabulary — the Prometheus data model, scoped down to what the repo
needs and implemented on the stdlib:

* :class:`Counter` — monotone float, ``inc()`` only.
* :class:`Gauge` — settable float, ``set()`` / ``inc()`` / ``dec()``.
* :class:`Histogram` — **fixed-size** exponential buckets.  Observations
  land in ``bisect``-indexed cumulative buckets, so memory is constant no
  matter how many requests flow through (the property that replaces the
  serving layer's bounded-but-sampled percentile reservoirs), and
  :meth:`Histogram.quantile` keeps the hardened edge contract of
  :func:`repro.serving.stats.percentile` (empty -> 0.0, q=0 -> exact min,
  q=100 -> exact max, NaN / out-of-range -> ``ValueError``).

Families support Prometheus-style labels: ``family.labels(backend="h100")``
returns (creating on first use) a child holding its own storage; an
unlabeled family is its own single child.  All mutation is lock-protected
per family and cheap enough for the serving hot path (one uncontended lock
plus a C-level ``bisect`` per observation).

A :class:`MetricsRegistry` maps unique metric names to families and is what
:func:`repro.obs.prom.render` walks.  The module-level :data:`REGISTRY` is
the process-wide default for ad-hoc user metrics; components that may be
instantiated many times per process (e.g. ``ServiceStats``) build private
families with ``registry=None`` and contribute them to a transient registry
at scrape time, so two live services never collide on a name.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "exponential_buckets",
    "DEFAULT_LATENCY_BUCKETS",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def exponential_buckets(
    start: float = 1e-6, factor: float = 2.0, count: int = 40
) -> Tuple[float, ...]:
    """``count`` geometric upper bounds ``start * factor**i`` (``+Inf`` is implicit).

    The default — 40 doublings from 1 µs — spans 1 µs .. ~9 minutes, wide
    enough for every latency this repo measures (microsecond memo hits to
    multi-minute cold N=1536 simulations) at ≤ 2x relative quantile error.
    """
    if start <= 0.0:
        raise ValueError("start must be positive")
    if factor <= 1.0:
        raise ValueError("factor must be > 1")
    if count < 1:
        raise ValueError("count must be >= 1")
    return tuple(start * factor**i for i in range(count))


#: The repo-wide default latency bucket ladder (see :func:`exponential_buckets`).
DEFAULT_LATENCY_BUCKETS = exponential_buckets()


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name: {name!r}")
    return name


def _check_labelnames(labelnames: Sequence[str]) -> Tuple[str, ...]:
    names = tuple(labelnames)
    for label in names:
        if not _LABEL_RE.match(label) or label.startswith("__"):
            raise ValueError(f"invalid label name: {label!r}")
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate label names: {names!r}")
    return names


class _Family:
    """Shared family plumbing: naming, labels, child storage, registration."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        registry: Optional["MetricsRegistry"] = None,
    ):
        self.name = _check_name(name)
        self.help = help
        self.labelnames = _check_labelnames(labelnames)
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], "_Family"] = {}
        self._label_values: Tuple[str, ...] = ()
        if registry is not None:
            registry.register(self)

    # -- label handling ----------------------------------------------------
    def labels(self, *values, **kwargs) -> "_Family":
        """Child for one label-value combination (created on first use)."""
        if not self.labelnames:
            raise ValueError(f"{self.name} has no labels")
        if values and kwargs:
            raise ValueError("pass label values positionally or by name, not both")
        if kwargs:
            if set(kwargs) != set(self.labelnames):
                raise ValueError(
                    f"expected labels {self.labelnames}, got {tuple(kwargs)}"
                )
            values = tuple(kwargs[label] for label in self.labelnames)
        else:
            values = tuple(values)
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"expected {len(self.labelnames)} label values, got {len(values)}"
            )
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = self._new_child()
                    child._label_values = key
                    self._children[key] = child
        return child

    def _new_child(self) -> "_Family":
        raise NotImplementedError

    def child_items(self) -> List[Tuple[Tuple[str, ...], "_Family"]]:
        """(label values, child) pairs; an unlabeled family is its own child."""
        if not self.labelnames:
            return [((), self)]
        with self._lock:
            return sorted(self._children.items())

    def _require_child(self) -> None:
        if self.labelnames:
            raise ValueError(
                f"{self.name} is a labeled family; call .labels(...) first"
            )


class Counter(_Family):
    """Monotonically increasing value (requests served, errors, retries)."""

    kind = "counter"

    def __init__(self, name, help="", labelnames=(), registry=None):
        super().__init__(name, help, labelnames, registry)
        self._value = 0.0

    def _new_child(self) -> "Counter":
        return Counter(self.name, self.help)

    def inc(self, amount: float = 1.0) -> None:
        self._require_child()
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge(_Family):
    """Instantaneous value (queue depth, in-flight tickets, fleet size)."""

    kind = "gauge"

    def __init__(self, name, help="", labelnames=(), registry=None):
        super().__init__(name, help, labelnames, registry)
        self._value = 0.0

    def _new_child(self) -> "Gauge":
        return Gauge(self.name, self.help)

    def set(self, value: float) -> None:
        self._require_child()
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._require_child()
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value


class Histogram(_Family):
    """Constant-memory distribution over fixed exponential buckets.

    ``observe()`` is the hot path: one lock, one C-level ``bisect`` over the
    bound ladder, four scalar updates.  Exact min and max are tracked on the
    side so :meth:`quantile` can honor the ``percentile()`` edge contract
    (q=0 and q=100 are exact) and clamp interior bucket-upper-bound
    estimates into the observed range — which also makes quantiles monotone
    in q.
    """

    kind = "histogram"

    def __init__(
        self,
        name,
        help="",
        labelnames=(),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        registry=None,
    ):
        super().__init__(name, help, labelnames, registry)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("need at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        if any(math.isnan(b) or math.isinf(b) for b in bounds):
            raise ValueError("bucket bounds must be finite (+Inf is implicit)")
        self.bounds = bounds
        # counts[i] <= bounds[i] bucket; counts[-1] is the +Inf overflow.
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0
        self._min = math.inf
        self._max = -math.inf

    def _new_child(self) -> "Histogram":
        return Histogram(self.name, self.help, buckets=self.bounds)

    def observe(self, value: float) -> None:
        self._require_child()
        with self._lock:
            self._counts[bisect_left(self.bounds, value)] += 1
            self._sum += value
            self._count += 1
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    # -- reads -------------------------------------------------------------
    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def min_observed(self) -> Optional[float]:
        return self._min if self._count else None

    @property
    def max_observed(self) -> Optional[float]:
        return self._max if self._count else None

    def bucket_counts(self) -> Tuple[int, ...]:
        """Per-bucket counts (last entry is the ``+Inf`` overflow bucket)."""
        with self._lock:
            return tuple(self._counts)

    def cumulative(self) -> Tuple[int, ...]:
        """Cumulative counts per bound plus the ``+Inf`` total (for exposition)."""
        counts = self.bucket_counts()
        out = []
        running = 0
        for c in counts:
            running += c
            out.append(running)
        return tuple(out)

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile estimate; `percentile()`'s edge contract.

        Interior quantiles return the upper bound of the bucket holding the
        nearest-rank sample, clamped to ``[min, max]`` observed — an upper
        estimate of the true value, never below it, off by at most one
        bucket's relative width.
        """
        if math.isnan(q) or not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        with self._lock:
            if not self._count:
                return 0.0
            if q == 0.0:
                return self._min
            if q == 100.0:
                return self._max
            rank = max(1, math.ceil(q / 100.0 * self._count))
            running = 0
            index = len(self._counts) - 1
            for i, c in enumerate(self._counts):
                running += c
                if running >= rank:
                    index = i
                    break
            if index >= len(self.bounds):
                return self._max  # nearest rank fell in the overflow bucket
            estimate = self.bounds[index]
            return min(max(estimate, self._min), self._max)


class MetricsRegistry:
    """Name -> family map that exposition renders; names must be unique."""

    def __init__(self):
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}

    def register(self, family: _Family) -> _Family:
        with self._lock:
            existing = self._families.get(family.name)
            if existing is not None and existing is not family:
                raise ValueError(f"duplicate metric name: {family.name}")
            self._families[family.name] = family
        return family

    def unregister(self, name: str) -> None:
        with self._lock:
            self._families.pop(name, None)

    def get(self, name: str) -> Optional[_Family]:
        return self._families.get(name)

    def collect(self) -> List[_Family]:
        """Registered families, sorted by name (a stable exposition order)."""
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def clear(self) -> None:
        with self._lock:
            self._families.clear()

    def __len__(self) -> int:
        return len(self._families)

    def __iter__(self) -> Iterator[_Family]:
        return iter(self.collect())


#: Process-wide default registry for ad-hoc user metrics.  Pass
#: ``registry=REGISTRY`` (or any registry) at family construction; families
#: built with ``registry=None`` stay private until registered explicitly.
REGISTRY = MetricsRegistry()
