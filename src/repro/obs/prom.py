"""Prometheus text exposition (format 0.0.4): render and parse.

:func:`render` turns a :class:`~repro.obs.metrics.MetricsRegistry` into the
plain-text format every Prometheus-compatible scraper speaks::

    # HELP repro_serving_requests_total Requests accepted by submit().
    # TYPE repro_serving_requests_total counter
    repro_serving_requests_total 1284
    # TYPE repro_serving_request_duration_seconds histogram
    repro_serving_request_duration_seconds_bucket{backend="h100",le="0.001"} 3
    ...
    repro_serving_request_duration_seconds_bucket{backend="h100",le="+Inf"} 41
    repro_serving_request_duration_seconds_sum{backend="h100"} 0.93
    repro_serving_request_duration_seconds_count{backend="h100"} 41

:func:`parse` is the inverse — strict enough that the test suite uses it to
*validate* what the HTTP front door serves (sample lines must lex, label
escapes must round-trip, histogram series must be cumulative with the
``+Inf`` bucket equal to ``_count``).  Values are rendered with ``repr``
so floats survive a render -> parse round trip bit-exactly.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Optional, Tuple

from .metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = ["render", "parse", "ParsedSample", "ParsedFamily", "PromParseError"]

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class PromParseError(ValueError):
    """Raised by :func:`parse` on text that is not valid exposition format."""


# ------------------------------------------------------------------ render
def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return (
        text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    as_float = float(value)
    if as_float.is_integer() and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def _label_str(names: Tuple[str, ...], values: Tuple[str, ...], extra: str = "") -> str:
    pairs = [
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(names, values)
    ]
    if extra:
        pairs.append(extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


def render(registry: MetricsRegistry) -> str:
    """Serialize every family in ``registry`` as exposition text."""
    lines: List[str] = []
    for family in registry.collect():
        if family.help:
            lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for values, child in family.child_items():
            if isinstance(child, Histogram):
                cumulative = child.cumulative()
                for bound, running in zip(child.bounds, cumulative):
                    labels = _label_str(
                        family.labelnames, values, f'le="{_format_value(bound)}"'
                    )
                    lines.append(
                        f"{family.name}_bucket{labels} {running}"
                    )
                labels = _label_str(family.labelnames, values, 'le="+Inf"')
                lines.append(f"{family.name}_bucket{labels} {cumulative[-1]}")
                labels = _label_str(family.labelnames, values)
                lines.append(f"{family.name}_sum{labels} {_format_value(child.sum)}")
                lines.append(f"{family.name}_count{labels} {child.count}")
            elif isinstance(child, (Counter, Gauge)):
                labels = _label_str(family.labelnames, values)
                lines.append(
                    f"{family.name}{labels} {_format_value(child.value)}"
                )
    return "\n".join(lines) + "\n"


# ------------------------------------------------------------------- parse
class ParsedSample:
    """One sample line: ``name{labels} value``."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Dict[str, str], value: float):
        self.name = name
        self.labels = labels
        self.value = value

    def __repr__(self) -> str:
        return f"ParsedSample({self.name!r}, {self.labels!r}, {self.value!r})"


class ParsedFamily:
    """All samples sharing one base metric name, plus TYPE/HELP metadata."""

    __slots__ = ("name", "kind", "help", "samples")

    def __init__(self, name: str, kind: Optional[str] = None, help: Optional[str] = None):
        self.name = name
        self.kind = kind
        self.help = help
        self.samples: List[ParsedSample] = []


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$"
)
_LABEL_PAIR_RE = re.compile(
    r'\s*(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"\s*(?P<sep>,|$)'
)
_SUFFIXES = ("_bucket", "_sum", "_count")


def _unescape_label_value(text: str) -> str:
    out = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "\\":
            if i + 1 >= len(text):
                raise PromParseError(f"dangling escape in label value: {text!r}")
            nxt = text[i + 1]
            if nxt == "n":
                out.append("\n")
            elif nxt in ('"', "\\"):
                out.append(nxt)
            else:
                raise PromParseError(f"bad escape \\{nxt} in label value")
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _parse_labels(raw: Optional[str]) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    if not raw:
        return labels
    pos = 0
    while pos < len(raw):
        match = _LABEL_PAIR_RE.match(raw, pos)
        if match is None:
            raise PromParseError(f"malformed label set: {{{raw}}}")
        name = match.group("name")
        if name in labels:
            raise PromParseError(f"duplicate label {name!r}")
        labels[name] = _unescape_label_value(match.group("value"))
        pos = match.end()
    return labels


def _parse_value(raw: str) -> float:
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    if raw == "NaN":
        return math.nan
    try:
        return float(raw)
    except ValueError:
        raise PromParseError(f"bad sample value: {raw!r}") from None


def _base_name(sample_name: str, families: Dict[str, ParsedFamily]) -> str:
    for suffix in _SUFFIXES:
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            family = families.get(base)
            if family is not None and family.kind == "histogram":
                return base
    return sample_name


def parse(text: str) -> Dict[str, ParsedFamily]:
    """Parse exposition text into families; raise :class:`PromParseError`.

    Beyond lexing, validates the invariants scrapers rely on: histogram
    ``_bucket`` series are cumulative (non-decreasing in ``le`` order) and
    the ``+Inf`` bucket equals the series ``_count``.
    """
    families: Dict[str, ParsedFamily] = {}
    # Exposition format is newline-delimited only; str.splitlines would also
    # split on control characters (\x1c-\x1e, \x85, ...) that are legal raw
    # bytes inside a label value.
    for lineno, line in enumerate(text.split("\n"), 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line[len("# HELP ") :].split(" ", 1)
            name = parts[0]
            family = families.setdefault(name, ParsedFamily(name))
            family.help = parts[1] if len(parts) > 1 else ""
            continue
        if line.startswith("# TYPE "):
            parts = line[len("# TYPE ") :].split()
            if len(parts) != 2:
                raise PromParseError(f"line {lineno}: malformed TYPE line")
            name, kind = parts
            if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                raise PromParseError(f"line {lineno}: unknown metric type {kind!r}")
            family = families.setdefault(name, ParsedFamily(name))
            family.kind = kind
            continue
        if line.startswith("#"):
            continue  # free-form comment
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise PromParseError(f"line {lineno}: malformed sample: {line!r}")
        labels = _parse_labels(match.group("labels"))
        value = _parse_value(match.group("value"))
        sample = ParsedSample(match.group("name"), labels, value)
        families.setdefault(
            _base_name(sample.name, families), ParsedFamily(sample.name)
        ).samples.append(sample)
    _validate_histograms(families)
    return families


def _validate_histograms(families: Dict[str, ParsedFamily]) -> None:
    for family in families.values():
        if family.kind != "histogram":
            continue
        # Group this family's samples by their non-`le` label identity.
        series: Dict[Tuple[Tuple[str, str], ...], Dict[str, object]] = {}
        for sample in family.samples:
            ident = tuple(
                sorted((k, v) for k, v in sample.labels.items() if k != "le")
            )
            slot = series.setdefault(ident, {"buckets": [], "count": None})
            if sample.name == family.name + "_bucket":
                if "le" not in sample.labels:
                    raise PromParseError(
                        f"{family.name}: _bucket sample without le label"
                    )
                slot["buckets"].append(
                    (_parse_value(sample.labels["le"]), sample.value)
                )
            elif sample.name == family.name + "_count":
                slot["count"] = sample.value
        for ident, slot in series.items():
            buckets = sorted(slot["buckets"], key=lambda pair: pair[0])
            if not buckets:
                raise PromParseError(f"{family.name}: histogram with no buckets")
            if not math.isinf(buckets[-1][0]):
                raise PromParseError(f"{family.name}: missing +Inf bucket")
            counts = [c for _, c in buckets]
            if any(b > a for b, a in zip(counts, counts[1:])):
                raise PromParseError(
                    f"{family.name}: bucket counts not cumulative for {ident}"
                )
            if slot["count"] is not None and buckets[-1][1] != slot["count"]:
                raise PromParseError(
                    f"{family.name}: +Inf bucket != _count for {ident}"
                )
