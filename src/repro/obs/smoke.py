"""CI smoke entry: the observability layer end to end.

Run as ``PYTHONPATH=src python -m repro.obs.smoke``.  Exercises all three
obs subsystems against the real stack:

1. **Tracing + metrics through a live service** — a tiny-config
   :class:`~repro.serving.service.LatencyService` with a
   :class:`~repro.obs.tracing.Tracer` serves a small batch (client trace
   IDs on some requests); the smoke asserts the span trees exist with the
   expected structure, that the Prometheus exposition of the service's
   metrics renders and parses back, and that the latency histogram counted
   every fulfilled request.
2. **DES timeline** — a hand-built micro replay (synthetic service times,
   one crash) runs with and without a
   :class:`~repro.obs.timeline.TimelineRecorder`; the smoke asserts the
   report and outcomes are bit-identical either way and that the Chrome
   trace export is well-formed and non-empty.
"""

from __future__ import annotations

import json
import sys
import tempfile

from ..cluster.des import replay_trace_outcomes
from ..cluster.faults import FaultSchedule, WorkerCrash
from ..cluster.fleet import FleetSpec
from ..cluster.trace import Request, RequestTrace
from ..ppm.config import PPMConfig
from ..serving.api import LatencyRequest
from ..serving.service import LatencyService
from ..sim.cache import sandbox_cache_dir
from . import prom
from .timeline import TimelineRecorder
from .tracing import Tracer


def _fail(message: str) -> int:
    print(f"FAIL: {message}", file=sys.stderr)
    return 1


def _serving_smoke() -> int:
    tracer = Tracer()
    requests = [
        LatencyRequest(backend=spec, sequence_length=n, trace_id=trace_id)
        for spec, n, trace_id in (
            ("lightnobel", 24, "smoke-trace-a"),
            ("lightnobel", 48, "smoke-trace-b"),
            ("h100-chunk", 24, None),
            ("h100-chunk", 48, None),
        )
    ]
    with tempfile.TemporaryDirectory(prefix="repro-obs-smoke-") as cache_dir:
        with sandbox_cache_dir(cache_dir):
            with LatencyService(
                ppm_config=PPMConfig.tiny(), use_disk_cache=False, tracer=tracer
            ) as service:
                tickets = service.submit_batch(requests)
                for ticket in tickets:
                    service.result(ticket, timeout=120.0).raise_for_error()
                registry = service.stats.metrics_registry()
                completed = service.stats.completed

    # Client-keyed traces: the request's journey, as the span tree.
    for trace_id in ("smoke-trace-a", "smoke-trace-b"):
        if tracer.find(trace_id) is None:
            return _fail(f"trace {trace_id!r} not recorded")
        payload = tracer.to_dict(trace_id)
        names = [span["name"] for span in payload["spans"]]
        if names[0] != "request" or "queue-wait" not in names or "fulfill" not in names:
            return _fail(f"trace {trace_id!r} has unexpected spans {names}")
        if len(payload["tree"]) != 1 or len(payload["tree"][0]["children"]) != 3:
            return _fail(f"trace {trace_id!r} tree is not one root with 3 children")
    # Untraced requests are keyed by ticket ID instead.
    auto_keyed = [k for k in tracer.trace_keys() if isinstance(k, int)]
    if len(auto_keyed) != 2:
        return _fail(f"expected 2 ticket-keyed traces, got {len(auto_keyed)}")

    # Prometheus exposition: renders, parses back, histogram counts add up.
    text = prom.render(registry)
    families = prom.parse(text)
    if "repro_serving_requests_completed_total" not in families:
        return _fail("completed counter missing from Prometheus exposition")
    histogram = families.get("repro_serving_request_duration_seconds")
    if histogram is None:
        return _fail("latency histogram missing from Prometheus exposition")
    observed = sum(
        int(sample.value)
        for sample in histogram.samples
        if sample.name.endswith("_count")
    )
    if observed != completed:
        return _fail(f"histogram counted {observed} requests, service {completed}")

    print(
        f"serving: {completed} requests traced across {len(tracer)} traces, "
        f"{len(families)} metric families exposed"
    )
    return 0


def _timeline_smoke() -> int:
    arrivals = [0.4 * i for i in range(12)]
    trace = RequestTrace(
        name="obs-smoke",
        requests=tuple(
            Request(
                id=i,
                arrival_seconds=t,
                sequence_length=32,
                priority=0,
                deadline_seconds=t + 6.0,
            )
            for i, t in enumerate(arrivals)
        ),
        seed=0,
        offered_rps=len(arrivals) / arrivals[-1],
    )
    fleet = FleetSpec.homogeneous("lightnobel", 2)
    times = {(0, 32): 1.0}
    faults = FaultSchedule(
        crashes=(WorkerCrash(worker_id=0, at_seconds=1.5, restart_after_seconds=2.0),)
    )

    baseline = replay_trace_outcomes(trace, fleet, service_times=times, faults=faults)
    recorder = TimelineRecorder()
    traced = replay_trace_outcomes(
        trace, fleet, service_times=times, faults=faults, timeline=recorder
    )
    if baseline != traced:
        return _fail("timeline recording perturbed the replay")
    counts = recorder.event_counts()
    for kind in ("arrival", "dispatch", "complete", "crash", "recover", "retry"):
        if counts.get(kind, 0) == 0:
            return _fail(f"timeline recorded no {kind!r} events")
    chrome = json.loads(recorder.to_json())
    events = chrome["traceEvents"]
    if not any(e.get("ph") == "X" and e.get("cat") == "service" for e in events):
        return _fail("Chrome export has no service spans")
    if not any(e.get("name") == "down" for e in events):
        return _fail("Chrome export has no down span for the crash")

    report = traced[0]
    print(
        f"timeline: {len(recorder)} events ({report.completed} completed, "
        f"{report.retried} retried) -> {len(events)} Chrome trace events, "
        f"bit-identical to the untraced replay"
    )
    return 0


def main(argv=None) -> int:
    for stage in (_serving_smoke, _timeline_smoke):
        code = stage()
        if code:
            return code
    print("smoke ok: tracing + Prometheus metrics + DES timeline export")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
