"""DES timeline capture and Chrome trace-event (Perfetto) export.

Pass ``timeline=TimelineRecorder()`` to
:func:`repro.cluster.des.replay_trace` and the event loop appends one plain
tuple per simulator event — arrivals, dispatches, completions, drops,
crashes, recoveries, retries, scale-ups, retirements, autoscaler ticks and
queue-depth samples.  Recording is strictly append-only and touches no
replay state, so a replay with a recorder attached stays **bit-identical**
to one without (the golden tests pin this).

:meth:`TimelineRecorder.to_chrome_trace` lays the capture out in the Chrome
trace-event JSON format — one lane (``tid``) per worker, a ``cluster`` lane
for traffic-level instants, counter tracks for queue depth and fleet size —
which ``chrome://tracing`` and https://ui.perfetto.dev open directly:

1. ``timeline.write("replay.trace.json")``
2. open https://ui.perfetto.dev -> "Open trace file"

Service windows are "X" (complete) events; a crash truncates its victim's
window at the crash instant and marks it ``aborted``.  Crash -> recover
intervals render as ``down`` spans so dead capacity is visible as a gap.
All timestamps are simulated seconds scaled to microseconds (the trace
format's native unit).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["TimelineRecorder"]

_PID = 0  # one simulated cluster == one "process" in the trace viewer
_CLUSTER_TID = 0  # lane for traffic-level instants; workers are tid = id + 1


class TimelineRecorder:
    """Append-only capture of one replay's event stream.

    Every record method is a single ``list.append`` of a tuple — cheap
    enough to leave on, and (by construction) incapable of perturbing the
    replay that feeds it.  One recorder captures one replay; attach a fresh
    instance per call.
    """

    def __init__(self) -> None:
        self.events: List[Tuple] = []
        self.trace_name = ""
        self.fleet_name = ""
        self.group_labels: Tuple[str, ...] = ()
        self.base_group_of: Tuple[int, ...] = ()

    # -- identity (called once by the replay before the loop) --------------
    def configure(
        self,
        trace_name: str,
        fleet_name: str,
        group_labels: Sequence[str],
        group_of: Sequence[int],
    ) -> None:
        self.trace_name = trace_name
        self.fleet_name = fleet_name
        self.group_labels = tuple(group_labels)
        self.base_group_of = tuple(group_of)

    # -- recording (hot path: one tuple append each) ------------------------
    def arrival(self, t: float, request_id: int, length: int, priority: int) -> None:
        self.events.append(("arrival", t, request_id, length, priority))

    def dispatch(
        self, start: float, finish: float, worker: int, request_id: int, length: int
    ) -> None:
        self.events.append(("dispatch", start, finish, worker, request_id, length))

    def complete(self, t: float, worker: int, request_id: int, met: bool) -> None:
        self.events.append(("complete", t, worker, request_id, met))

    def drop(self, t: float, request_id: int, reason: str) -> None:
        self.events.append(("drop", t, request_id, reason))

    def crash(self, t: float, worker: int) -> None:
        self.events.append(("crash", t, worker))

    def abort(self, t: float, worker: int, request_id: int) -> None:
        self.events.append(("abort", t, worker, request_id))

    def recover(self, t: float, worker: int) -> None:
        self.events.append(("recover", t, worker))

    def retry(self, t: float, request_id: int) -> None:
        self.events.append(("retry", t, request_id))

    def scale_up(self, t: float, worker: int, group: int) -> None:
        self.events.append(("scale_up", t, worker, group))

    def retire(self, t: float, worker: int) -> None:
        self.events.append(("retire", t, worker))

    def autoscale(self, t: float) -> None:
        self.events.append(("autoscale", t))

    def queue_depth(self, t: float, depth: int) -> None:
        self.events.append(("queue_depth", t, depth))

    # -- reads --------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def event_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event[0]] = counts.get(event[0], 0) + 1
        return counts

    # -- export -------------------------------------------------------------
    def to_chrome_trace(self) -> Dict[str, Any]:
        """The capture as a Chrome trace-event JSON object (Perfetto-ready)."""
        us = lambda t: round(t * 1e6, 3)  # noqa: E731 - trace-native microseconds
        out: List[Dict[str, Any]] = []
        worker_group: Dict[int, int] = dict(enumerate(self.base_group_of))
        known_workers = set(worker_group)

        def lane(worker: int) -> int:
            return worker + 1

        # First pass: aborts (to truncate their dispatch windows), dynamic
        # workers, crash/recover pairings, and the capture's end time.
        aborts: List[Tuple[float, int, int]] = []  # (t, worker, request_id)
        down_open: Dict[int, float] = {}
        down_spans: List[Tuple[int, float, Optional[float]]] = []
        end_time = 0.0
        for event in self.events:
            kind, t = event[0], event[1]
            end_time = max(end_time, t)
            if kind == "dispatch":
                end_time = max(end_time, event[2])
                known_workers.add(event[3])
            elif kind == "abort":
                aborts.append((t, event[2], event[3]))
            elif kind == "crash":
                down_open.setdefault(event[2], t)
            elif kind == "recover":
                start = down_open.pop(event[2], None)
                if start is not None:
                    down_spans.append((event[2], start, t))
            elif kind == "scale_up":
                known_workers.add(event[2])
                worker_group[event[2]] = event[3]
        for worker, start in down_open.items():
            down_spans.append((worker, start, None))  # dead through the end

        # Lane metadata: names and a stable top-to-bottom order.
        out.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": _PID,
                "args": {"name": f"{self.fleet_name or 'fleet'} x {self.trace_name or 'trace'}"},
            }
        )
        out.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID,
                "tid": _CLUSTER_TID,
                "args": {"name": "cluster"},
            }
        )
        for worker in sorted(known_workers):
            group = worker_group.get(worker)
            label = (
                self.group_labels[group]
                if group is not None and group < len(self.group_labels)
                else "scaled"
            )
            out.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": _PID,
                    "tid": lane(worker),
                    "args": {"name": f"worker {worker} [{label}]"},
                }
            )
        for tid in [_CLUSTER_TID] + [lane(w) for w in sorted(known_workers)]:
            out.append(
                {
                    "name": "thread_sort_index",
                    "ph": "M",
                    "pid": _PID,
                    "tid": tid,
                    "args": {"sort_index": tid},
                }
            )

        abort_pool = list(aborts)
        for event in self.events:
            kind = event[0]
            if kind == "dispatch":
                _, start, finish, worker, request_id, length = event
                aborted_at: Optional[float] = None
                for i, (at, aw, arid) in enumerate(abort_pool):
                    if aw == worker and arid == request_id and start <= at <= finish:
                        aborted_at = at
                        abort_pool.pop(i)
                        break
                shown_end = aborted_at if aborted_at is not None else finish
                args = {"request": request_id, "length": length}
                if aborted_at is not None:
                    args["aborted"] = True
                out.append(
                    {
                        "name": f"req {request_id} (n={length})",
                        "cat": "service",
                        "ph": "X",
                        "pid": _PID,
                        "tid": lane(worker),
                        "ts": us(start),
                        "dur": max(0.0, us(shown_end) - us(start)),
                        "args": args,
                    }
                )
            elif kind == "arrival":
                _, t, request_id, length, priority = event
                out.append(
                    {
                        "name": "arrival",
                        "cat": "traffic",
                        "ph": "i",
                        "s": "t",
                        "pid": _PID,
                        "tid": _CLUSTER_TID,
                        "ts": us(t),
                        "args": {
                            "request": request_id,
                            "length": length,
                            "priority": priority,
                        },
                    }
                )
            elif kind == "drop":
                _, t, request_id, reason = event
                out.append(
                    {
                        "name": f"drop ({reason})",
                        "cat": "traffic",
                        "ph": "i",
                        "s": "t",
                        "pid": _PID,
                        "tid": _CLUSTER_TID,
                        "ts": us(t),
                        "args": {"request": request_id, "reason": reason},
                    }
                )
            elif kind == "retry":
                _, t, request_id = event
                out.append(
                    {
                        "name": "retry",
                        "cat": "traffic",
                        "ph": "i",
                        "s": "t",
                        "pid": _PID,
                        "tid": _CLUSTER_TID,
                        "ts": us(t),
                        "args": {"request": request_id},
                    }
                )
            elif kind in ("crash", "recover", "retire"):
                t, worker = event[1], event[2]
                out.append(
                    {
                        "name": kind,
                        "cat": "fleet",
                        "ph": "i",
                        "s": "t",
                        "pid": _PID,
                        "tid": lane(worker),
                        "ts": us(t),
                        "args": {"worker": worker},
                    }
                )
            elif kind == "scale_up":
                _, t, worker, group = event
                out.append(
                    {
                        "name": "scale up",
                        "cat": "fleet",
                        "ph": "i",
                        "s": "t",
                        "pid": _PID,
                        "tid": lane(worker),
                        "ts": us(t),
                        "args": {"worker": worker, "group": group},
                    }
                )
            elif kind == "autoscale":
                out.append(
                    {
                        "name": "autoscale tick",
                        "cat": "fleet",
                        "ph": "i",
                        "s": "t",
                        "pid": _PID,
                        "tid": _CLUSTER_TID,
                        "ts": us(event[1]),
                        "args": {},
                    }
                )
            elif kind == "queue_depth":
                _, t, depth = event
                out.append(
                    {
                        "name": "queue depth",
                        "ph": "C",
                        "pid": _PID,
                        "tid": _CLUSTER_TID,
                        "ts": us(t),
                        "args": {"depth": depth},
                    }
                )
        for worker, start, stop in down_spans:
            out.append(
                {
                    "name": "down",
                    "cat": "fleet",
                    "ph": "X",
                    "pid": _PID,
                    "tid": lane(worker),
                    "ts": us(start),
                    "dur": max(0.0, us(stop if stop is not None else end_time) - us(start)),
                    "args": {"worker": worker, "recovered": stop is not None},
                }
            )
        return {
            "traceEvents": out,
            "displayTimeUnit": "ms",
            "otherData": {
                "trace": self.trace_name,
                "fleet": self.fleet_name,
                "groups": list(self.group_labels),
                "events_recorded": len(self.events),
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.to_chrome_trace(), sort_keys=True)

    def write(self, path: str) -> None:
        """Write the Chrome trace JSON to ``path`` (open it in Perfetto)."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
