"""Per-request span tracing with a bounded in-memory trace store.

A *trace* is every span recorded under one trace ID — usually one request's
journey through :class:`~repro.serving.service.LatencyService` (queue-wait,
coalesce/pool-dispatch/simulate, fulfill).  The client supplies the trace ID
on :class:`~repro.serving.api.LatencyRequest` (or the ``X-Trace-Id`` HTTP
header) so its own trace continues inside the service; requests without one
are keyed by their integer ticket ID, so ``GET /v1/trace/<ticket-id>``
works for every fulfilled request either way.

Design constraints, in order:

1. **Hot-path cost.**  The warm serving path fulfills a request in ~15 µs;
   tracing rides it at a few hundred nanoseconds by appending one pre-built
   tuple per request under one lock (:meth:`Tracer.record_batch`).  Span
   IDs, dataclasses and trees are materialized only at read time — the read
   path is an HTTP endpoint, not the dispatcher.
2. **Bounded memory.**  At most ``max_traces`` traces are held (FIFO
   eviction) and at most ``max_spans_per_trace`` spans accumulate under one
   ID; overflow spans are counted-and-dropped, never grown.
3. **No-op when off.**  ``Tracer(enabled=False)`` (or ``tracer=None`` on the
   service) short-circuits every record call before any allocation.
"""

from __future__ import annotations

import itertools
import threading
import time
import uuid
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

__all__ = ["Span", "SpanBatch", "Tracer", "new_trace_id"]

#: Trace keys: client-supplied strings, or int ticket IDs for auto-keyed
#: requests (never formatted on the hot path).
TraceKey = Union[str, int]

#: One span inside a :meth:`Tracer.record_batch` call:
#: ``(name, start_seconds, end_seconds, attributes-or-None)``.
SpanBatch = Tuple[Tuple[str, float, float, Optional[Mapping[str, Any]]], ...]


def new_trace_id() -> str:
    """A fresh 32-hex-char trace ID (for clients that want one made up)."""
    return uuid.uuid4().hex


@dataclass(frozen=True)
class Span:
    """One timed operation inside a trace (materialized at read time)."""

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    start_seconds: float
    end_seconds: float
    attributes: Mapping[str, Any] = field(default_factory=dict)

    @property
    def duration_seconds(self) -> float:
        return self.end_seconds - self.start_seconds

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_seconds": self.start_seconds,
            "end_seconds": self.end_seconds,
            "duration_seconds": self.duration_seconds,
            "attributes": dict(self.attributes),
        }


class _SpanHandle:
    """What :meth:`Tracer.span` yields: identity plus an attribute bag."""

    __slots__ = ("trace_id", "span_id", "attributes")

    def __init__(self, trace_id: TraceKey, span_id: str):
        self.trace_id = trace_id
        self.span_id = span_id
        self.attributes: Dict[str, Any] = {}


class Tracer:
    """Bounded trace store; every record call is cheap or a no-op.

    Internal storage per trace is a ``[span_count, entries]`` pair where an
    entry is either a raw batch (from :meth:`record_batch` — span IDs
    assigned lazily at read) or an explicit span tuple (from
    :meth:`record_span`, which allocates an ID eagerly so callers can nest
    under it).
    """

    def __init__(
        self,
        enabled: bool = True,
        max_traces: int = 1024,
        max_spans_per_trace: int = 512,
    ):
        if max_traces < 1:
            raise ValueError("max_traces must be >= 1")
        if max_spans_per_trace < 1:
            raise ValueError("max_spans_per_trace must be >= 1")
        self.enabled = enabled
        self.max_traces = max_traces
        self.max_spans_per_trace = max_spans_per_trace
        self._lock = threading.Lock()
        self._traces: "OrderedDict[TraceKey, list]" = OrderedDict()
        self._ids = itertools.count(1)
        self._dropped_spans = 0
        self._evicted_traces = 0

    # -- recording ---------------------------------------------------------
    def record_batch(self, trace_key: TraceKey, batch: SpanBatch) -> None:
        """Append one request's spans in a single lock acquisition.

        ``batch[0]`` is the root span; every later entry becomes its child.
        The batch must be a pre-built tuple — the whole point is that the
        hot path does no per-span work here.
        """
        if not self.enabled:
            return
        with self._lock:
            bucket = self._traces.get(trace_key)
            if bucket is None:
                if len(self._traces) >= self.max_traces:
                    self._traces.popitem(last=False)
                    self._evicted_traces += 1
                bucket = self._traces[trace_key] = [0, []]
            if bucket[0] < self.max_spans_per_trace:
                bucket[0] += len(batch)
                bucket[1].append(batch)
            else:
                self._dropped_spans += len(batch)

    def record_span(
        self,
        trace_key: TraceKey,
        name: str,
        start_seconds: float,
        end_seconds: float,
        parent_id: Optional[str] = None,
        attributes: Optional[Mapping[str, Any]] = None,
    ) -> Optional[str]:
        """Record one explicit span; returns its span ID (None when disabled)."""
        if not self.enabled:
            return None
        span_id = f"{next(self._ids):012x}"
        entry = (span_id, parent_id, name, start_seconds, end_seconds, attributes)
        with self._lock:
            bucket = self._traces.get(trace_key)
            if bucket is None:
                if len(self._traces) >= self.max_traces:
                    self._traces.popitem(last=False)
                    self._evicted_traces += 1
                bucket = self._traces[trace_key] = [0, []]
            if bucket[0] < self.max_spans_per_trace:
                bucket[0] += 1
                bucket[1].append(entry)
            else:
                self._dropped_spans += 1
        return span_id

    @contextmanager
    def span(
        self,
        name: str,
        trace_id: Optional[TraceKey] = None,
        parent_id: Optional[str] = None,
    ):
        """Time a block as one span: ``with tracer.span("prefetch") as s:``."""
        handle = _SpanHandle(
            trace_id if trace_id is not None else new_trace_id(),
            f"{next(self._ids):012x}" if self.enabled else "",
        )
        start = time.perf_counter()
        try:
            yield handle
        finally:
            if self.enabled:
                end = time.perf_counter()
                entry = (
                    handle.span_id,
                    parent_id,
                    name,
                    start,
                    end,
                    dict(handle.attributes) or None,
                )
                with self._lock:
                    bucket = self._traces.get(handle.trace_id)
                    if bucket is None:
                        if len(self._traces) >= self.max_traces:
                            self._traces.popitem(last=False)
                            self._evicted_traces += 1
                        bucket = self._traces[handle.trace_id] = [0, []]
                    if bucket[0] < self.max_spans_per_trace:
                        bucket[0] += 1
                        bucket[1].append(entry)
                    else:
                        self._dropped_spans += 1

    # -- reads -------------------------------------------------------------
    def find(self, raw_key: str) -> Optional[TraceKey]:
        """Resolve an over-the-wire key: exact string, else integer form."""
        with self._lock:
            if raw_key in self._traces:
                return raw_key
            if raw_key.lstrip("-").isdigit() and int(raw_key) in self._traces:
                return int(raw_key)
        return None

    def trace(self, trace_key: TraceKey) -> Tuple[Span, ...]:
        """Materialize every span recorded under ``trace_key`` (may be empty)."""
        with self._lock:
            bucket = self._traces.get(trace_key)
            entries = list(bucket[1]) if bucket is not None else []
        spans: List[Span] = []
        trace_str = str(trace_key)
        lazy = itertools.count(1)
        for entry in entries:
            if entry and isinstance(entry[0], tuple):  # raw batch
                root_id = f"b{next(lazy):08x}"
                for i, (name, start, end, attrs) in enumerate(entry):
                    spans.append(
                        Span(
                            trace_id=trace_str,
                            span_id=root_id if i == 0 else f"{root_id}.{i}",
                            parent_id=None if i == 0 else root_id,
                            name=name,
                            start_seconds=start,
                            end_seconds=end,
                            attributes=dict(attrs) if attrs else {},
                        )
                    )
            else:  # explicit span tuple
                span_id, parent_id, name, start, end, attrs = entry
                spans.append(
                    Span(
                        trace_id=trace_str,
                        span_id=span_id,
                        parent_id=parent_id,
                        name=name,
                        start_seconds=start,
                        end_seconds=end,
                        attributes=dict(attrs) if attrs else {},
                    )
                )
        return tuple(spans)

    def trace_tree(self, trace_key: TraceKey) -> List[Dict[str, Any]]:
        """Spans nested parent -> children (roots listed in record order)."""
        spans = self.trace(trace_key)
        nodes = {span.span_id: {**span.to_dict(), "children": []} for span in spans}
        roots: List[Dict[str, Any]] = []
        for span in spans:
            node = nodes[span.span_id]
            parent = nodes.get(span.parent_id) if span.parent_id else None
            if parent is not None:
                parent["children"].append(node)
            else:
                roots.append(node)
        return roots

    def to_dict(self, trace_key: TraceKey) -> Dict[str, Any]:
        """JSON payload for ``GET /v1/trace/<id>``."""
        spans = self.trace(trace_key)
        return {
            "trace_id": str(trace_key),
            "span_count": len(spans),
            "spans": [span.to_dict() for span in spans],
            "tree": self.trace_tree(trace_key),
        }

    def trace_keys(self) -> Tuple[TraceKey, ...]:
        with self._lock:
            return tuple(self._traces)

    @property
    def dropped_spans(self) -> int:
        return self._dropped_spans

    @property
    def evicted_traces(self) -> int:
        return self._evicted_traces

    def __len__(self) -> int:
        return len(self._traces)

    def __contains__(self, trace_key: TraceKey) -> bool:
        return trace_key in self._traces

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()
