"""Protein Structure Prediction Model substrate (ESMFold-like folding trunk)."""

from .activation_tap import (
    GROUP_A,
    GROUP_B,
    GROUP_C,
    GROUPS,
    ActivationContext,
    ActivationRecord,
    ActivationRecorder,
    TransformingContext,
    summarize_activation,
)
from .attention import OuterProductMean, SequenceAttention
from .chunking import (
    blockwise_attention,
    context_observes_taps,
    iter_chunks,
    streaming_attention,
)
from .config import PPMConfig
from .embedding import EmbeddingOutput, InputEmbedding, StructurePrior
from .folding_block import FoldingBlock, FoldingTrunk, TrunkOutput
from .functional import gelu, layer_norm, relu, sigmoid, softmax
from .model import PredictionResult, ProteinStructureModel
from .modules import LayerNorm, Linear, Module, Transition
from .op_table import (
    OperatorTable,
    StackedOperatorTable,
    clear_workload_caches,
    get_op_table,
    get_stacked_table,
    get_workload,
    workload_cache_info,
)
from .structure_module import (
    StructureModule,
    StructurePrediction,
    mds_embedding,
    mean_torsion_sign,
    resolve_chirality,
    stress_refinement,
)
from .triangle import TriangleAttention, TriangleMultiplication

__all__ = [
    "GROUP_A",
    "GROUP_B",
    "GROUP_C",
    "GROUPS",
    "ActivationContext",
    "ActivationRecord",
    "ActivationRecorder",
    "EmbeddingOutput",
    "FoldingBlock",
    "FoldingTrunk",
    "InputEmbedding",
    "LayerNorm",
    "Linear",
    "Module",
    "OperatorTable",
    "StackedOperatorTable",
    "OuterProductMean",
    "PPMConfig",
    "PredictionResult",
    "ProteinStructureModel",
    "SequenceAttention",
    "StructureModule",
    "StructurePrediction",
    "StructurePrior",
    "Transition",
    "TransformingContext",
    "TriangleAttention",
    "TriangleMultiplication",
    "TrunkOutput",
    "blockwise_attention",
    "clear_workload_caches",
    "context_observes_taps",
    "gelu",
    "get_op_table",
    "get_stacked_table",
    "get_workload",
    "iter_chunks",
    "layer_norm",
    "mds_embedding",
    "mean_torsion_sign",
    "relu",
    "resolve_chirality",
    "sigmoid",
    "softmax",
    "streaming_attention",
    "stress_refinement",
    "summarize_activation",
    "workload_cache_info",
]
