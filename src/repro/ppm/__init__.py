"""Protein Structure Prediction Model substrate (ESMFold-like folding trunk)."""

from .activation_tap import (
    GROUP_A,
    GROUP_B,
    GROUP_C,
    GROUPS,
    ActivationContext,
    ActivationRecord,
    ActivationRecorder,
    TransformingContext,
    summarize_activation,
)
from .attention import OuterProductMean, SequenceAttention
from .config import PPMConfig
from .embedding import EmbeddingOutput, InputEmbedding, StructurePrior
from .folding_block import FoldingBlock, FoldingTrunk, TrunkOutput
from .functional import gelu, layer_norm, relu, sigmoid, softmax
from .model import PredictionResult, ProteinStructureModel
from .modules import LayerNorm, Linear, Module, Transition
from .op_table import (
    OperatorTable,
    clear_workload_caches,
    get_op_table,
    get_workload,
    workload_cache_info,
)
from .structure_module import (
    StructureModule,
    StructurePrediction,
    mds_embedding,
    mean_torsion_sign,
    resolve_chirality,
    stress_refinement,
)
from .triangle import TriangleAttention, TriangleMultiplication

__all__ = [
    "GROUP_A",
    "GROUP_B",
    "GROUP_C",
    "GROUPS",
    "ActivationContext",
    "ActivationRecord",
    "ActivationRecorder",
    "EmbeddingOutput",
    "FoldingBlock",
    "FoldingTrunk",
    "InputEmbedding",
    "LayerNorm",
    "Linear",
    "Module",
    "OperatorTable",
    "OuterProductMean",
    "PPMConfig",
    "PredictionResult",
    "ProteinStructureModel",
    "SequenceAttention",
    "StructureModule",
    "StructurePrediction",
    "StructurePrior",
    "Transition",
    "TransformingContext",
    "TriangleAttention",
    "TriangleMultiplication",
    "TrunkOutput",
    "clear_workload_caches",
    "gelu",
    "get_op_table",
    "get_workload",
    "layer_norm",
    "mds_embedding",
    "mean_torsion_sign",
    "relu",
    "resolve_chirality",
    "sigmoid",
    "softmax",
    "stress_refinement",
    "summarize_activation",
    "workload_cache_info",
]
