"""Activation tap points: recording and transforming PPM activations.

The paper's contribution (AAQ) acts on the activations of the Pair
Representation dataflow.  To keep the model code independent of any particular
quantization scheme, every module reports its activations through an
:class:`ActivationContext`.  The default context is a no-op; an
:class:`ActivationRecorder` collects statistics for the analysis experiments
(Fig. 5, Fig. 6c); the quantization contexts in :mod:`repro.ppm.quantized`
fake-quantize the activation in place, which is how the accuracy experiments
(Fig. 11, Fig. 13) inject quantization error.

Activation groups follow Section 4.2 of the paper:

* ``GROUP_A`` — residual-stream activations entering a LayerNorm (large values,
  outliers present, need high precision + outlier handling).
* ``GROUP_B`` — LayerNorm outputs that have not yet passed a linear layer
  (small values, outliers still present).
* ``GROUP_C`` — remaining pair-dataflow activations (small values, few
  outliers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

GROUP_A = "A"
GROUP_B = "B"
GROUP_C = "C"
GROUPS = (GROUP_A, GROUP_B, GROUP_C)


@dataclass
class ActivationRecord:
    """Summary statistics of one activation tensor observed at a tap point."""

    name: str
    group: str
    shape: tuple
    mean_abs: float
    max_abs: float
    std: float
    outlier_count_3sigma: float
    token_count: int

    @property
    def elements(self) -> int:
        count = 1
        for dim in self.shape:
            count *= dim
        return count


class ActivationContext:
    """Base context: passes activations through unchanged and records nothing."""

    def process(self, name: str, group: str, value: np.ndarray) -> np.ndarray:
        """Hook invoked at every tap point; returns the (possibly new) activation."""
        return value


#: Shared do-nothing context used when the caller does not supply one.
NULL_CONTEXT = ActivationContext()


def summarize_activation(name: str, group: str, value: np.ndarray) -> ActivationRecord:
    """Build an :class:`ActivationRecord` from an activation tensor.

    Tokens are vectors along the last (channel) axis, as in the paper; the
    3-sigma outlier count is averaged per token.
    """
    flat = value.reshape(-1, value.shape[-1]) if value.ndim >= 2 else value.reshape(1, -1)
    abs_values = np.abs(flat)
    std = float(flat.std())
    per_token_std = flat.std(axis=-1, keepdims=True)
    per_token_mean = flat.mean(axis=-1, keepdims=True)
    outliers = np.abs(flat - per_token_mean) > 3.0 * np.maximum(per_token_std, 1e-12)
    return ActivationRecord(
        name=name,
        group=group,
        shape=tuple(value.shape),
        mean_abs=float(abs_values.mean()),
        max_abs=float(abs_values.max()),
        std=std,
        outlier_count_3sigma=float(outliers.sum(axis=-1).mean()),
        token_count=int(flat.shape[0]),
    )


@dataclass
class ActivationRecorder(ActivationContext):
    """Context that records per-tap statistics (and optionally raw samples)."""

    keep_arrays: bool = False
    max_kept_tokens: int = 4096
    records: List[ActivationRecord] = field(default_factory=list)
    arrays: Dict[str, np.ndarray] = field(default_factory=dict)
    _rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(0))

    def process(self, name: str, group: str, value: np.ndarray) -> np.ndarray:
        self.records.append(summarize_activation(name, group, value))
        if self.keep_arrays:
            flat = value.reshape(-1, value.shape[-1])
            if flat.shape[0] > self.max_kept_tokens:
                idx = self._rng.choice(flat.shape[0], size=self.max_kept_tokens, replace=False)
                flat = flat[idx]
            self.arrays[name] = np.array(flat, copy=True)
        return value

    def by_group(self) -> Dict[str, List[ActivationRecord]]:
        """Group the collected records by activation group."""
        grouped: Dict[str, List[ActivationRecord]] = {g: [] for g in GROUPS}
        for record in self.records:
            grouped.setdefault(record.group, []).append(record)
        return grouped

    def group_summary(self) -> Dict[str, Dict[str, float]]:
        """Average value magnitude and outlier count per group (Fig. 6c)."""
        summary: Dict[str, Dict[str, float]] = {}
        for group, records in self.by_group().items():
            if not records:
                continue
            summary[group] = {
                "mean_abs": float(np.mean([r.mean_abs for r in records])),
                "outliers_per_token": float(np.mean([r.outlier_count_3sigma for r in records])),
                "max_abs": float(np.max([r.max_abs for r in records])),
                "count": float(len(records)),
            }
        return summary

    def clear(self) -> None:
        self.records.clear()
        self.arrays.clear()


@dataclass
class TransformingContext(ActivationContext):
    """Context that applies a per-group transformation to every activation.

    ``transforms`` maps group name to a callable ``f(array) -> array``; groups
    without an entry pass through unchanged.  The quantization experiments use
    this with fake-quantization callables built from the schemes in
    :mod:`repro.core`.
    """

    transforms: Dict[str, Callable[[np.ndarray], np.ndarray]] = field(default_factory=dict)
    recorder: Optional[ActivationRecorder] = None

    def process(self, name: str, group: str, value: np.ndarray) -> np.ndarray:
        if self.recorder is not None:
            self.recorder.process(name, group, value)
        transform = self.transforms.get(group)
        if transform is None:
            return value
        return transform(value)
