"""Activation tap points: recording and transforming PPM activations.

The paper's contribution (AAQ) acts on the activations of the Pair
Representation dataflow.  To keep the model code independent of any particular
quantization scheme, every module reports its activations through an
:class:`ActivationContext`.  The default context is a no-op; an
:class:`ActivationRecorder` collects statistics for the analysis experiments
(Fig. 5, Fig. 6c); the quantization contexts in :mod:`repro.ppm.quantized`
fake-quantize the activation in place, which is how the accuracy experiments
(Fig. 11, Fig. 13) inject quantization error.

Activation groups follow Section 4.2 of the paper:

* ``GROUP_A`` — residual-stream activations entering a LayerNorm (large values,
  outliers present, need high precision + outlier handling).
* ``GROUP_B`` — LayerNorm outputs that have not yet passed a linear layer
  (small values, outliers still present).
* ``GROUP_C`` — remaining pair-dataflow activations (small values, few
  outliers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

GROUP_A = "A"
GROUP_B = "B"
GROUP_C = "C"
GROUPS = (GROUP_A, GROUP_B, GROUP_C)


@dataclass
class ActivationRecord:
    """Summary statistics of one activation tensor observed at a tap point."""

    name: str
    group: str
    shape: tuple
    mean_abs: float
    max_abs: float
    std: float
    outlier_count_3sigma: float
    token_count: int

    @property
    def elements(self) -> int:
        count = 1
        for dim in self.shape:
            count *= dim
        return count


class ActivationContext:
    """Base context: passes activations through unchanged and records nothing."""

    def process(self, name: str, group: str, value: np.ndarray) -> np.ndarray:
        """Hook invoked at every tap point; returns the (possibly new) activation."""
        return value


#: Shared do-nothing context used when the caller does not supply one.
NULL_CONTEXT = ActivationContext()


def _activation_statistics(value: np.ndarray) -> tuple:
    """(token_count, mean_abs, max_abs, std, outliers_per_token) of one tensor.

    Tokens are vectors along the last (channel) axis, as in the paper; the
    3-sigma outlier count is averaged per token.
    """
    flat = value.reshape(-1, value.shape[-1]) if value.ndim >= 2 else value.reshape(1, -1)
    abs_values = np.abs(flat)
    per_token_std = flat.std(axis=-1, keepdims=True)
    per_token_mean = flat.mean(axis=-1, keepdims=True)
    outliers = np.abs(flat - per_token_mean) > 3.0 * np.maximum(per_token_std, 1e-12)
    return (
        int(flat.shape[0]),
        float(abs_values.mean()),
        float(abs_values.max()),
        float(flat.std()),
        float(outliers.sum(axis=-1).mean()),
    )


def summarize_activation(name: str, group: str, value: np.ndarray) -> ActivationRecord:
    """Build an :class:`ActivationRecord` from an activation tensor."""
    token_count, mean_abs, max_abs, std, outliers = _activation_statistics(value)
    return ActivationRecord(
        name=name,
        group=group,
        shape=tuple(value.shape),
        mean_abs=mean_abs,
        max_abs=max_abs,
        std=std,
        outlier_count_3sigma=outliers,
        token_count=token_count,
    )


#: Numeric statistics kept per tap, in buffer column order.
STAT_COLUMNS = ("mean_abs", "max_abs", "std", "outlier_count_3sigma", "token_count")


class ActivationRecorder(ActivationContext):
    """Context that records per-tap statistics (and optionally raw samples).

    Statistics land in a growable numpy buffer (capacity-doubling, columnar)
    rather than a per-tap Python object list: a ``small()``-config run fires
    thousands of taps, and the Fig. 5/6 aggregations consume whole columns.
    :attr:`records` materializes :class:`ActivationRecord` objects on demand
    for the classification APIs that want them.
    """

    _INITIAL_CAPACITY = 256

    def __init__(self, keep_arrays: bool = False, max_kept_tokens: int = 4096) -> None:
        self.keep_arrays = keep_arrays
        self.max_kept_tokens = max_kept_tokens
        self.arrays: Dict[str, np.ndarray] = {}
        self._rng: np.random.Generator = np.random.default_rng(0)
        self._names: List[str] = []
        self._groups: List[str] = []
        self._shapes: List[tuple] = []
        self._stats = np.empty((self._INITIAL_CAPACITY, len(STAT_COLUMNS)), dtype=np.float64)
        self._count = 0
        self._records_cache: Optional[List[ActivationRecord]] = None

    # -------------------------------------------------------------- recording
    def _ensure_capacity(self) -> None:
        if self._count == self._stats.shape[0]:
            grown = np.empty((2 * self._stats.shape[0], len(STAT_COLUMNS)), dtype=np.float64)
            grown[: self._count] = self._stats
            self._stats = grown

    def process(self, name: str, group: str, value: np.ndarray) -> np.ndarray:
        token_count, mean_abs, max_abs, std, outliers = _activation_statistics(value)
        self._ensure_capacity()
        self._stats[self._count] = (mean_abs, max_abs, std, outliers, token_count)
        self._count += 1
        self._names.append(name)
        self._groups.append(group)
        self._shapes.append(tuple(value.shape))
        self._records_cache = None
        if self.keep_arrays:
            flat = value.reshape(-1, value.shape[-1])
            if flat.shape[0] > self.max_kept_tokens:
                idx = self._rng.choice(flat.shape[0], size=self.max_kept_tokens, replace=False)
                flat = flat[idx]
            self.arrays[name] = np.array(flat, copy=True)
        return value

    # ---------------------------------------------------------------- queries
    def __len__(self) -> int:
        return self._count

    def stat_column(self, name: str) -> np.ndarray:
        """Read-only view of one statistic across every recorded tap."""
        column = self._stats[: self._count, STAT_COLUMNS.index(name)]
        column.flags.writeable = False
        return column

    def group_mask(self, group: str) -> np.ndarray:
        return np.array([g == group for g in self._groups], dtype=bool)

    @property
    def records(self) -> List[ActivationRecord]:
        """Per-tap records, materialized lazily from the columnar buffers."""
        if self._records_cache is None:
            stats = self._stats
            self._records_cache = [
                ActivationRecord(
                    name=self._names[i],
                    group=self._groups[i],
                    shape=self._shapes[i],
                    mean_abs=float(stats[i, 0]),
                    max_abs=float(stats[i, 1]),
                    std=float(stats[i, 2]),
                    outlier_count_3sigma=float(stats[i, 3]),
                    token_count=int(stats[i, 4]),
                )
                for i in range(self._count)
            ]
        return self._records_cache

    def by_group(self) -> Dict[str, List[ActivationRecord]]:
        """Group the collected records by activation group."""
        grouped: Dict[str, List[ActivationRecord]] = {g: [] for g in GROUPS}
        for record in self.records:
            grouped.setdefault(record.group, []).append(record)
        return grouped

    def group_summary(self) -> Dict[str, Dict[str, float]]:
        """Average value magnitude and outlier count per group (Fig. 6c).

        Computed directly on the stat buffers — no per-record Python loop.
        """
        ordered = list(GROUPS) + [g for g in dict.fromkeys(self._groups) if g not in GROUPS]
        summary: Dict[str, Dict[str, float]] = {}
        for group in ordered:
            mask = self.group_mask(group)
            if not mask.any():
                continue
            stats = self._stats[: self._count][mask]
            summary[group] = {
                "mean_abs": float(stats[:, 0].mean()),
                "outliers_per_token": float(stats[:, 3].mean()),
                "max_abs": float(stats[:, 1].max()),
                "count": float(stats.shape[0]),
            }
        return summary

    def clear(self) -> None:
        self._names.clear()
        self._groups.clear()
        self._shapes.clear()
        self._count = 0
        self._records_cache = None
        self.arrays.clear()


@dataclass
class TransformingContext(ActivationContext):
    """Context that applies a per-group transformation to every activation.

    ``transforms`` maps group name to a callable ``f(array) -> array``; groups
    without an entry pass through unchanged.  The quantization experiments use
    this with fake-quantization callables built from the schemes in
    :mod:`repro.core`.
    """

    transforms: Dict[str, Callable[[np.ndarray], np.ndarray]] = field(default_factory=dict)
    recorder: Optional[ActivationRecorder] = None

    def process(self, name: str, group: str, value: np.ndarray) -> np.ndarray:
        if self.recorder is not None:
            self.recorder.process(name, group, value)
        transform = self.transforms.get(group)
        if transform is None:
            return value
        return transform(value)
