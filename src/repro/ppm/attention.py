"""Sequence-representation attention with pair bias, and outer product mean.

The Sequence Representation dataflow of the folding block (Fig. 2b) consists
of a pair-biased self-attention over the sequence representation followed by a
transition MLP; the sequence representation then feeds back into the pair
representation through the Outer Product Mean.  These blocks account for a
small share of the runtime at long sequence length (Fig. 3b) but they are the
source of the "unpredictable outliers ... due to biasing and merging with
Sequence Representation" that motivates dynamic outlier handling.
"""

from __future__ import annotations

import numpy as np

from .activation_tap import GROUP_C, ActivationContext, NULL_CONTEXT
from .chunking import iter_chunks
from .config import PPMConfig
from .functional import sigmoid, softmax
from .modules import LayerNorm, Linear, Module


class SequenceAttention(Module):
    """Self-attention over the sequence representation with an additive pair bias.

    Honors ``PPMConfig.attn_chunk_size``: when set, attention is evaluated in
    query blocks (each against the full key axis — the score matrix is only
    (H, Ns, Ns) here, so the blocks exist for uniformity with the triangular
    stack, not out of memory pressure).  ``None`` keeps the dense path
    bit-for-bit.
    """

    def __init__(self, config: PPMConfig, rng: np.random.Generator, name: str = "sequence_attention") -> None:
        super().__init__(name)
        self.chunk_size = config.attn_chunk_size
        self.num_heads = config.seq_num_heads
        if config.seq_dim % self.num_heads != 0:
            raise ValueError("seq_dim must be divisible by seq_num_heads")
        self.head_dim = config.seq_dim // self.num_heads
        seq_dim = config.seq_dim
        self.layer_norm = self.register_child("layer_norm", LayerNorm(seq_dim, "layer_norm"))
        self.pair_norm = self.register_child("pair_norm", LayerNorm(config.pair_dim, "pair_norm"))
        self.linear_q = self.register_child("linear_q", Linear(seq_dim, seq_dim, rng, "linear_q", bias=False))
        self.linear_k = self.register_child("linear_k", Linear(seq_dim, seq_dim, rng, "linear_k", bias=False))
        self.linear_v = self.register_child("linear_v", Linear(seq_dim, seq_dim, rng, "linear_v", bias=False))
        self.linear_bias = self.register_child(
            "linear_bias", Linear(config.pair_dim, self.num_heads, rng, "linear_bias", bias=False)
        )
        self.linear_g = self.register_child("linear_g", Linear(seq_dim, seq_dim, rng, "linear_g", init="gating"))
        self.linear_o = self.register_child("linear_o", Linear(seq_dim, seq_dim, rng, "linear_o", init="final"))

    def forward(
        self, sequence: np.ndarray, pair: np.ndarray, ctx: ActivationContext = NULL_CONTEXT
    ) -> np.ndarray:
        """Residual update for the sequence representation (Ns, Hm)."""
        normalized = self.layer_norm(sequence)
        q = self.linear_q(normalized).reshape(-1, self.num_heads, self.head_dim)
        k = self.linear_k(normalized).reshape(-1, self.num_heads, self.head_dim)
        v = self.linear_v(normalized).reshape(-1, self.num_heads, self.head_dim)

        bias = self.linear_bias(self.pair_norm(pair))          # (Ns, Ns, H)
        bias = ctx.process(f"{self.name}.pair_bias", GROUP_C, bias)
        bias = bias.transpose(2, 0, 1)                          # (H, Ns, Ns)

        if self.chunk_size is None:
            scores = np.einsum("qhd,khd->hqk", q, k) / np.sqrt(self.head_dim)
            weights = softmax(scores + bias, axis=-1)
            attended = np.einsum("hqk,khd->qhd", weights, v)
        else:
            attended = np.empty_like(q)
            for qs in iter_chunks(q.shape[0], self.chunk_size):
                scores = np.einsum("qhd,khd->hqk", q[qs], k) / np.sqrt(self.head_dim)
                weights = softmax(scores + bias[:, qs, :], axis=-1)
                attended[qs] = np.einsum("hqk,khd->qhd", weights, v)
        attended = attended.reshape(sequence.shape[0], -1)

        gate = sigmoid(self.linear_g(normalized))
        return self.linear_o(attended * gate)

    __call__ = forward


class OuterProductMean(Module):
    """Project the sequence representation into a pair-representation update."""

    def __init__(
        self,
        config: PPMConfig,
        rng: np.random.Generator,
        hidden_dim: int = 32,
        name: str = "outer_product_mean",
    ) -> None:
        super().__init__(name)
        hidden_dim = min(hidden_dim, config.seq_dim)
        self.hidden_dim = hidden_dim
        self.layer_norm = self.register_child("layer_norm", LayerNorm(config.seq_dim, "layer_norm"))
        self.linear_a = self.register_child("linear_a", Linear(config.seq_dim, hidden_dim, rng, "linear_a"))
        self.linear_b = self.register_child("linear_b", Linear(config.seq_dim, hidden_dim, rng, "linear_b"))
        self.linear_o = self.register_child(
            "linear_o", Linear(hidden_dim * hidden_dim, config.pair_dim, rng, "linear_o", init="final")
        )

    def forward(self, sequence: np.ndarray, ctx: ActivationContext = NULL_CONTEXT) -> np.ndarray:
        """Pair-representation update of shape (Ns, Ns, Hz) from a (Ns, Hm) input."""
        normalized = self.layer_norm(sequence)
        a = self.linear_a(normalized)
        b = self.linear_b(normalized)
        outer = np.einsum("ic,jd->ijcd", a, b).reshape(a.shape[0], b.shape[0], -1)
        outer = outer / np.sqrt(self.hidden_dim)
        outer = ctx.process(f"{self.name}.outer", GROUP_C, outer)
        return self.linear_o(outer)

    __call__ = forward
