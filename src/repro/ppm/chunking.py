"""Blockwise (chunked) execution kernels for the pair-representation stack.

Triangular attention is the activation-memory wall of the folding trunk: the
dense path materializes an (N, N, N, heads) score tensor, which caps the
sequence length the numeric substrate can execute.  The kernels here evaluate
the same mathematics in tiles:

* :func:`streaming_attention` — FlashAttention-style softmax attention over
  (query_chunk, key_chunk) tiles with a running max and denominator, so no
  array larger than one tile of scores ever exists.  Used whenever the active
  :class:`~repro.ppm.activation_tap.ActivationContext` is a no-op (the common
  case: accuracy runs without quantization, latency/shape tests, the memory
  benchmarks).
* :func:`blockwise_attention` — query-block attention that *does* materialize
  the normalized weights of one query block at a time and reports them
  through the activation context.  Tap names and group labels are identical
  to the dense path, and each tap observes complete key-axis token vectors,
  so per-token transforms (AAQ fake-quantization, the packed pack/unpack
  round trip) are chunk-invariant: quantizing per block equals quantizing the
  dense tensor and slicing it.  Recording contexts are the one observable
  difference — they receive one ``attention_weights`` record per query block
  instead of one per forward (just as every tap already records once per
  folding block), so statistics pipelines that average per record should run
  on the default dense configuration.
* :func:`iter_chunks` — the shared tiling iterator (ragged last chunk,
  ``chunk >= n`` and ``chunk is None`` degenerate to a single full slice).

Both attention kernels are exact (not approximations): dense ≡ chunked is
asserted at the repo-wide 1e-9 parity bar across the module, block and model
levels in ``tests/test_chunked_attention.py``.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from .activation_tap import ActivationContext
from .functional import softmax


def iter_chunks(total: int, chunk: Optional[int]) -> Iterator[slice]:
    """Yield ``slice`` objects tiling ``range(total)`` in ``chunk``-sized steps.

    ``chunk`` of ``None`` (or anything >= ``total``) yields one full slice; a
    ragged final chunk is yielded as-is.
    """
    if total <= 0:
        return
    if chunk is None or chunk >= total:
        yield slice(0, total)
        return
    for start in range(0, total, chunk):
        yield slice(start, min(start + chunk, total))


def context_observes_taps(ctx: ActivationContext) -> bool:
    """Whether ``ctx`` can observe or transform activations at tap points.

    The base :class:`ActivationContext` (and therefore ``NULL_CONTEXT``) is a
    structural no-op; any subclass that overrides :meth:`process` — recorders,
    quantizing contexts — is treated as observing.  The chunked attention path
    uses this to decide whether the per-block attention weights must be
    materialized for the ``attention_weights`` tap or can stay inside the
    streaming kernel.
    """
    return type(ctx).process is not ActivationContext.process


def streaming_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    bias: Optional[np.ndarray] = None,
    scale: float = 1.0,
    query_chunk: Optional[int] = None,
    key_chunk: Optional[int] = None,
) -> np.ndarray:
    """Exact softmax attention evaluated in tiles with an online softmax.

    Computes ``softmax(scale * q @ k^T + bias, axis=-1) @ v`` over the last
    two axes without materializing the full (..., Q, K) score tensor: for each
    query block, key tiles stream through a running row-max ``m`` and
    denominator ``l`` (the classic max/denominator recurrence), rescaling the
    value accumulator as the max tightens.

    ``q`` is (..., Q, D), ``k``/``v`` are (..., K, D); ``bias`` must broadcast
    against (..., Q, K).  Leading batch axes are arbitrary (the triangular
    attention passes (N, H, ., .)).
    """
    num_queries = q.shape[-2]
    num_keys = k.shape[-2]
    batch_shape = q.shape[:-2]
    out = np.empty((*batch_shape, num_queries, v.shape[-1]), dtype=np.result_type(q, k, v))
    k_t = np.swapaxes(k, -1, -2)

    for qs in iter_chunks(num_queries, query_chunk):
        q_tile = q[..., qs, :]
        block = qs.stop - qs.start
        running_max = np.full((*batch_shape, block), -np.inf)
        denominator = np.zeros((*batch_shape, block))
        accumulator = np.zeros((*batch_shape, block, v.shape[-1]))
        for ks in iter_chunks(num_keys, key_chunk):
            scores = np.matmul(q_tile, k_t[..., ks]) * scale
            if bias is not None:
                scores = scores + bias[..., qs, ks]
            tile_max = np.maximum(running_max, scores.max(axis=-1))
            # exp(-inf - finite) == 0.0, so the first tile needs no special case.
            correction = np.exp(running_max - tile_max)
            probabilities = np.exp(scores - tile_max[..., None])
            denominator = denominator * correction + probabilities.sum(axis=-1)
            accumulator = accumulator * correction[..., None] + np.matmul(
                probabilities, v[..., ks, :]
            )
            running_max = tile_max
        out[..., qs, :] = accumulator / denominator[..., None]
    return out


def blockwise_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    bias: np.ndarray,
    scale_divisor: float,
    query_chunk: Optional[int],
    ctx: ActivationContext,
    weights_tap: str,
    weights_group: str,
) -> np.ndarray:
    """Query-block attention that reports normalized weights per block.

    Specialized to the triangular-attention layout: ``q``/``k``/``v`` are
    (N, H, N, D) and ``bias`` broadcasts against (N, H, N, N).  Each query
    block computes its scores with the *same einsum expression, summation
    order and ``/ scale_divisor`` division* as the dense path, so the softmax
    weights handed to the ``weights_tap`` are bit-identical to the
    corresponding rows of the dense weights tensor — and the key axis (the
    per-token axis of the tap) is always complete, which keeps token-wise
    transforms (AAQ fake-quantization, packed pack/unpack) chunk-invariant.
    """
    num_queries = q.shape[-2]
    attended = np.empty(v.shape[:-2] + (num_queries, v.shape[-1]), dtype=v.dtype)
    for qs in iter_chunks(num_queries, query_chunk):
        scores = np.einsum("ihqd,ihkd->ihqk", q[..., qs, :], k) / scale_divisor
        scores = scores + bias[..., qs, :]
        weights = softmax(scores, axis=-1)
        weights = ctx.process(weights_tap, weights_group, weights)
        attended[..., qs, :] = np.einsum("ihqk,ihkd->ihqd", weights, v)
    return attended
