"""Model configuration for the Protein Structure Prediction Model substrate."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from .._digest import config_digest as _config_digest


@dataclass(frozen=True)
class PPMConfig:
    """Dimensions and hyper-parameters of the ESMFold-like folding trunk.

    ``paper()`` matches the dimensions the paper uses (ESMFold folding trunk:
    pair dim 128, sequence dim 1024, 48 folding blocks, head dim 32).  The
    paper-scale configuration is only used by analytical cost/latency/memory
    models; configurations actually executed numerically (accuracy
    experiments, unit tests) use the reduced ``small()``/``tiny()`` variants,
    which preserve the dataflow graph and relative tensor shapes.

    ``attn_chunk_size`` / ``triangle_chunk_size`` opt the numeric substrate
    into blockwise execution of the pair stack (FlashAttention-style query
    blocks with a streaming softmax, and a tiled third-axis contraction in
    triangular multiplication).  ``None`` — the default — preserves the dense
    execution paths bit-for-bit; setting them changes peak activation memory
    only, never the operator graph or any reported number (dense ≡ chunked is
    asserted at the repo-wide 1e-9 parity bar).
    """

    pair_dim: int = 128            # Hz: hidden dim of the Pair Representation
    seq_dim: int = 1024            # Hm: hidden dim of the Sequence Representation
    num_blocks: int = 48           # number of Protein Folding Blocks
    num_heads: int = 4             # attention heads in triangular attention
    head_dim: int = 32             # per-head dimension
    triangle_hidden: int = 128     # hidden dim of triangular multiplication
    transition_factor: int = 4     # MLP expansion factor in transitions
    seq_num_heads: int = 8         # heads in sequence self-attention
    num_recycles: int = 0          # recycling iterations (0 = single pass)
    distogram_channels: int = 16   # pair channels reserved for distance signal
    prior_noise: float = 0.6       # Angstrom-scale noise of the structure prior
    residual_scale: float = 0.1    # scale of sub-layer updates added to residuals
    weight_bytes: float = 2.0      # bytes per weight element (FP16 baseline)
    activation_bytes: float = 2.0  # bytes per activation element (FP16 baseline)
    language_model_params: float = 3.0e9  # ESM-2 3B input-embedding model
    #: Query-block size of chunked (triangular + sequence) attention;
    #: None executes the dense paths unchanged.
    attn_chunk_size: Optional[int] = None
    #: Tile size of the third-axis contraction in triangular multiplication;
    #: None executes the dense einsum unchanged.
    triangle_chunk_size: Optional[int] = None

    def __post_init__(self) -> None:
        if self.pair_dim <= 0 or self.seq_dim <= 0 or self.num_blocks <= 0:
            raise ValueError("dimensions and block count must be positive")
        for knob in ("attn_chunk_size", "triangle_chunk_size"):
            value = getattr(self, knob)
            if value is None:
                continue
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                raise ValueError(f"{knob} must be a positive integer or None")
        if self.num_heads * self.head_dim > 4 * self.pair_dim:
            raise ValueError("attention width is unreasonably large for the pair dim")
        if self.distogram_channels > self.pair_dim:
            raise ValueError("distogram_channels cannot exceed pair_dim")

    @classmethod
    def paper(cls) -> "PPMConfig":
        """Paper-scale ESMFold folding-trunk configuration."""
        return cls(
            pair_dim=128,
            seq_dim=1024,
            num_blocks=48,
            num_heads=4,
            head_dim=32,
            triangle_hidden=128,
            transition_factor=4,
            seq_num_heads=8,
            num_recycles=3,
        )

    @classmethod
    def small(cls) -> "PPMConfig":
        """Reduced configuration used for numeric accuracy experiments."""
        return cls(
            pair_dim=32,
            seq_dim=64,
            num_blocks=4,
            num_heads=2,
            head_dim=8,
            triangle_hidden=32,
            transition_factor=2,
            seq_num_heads=2,
            num_recycles=0,
            distogram_channels=8,
        )

    @classmethod
    def tiny(cls) -> "PPMConfig":
        """Minimal configuration used by unit tests."""
        return cls(
            pair_dim=16,
            seq_dim=24,
            num_blocks=2,
            num_heads=2,
            head_dim=4,
            triangle_hidden=16,
            transition_factor=2,
            seq_num_heads=2,
            num_recycles=0,
            distogram_channels=6,
        )

    def with_blocks(self, num_blocks: int) -> "PPMConfig":
        """Copy of this configuration with a different folding-block count."""
        return replace(self, num_blocks=num_blocks)

    def with_recycles(self, num_recycles: int) -> "PPMConfig":
        """Copy of this configuration with a different recycling count."""
        return replace(self, num_recycles=num_recycles)

    def with_chunking(
        self,
        attn_chunk_size: Optional[int] = None,
        triangle_chunk_size: Optional[int] = None,
    ) -> "PPMConfig":
        """Copy of this configuration with the given chunked-execution knobs.

        Passing ``None`` for a knob disables that chunking axis, so
        ``config.with_chunking()`` returns a fully dense copy.
        """
        return replace(
            self,
            attn_chunk_size=attn_chunk_size,
            triangle_chunk_size=triangle_chunk_size,
        )

    @property
    def is_chunked(self) -> bool:
        """Whether any blockwise execution path is enabled."""
        return self.attn_chunk_size is not None or self.triangle_chunk_size is not None

    @property
    def attention_dim(self) -> int:
        """Total width of the triangular attention projections."""
        return self.num_heads * self.head_dim

    def config_digest(self) -> str:
        """Canonical hash of every field, shared by the LRU and disk caches."""
        return _config_digest(self)
