"""Input embedding: sequence/pair initialization with a simulated language model.

The paper's baseline (ESMFold) uses the 3B-parameter ESM-2 protein language
model as the input embedding; AlphaFold2 uses an MSA database search.  Neither
is available offline, so this module builds the closest synthetic equivalent:

* The **sequence representation** is produced from a learned residue embedding
  plus sinusoidal positional features — the same shape and statistics as a
  language-model embedding.
* The **pair representation** is seeded with relative-position encodings and,
  crucially, a *structure prior*: a soft, noisy encoding of the target's
  pairwise distances written into a reserved slice of the pair channels.  A
  trained language model implicitly provides exactly this kind of structural
  signal; injecting it explicitly lets an untrained folding trunk produce
  predictions whose accuracy responds to activation-quantization error the
  same way a trained model's would (the error propagates through the same
  Pair-Representation dataflow and corrupts the same distance signal).

The amount of prior noise is configurable so experiments can position the
baseline TM-score in the regime the paper reports (≈0.5-0.8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..proteins.sequence import ProteinSequence
from ..proteins.structure import ProteinStructure
from ..proteins.amino_acids import VOCABULARY_SIZE
from .activation_tap import ActivationContext, NULL_CONTEXT
from .config import PPMConfig
from .modules import Linear, Module

#: Distance scale (Angstrom) used to normalize the encoded distance signal.
DISTANCE_SCALE = 25.0


@dataclass
class EmbeddingOutput:
    """Initial sequence and pair representations for the folding trunk."""

    sequence_representation: np.ndarray  # (Ns, Hm)
    pair_representation: np.ndarray      # (Ns, Ns, Hz)


def sinusoidal_positions(length: int, dim: int) -> np.ndarray:
    """Transformer-style sinusoidal positional features of shape (length, dim)."""
    positions = np.arange(length)[:, None]
    frequencies = np.exp(-np.log(10000.0) * (np.arange(dim // 2) / max(1, dim // 2)))
    angles = positions * frequencies[None, :]
    features = np.zeros((length, dim))
    features[:, 0::2] = np.sin(angles)[:, : features[:, 0::2].shape[1]]
    features[:, 1::2] = np.cos(angles)[:, : features[:, 1::2].shape[1]]
    return features


def relative_position_encoding(length: int, num_bins: int = 32) -> np.ndarray:
    """Clipped relative-position one-hot features of shape (Ns, Ns, num_bins)."""
    offsets = np.arange(length)[:, None] - np.arange(length)[None, :]
    clipped = np.clip(offsets + num_bins // 2, 0, num_bins - 1)
    one_hot = np.zeros((length, length, num_bins), dtype=np.float64)
    rows, cols = np.indices((length, length))
    one_hot[rows, cols, clipped] = 1.0
    return one_hot


class StructurePrior:
    """Noisy distance prior standing in for the trained language model's signal."""

    def __init__(self, noise_scale: float, seed: int = 0) -> None:
        self.noise_scale = noise_scale
        self.seed = seed

    def distances(self, structure: ProteinStructure) -> np.ndarray:
        """Noisy symmetric distance matrix derived from the true structure."""
        rng = np.random.default_rng(self.seed + len(structure))
        true = structure.distance_matrix()
        noise = rng.normal(scale=self.noise_scale, size=true.shape)
        noise = 0.5 * (noise + noise.T)
        noisy = np.clip(true + noise, 0.0, None)
        np.fill_diagonal(noisy, 0.0)
        return noisy


class InputEmbedding(Module):
    """Builds the initial sequence and pair representations."""

    def __init__(self, config: PPMConfig, rng: np.random.Generator, name: str = "input_embedding") -> None:
        super().__init__(name)
        self.config = config
        self.residue_embedding = self.register_parameter(
            "residue_embedding",
            rng.normal(scale=0.5, size=(VOCABULARY_SIZE, config.seq_dim)),
        )
        self.position_scale = self.register_parameter("position_scale", np.array([0.3]))
        rel_bins = min(32, config.pair_dim)
        self.relative_bins = rel_bins
        self.linear_relpos = self.register_child(
            "linear_relpos", Linear(rel_bins, config.pair_dim, rng, "linear_relpos")
        )
        self.prior_gain = self.register_parameter("prior_gain", np.array([8.0]))

    def forward(
        self,
        sequence: ProteinSequence,
        prior_distances: Optional[np.ndarray] = None,
        ctx: ActivationContext = NULL_CONTEXT,
    ) -> EmbeddingOutput:
        """Embed ``sequence`` (with an optional distance prior) into trunk inputs."""
        del ctx  # input embedding activations are outside the AAQ target dataflow
        config = self.config
        length = len(sequence)
        tokens = sequence.encoded()
        seq_rep = self.residue_embedding[tokens] + self.position_scale * sinusoidal_positions(
            length, config.seq_dim
        )

        rel = relative_position_encoding(length, self.relative_bins)
        pair = self.linear_relpos(rel)

        if prior_distances is not None:
            pair = pair + self._encode_prior(prior_distances)
        return EmbeddingOutput(sequence_representation=seq_rep, pair_representation=pair)

    def _encode_prior(self, distances: np.ndarray) -> np.ndarray:
        """Write the distance prior into the reserved distogram channels.

        Channel 0 carries the normalized distance directly (this is the channel
        the structure module reads back); the remaining reserved channels carry
        a soft radial-basis encoding, mimicking the distogram patterns the
        paper observes in real PPM activations (Fig. 5).
        """
        config = self.config
        length = distances.shape[0]
        channels = np.zeros((length, length, config.pair_dim))
        normalized = distances / DISTANCE_SCALE
        gain = float(self.prior_gain[0])
        channels[:, :, 0] = gain * normalized
        n_rbf = config.distogram_channels - 1
        if n_rbf > 0:
            centers = np.linspace(0.0, 1.0, n_rbf)
            widths = max(centers[1] - centers[0], 1e-3) if n_rbf > 1 else 0.25
            rbf = np.exp(-((normalized[..., None] - centers) ** 2) / (2 * widths ** 2))
            channels[:, :, 1 : 1 + n_rbf] = gain * 0.25 * rbf
        return channels

    __call__ = forward


def decode_prior_distances(pair: np.ndarray, prior_gain: float) -> np.ndarray:
    """Recover the distance matrix encoded by :meth:`InputEmbedding._encode_prior`."""
    normalized = pair[:, :, 0] / prior_gain
    distances = np.clip(normalized, 0.0, None) * DISTANCE_SCALE
    symmetric = 0.5 * (distances + distances.T)
    np.fill_diagonal(symmetric, 0.0)
    return symmetric
