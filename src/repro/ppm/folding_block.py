"""Protein Folding Block and folding trunk (Fig. 2b).

One folding block applies, in order:

Sequence Representation dataflow
    pair-biased sequence self-attention, sequence transition;
Pair Representation dataflow
    outer product mean (sequence -> pair), triangular multiplication
    (outgoing, incoming), triangular attention (starting, ending node),
    pair transition.

All updates are residual.  The Pair Representation dataflow carries the
structural signal and is where AAQ applies; every activation along it is
reported to the activation context with its Group A/B/C label.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from .activation_tap import GROUP_A, ActivationContext, NULL_CONTEXT
from .attention import OuterProductMean, SequenceAttention
from .config import PPMConfig
from .modules import Module, Transition
from .triangle import TriangleAttention, TriangleMultiplication


class FoldingBlock(Module):
    """A single Protein Folding Block (the ESMFold folding-trunk block)."""

    def __init__(self, config: PPMConfig, rng: np.random.Generator, index: int = 0) -> None:
        super().__init__(f"block_{index:02d}")
        self.config = config
        self.index = index
        scale = config.residual_scale

        self.sequence_attention = self.register_child(
            "sequence_attention", SequenceAttention(config, rng, name="sequence_attention")
        )
        self.sequence_transition = self.register_child(
            "sequence_transition",
            Transition(config.seq_dim, config.transition_factor, rng, name="sequence_transition"),
        )
        self.outer_product_mean = self.register_child(
            "outer_product_mean", OuterProductMean(config, rng, name="outer_product_mean")
        )
        self.triangle_mult_out = self.register_child(
            "triangle_mult_out",
            TriangleMultiplication(config, rng, mode="outgoing", name="triangle_mult"),
        )
        self.triangle_mult_in = self.register_child(
            "triangle_mult_in",
            TriangleMultiplication(config, rng, mode="incoming", name="triangle_mult"),
        )
        self.triangle_att_start = self.register_child(
            "triangle_att_start",
            TriangleAttention(config, rng, mode="starting", name="triangle_att"),
        )
        self.triangle_att_end = self.register_child(
            "triangle_att_end",
            TriangleAttention(config, rng, mode="ending", name="triangle_att"),
        )
        self.pair_transition = self.register_child(
            "pair_transition",
            Transition(config.pair_dim, config.transition_factor, rng, name="pair_transition"),
        )
        self.residual_scale = scale

    def forward(
        self,
        sequence: np.ndarray,
        pair: np.ndarray,
        ctx: ActivationContext = NULL_CONTEXT,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Apply the block; returns the updated (sequence, pair) representations."""
        prefix = self.name
        scale = self.residual_scale

        # --- Sequence Representation dataflow -------------------------------
        sequence = sequence + scale * self.sequence_attention(sequence, pair, ctx)
        sequence = sequence + scale * self.sequence_transition(sequence)

        # --- Pair Representation dataflow ------------------------------------
        pair = pair + scale * self.outer_product_mean(sequence, ctx)
        pair = ctx.process(f"{prefix}.residual.outer_product", GROUP_A, pair)

        pair = pair + scale * self.triangle_mult_out(pair, ctx)
        pair = pair + scale * self.triangle_mult_in(pair, ctx)
        pair = pair + scale * self.triangle_att_start(pair, ctx)
        pair = pair + scale * self.triangle_att_end(pair, ctx)
        pair = pair + scale * self.pair_transition(pair)
        pair = ctx.process(f"{prefix}.residual.output", GROUP_A, pair)
        return sequence, pair

    __call__ = forward


@dataclass
class TrunkOutput:
    """Final representations produced by the folding trunk."""

    sequence_representation: np.ndarray
    pair_representation: np.ndarray


class FoldingTrunk(Module):
    """Stack of folding blocks applied iteratively (with optional recycling)."""

    def __init__(self, config: PPMConfig, rng: np.random.Generator, name: str = "folding_trunk") -> None:
        super().__init__(name)
        self.config = config
        self.blocks: List[FoldingBlock] = []
        for index in range(config.num_blocks):
            block = FoldingBlock(config, rng, index=index)
            self.blocks.append(self.register_child(block.name, block))

    def forward(
        self,
        sequence: np.ndarray,
        pair: np.ndarray,
        ctx: ActivationContext = NULL_CONTEXT,
    ) -> TrunkOutput:
        for block in self.blocks:
            sequence, pair = block(sequence, pair, ctx)
        return TrunkOutput(sequence_representation=sequence, pair_representation=pair)

    __call__ = forward
