"""Stateless numeric primitives shared by the PPM modules."""

from __future__ import annotations

import numpy as np


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    out = np.empty_like(x, dtype=np.float64)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out.astype(x.dtype, copy=False)


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(x, 0.0)


def gelu(x: np.ndarray) -> np.ndarray:
    """Gaussian error linear unit (tanh approximation)."""
    return 0.5 * x * (1.0 + np.tanh(np.sqrt(2.0 / np.pi) * (x + 0.044715 * x ** 3)))


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def layer_norm(x: np.ndarray, gamma: np.ndarray, beta: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    """Layer normalization over the last axis with scale and shift."""
    mean = x.mean(axis=-1, keepdims=True)
    variance = x.var(axis=-1, keepdims=True)
    normalized = (x - mean) / np.sqrt(variance + eps)
    return normalized * gamma + beta
