"""End-to-end Protein Structure Prediction Model (PPM).

Composes the input embedding, the folding trunk (48 blocks at paper scale) and
the structure module, with optional recycling, mirroring Fig. 2a.  The model
can be run with any :class:`~repro.ppm.activation_tap.ActivationContext`, which
is how the quantization experiments inject AAQ or a baseline scheme into every
Pair-Representation activation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..proteins.sequence import ProteinSequence
from ..proteins.structure import ProteinStructure
from .activation_tap import ActivationContext, NULL_CONTEXT
from .config import PPMConfig
from .embedding import EmbeddingOutput, InputEmbedding, StructurePrior
from .folding_block import FoldingTrunk
from .structure_module import StructureModule, StructurePrediction


@dataclass
class PredictionResult:
    """Full output of a PPM prediction."""

    structure: ProteinStructure
    predicted_distances: np.ndarray
    confidence: np.ndarray
    pair_representation: np.ndarray
    sequence_representation: np.ndarray


class ProteinStructureModel:
    """The full PPM: input embedding -> folding trunk -> structure module."""

    def __init__(self, config: Optional[PPMConfig] = None, seed: int = 0) -> None:
        self.config = config or PPMConfig.small()
        rng = np.random.default_rng(seed)
        self.input_embedding = InputEmbedding(self.config, rng)
        self.trunk = FoldingTrunk(self.config, rng)
        self.structure_module = StructureModule(self.config, rng)
        self.prior = StructurePrior(noise_scale=self.config.prior_noise, seed=seed)

    # ------------------------------------------------------------------ weights
    def parameter_count(self) -> int:
        """Number of trunk + structure-module parameters (embedding excluded)."""
        return (
            self.input_embedding.parameter_count()
            + self.trunk.parameter_count()
            + self.structure_module.parameter_count()
        )

    def weight_bytes(self) -> float:
        """Weight memory in bytes at the configured weight precision."""
        return self.parameter_count() * self.config.weight_bytes

    # -------------------------------------------------------------- prediction
    def embed(
        self,
        sequence: ProteinSequence,
        reference: Optional[ProteinStructure] = None,
        ctx: ActivationContext = NULL_CONTEXT,
    ) -> EmbeddingOutput:
        """Run the input embedding, optionally seeding the structure prior."""
        prior_distances = None
        if reference is not None:
            prior_distances = self.prior.distances(reference)
        return self.input_embedding(sequence, prior_distances=prior_distances, ctx=ctx)

    def predict(
        self,
        sequence: ProteinSequence,
        reference: Optional[ProteinStructure] = None,
        ctx: ActivationContext = NULL_CONTEXT,
        num_recycles: Optional[int] = None,
    ) -> PredictionResult:
        """Predict the structure of ``sequence``.

        ``reference`` provides the synthetic language-model prior (see
        :mod:`repro.ppm.embedding`); when omitted the model runs purely from
        the sequence, which exercises the same dataflow but yields low-accuracy
        structures (useful for latency/shape tests).
        """
        recycles = self.config.num_recycles if num_recycles is None else num_recycles
        embedded = self.embed(sequence, reference=reference, ctx=ctx)
        sequence_rep = embedded.sequence_representation
        pair_rep = embedded.pair_representation

        prediction: Optional[StructurePrediction] = None
        for _ in range(recycles + 1):
            trunk_out = self.trunk(sequence_rep, pair_rep, ctx)
            sequence_rep = trunk_out.sequence_representation
            pair_rep = trunk_out.pair_representation
            prediction = self.structure_module(sequence_rep, pair_rep, sequence, ctx)

        assert prediction is not None
        return PredictionResult(
            structure=prediction.structure,
            predicted_distances=prediction.predicted_distances,
            confidence=prediction.plddt_like_confidence,
            pair_representation=pair_rep,
            sequence_representation=sequence_rep,
        )

    def predict_from_structure(
        self,
        reference: ProteinStructure,
        ctx: ActivationContext = NULL_CONTEXT,
        num_recycles: Optional[int] = None,
    ) -> PredictionResult:
        """Convenience wrapper: predict a known target from its own sequence."""
        return self.predict(
            reference.sequence, reference=reference, ctx=ctx, num_recycles=num_recycles
        )
