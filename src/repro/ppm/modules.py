"""Parameterized building blocks (Linear, LayerNorm, Transition) for the PPM.

The substrate is a plain-numpy re-implementation of the modules that make up
the ESMFold folding trunk.  Modules hold their parameters in a flat dict so
weight size accounting (Fig. 4, Table 1) and weight quantization (MEFold
baseline) can walk every parameter uniformly.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from .functional import layer_norm, relu


class Module:
    """Base class: a named container of numpy parameters and sub-modules."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._parameters: Dict[str, np.ndarray] = {}
        self._children: Dict[str, "Module"] = {}

    def register_parameter(self, name: str, value: np.ndarray) -> np.ndarray:
        self._parameters[name] = value
        return value

    def register_child(self, name: str, module: "Module") -> "Module":
        self._children[name] = module
        return module

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        """Yield (qualified name, parameter) pairs for this module and children.

        Qualified names use the *registration keys* along the module tree so
        that two children constructed with the same display name (e.g. the
        outgoing and incoming triangular-multiplication blocks) still get
        distinct parameter names.
        """
        base = f"{prefix}{self.name}" if (prefix or self.name) else ""
        yield from self._named_parameters_under(base)

    def _named_parameters_under(self, base: str) -> Iterator[Tuple[str, np.ndarray]]:
        for param_name, value in self._parameters.items():
            yield (f"{base}.{param_name}" if base else param_name), value
        for key, child in self._children.items():
            child_base = f"{base}.{key}" if base else key
            yield from child._named_parameters_under(child_base)

    def parameters(self) -> Iterator[np.ndarray]:
        for _, value in self.named_parameters():
            yield value

    def parameter_count(self) -> int:
        """Total number of scalar parameters in this module tree."""
        return int(sum(p.size for p in self.parameters()))

    def set_parameter(self, qualified_name: str, value: np.ndarray) -> None:
        """Replace a parameter located by its qualified name."""
        for name, current in self.named_parameters():
            if name == qualified_name:
                if current.shape != value.shape:
                    raise ValueError(
                        f"shape mismatch for {qualified_name}: {current.shape} vs {value.shape}"
                    )
                current[...] = value
                return
        raise KeyError(qualified_name)


class Linear(Module):
    """Affine projection ``y = x W^T + b`` with configurable initialization.

    ``init`` follows AlphaFold conventions: ``"default"`` uses LeCun-normal
    scaling, ``"relu"`` uses He scaling, ``"gating"`` biases gates toward the
    open state, and ``"final"`` draws small weights so that sub-layer outputs
    start close to zero — the residual stream then dominates, which is what
    lets an untrained trunk preserve the structural signal injected by the
    input embedding.
    """

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        rng: np.random.Generator,
        name: str = "linear",
        bias: bool = True,
        init: str = "default",
    ) -> None:
        super().__init__(name)
        if in_dim <= 0 or out_dim <= 0:
            raise ValueError("Linear dimensions must be positive")
        scale = {
            "default": 1.0 / np.sqrt(in_dim),
            "relu": np.sqrt(2.0 / in_dim),
            "gating": 1.0 / np.sqrt(in_dim),
            "final": 0.05 / np.sqrt(in_dim),
        }.get(init)
        if scale is None:
            raise ValueError(f"unknown init {init!r}")
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.weight = self.register_parameter(
            "weight", rng.normal(scale=scale, size=(out_dim, in_dim)).astype(np.float64)
        )
        if bias:
            bias_value = np.full(out_dim, 1.0 if init == "gating" else 0.0, dtype=np.float64)
            self.bias: Optional[np.ndarray] = self.register_parameter("bias", bias_value)
        else:
            self.bias = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out

    __call__ = forward


class LayerNorm(Module):
    """Layer normalization over the channel (last) axis."""

    def __init__(self, dim: int, name: str = "layer_norm", eps: float = 1e-5) -> None:
        super().__init__(name)
        if dim <= 0:
            raise ValueError("LayerNorm dimension must be positive")
        self.dim = dim
        self.eps = eps
        self.gamma = self.register_parameter("gamma", np.ones(dim, dtype=np.float64))
        self.beta = self.register_parameter("beta", np.zeros(dim, dtype=np.float64))

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.shape[-1] != self.dim:
            raise ValueError(f"LayerNorm expected last dim {self.dim}, got {x.shape[-1]}")
        return layer_norm(x, self.gamma, self.beta, eps=self.eps)

    __call__ = forward


class Transition(Module):
    """Two-layer MLP with ReLU used as the pair/sequence transition block."""

    def __init__(
        self,
        dim: int,
        factor: int,
        rng: np.random.Generator,
        name: str = "transition",
    ) -> None:
        super().__init__(name)
        hidden = dim * factor
        self.layer_norm = self.register_child("layer_norm", LayerNorm(dim, name="layer_norm"))
        self.expand = self.register_child(
            "expand", Linear(dim, hidden, rng, name="expand", init="relu")
        )
        self.contract = self.register_child(
            "contract", Linear(hidden, dim, rng, name="contract", init="final")
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        normalized = self.layer_norm(x)
        hidden = relu(self.expand(normalized))
        return self.contract(hidden)

    __call__ = forward
