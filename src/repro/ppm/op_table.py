"""Columnar (struct-of-arrays) operator-graph engine.

:mod:`repro.ppm.workload` describes one PPM inference as a list of ~3k
:class:`~repro.ppm.workload.Operator` dataclasses.  That representation is
ideal for building and inspecting the graph, but every simulator downstream
(the LightNobel accelerator, the GPU baseline, the cost models) only ever
consumes whole *columns* of it — MAC counts, element counts, phase labels —
and the DSE/length sweeps re-consume the identical graph dozens of times.

:class:`OperatorTable` stores the same graph as numpy columns plus small
per-table string vocabularies (phases, subphases, engines, activation groups)
with integer code arrays, so reductions like "total MACs of the pair dataflow"
are single vectorized expressions instead of Python loops.  Tables convert
losslessly to and from :class:`~repro.ppm.workload.Workload`, and
:func:`get_op_table` / :func:`get_workload` add an LRU cache keyed on
``(config, n, include_recycles)`` so repeated sweeps stop rebuilding the graph.

:class:`StackedOperatorTable` generalizes one table to a whole *traffic mix*:
the tables of many distinct sequence lengths concatenated into one ragged
column set with per-length segment offsets.  A latency backend evaluates its
vectorized expressions once over the full stack and reduces each segment back
to its per-length report, so pricing a mix of hundreds of distinct lengths is
one numpy pass instead of one engine invocation per length.  Each segment's
columns are bytewise the per-length table's columns, which keeps stacked
evaluation bit-identical to the per-length path.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .config import PPMConfig
from .workload import Operator, Workload, build_model_ops

#: Column names holding per-operator numeric data.
NUMERIC_COLUMNS = (
    "macs",
    "vector_ops",
    "input_elements",
    "output_elements",
    "weight_elements",
)


def _encode(labels: Sequence) -> Tuple[np.ndarray, Tuple]:
    """Factorize ``labels`` into integer codes plus a first-appearance vocab."""
    vocab: List = []
    index: Dict = {}
    codes = np.empty(len(labels), dtype=np.int64)
    for i, label in enumerate(labels):
        code = index.get(label)
        if code is None:
            code = len(vocab)
            index[label] = code
            vocab.append(label)
        codes[i] = code
    return codes, tuple(vocab)


def _freeze(array: np.ndarray) -> np.ndarray:
    array.flags.writeable = False
    return array


@dataclass(frozen=True, eq=False)
class OperatorTable:
    """One operator graph stored column-wise (struct of arrays)."""

    sequence_length: int
    config: PPMConfig
    names: Tuple[str, ...]
    engines: Tuple[str, ...]
    engine_codes: np.ndarray
    phases: Tuple[str, ...]
    phase_codes: np.ndarray
    subphases: Tuple[str, ...]
    subphase_codes: np.ndarray
    groups: Tuple[Optional[str], ...]
    group_codes: np.ndarray
    macs: np.ndarray
    vector_ops: np.ndarray
    input_elements: np.ndarray
    output_elements: np.ndarray
    weight_elements: np.ndarray
    fusible: np.ndarray

    # ------------------------------------------------------------ construction
    @classmethod
    def from_operators(
        cls, operators: Sequence[Operator], config: PPMConfig, sequence_length: int
    ) -> "OperatorTable":
        engine_codes, engines = _encode([op.engine for op in operators])
        phase_codes, phases = _encode([op.phase for op in operators])
        subphase_codes, subphases = _encode([op.subphase for op in operators])
        group_codes, groups = _encode([op.output_group for op in operators])
        return cls(
            sequence_length=sequence_length,
            config=config,
            names=tuple(op.name for op in operators),
            engines=engines,
            engine_codes=_freeze(engine_codes),
            phases=phases,
            phase_codes=_freeze(phase_codes),
            subphases=subphases,
            subphase_codes=_freeze(subphase_codes),
            groups=groups,
            group_codes=_freeze(group_codes),
            macs=_freeze(np.array([op.macs for op in operators], dtype=np.float64)),
            vector_ops=_freeze(np.array([op.vector_ops for op in operators], dtype=np.float64)),
            input_elements=_freeze(
                np.array([op.input_elements for op in operators], dtype=np.float64)
            ),
            output_elements=_freeze(
                np.array([op.output_elements for op in operators], dtype=np.float64)
            ),
            weight_elements=_freeze(
                np.array([op.weight_elements for op in operators], dtype=np.float64)
            ),
            fusible=_freeze(np.array([op.fusible for op in operators], dtype=bool)),
        )

    @classmethod
    def from_workload(cls, workload: Workload) -> "OperatorTable":
        return cls.from_operators(workload.operators, workload.config, workload.sequence_length)

    def to_workload(self) -> Workload:
        """Materialize the equivalent object graph (inverse of ``from_workload``)."""
        operators = [
            Operator(
                name=self.names[i],
                engine=self.engines[self.engine_codes[i]],
                phase=self.phases[self.phase_codes[i]],
                subphase=self.subphases[self.subphase_codes[i]],
                macs=float(self.macs[i]),
                vector_ops=float(self.vector_ops[i]),
                input_elements=float(self.input_elements[i]),
                output_elements=float(self.output_elements[i]),
                weight_elements=float(self.weight_elements[i]),
                output_group=self.groups[self.group_codes[i]],
                fusible=bool(self.fusible[i]),
            )
            for i in range(len(self))
        ]
        return Workload(
            sequence_length=self.sequence_length, config=self.config, operators=operators
        )

    # ---------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self.names)

    @property
    def flops(self) -> np.ndarray:
        return 2.0 * self.macs + self.vector_ops

    def total_macs(self) -> float:
        return float(np.sum(self.macs))

    def total_vector_ops(self) -> float:
        return float(np.sum(self.vector_ops))

    def total_flops(self) -> float:
        return float(np.sum(self.flops))

    def column(self, name: str) -> np.ndarray:
        if name == "flops":
            return self.flops
        if name not in NUMERIC_COLUMNS:
            raise ValueError(f"unknown numeric column {name!r}")
        return getattr(self, name)

    # ----------------------------------------------------------------- masks
    def engine_mask(self, engine: str) -> np.ndarray:
        if engine not in self.engines:
            return np.zeros(len(self), dtype=bool)
        return self.engine_codes == self.engines.index(engine)

    def phase_mask(self, phase: str) -> np.ndarray:
        if phase not in self.phases:
            return np.zeros(len(self), dtype=bool)
        return self.phase_codes == self.phases.index(phase)

    def subphase_mask(self, subphase: str) -> np.ndarray:
        if subphase not in self.subphases:
            return np.zeros(len(self), dtype=bool)
        return self.subphase_codes == self.subphases.index(subphase)

    def select(self, mask: np.ndarray) -> "OperatorTable":
        """Sub-table of the rows where ``mask`` is True (labels re-factorized)."""
        indices = np.nonzero(np.asarray(mask, dtype=bool))[0]
        engine_codes, engines = _encode([self.engines[self.engine_codes[i]] for i in indices])
        phase_codes, phases = _encode([self.phases[self.phase_codes[i]] for i in indices])
        subphase_codes, subphases = _encode(
            [self.subphases[self.subphase_codes[i]] for i in indices]
        )
        group_codes, groups = _encode([self.groups[self.group_codes[i]] for i in indices])
        return OperatorTable(
            sequence_length=self.sequence_length,
            config=self.config,
            names=tuple(self.names[i] for i in indices),
            engines=engines,
            engine_codes=_freeze(engine_codes),
            phases=phases,
            phase_codes=_freeze(phase_codes),
            subphases=subphases,
            subphase_codes=_freeze(subphase_codes),
            groups=groups,
            group_codes=_freeze(group_codes),
            macs=_freeze(self.macs[indices]),
            vector_ops=_freeze(self.vector_ops[indices]),
            input_elements=_freeze(self.input_elements[indices]),
            output_elements=_freeze(self.output_elements[indices]),
            weight_elements=_freeze(self.weight_elements[indices]),
            fusible=_freeze(self.fusible[indices]),
        )

    def filter(
        self,
        phase: Optional[str] = None,
        engine: Optional[str] = None,
        subphase: Optional[str] = None,
    ) -> "OperatorTable":
        """Sub-table matching the given phase/engine/subphase (AND semantics)."""
        mask = np.ones(len(self), dtype=bool)
        if phase is not None:
            mask &= self.phase_mask(phase)
        if engine is not None:
            mask &= self.engine_mask(engine)
        if subphase is not None:
            mask &= self.subphase_mask(subphase)
        return self.select(mask)

    # --------------------------------------------------------------- groupby
    def _codes_for(self, key: str) -> Tuple[np.ndarray, Tuple]:
        try:
            return {
                "phase": (self.phase_codes, self.phases),
                "subphase": (self.subphase_codes, self.subphases),
                "engine": (self.engine_codes, self.engines),
                "group": (self.group_codes, self.groups),
            }[key]
        except KeyError:
            raise ValueError(
                f"unknown groupby key {key!r}; expected phase/subphase/engine/group"
            ) from None

    def groupby_sum(self, key: str, column: str = "macs") -> Dict:
        """Sum a numeric column per label of ``key`` (phase/subphase/engine/group)."""
        return self.weighted_sums(key, self.column(column))

    def weighted_sums(self, key: str, weights: np.ndarray) -> Dict:
        """Sum an arbitrary per-operator array per label of ``key``.

        Like :meth:`groupby_sum`, but over caller-computed per-operator values
        (e.g. the simulators' stage latencies) instead of a stored column.
        """
        codes, vocab = self._codes_for(key)
        sums = np.bincount(codes, weights=weights, minlength=len(vocab))
        return {label: float(sums[i]) for i, label in enumerate(vocab)}

    def by_phase(self) -> Dict[str, "OperatorTable"]:
        """Sub-table per phase, in first-appearance order (columnar ``by_phase``)."""
        return {phase: self.select(self.phase_codes == code)
                for code, phase in enumerate(self.phases)}

    def phase_sums(self, column: str = "macs") -> Dict[str, float]:
        return self.groupby_sum("phase", column)


def _remap_codes(
    codes: Sequence[np.ndarray], vocabs: Sequence[Tuple]
) -> Tuple[np.ndarray, Tuple]:
    """Concatenate per-table code arrays under one shared (union) vocabulary.

    Fast path: when every table factorized its labels identically (the norm —
    one config emits the same operator sequence at every length), the shared
    vocab *is* the per-table vocab and the codes concatenate untouched.
    Otherwise each table's codes are remapped through a small lookup array
    (vectorized; no per-operator Python).
    """
    first = vocabs[0]
    if all(vocab == first for vocab in vocabs[1:]):
        return np.concatenate(codes), first
    union: List = []
    index: Dict = {}
    remapped: List[np.ndarray] = []
    for table_codes, vocab in zip(codes, vocabs):
        lookup = np.empty(len(vocab), dtype=np.int64)
        for i, label in enumerate(vocab):
            code = index.get(label)
            if code is None:
                code = len(union)
                index[label] = code
                union.append(label)
            lookup[i] = code
        remapped.append(lookup[table_codes])
    return np.concatenate(remapped), tuple(union)


@dataclass(frozen=True, eq=False)
class StackedOperatorTable:
    """Operator tables of many sequence lengths, concatenated column-wise.

    Segment ``i`` (rows ``segment_starts[i]:segment_starts[i+1]``) holds the
    operators of ``lengths[i]`` — bytewise the columns of ``tables[i]`` — so
    any elementwise latency expression evaluated over the stacked columns
    produces, per segment, exactly the values the per-length evaluation
    would.  Label vocabularies are shared across segments (codes remapped at
    build time) so per-group/per-engine parameter gathers also run once.
    """

    config: PPMConfig
    lengths: Tuple[int, ...]
    tables: Tuple[OperatorTable, ...]
    segment_starts: np.ndarray
    engines: Tuple[str, ...]
    engine_codes: np.ndarray
    phases: Tuple[str, ...]
    phase_codes: np.ndarray
    subphases: Tuple[str, ...]
    subphase_codes: np.ndarray
    groups: Tuple[Optional[str], ...]
    group_codes: np.ndarray
    macs: np.ndarray
    vector_ops: np.ndarray
    input_elements: np.ndarray
    output_elements: np.ndarray
    weight_elements: np.ndarray
    fusible: np.ndarray

    # ------------------------------------------------------------ construction
    @classmethod
    def from_tables(cls, tables: Sequence[OperatorTable]) -> "StackedOperatorTable":
        if not tables:
            raise ValueError("cannot stack zero operator tables")
        config = tables[0].config
        for table in tables[1:]:
            if table.config != config:
                raise ValueError("all stacked tables must share one PPMConfig")
        lengths = tuple(t.sequence_length for t in tables)
        if len(set(lengths)) != len(lengths):
            raise ValueError("stacked lengths must be distinct")
        starts = np.zeros(len(tables) + 1, dtype=np.int64)
        np.cumsum([len(t) for t in tables], out=starts[1:])
        engine_codes, engines = _remap_codes(
            [t.engine_codes for t in tables], [t.engines for t in tables]
        )
        phase_codes, phases = _remap_codes(
            [t.phase_codes for t in tables], [t.phases for t in tables]
        )
        subphase_codes, subphases = _remap_codes(
            [t.subphase_codes for t in tables], [t.subphases for t in tables]
        )
        group_codes, groups = _remap_codes(
            [t.group_codes for t in tables], [t.groups for t in tables]
        )
        return cls(
            config=config,
            lengths=lengths,
            tables=tuple(tables),
            segment_starts=_freeze(starts),
            engines=engines,
            engine_codes=_freeze(engine_codes),
            phases=phases,
            phase_codes=_freeze(phase_codes),
            subphases=subphases,
            subphase_codes=_freeze(subphase_codes),
            groups=groups,
            group_codes=_freeze(group_codes),
            macs=_freeze(np.concatenate([t.macs for t in tables])),
            vector_ops=_freeze(np.concatenate([t.vector_ops for t in tables])),
            input_elements=_freeze(np.concatenate([t.input_elements for t in tables])),
            output_elements=_freeze(np.concatenate([t.output_elements for t in tables])),
            weight_elements=_freeze(np.concatenate([t.weight_elements for t in tables])),
            fusible=_freeze(np.concatenate([t.fusible for t in tables])),
        )

    # ---------------------------------------------------------------- queries
    def __len__(self) -> int:
        return int(self.segment_starts[-1])

    @property
    def num_segments(self) -> int:
        return len(self.lengths)

    @property
    def flops(self) -> np.ndarray:
        return 2.0 * self.macs + self.vector_ops

    def segment(self, index: int) -> slice:
        """Row slice of segment ``index`` in the stacked columns."""
        return self.segments[index]

    @property
    def segments(self) -> Tuple[slice, ...]:
        """All segment slices, materialized once per stack."""
        cached = self.__dict__.get("_segments")
        if cached is None:
            bounds = self.segment_starts.tolist()
            cached = tuple(
                slice(lo, hi) for lo, hi in zip(bounds[:-1], bounds[1:])
            )
            object.__setattr__(self, "_segments", cached)
        return cached

    def segment_table(self, index: int) -> OperatorTable:
        """The source per-length table of segment ``index``."""
        return self.tables[index]

    def segment_index(self, sequence_length: int) -> int:
        """Segment holding ``sequence_length`` (raises ``ValueError`` if absent)."""
        return self.lengths.index(int(sequence_length))

    # ----------------------------------------------------------------- masks
    def engine_mask(self, engine: str) -> np.ndarray:
        if engine not in self.engines:
            return np.zeros(len(self), dtype=bool)
        return self.engine_codes == self.engines.index(engine)

    def phase_mask(self, phase: str) -> np.ndarray:
        if phase not in self.phases:
            return np.zeros(len(self), dtype=bool)
        return self.phase_codes == self.phases.index(phase)

    # ------------------------------------------------------------- reductions
    def segment_sums(self, values: np.ndarray) -> List[float]:
        """Per-segment sum of a stacked per-operator array.

        Summed slice by slice (not via ``reduceat``): each slice is the
        contiguous per-length array, so numpy's pairwise summation yields the
        bit-identical total the per-length evaluation computes.
        """
        return [
            float(np.sum(values[self.segment(i)])) for i in range(self.num_segments)
        ]

    def segment_weighted_sums(self, key: str, values: np.ndarray) -> List[Dict]:
        """Per-segment :meth:`OperatorTable.weighted_sums` over stacked values.

        Delegates each segment's reduction to its source table (per-length
        codes and vocab order), so labels and floats match the per-length
        path exactly.
        """
        return [
            self.tables[i].weighted_sums(key, values[self.segment(i)])
            for i in range(self.num_segments)
        ]

    def _stacked_codes_for(self, key: str) -> Tuple[np.ndarray, Tuple]:
        try:
            return {
                "phase": (self.phase_codes, self.phases),
                "subphase": (self.subphase_codes, self.subphases),
                "engine": (self.engine_codes, self.engines),
                "group": (self.group_codes, self.groups),
            }[key]
        except KeyError:
            raise ValueError(
                f"unknown groupby key {key!r}; expected phase/subphase/engine/group"
            ) from None

    def _reduction_plan(self, key: str) -> Tuple[np.ndarray, int, Tuple]:
        """(combined bins, minlength, per-segment label layout) for ``key``.

        Built once per stack and cached: stacks themselves are LRU-cached, so
        repeated pricing of the same length mix skips the bin-index and
        vocab-layout construction entirely.
        """
        cache = self.__dict__.get("_plans")
        if cache is None:
            cache = {}
            object.__setattr__(self, "_plans", cache)
        plan = cache.get(key)
        if plan is None:
            codes, vocab = self._stacked_codes_for(key)
            width = len(vocab)
            counts = np.diff(self.segment_starts)
            segment_ids = np.repeat(
                np.arange(self.num_segments, dtype=np.int64), counts
            )
            shared_index = {label: code for code, label in enumerate(vocab)}
            layouts = []
            for i, table in enumerate(self.tables):
                _, table_vocab = table._codes_for(key)
                base = i * width
                layouts.append(
                    tuple((label, base + shared_index[label]) for label in table_vocab)
                )
            plan = (
                _freeze(segment_ids * width + codes),
                self.num_segments * width,
                tuple(layouts),
            )
            cache[key] = plan
        return plan

    def segment_weighted_sums_all(self, key: str, values: np.ndarray) -> List[Dict]:
        """Every segment's ``weighted_sums(key, ...)`` dict from ONE bincount.

        The combined bin index is ``segment * len(vocab) + code``.
        ``np.bincount`` accumulates elements in array order, and each
        (segment, label) bin receives exactly the elements — in exactly the
        order — that the per-length bincount would, so every float matches
        :meth:`segment_weighted_sums` bit for bit.  Each segment's dict is
        built over its source table's own vocab (labels and ordering), so the
        result is interchangeable with the per-length path.
        """
        bins, minlength, layouts = self._reduction_plan(key)
        # One tolist() converts every bin to a Python float (exact for
        # float64), avoiding a numpy-scalar __float__ per (segment, label).
        combined = np.bincount(bins, weights=values, minlength=minlength).tolist()
        return [
            {label: combined[idx] for label, idx in layout}
            for layout in layouts
        ]


# ------------------------------------------------------------------- caching
@lru_cache(maxsize=64)
def _cached_workload(config: PPMConfig, n: int, include_recycles: bool) -> Workload:
    return build_model_ops(config, n, include_recycles=include_recycles)


@lru_cache(maxsize=64)
def _cached_table(config: PPMConfig, n: int, include_recycles: bool) -> OperatorTable:
    return OperatorTable.from_workload(_cached_workload(config, n, include_recycles))


def get_workload(config: PPMConfig, n: int, include_recycles: bool = False) -> Workload:
    """LRU-cached :func:`~repro.ppm.workload.build_model_ops`.

    Returns a fresh :class:`Workload` wrapper around the cached operator list
    (the :class:`Operator` entries are frozen and shared), so mutating the
    returned ``operators`` list cannot poison the cache.
    """
    cached = _cached_workload(config, int(n), bool(include_recycles))
    return Workload(
        sequence_length=cached.sequence_length,
        config=cached.config,
        operators=list(cached.operators),
    )


def get_op_table(config: PPMConfig, n: int, include_recycles: bool = False) -> OperatorTable:
    """LRU-cached columnar operator table for ``(config, n, include_recycles)``."""
    return _cached_table(config, int(n), bool(include_recycles))


@lru_cache(maxsize=32)
def _cached_stack(
    config: PPMConfig, lengths: Tuple[int, ...], include_recycles: bool
) -> StackedOperatorTable:
    return StackedOperatorTable.from_tables(
        [_cached_table(config, n, include_recycles) for n in lengths]
    )


def get_stacked_table(
    config: PPMConfig, lengths: Iterable[int], include_recycles: bool = False
) -> StackedOperatorTable:
    """LRU-cached stacked table over the *distinct, sorted* ``lengths``.

    The stack is canonicalized (sorted, deduplicated) so every caller asking
    for the same length *set* — in any order, with any duplication — shares
    one cached stack; callers look segments up via
    :meth:`StackedOperatorTable.segment_index`.
    """
    canonical = tuple(sorted({int(n) for n in lengths}))
    if not canonical:
        raise ValueError("lengths must contain at least one sequence length")
    return _cached_stack(config, canonical, bool(include_recycles))


def clear_workload_caches() -> None:
    """Drop all cached workloads/tables (mainly for tests and memory pressure)."""
    _cached_stack.cache_clear()
    _cached_table.cache_clear()
    _cached_workload.cache_clear()


def workload_cache_info():
    """(workload, table) LRU statistics, for the perf benchmarks."""
    return _cached_workload.cache_info(), _cached_table.cache_info()
