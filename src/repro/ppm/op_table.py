"""Columnar (struct-of-arrays) operator-graph engine.

:mod:`repro.ppm.workload` describes one PPM inference as a list of ~3k
:class:`~repro.ppm.workload.Operator` dataclasses.  That representation is
ideal for building and inspecting the graph, but every simulator downstream
(the LightNobel accelerator, the GPU baseline, the cost models) only ever
consumes whole *columns* of it — MAC counts, element counts, phase labels —
and the DSE/length sweeps re-consume the identical graph dozens of times.

:class:`OperatorTable` stores the same graph as numpy columns plus small
per-table string vocabularies (phases, subphases, engines, activation groups)
with integer code arrays, so reductions like "total MACs of the pair dataflow"
are single vectorized expressions instead of Python loops.  Tables convert
losslessly to and from :class:`~repro.ppm.workload.Workload`, and
:func:`get_op_table` / :func:`get_workload` add an LRU cache keyed on
``(config, n, include_recycles)`` so repeated sweeps stop rebuilding the graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .config import PPMConfig
from .workload import Operator, Workload, build_model_ops

#: Column names holding per-operator numeric data.
NUMERIC_COLUMNS = (
    "macs",
    "vector_ops",
    "input_elements",
    "output_elements",
    "weight_elements",
)


def _encode(labels: Sequence) -> Tuple[np.ndarray, Tuple]:
    """Factorize ``labels`` into integer codes plus a first-appearance vocab."""
    vocab: List = []
    index: Dict = {}
    codes = np.empty(len(labels), dtype=np.int64)
    for i, label in enumerate(labels):
        code = index.get(label)
        if code is None:
            code = len(vocab)
            index[label] = code
            vocab.append(label)
        codes[i] = code
    return codes, tuple(vocab)


def _freeze(array: np.ndarray) -> np.ndarray:
    array.flags.writeable = False
    return array


@dataclass(frozen=True, eq=False)
class OperatorTable:
    """One operator graph stored column-wise (struct of arrays)."""

    sequence_length: int
    config: PPMConfig
    names: Tuple[str, ...]
    engines: Tuple[str, ...]
    engine_codes: np.ndarray
    phases: Tuple[str, ...]
    phase_codes: np.ndarray
    subphases: Tuple[str, ...]
    subphase_codes: np.ndarray
    groups: Tuple[Optional[str], ...]
    group_codes: np.ndarray
    macs: np.ndarray
    vector_ops: np.ndarray
    input_elements: np.ndarray
    output_elements: np.ndarray
    weight_elements: np.ndarray
    fusible: np.ndarray

    # ------------------------------------------------------------ construction
    @classmethod
    def from_operators(
        cls, operators: Sequence[Operator], config: PPMConfig, sequence_length: int
    ) -> "OperatorTable":
        engine_codes, engines = _encode([op.engine for op in operators])
        phase_codes, phases = _encode([op.phase for op in operators])
        subphase_codes, subphases = _encode([op.subphase for op in operators])
        group_codes, groups = _encode([op.output_group for op in operators])
        return cls(
            sequence_length=sequence_length,
            config=config,
            names=tuple(op.name for op in operators),
            engines=engines,
            engine_codes=_freeze(engine_codes),
            phases=phases,
            phase_codes=_freeze(phase_codes),
            subphases=subphases,
            subphase_codes=_freeze(subphase_codes),
            groups=groups,
            group_codes=_freeze(group_codes),
            macs=_freeze(np.array([op.macs for op in operators], dtype=np.float64)),
            vector_ops=_freeze(np.array([op.vector_ops for op in operators], dtype=np.float64)),
            input_elements=_freeze(
                np.array([op.input_elements for op in operators], dtype=np.float64)
            ),
            output_elements=_freeze(
                np.array([op.output_elements for op in operators], dtype=np.float64)
            ),
            weight_elements=_freeze(
                np.array([op.weight_elements for op in operators], dtype=np.float64)
            ),
            fusible=_freeze(np.array([op.fusible for op in operators], dtype=bool)),
        )

    @classmethod
    def from_workload(cls, workload: Workload) -> "OperatorTable":
        return cls.from_operators(workload.operators, workload.config, workload.sequence_length)

    def to_workload(self) -> Workload:
        """Materialize the equivalent object graph (inverse of ``from_workload``)."""
        operators = [
            Operator(
                name=self.names[i],
                engine=self.engines[self.engine_codes[i]],
                phase=self.phases[self.phase_codes[i]],
                subphase=self.subphases[self.subphase_codes[i]],
                macs=float(self.macs[i]),
                vector_ops=float(self.vector_ops[i]),
                input_elements=float(self.input_elements[i]),
                output_elements=float(self.output_elements[i]),
                weight_elements=float(self.weight_elements[i]),
                output_group=self.groups[self.group_codes[i]],
                fusible=bool(self.fusible[i]),
            )
            for i in range(len(self))
        ]
        return Workload(
            sequence_length=self.sequence_length, config=self.config, operators=operators
        )

    # ---------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self.names)

    @property
    def flops(self) -> np.ndarray:
        return 2.0 * self.macs + self.vector_ops

    def total_macs(self) -> float:
        return float(np.sum(self.macs))

    def total_vector_ops(self) -> float:
        return float(np.sum(self.vector_ops))

    def total_flops(self) -> float:
        return float(np.sum(self.flops))

    def column(self, name: str) -> np.ndarray:
        if name == "flops":
            return self.flops
        if name not in NUMERIC_COLUMNS:
            raise ValueError(f"unknown numeric column {name!r}")
        return getattr(self, name)

    # ----------------------------------------------------------------- masks
    def engine_mask(self, engine: str) -> np.ndarray:
        if engine not in self.engines:
            return np.zeros(len(self), dtype=bool)
        return self.engine_codes == self.engines.index(engine)

    def phase_mask(self, phase: str) -> np.ndarray:
        if phase not in self.phases:
            return np.zeros(len(self), dtype=bool)
        return self.phase_codes == self.phases.index(phase)

    def subphase_mask(self, subphase: str) -> np.ndarray:
        if subphase not in self.subphases:
            return np.zeros(len(self), dtype=bool)
        return self.subphase_codes == self.subphases.index(subphase)

    def select(self, mask: np.ndarray) -> "OperatorTable":
        """Sub-table of the rows where ``mask`` is True (labels re-factorized)."""
        indices = np.nonzero(np.asarray(mask, dtype=bool))[0]
        engine_codes, engines = _encode([self.engines[self.engine_codes[i]] for i in indices])
        phase_codes, phases = _encode([self.phases[self.phase_codes[i]] for i in indices])
        subphase_codes, subphases = _encode(
            [self.subphases[self.subphase_codes[i]] for i in indices]
        )
        group_codes, groups = _encode([self.groups[self.group_codes[i]] for i in indices])
        return OperatorTable(
            sequence_length=self.sequence_length,
            config=self.config,
            names=tuple(self.names[i] for i in indices),
            engines=engines,
            engine_codes=_freeze(engine_codes),
            phases=phases,
            phase_codes=_freeze(phase_codes),
            subphases=subphases,
            subphase_codes=_freeze(subphase_codes),
            groups=groups,
            group_codes=_freeze(group_codes),
            macs=_freeze(self.macs[indices]),
            vector_ops=_freeze(self.vector_ops[indices]),
            input_elements=_freeze(self.input_elements[indices]),
            output_elements=_freeze(self.output_elements[indices]),
            weight_elements=_freeze(self.weight_elements[indices]),
            fusible=_freeze(self.fusible[indices]),
        )

    def filter(
        self,
        phase: Optional[str] = None,
        engine: Optional[str] = None,
        subphase: Optional[str] = None,
    ) -> "OperatorTable":
        """Sub-table matching the given phase/engine/subphase (AND semantics)."""
        mask = np.ones(len(self), dtype=bool)
        if phase is not None:
            mask &= self.phase_mask(phase)
        if engine is not None:
            mask &= self.engine_mask(engine)
        if subphase is not None:
            mask &= self.subphase_mask(subphase)
        return self.select(mask)

    # --------------------------------------------------------------- groupby
    def _codes_for(self, key: str) -> Tuple[np.ndarray, Tuple]:
        try:
            return {
                "phase": (self.phase_codes, self.phases),
                "subphase": (self.subphase_codes, self.subphases),
                "engine": (self.engine_codes, self.engines),
                "group": (self.group_codes, self.groups),
            }[key]
        except KeyError:
            raise ValueError(
                f"unknown groupby key {key!r}; expected phase/subphase/engine/group"
            ) from None

    def groupby_sum(self, key: str, column: str = "macs") -> Dict:
        """Sum a numeric column per label of ``key`` (phase/subphase/engine/group)."""
        return self.weighted_sums(key, self.column(column))

    def weighted_sums(self, key: str, weights: np.ndarray) -> Dict:
        """Sum an arbitrary per-operator array per label of ``key``.

        Like :meth:`groupby_sum`, but over caller-computed per-operator values
        (e.g. the simulators' stage latencies) instead of a stored column.
        """
        codes, vocab = self._codes_for(key)
        sums = np.bincount(codes, weights=weights, minlength=len(vocab))
        return {label: float(sums[i]) for i, label in enumerate(vocab)}

    def by_phase(self) -> Dict[str, "OperatorTable"]:
        """Sub-table per phase, in first-appearance order (columnar ``by_phase``)."""
        return {phase: self.select(self.phase_codes == code)
                for code, phase in enumerate(self.phases)}

    def phase_sums(self, column: str = "macs") -> Dict[str, float]:
        return self.groupby_sum("phase", column)


# ------------------------------------------------------------------- caching
@lru_cache(maxsize=64)
def _cached_workload(config: PPMConfig, n: int, include_recycles: bool) -> Workload:
    return build_model_ops(config, n, include_recycles=include_recycles)


@lru_cache(maxsize=64)
def _cached_table(config: PPMConfig, n: int, include_recycles: bool) -> OperatorTable:
    return OperatorTable.from_workload(_cached_workload(config, n, include_recycles))


def get_workload(config: PPMConfig, n: int, include_recycles: bool = False) -> Workload:
    """LRU-cached :func:`~repro.ppm.workload.build_model_ops`.

    Returns a fresh :class:`Workload` wrapper around the cached operator list
    (the :class:`Operator` entries are frozen and shared), so mutating the
    returned ``operators`` list cannot poison the cache.
    """
    cached = _cached_workload(config, int(n), bool(include_recycles))
    return Workload(
        sequence_length=cached.sequence_length,
        config=cached.config,
        operators=list(cached.operators),
    )


def get_op_table(config: PPMConfig, n: int, include_recycles: bool = False) -> OperatorTable:
    """LRU-cached columnar operator table for ``(config, n, include_recycles)``."""
    return _cached_table(config, int(n), bool(include_recycles))


def clear_workload_caches() -> None:
    """Drop all cached workloads/tables (mainly for tests and memory pressure)."""
    _cached_table.cache_clear()
    _cached_workload.cache_clear()


def workload_cache_info():
    """(workload, table) LRU statistics, for the perf benchmarks."""
    return _cached_workload.cache_info(), _cached_table.cache_info()
