"""Running the PPM under an activation-quantization scheme.

Ties a :class:`~repro.core.schemes.QuantizationScheme` (or a raw AAQ config)
to a :class:`~repro.ppm.model.ProteinStructureModel`: activations are
fake-quantized at every tap point of the Pair-Representation dataflow and, for
weight-quantizing baselines (MEFold, Tender, ...), the model weights are
fake-quantized once up front.  This is the machinery behind the accuracy
experiments (Fig. 11 and Fig. 13).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

import numpy as np

from ..metrics.tm_score import tm_score_structures
from ..proteins.structure import ProteinStructure
from .activation_tap import ActivationRecorder
from .config import PPMConfig
from .model import PredictionResult, ProteinStructureModel


class AAQScheme:
    """Adapter running a raw AAQ configuration as a quantization scheme.

    Used by the DSE sweeps and the packed-layout accuracy tests, where a bare
    :class:`~repro.core.aaq.AAQConfig` (rather than a full Table 1 scheme) is
    what varies.  ``use_packed=True`` injects quantization through the
    :class:`~repro.core.token_quant.PackedQuantizedTensor` pack/unpack round
    trip, i.e. the exact packed memory layout of the hardware.
    """

    weight_quant_bits = None

    def __init__(self, config=None, use_packed: bool = False) -> None:
        from ..core.aaq import AAQConfig, AAQQuantizer

        self.config = config or AAQConfig.paper_optimal()
        self.use_packed = use_packed
        self.name = "AAQ (packed)" if use_packed else "AAQ"
        self._quantizer = AAQQuantizer(self.config, use_packed=use_packed)

    def make_context(self, recorder: Optional[ActivationRecorder] = None):
        return self._quantizer.make_context(recorder)


@dataclass
class QuantizedPredictionResult:
    """Prediction result together with its accuracy versus the reference."""

    scheme_name: str
    target_name: str
    tm_score: float
    prediction: PredictionResult


class QuantizedPPM:
    """A PPM wrapped with a quantization scheme."""

    def __init__(self, model: ProteinStructureModel, scheme) -> None:
        self.scheme = scheme
        if getattr(scheme, "weight_quant_bits", None) is not None:
            # Weight-quantizing baselines get their own deep copy so the shared
            # reference model keeps full-precision weights.
            model = copy.deepcopy(model)
            scheme.quantize_weights(model)
        self.model = model

    def predict(self, reference: ProteinStructure, recorder: Optional[ActivationRecorder] = None):
        """Predict ``reference``'s structure with quantization injected."""
        ctx = self.scheme.make_context(recorder=recorder)
        return self.model.predict_from_structure(reference, ctx=ctx)

    def evaluate(self, reference: ProteinStructure) -> QuantizedPredictionResult:
        """Predict and score one target."""
        prediction = self.predict(reference)
        score = tm_score_structures(prediction.structure, reference)
        return QuantizedPredictionResult(
            scheme_name=self.scheme.name,
            target_name=reference.name or "target",
            tm_score=score,
            prediction=prediction,
        )


def evaluate_scheme_on_targets(
    scheme,
    targets: Iterable[ProteinStructure],
    config: Optional[PPMConfig] = None,
    seed: int = 0,
    model: Optional[ProteinStructureModel] = None,
) -> List[QuantizedPredictionResult]:
    """Evaluate one scheme on several targets with a shared reference model."""
    model = model or ProteinStructureModel(config or PPMConfig.small(), seed=seed)
    quantized = QuantizedPPM(model, scheme)
    return [quantized.evaluate(target) for target in targets]


def average_tm_score(results: Iterable[QuantizedPredictionResult]) -> float:
    """Mean TM-score of a result list (0.0 for an empty list)."""
    scores = [r.tm_score for r in results]
    return float(np.mean(scores)) if scores else 0.0


def compare_schemes_on_targets(
    schemes: Dict[str, object],
    targets: List[ProteinStructure],
    config: Optional[PPMConfig] = None,
    seed: int = 0,
) -> Dict[str, float]:
    """Average TM-score per scheme over the same targets and the same model."""
    model = ProteinStructureModel(config or PPMConfig.small(), seed=seed)
    scores: Dict[str, float] = {}
    for name, scheme in schemes.items():
        results = evaluate_scheme_on_targets(scheme, targets, config=config, seed=seed, model=model)
        scores[name] = average_tm_score(results)
    return scores
