"""Structure module: pair representation -> 3-D C-alpha coordinates.

The paper's structure module (AlphaFold2/ESMFold IPA) converts the final pair
representation into atomic coordinates.  Our substrate recovers coordinates
from the distance signal carried by the pair representation:

1. read the predicted pairwise distance matrix out of the reserved distogram
   channels (plus a learned correction head over all pair channels),
2. classical multidimensional scaling (MDS) of the distance matrix to obtain
   an initial embedding in 3-D,
3. a few rounds of stress-majorization refinement to improve local geometry.

Quantization error anywhere in the Pair Representation dataflow perturbs the
distance matrix and therefore degrades the predicted structure — the same
causal path the paper's accuracy experiments rely on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..proteins.sequence import ProteinSequence
from ..proteins.structure import ProteinStructure, distance_matrix_to_gram
from .activation_tap import ActivationContext, NULL_CONTEXT
from .config import PPMConfig
from .embedding import DISTANCE_SCALE, decode_prior_distances
from .modules import LayerNorm, Linear, Module


@dataclass
class StructurePrediction:
    """Output of the structure module."""

    structure: ProteinStructure
    predicted_distances: np.ndarray
    plddt_like_confidence: np.ndarray


def mds_embedding(distances: np.ndarray, dimensions: int = 3) -> np.ndarray:
    """Classical MDS embedding of a distance matrix into ``dimensions``-D."""
    gram = distance_matrix_to_gram(distances)
    eigenvalues, eigenvectors = np.linalg.eigh(gram)
    order = np.argsort(eigenvalues)[::-1][:dimensions]
    top_values = np.clip(eigenvalues[order], 0.0, None)
    return eigenvectors[:, order] * np.sqrt(top_values)[None, :]


def mean_torsion_sign(coordinates: np.ndarray) -> float:
    """Average sign of consecutive C-alpha pseudo-torsion angles.

    Distance information alone determines a structure only up to a mirror
    image; real PPM structure modules resolve the ambiguity through learned
    backbone frames.  Our substrate resolves it through backbone handedness:
    the synthetic generator builds helices with a fixed turn direction, so the
    mean sign of the CA(i)...CA(i+3) pseudo-torsion is consistently negative
    for correctly-handed structures and positive for their mirror images.
    """
    if coordinates.shape[0] < 4:
        return 0.0
    b1 = coordinates[1:-2] - coordinates[:-3]
    b2 = coordinates[2:-1] - coordinates[1:-2]
    b3 = coordinates[3:] - coordinates[2:-1]
    n1 = np.cross(b1, b2)
    n2 = np.cross(b2, b3)
    b2_unit = b2 / np.maximum(np.linalg.norm(b2, axis=1, keepdims=True), 1e-12)
    m1 = np.cross(n1, b2_unit)
    x = np.sum(n1 * n2, axis=1)
    y = np.sum(m1 * n2, axis=1)
    angles = np.arctan2(y, x)
    return float(np.mean(np.sign(angles)))


def resolve_chirality(coordinates: np.ndarray) -> np.ndarray:
    """Return the mirror image with the expected (negative) backbone handedness."""
    if mean_torsion_sign(coordinates) > 0:
        mirrored = coordinates.copy()
        mirrored[:, 2] = -mirrored[:, 2]
        return mirrored
    return coordinates


def stress_refinement(
    coordinates: np.ndarray,
    target_distances: np.ndarray,
    iterations: int = 20,
    neighbor_cutoff: float = 14.0,
    max_weighted_size: int = 1200,
) -> np.ndarray:
    """SMACOF stress majorization emphasizing short-range distances.

    Uses the Guttman transform ``X <- V^+ B(X) X``.  For proteins small enough
    to afford a pseudo-inverse of the weighted Laplacian ``V`` we weight pairs
    within ``neighbor_cutoff`` more strongly (local geometry matters most for
    TM-score); above ``max_weighted_size`` residues the uniform-weight closed
    form ``X <- B(X) X / n`` is used instead.
    """
    coords = coordinates.copy()
    n = coords.shape[0]
    if n < 3 or iterations <= 0:
        return coords

    use_weights = n <= max_weighted_size
    if use_weights:
        weights = (target_distances <= neighbor_cutoff).astype(np.float64) + 0.05
        np.fill_diagonal(weights, 0.0)
        laplacian = np.diag(weights.sum(axis=1)) - weights
        v_pinv = np.linalg.pinv(laplacian)
    else:
        weights = np.ones((n, n))
        np.fill_diagonal(weights, 0.0)
        v_pinv = None

    for _ in range(iterations):
        diff = coords[:, None, :] - coords[None, :, :]
        current = np.sqrt(np.sum(diff * diff, axis=-1))
        np.fill_diagonal(current, 1.0)
        ratio = np.where(current > 1e-9, target_distances / current, 0.0)
        b_matrix = -weights * ratio
        np.fill_diagonal(b_matrix, 0.0)
        np.fill_diagonal(b_matrix, -b_matrix.sum(axis=1))
        guttman = b_matrix @ coords
        if use_weights:
            coords = v_pinv @ guttman
        else:
            coords = guttman / n
        coords = coords - coords.mean(axis=0)
    return coords


class StructureModule(Module):
    """Distance readout + MDS + refinement producing the final structure."""

    def __init__(self, config: PPMConfig, rng: np.random.Generator, name: str = "structure_module") -> None:
        super().__init__(name)
        self.config = config
        self.layer_norm = self.register_child("layer_norm", LayerNorm(config.pair_dim, "layer_norm"))
        self.distance_head = self.register_child(
            "distance_head", Linear(config.pair_dim, 1, rng, "distance_head", init="final")
        )
        self.confidence_head = self.register_child(
            "confidence_head", Linear(config.pair_dim, 1, rng, "confidence_head", init="final")
        )
        self.prior_gain = 8.0
        self.refinement_iterations = 20

    def predict_distances(self, pair: np.ndarray) -> np.ndarray:
        """Predicted pairwise distance matrix from the pair representation."""
        base = decode_prior_distances(pair, self.prior_gain)
        correction = self.distance_head(self.layer_norm(pair))[..., 0] * DISTANCE_SCALE * 0.01
        correction = 0.5 * (correction + correction.T)
        predicted = np.clip(base + correction, 0.0, None)
        np.fill_diagonal(predicted, 0.0)
        return predicted

    def forward(
        self,
        sequence_representation: np.ndarray,
        pair: np.ndarray,
        sequence: ProteinSequence,
        ctx: ActivationContext = NULL_CONTEXT,
    ) -> StructurePrediction:
        """Predict the 3-D structure of ``sequence`` from trunk outputs."""
        del sequence_representation, ctx  # structure module is outside the AAQ dataflow
        distances = self.predict_distances(pair)
        coordinates = mds_embedding(distances, dimensions=3)
        coordinates = stress_refinement(
            coordinates, distances, iterations=self.refinement_iterations
        )
        coordinates = resolve_chirality(coordinates)
        confidence_logits = self.confidence_head(self.layer_norm(pair))[..., 0]
        confidence = 1.0 / (1.0 + np.exp(-confidence_logits.mean(axis=-1)))
        structure = ProteinStructure(sequence=sequence, coordinates=coordinates)
        return StructurePrediction(
            structure=structure,
            predicted_distances=distances,
            plddt_like_confidence=confidence,
        )

    __call__ = forward
