"""Triangular Multiplication and Triangular Attention blocks (Fig. 6a/6b).

These two blocks dominate the Pair Representation dataflow and are the main
target of AAQ.  The implementation mirrors the ESMFold/AlphaFold2 pair stack:

* Triangular multiplication ("outgoing"/"incoming"): gated projections of the
  pair representation are combined along the third sequence axis with a
  matrix multiplication, normalized, gated again and projected back.
* Triangular attention ("starting"/"ending" node): multi-head attention over
  rows (or columns) of the pair representation with an additive pair bias and
  a sigmoid output gate.

Every activation the paper quantizes is routed through the activation context
with its group label (A: residual-stream/pre-LayerNorm, B: post-LayerNorm,
C: post-linear intermediates).

Both blocks support opt-in blockwise execution (``PPMConfig.attn_chunk_size``
/ ``triangle_chunk_size``): triangular attention evaluates query blocks with
a streaming max/denominator softmax so the (N, N, N, heads) score tensor is
never materialized, and triangular multiplication tiles its third-axis
contraction.  ``None`` (the default) keeps the dense paths bit-for-bit; the
chunked paths fire the same tap names with the same group labels and agree
with dense at the repo-wide 1e-9 parity bar.
"""

from __future__ import annotations

import numpy as np

from .activation_tap import GROUP_A, GROUP_B, GROUP_C, ActivationContext, NULL_CONTEXT
from .chunking import (
    blockwise_attention,
    context_observes_taps,
    iter_chunks,
    streaming_attention,
)
from .config import PPMConfig
from .functional import sigmoid, softmax
from .modules import LayerNorm, Linear, Module


class TriangleMultiplication(Module):
    """Triangular multiplicative update using outgoing or incoming edges."""

    def __init__(
        self,
        config: PPMConfig,
        rng: np.random.Generator,
        mode: str = "outgoing",
        name: str = "triangle_multiplication",
    ) -> None:
        super().__init__(name)
        if mode not in ("outgoing", "incoming"):
            raise ValueError("mode must be 'outgoing' or 'incoming'")
        self.mode = mode
        self.chunk_size = config.triangle_chunk_size
        pair_dim = config.pair_dim
        hidden = config.triangle_hidden
        self.layer_norm_in = self.register_child("layer_norm_in", LayerNorm(pair_dim, "layer_norm_in"))
        self.linear_a_p = self.register_child("linear_a_p", Linear(pair_dim, hidden, rng, "linear_a_p"))
        self.linear_a_g = self.register_child(
            "linear_a_g", Linear(pair_dim, hidden, rng, "linear_a_g", init="gating")
        )
        self.linear_b_p = self.register_child("linear_b_p", Linear(pair_dim, hidden, rng, "linear_b_p"))
        self.linear_b_g = self.register_child(
            "linear_b_g", Linear(pair_dim, hidden, rng, "linear_b_g", init="gating")
        )
        self.layer_norm_out = self.register_child("layer_norm_out", LayerNorm(hidden, "layer_norm_out"))
        self.linear_o = self.register_child("linear_o", Linear(hidden, pair_dim, rng, "linear_o", init="final"))
        self.linear_g = self.register_child(
            "linear_g", Linear(pair_dim, pair_dim, rng, "linear_g", init="gating")
        )

    def _contract(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Third-axis contraction, tiled over ``triangle_chunk_size`` edges.

        Dense (``chunk_size is None``) keeps the single einsum of the seed
        implementation; the tiled path accumulates the same per-element sums
        chunk by chunk in ascending edge order.
        """
        if self.mode == "outgoing":
            # product over k of a[i, k] * b[j, k]
            if self.chunk_size is None:
                return np.einsum("ikc,jkc->ijc", a, b)
            edges = a.shape[1]
            combined = np.zeros((a.shape[0], b.shape[0], a.shape[2]), dtype=a.dtype)
            for ks in iter_chunks(edges, self.chunk_size):
                combined += np.einsum("ikc,jkc->ijc", a[:, ks], b[:, ks])
            return combined
        # product over k of a[k, i] * b[k, j]
        if self.chunk_size is None:
            return np.einsum("kic,kjc->ijc", a, b)
        edges = a.shape[0]
        combined = np.zeros((a.shape[1], b.shape[1], a.shape[2]), dtype=a.dtype)
        for ks in iter_chunks(edges, self.chunk_size):
            combined += np.einsum("kic,kjc->ijc", a[ks], b[ks])
        return combined

    def forward(self, pair: np.ndarray, ctx: ActivationContext = NULL_CONTEXT) -> np.ndarray:
        """Return the residual update for the pair representation (Ns, Ns, Hz)."""
        tag = f"{self.name}.{self.mode}"
        pair = ctx.process(f"{tag}.pre_ln", GROUP_A, pair)
        normalized = self.layer_norm_in(pair)
        normalized = ctx.process(f"{tag}.post_ln", GROUP_B, normalized)

        a = self.linear_a_p(normalized) * sigmoid(self.linear_a_g(normalized))
        b = self.linear_b_p(normalized) * sigmoid(self.linear_b_g(normalized))
        a = ctx.process(f"{tag}.proj_a", GROUP_C, a)
        b = ctx.process(f"{tag}.proj_b", GROUP_C, b)

        combined = self._contract(a, b)
        combined = combined / np.sqrt(a.shape[-2])
        combined = ctx.process(f"{tag}.matmul", GROUP_A, combined)

        normalized_out = self.layer_norm_out(combined)
        normalized_out = ctx.process(f"{tag}.matmul_post_ln", GROUP_B, normalized_out)
        projected = self.linear_o(normalized_out)
        projected = ctx.process(f"{tag}.proj_o", GROUP_C, projected)
        gate = sigmoid(self.linear_g(normalized))
        return projected * gate

    __call__ = forward


class TriangleAttention(Module):
    """Triangular self-attention around the starting or ending node."""

    def __init__(
        self,
        config: PPMConfig,
        rng: np.random.Generator,
        mode: str = "starting",
        name: str = "triangle_attention",
    ) -> None:
        super().__init__(name)
        if mode not in ("starting", "ending"):
            raise ValueError("mode must be 'starting' or 'ending'")
        self.mode = mode
        self.chunk_size = config.attn_chunk_size
        self.num_heads = config.num_heads
        self.head_dim = config.head_dim
        pair_dim = config.pair_dim
        width = config.attention_dim
        self.layer_norm = self.register_child("layer_norm", LayerNorm(pair_dim, "layer_norm"))
        self.linear_q = self.register_child("linear_q", Linear(pair_dim, width, rng, "linear_q", bias=False))
        self.linear_k = self.register_child("linear_k", Linear(pair_dim, width, rng, "linear_k", bias=False))
        self.linear_v = self.register_child("linear_v", Linear(pair_dim, width, rng, "linear_v", bias=False))
        self.linear_bias = self.register_child(
            "linear_bias", Linear(pair_dim, config.num_heads, rng, "linear_bias", bias=False)
        )
        self.linear_g = self.register_child(
            "linear_g", Linear(pair_dim, width, rng, "linear_g", init="gating")
        )
        self.linear_o = self.register_child("linear_o", Linear(width, pair_dim, rng, "linear_o", init="final"))

    def _split_heads(self, x: np.ndarray) -> np.ndarray:
        """(Ns, Ns, H*D) -> (Ns, H, Ns, D)"""
        n_i, n_j, _ = x.shape
        return x.reshape(n_i, n_j, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def forward(self, pair: np.ndarray, ctx: ActivationContext = NULL_CONTEXT) -> np.ndarray:
        """Return the residual update for the pair representation (Ns, Ns, Hz)."""
        tag = f"{self.name}.{self.mode}"
        if self.mode == "ending":
            pair = pair.transpose(1, 0, 2)

        pair = ctx.process(f"{tag}.pre_ln", GROUP_A, pair)
        normalized = self.layer_norm(pair)
        normalized = ctx.process(f"{tag}.post_ln", GROUP_B, normalized)

        q = self._split_heads(self.linear_q(normalized))
        k = self._split_heads(self.linear_k(normalized))
        v = self._split_heads(self.linear_v(normalized))
        q = ctx.process(f"{tag}.q", GROUP_C, q)
        k = ctx.process(f"{tag}.k", GROUP_C, k)
        v = ctx.process(f"{tag}.v", GROUP_C, v)

        bias = self.linear_bias(normalized)           # (Ns, Ns, H)
        bias = ctx.process(f"{tag}.bias", GROUP_C, bias)
        bias = bias.transpose(2, 0, 1)                 # (H, Ns, Ns)

        if self.chunk_size is None:
            scores = np.einsum("ihqd,ihkd->ihqk", q, k) / np.sqrt(self.head_dim)
            scores = scores + bias[None, :, :, :]
            weights = softmax(scores, axis=-1)
            weights = ctx.process(f"{tag}.attention_weights", GROUP_C, weights)
            attended = np.einsum("ihqk,ihkd->ihqd", weights, v)
        elif context_observes_taps(ctx):
            # The context must see the normalized weights: evaluate query
            # blocks with the full key axis so each `attention_weights` tap
            # carries complete per-token vectors (chunk-invariant transforms).
            attended = blockwise_attention(
                q, k, v, bias,
                scale_divisor=np.sqrt(self.head_dim),
                query_chunk=self.chunk_size,
                ctx=ctx,
                weights_tap=f"{tag}.attention_weights",
                weights_group=GROUP_C,
            )
        else:
            # No observer: stream both query and key tiles through the online
            # max/denominator softmax; no score tile larger than
            # (Ns, H, chunk, chunk) ever exists.
            attended = streaming_attention(
                q, k, v, bias=bias,
                scale=1.0 / np.sqrt(self.head_dim),
                query_chunk=self.chunk_size,
                key_chunk=self.chunk_size,
            )
        attended = attended.transpose(0, 2, 1, 3).reshape(pair.shape[0], pair.shape[1], -1)
        attended = ctx.process(f"{tag}.attended", GROUP_C, attended)

        gate = sigmoid(self.linear_g(normalized))
        output = self.linear_o(attended * gate)
        output = ctx.process(f"{tag}.proj_o", GROUP_C, output)

        if self.mode == "ending":
            output = output.transpose(1, 0, 2)
        return output

    __call__ = forward
