"""Operator-level workload model of the PPM at paper scale.

The latency, memory and energy experiments of the paper run ESMFold at its
full dimensions (pair dim 128, sequence dim 1024, 48 blocks) on sequences of
hundreds to thousands of residues.  Executing the numpy substrate at that
scale is unnecessary (and far too slow): what the hardware simulator, the GPU
baseline model and the cost models need is the *operator graph* — every
matrix multiplication and vector operation of the dataflow in Fig. 2(b) with
its exact MAC count, activation sizes and activation group.

``build_model_ops`` produces that graph for a given sequence length.  All
downstream models (LightNobel accelerator, A100/H100 analytical model, peak
memory, computational cost) consume the same graph, which keeps the
comparisons apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Iterable, List, Optional

from .activation_tap import GROUP_A, GROUP_B, GROUP_C
from .config import PPMConfig

#: Operator execution engines.
ENGINE_MATMUL = "matmul"   # executed on the RMPU / GPU tensor cores
ENGINE_VECTOR = "vector"   # executed on the VVPU / GPU CUDA cores

#: Pipeline phases (Fig. 2a / Fig. 3 breakdown categories).
PHASE_INPUT_EMBEDDING = "input_embedding"
PHASE_SEQUENCE = "sequence_dataflow"
PHASE_PAIR = "pair_dataflow"
PHASE_STRUCTURE = "structure_module"

#: Sub-phases of the pair dataflow used in the Fig. 3 breakdown.
SUBPHASE_BIAS_MLP = "bias_mlp"
SUBPHASE_TRI_MULT = "triangular_multiplication"
SUBPHASE_TRI_ATT = "triangular_attention"


@dataclass(frozen=True)
class Operator:
    """One operator of the PPM dataflow."""

    name: str
    engine: str
    phase: str
    subphase: str = ""
    macs: float = 0.0             # multiply-accumulate count
    vector_ops: float = 0.0       # elementwise / reduction operations
    input_elements: float = 0.0   # activation elements read
    output_elements: float = 0.0  # activation elements written
    weight_elements: float = 0.0  # weight elements read
    output_group: Optional[str] = None  # AAQ group of the produced activation
    #: True for intermediates that never leave on-chip storage under
    #: LightNobel's token-wise MHA (e.g. the attention score matrix).
    fusible: bool = False

    @property
    def flops(self) -> float:
        return 2.0 * self.macs + self.vector_ops


@dataclass
class Workload:
    """The operator graph of one PPM inference at a given sequence length."""

    sequence_length: int
    config: PPMConfig
    operators: List[Operator] = field(default_factory=list)

    def total_macs(self) -> float:
        return sum(op.macs for op in self.operators)

    def total_vector_ops(self) -> float:
        return sum(op.vector_ops for op in self.operators)

    def by_phase(self) -> Dict[str, List[Operator]]:
        phases: Dict[str, List[Operator]] = {}
        for op in self.operators:
            phases.setdefault(op.phase, []).append(op)
        return phases

    def filter(self, phase: Optional[str] = None, engine: Optional[str] = None) -> List[Operator]:
        ops = self.operators
        if phase is not None:
            ops = [op for op in ops if op.phase == phase]
        if engine is not None:
            ops = [op for op in ops if op.engine == engine]
        return ops

    def structure_signature(self) -> tuple:
        """Length-invariant identity of the operator sequence.

        Two workloads of the same config at different sequence lengths share
        this signature (only the numeric columns scale with ``n``) — the
        property that lets :class:`~repro.ppm.op_table.StackedOperatorTable`
        concatenate per-length tables under one shared label vocabulary.
        """
        return tuple(
            (op.name, op.engine, op.phase, op.subphase, op.output_group, op.fusible)
            for op in self.operators
        )


def _linear_op(
    name: str,
    tokens: float,
    in_dim: int,
    out_dim: int,
    phase: str,
    subphase: str = "",
    group: Optional[str] = GROUP_C,
) -> Operator:
    """A token-parallel linear layer over ``tokens`` tokens."""
    return Operator(
        name=name,
        engine=ENGINE_MATMUL,
        phase=phase,
        subphase=subphase,
        macs=tokens * in_dim * out_dim,
        input_elements=tokens * in_dim,
        output_elements=tokens * out_dim,
        weight_elements=in_dim * out_dim + out_dim,
        output_group=group,
    )


def _vector_op(
    name: str,
    elements: float,
    passes: float,
    phase: str,
    subphase: str = "",
    group: Optional[str] = None,
    output_elements: Optional[float] = None,
    fusible: bool = False,
) -> Operator:
    return Operator(
        name=name,
        engine=ENGINE_VECTOR,
        phase=phase,
        subphase=subphase,
        vector_ops=elements * passes,
        input_elements=elements,
        output_elements=elements if output_elements is None else output_elements,
        output_group=group,
        fusible=fusible,
    )


def build_triangle_multiplication_ops(config: PPMConfig, n: int, mode: str, block: int) -> List[Operator]:
    """Operators of one Triangular Multiplication block (Fig. 6a)."""
    hz = config.pair_dim
    hidden = config.triangle_hidden
    tokens = float(n) * n
    prefix = f"block{block:02d}.tri_mult_{mode}"
    ops = [
        _vector_op(f"{prefix}.layer_norm_in", tokens * hz, 4, PHASE_PAIR, SUBPHASE_TRI_MULT, GROUP_B),
        _linear_op(f"{prefix}.linear_a_p", tokens, hz, hidden, PHASE_PAIR, SUBPHASE_TRI_MULT),
        _linear_op(f"{prefix}.linear_a_g", tokens, hz, hidden, PHASE_PAIR, SUBPHASE_TRI_MULT),
        _linear_op(f"{prefix}.linear_b_p", tokens, hz, hidden, PHASE_PAIR, SUBPHASE_TRI_MULT),
        _linear_op(f"{prefix}.linear_b_g", tokens, hz, hidden, PHASE_PAIR, SUBPHASE_TRI_MULT),
        _vector_op(f"{prefix}.gates", tokens * hidden * 2, 2, PHASE_PAIR, SUBPHASE_TRI_MULT),
        Operator(
            name=f"{prefix}.triangle_matmul",
            engine=ENGINE_MATMUL,
            phase=PHASE_PAIR,
            subphase=SUBPHASE_TRI_MULT,
            macs=float(n) ** 3 * hidden,
            input_elements=2 * tokens * hidden,
            output_elements=tokens * hidden,
            weight_elements=0.0,
            output_group=GROUP_A,
        ),
        _vector_op(f"{prefix}.layer_norm_out", tokens * hidden, 4, PHASE_PAIR, SUBPHASE_TRI_MULT, GROUP_B),
        _linear_op(f"{prefix}.linear_g", tokens, hz, hz, PHASE_PAIR, SUBPHASE_TRI_MULT),
        _linear_op(f"{prefix}.linear_o", tokens, hidden, hz, PHASE_PAIR, SUBPHASE_TRI_MULT),
        _vector_op(f"{prefix}.gate_and_residual", tokens * hz, 3, PHASE_PAIR, SUBPHASE_TRI_MULT, GROUP_A),
    ]
    return ops


def build_triangle_attention_ops(config: PPMConfig, n: int, mode: str, block: int) -> List[Operator]:
    """Operators of one Triangular Attention block (Fig. 6b)."""
    hz = config.pair_dim
    heads = config.num_heads
    head_dim = config.head_dim
    width = heads * head_dim
    tokens = float(n) * n
    prefix = f"block{block:02d}.tri_att_{mode}"
    ops = [
        _vector_op(f"{prefix}.layer_norm", tokens * hz, 4, PHASE_PAIR, SUBPHASE_TRI_ATT, GROUP_B),
        _linear_op(f"{prefix}.linear_q", tokens, hz, width, PHASE_PAIR, SUBPHASE_TRI_ATT),
        _linear_op(f"{prefix}.linear_k", tokens, hz, width, PHASE_PAIR, SUBPHASE_TRI_ATT),
        _linear_op(f"{prefix}.linear_v", tokens, hz, width, PHASE_PAIR, SUBPHASE_TRI_ATT),
        _linear_op(f"{prefix}.linear_bias", tokens, hz, heads, PHASE_PAIR, SUBPHASE_TRI_ATT),
        Operator(
            name=f"{prefix}.attention_scores",
            engine=ENGINE_MATMUL,
            phase=PHASE_PAIR,
            subphase=SUBPHASE_TRI_ATT,
            macs=float(n) ** 3 * heads * head_dim,
            input_elements=2 * tokens * width,
            output_elements=float(n) ** 3 * heads,
            weight_elements=0.0,
            output_group=GROUP_C,
            fusible=True,
        ),
        _vector_op(
            f"{prefix}.softmax",
            float(n) ** 3 * heads,
            5,
            PHASE_PAIR,
            SUBPHASE_TRI_ATT,
            GROUP_C,
            fusible=True,
        ),
        Operator(
            name=f"{prefix}.attention_values",
            engine=ENGINE_MATMUL,
            phase=PHASE_PAIR,
            subphase=SUBPHASE_TRI_ATT,
            macs=float(n) ** 3 * heads * head_dim,
            input_elements=float(n) ** 3 * heads + tokens * width,
            output_elements=tokens * width,
            weight_elements=0.0,
            output_group=GROUP_C,
        ),
        _linear_op(f"{prefix}.linear_g", tokens, hz, width, PHASE_PAIR, SUBPHASE_TRI_ATT),
        _linear_op(f"{prefix}.linear_o", tokens, width, hz, PHASE_PAIR, SUBPHASE_TRI_ATT),
        _vector_op(f"{prefix}.gate_and_residual", tokens * hz, 3, PHASE_PAIR, SUBPHASE_TRI_ATT, GROUP_A),
    ]
    return ops


def build_pair_bias_mlp_ops(config: PPMConfig, n: int, block: int) -> List[Operator]:
    """Outer product mean, pair transition and bias calculation of one block."""
    hz = config.pair_dim
    hm = config.seq_dim
    tokens = float(n) * n
    hidden = 32
    factor = config.transition_factor
    prefix = f"block{block:02d}.bias_mlp"
    return [
        _vector_op(f"{prefix}.opm_layer_norm", float(n) * hm, 4, PHASE_PAIR, SUBPHASE_BIAS_MLP),
        _linear_op(f"{prefix}.opm_linear_a", float(n), hm, hidden, PHASE_PAIR, SUBPHASE_BIAS_MLP),
        _linear_op(f"{prefix}.opm_linear_b", float(n), hm, hidden, PHASE_PAIR, SUBPHASE_BIAS_MLP),
        Operator(
            name=f"{prefix}.outer_product",
            engine=ENGINE_MATMUL,
            phase=PHASE_PAIR,
            subphase=SUBPHASE_BIAS_MLP,
            macs=tokens * hidden * hidden,
            input_elements=2 * float(n) * hidden,
            output_elements=tokens * hidden * hidden,
            weight_elements=0.0,
            output_group=GROUP_C,
        ),
        _linear_op(f"{prefix}.opm_linear_o", tokens, hidden * hidden, hz, PHASE_PAIR, SUBPHASE_BIAS_MLP),
        _vector_op(f"{prefix}.opm_residual", tokens * hz, 1, PHASE_PAIR, SUBPHASE_BIAS_MLP, GROUP_A),
        _vector_op(f"{prefix}.transition_layer_norm", tokens * hz, 4, PHASE_PAIR, SUBPHASE_BIAS_MLP, GROUP_B),
        _linear_op(f"{prefix}.transition_expand", tokens, hz, hz * factor, PHASE_PAIR, SUBPHASE_BIAS_MLP),
        _vector_op(f"{prefix}.transition_relu", tokens * hz * factor, 1, PHASE_PAIR, SUBPHASE_BIAS_MLP),
        _linear_op(f"{prefix}.transition_contract", tokens, hz * factor, hz, PHASE_PAIR, SUBPHASE_BIAS_MLP),
        _vector_op(f"{prefix}.transition_residual", tokens * hz, 1, PHASE_PAIR, SUBPHASE_BIAS_MLP, GROUP_A),
    ]


def build_sequence_dataflow_ops(config: PPMConfig, n: int, block: int) -> List[Operator]:
    """Sequence-representation self-attention and transition of one block."""
    hm = config.seq_dim
    hz = config.pair_dim
    heads = config.seq_num_heads
    factor = config.transition_factor
    prefix = f"block{block:02d}.sequence"
    return [
        _vector_op(f"{prefix}.layer_norm", float(n) * hm, 4, PHASE_SEQUENCE, "", None),
        _linear_op(f"{prefix}.linear_q", float(n), hm, hm, PHASE_SEQUENCE, "", None),
        _linear_op(f"{prefix}.linear_k", float(n), hm, hm, PHASE_SEQUENCE, "", None),
        _linear_op(f"{prefix}.linear_v", float(n), hm, hm, PHASE_SEQUENCE, "", None),
        _linear_op(f"{prefix}.pair_bias", float(n) * n, hz, heads, PHASE_SEQUENCE, "", None),
        Operator(
            name=f"{prefix}.attention",
            engine=ENGINE_MATMUL,
            phase=PHASE_SEQUENCE,
            macs=2.0 * float(n) * n * hm,
            input_elements=2 * float(n) * hm,
            output_elements=float(n) * hm,
            weight_elements=0.0,
        ),
        _vector_op(f"{prefix}.softmax", float(n) * n * heads, 5, PHASE_SEQUENCE),
        _linear_op(f"{prefix}.linear_o", float(n), hm, hm, PHASE_SEQUENCE, "", None),
        _vector_op(f"{prefix}.transition_layer_norm", float(n) * hm, 4, PHASE_SEQUENCE),
        _linear_op(f"{prefix}.transition_expand", float(n), hm, hm * factor, PHASE_SEQUENCE, "", None),
        _linear_op(f"{prefix}.transition_contract", float(n), hm * factor, hm, PHASE_SEQUENCE, "", None),
        _vector_op(f"{prefix}.residuals", float(n) * hm, 2, PHASE_SEQUENCE),
    ]


def build_folding_block_ops(config: PPMConfig, n: int, block: int = 0) -> List[Operator]:
    """All operators of one Protein Folding Block (Fig. 2b)."""
    ops: List[Operator] = []
    ops.extend(build_sequence_dataflow_ops(config, n, block))
    ops.extend(build_pair_bias_mlp_ops(config, n, block))
    ops.extend(build_triangle_multiplication_ops(config, n, "outgoing", block))
    ops.extend(build_triangle_multiplication_ops(config, n, "incoming", block))
    ops.extend(build_triangle_attention_ops(config, n, "starting", block))
    ops.extend(build_triangle_attention_ops(config, n, "ending", block))
    return ops


def build_input_embedding_ops(config: PPMConfig, n: int) -> List[Operator]:
    """Input-embedding operators (protein language model forward pass).

    ESMFold's input embedding is the ESM-2 3B language model; its cost is
    modelled as the standard transformer estimate of 2 x parameters MACs per
    residue plus the pair/sequence projection layers.
    """
    lm_macs = config.language_model_params * float(n)
    return [
        Operator(
            name="input_embedding.language_model",
            engine=ENGINE_MATMUL,
            phase=PHASE_INPUT_EMBEDDING,
            macs=lm_macs,
            input_elements=float(n) * config.seq_dim,
            output_elements=float(n) * config.seq_dim,
            weight_elements=config.language_model_params,
        ),
        _linear_op("input_embedding.pair_projection", float(n) * n, 32, config.pair_dim,
                   PHASE_INPUT_EMBEDDING, "", None),
    ]


def build_structure_module_ops(config: PPMConfig, n: int, num_layers: int = 8) -> List[Operator]:
    """Structure-module operators (invariant point attention style costs)."""
    hz = config.pair_dim
    hs = 384  # structure-module single representation width in ESMFold
    ops: List[Operator] = []
    for layer in range(num_layers):
        ops.append(
            Operator(
                name=f"structure.ipa_{layer}",
                engine=ENGINE_MATMUL,
                phase=PHASE_STRUCTURE,
                macs=float(n) * n * (hz + hs) * 4 + float(n) * hs * hs * 6,
                input_elements=float(n) * n * hz + float(n) * hs,
                output_elements=float(n) * hs,
                weight_elements=hs * hs * 6,
            )
        )
        ops.append(_vector_op(f"structure.frames_{layer}", float(n) * hs, 6, PHASE_STRUCTURE))
    return ops


def build_model_ops(config: PPMConfig, n: int, include_recycles: bool = False) -> Workload:
    """Full operator graph of one PPM inference at sequence length ``n``."""
    if n <= 0:
        raise ValueError("sequence length must be positive")
    operators: List[Operator] = []
    operators.extend(build_input_embedding_ops(config, n))
    passes = (config.num_recycles + 1) if include_recycles else 1
    for _ in range(passes):
        for block in range(config.num_blocks):
            operators.extend(build_folding_block_ops(config, n, block))
        operators.extend(build_structure_module_ops(config, n))
    return Workload(sequence_length=n, config=config, operators=operators)


def pair_activation_elements(config: PPMConfig, n: int) -> float:
    """Number of elements of one Pair Representation tensor."""
    return float(n) * n * config.pair_dim


def score_matrix_elements(config: PPMConfig, n: int) -> float:
    """Number of elements of one triangular-attention score matrix (all heads)."""
    return float(n) ** 3 * config.num_heads


def sequence_activation_elements(config: PPMConfig, n: int) -> float:
    """Number of elements of one Sequence Representation tensor."""
    return float(n) * config.seq_dim


@lru_cache(maxsize=32)
def _trunk_weight_elements(config: PPMConfig) -> float:
    workload = build_model_ops(config, 4)
    return sum(
        op.weight_elements
        for op in workload.operators
        if op.phase != PHASE_INPUT_EMBEDDING
    )


def model_weight_elements(config: PPMConfig, include_language_model: bool = False) -> float:
    """Total trunk weight elements (optionally including the language model).

    Weight totals are sequence-length independent, so the trunk sum is
    memoized per config instead of rebuilding the operator graph per call.
    """
    weights = _trunk_weight_elements(config)
    if include_language_model:
        weights += config.language_model_params
    return weights
