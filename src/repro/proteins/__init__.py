"""Protein substrate: sequences, synthetic structures, datasets, PDB I/O."""

from .amino_acids import (
    AMINO_ACIDS,
    VOCABULARY_SIZE,
    decode_sequence,
    encode_sequence,
    is_valid_residue,
    residue,
)
from .datasets import (
    DATASET_NAMES,
    DatasetCatalog,
    DatasetTarget,
    accuracy_datasets,
    build_all_catalogs,
    build_catalog,
)
from .pdb_io import read_pdb, structure_to_pdb, write_pdb
from .sequence import ProteinSequence, random_sequence
from .structure import ProteinStructure, default_distogram_bins, distance_matrix_to_gram
from .synthetic import generate_backbone, generate_protein, perturb_structure

__all__ = [
    "AMINO_ACIDS",
    "VOCABULARY_SIZE",
    "DATASET_NAMES",
    "DatasetCatalog",
    "DatasetTarget",
    "ProteinSequence",
    "ProteinStructure",
    "accuracy_datasets",
    "build_all_catalogs",
    "build_catalog",
    "decode_sequence",
    "default_distogram_bins",
    "distance_matrix_to_gram",
    "encode_sequence",
    "generate_backbone",
    "generate_protein",
    "is_valid_residue",
    "perturb_structure",
    "random_sequence",
    "read_pdb",
    "residue",
    "structure_to_pdb",
    "write_pdb",
]
