"""Amino-acid alphabet and residue-level properties.

The Protein Structure Prediction Model (PPM) substrate only needs a
lightweight notion of residues: a canonical 20-letter alphabet, an integer
encoding used by the input embedding, and a handful of physico-chemical
properties that the synthetic structure generator uses to bias secondary
structure (helix/sheet propensities follow the Chou-Fasman scale).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

#: Canonical one-letter amino-acid codes, in a fixed order used for encoding.
AMINO_ACIDS: str = "ACDEFGHIKLMNPQRSTVWY"

#: Token index reserved for unknown residues (e.g. ``X``).
UNKNOWN_INDEX: int = len(AMINO_ACIDS)

#: Size of the residue vocabulary including the unknown token.
VOCABULARY_SIZE: int = len(AMINO_ACIDS) + 1

THREE_LETTER_CODES: Dict[str, str] = {
    "A": "ALA", "C": "CYS", "D": "ASP", "E": "GLU", "F": "PHE",
    "G": "GLY", "H": "HIS", "I": "ILE", "K": "LYS", "L": "LEU",
    "M": "MET", "N": "ASN", "P": "PRO", "Q": "GLN", "R": "ARG",
    "S": "SER", "T": "THR", "V": "VAL", "W": "TRP", "Y": "TYR",
}

ONE_LETTER_CODES: Dict[str, str] = {v: k for k, v in THREE_LETTER_CODES.items()}

#: Chou-Fasman helix propensities (relative scale).
HELIX_PROPENSITY: Dict[str, float] = {
    "A": 1.42, "C": 0.70, "D": 1.01, "E": 1.51, "F": 1.13,
    "G": 0.57, "H": 1.00, "I": 1.08, "K": 1.16, "L": 1.21,
    "M": 1.45, "N": 0.67, "P": 0.57, "Q": 1.11, "R": 0.98,
    "S": 0.77, "T": 0.83, "V": 1.06, "W": 1.08, "Y": 0.69,
}

#: Chou-Fasman beta-sheet propensities (relative scale).
SHEET_PROPENSITY: Dict[str, float] = {
    "A": 0.83, "C": 1.19, "D": 0.54, "E": 0.37, "F": 1.38,
    "G": 0.75, "H": 0.87, "I": 1.60, "K": 0.74, "L": 1.30,
    "M": 1.05, "N": 0.89, "P": 0.55, "Q": 1.10, "R": 0.93,
    "S": 0.75, "T": 1.19, "V": 1.70, "W": 1.37, "Y": 1.47,
}

#: Kyte-Doolittle hydropathy index.
HYDROPATHY: Dict[str, float] = {
    "A": 1.8, "C": 2.5, "D": -3.5, "E": -3.5, "F": 2.8,
    "G": -0.4, "H": -3.2, "I": 4.5, "K": -3.9, "L": 3.8,
    "M": 1.9, "N": -3.5, "P": -1.6, "Q": -3.5, "R": -4.5,
    "S": -0.8, "T": -0.7, "V": 4.2, "W": -0.9, "Y": -1.3,
}


@dataclass(frozen=True)
class Residue:
    """A single residue with the properties used by the synthetic generator."""

    code: str
    index: int
    helix_propensity: float
    sheet_propensity: float
    hydropathy: float

    @property
    def three_letter(self) -> str:
        return THREE_LETTER_CODES[self.code]


_RESIDUE_TABLE: Dict[str, Residue] = {
    code: Residue(
        code=code,
        index=i,
        helix_propensity=HELIX_PROPENSITY[code],
        sheet_propensity=SHEET_PROPENSITY[code],
        hydropathy=HYDROPATHY[code],
    )
    for i, code in enumerate(AMINO_ACIDS)
}


def residue(code: str) -> Residue:
    """Look up the :class:`Residue` for a one-letter code.

    Unknown codes raise ``KeyError`` so callers notice malformed sequences.
    """
    return _RESIDUE_TABLE[code.upper()]


def is_valid_residue(code: str) -> bool:
    """Return True if ``code`` is one of the 20 canonical one-letter codes."""
    return code.upper() in _RESIDUE_TABLE


def encode_sequence(sequence: str) -> List[int]:
    """Encode a one-letter sequence into integer token indices.

    Non-canonical residues map to :data:`UNKNOWN_INDEX`.
    """
    return [
        _RESIDUE_TABLE[ch.upper()].index if ch.upper() in _RESIDUE_TABLE else UNKNOWN_INDEX
        for ch in sequence
    ]


def decode_sequence(indices: List[int]) -> str:
    """Decode integer token indices back into a one-letter sequence."""
    out = []
    for idx in indices:
        if 0 <= idx < len(AMINO_ACIDS):
            out.append(AMINO_ACIDS[idx])
        else:
            out.append("X")
    return "".join(out)
