"""Synthetic dataset catalogues mirroring CAMEO and CASP14/15/16.

The paper evaluates on protein targets from CAMEO, CASP14, CASP15 and CASP16.
Ground-truth structures for those targets are not available offline, so we
build synthetic catalogues with the same *sequence-length distributions* —
which is what every latency/memory experiment depends on — and synthetic
ground-truth structures, which is what the accuracy experiments depend on.
Named anchor targets used in the paper (R0271 = 77 aa, T1269 = 1,410 aa,
T1169 = 3,364 aa, the 6,879 aa longest CASP16 target) are present with their
exact lengths.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from .structure import ProteinStructure
from .synthetic import generate_protein


@dataclass(frozen=True)
class DatasetTarget:
    """One protein target in a dataset catalogue."""

    name: str
    length: int
    dataset: str
    has_ground_truth: bool = True


#: Paper anchor targets, by dataset.
ANCHOR_TARGETS: Dict[str, List[DatasetTarget]] = {
    "CASP16": [
        DatasetTarget("R0271", 77, "CASP16", has_ground_truth=False),
        DatasetTarget("T1269", 1410, "CASP16", has_ground_truth=False),
        DatasetTarget("T1299", 6879, "CASP16", has_ground_truth=False),
    ],
    "CASP15": [
        DatasetTarget("T1169", 3364, "CASP15"),
    ],
}

#: Sequence-length envelopes (min, typical, max) per dataset, from the CASP
#: target lists referenced in the paper (CASP10 -> 770, CASP16 -> 6,879).
LENGTH_PROFILES: Dict[str, Dict[str, float]] = {
    "CAMEO": {"min": 60, "mode": 250, "max": 800},
    "CASP14": {"min": 70, "mode": 400, "max": 2180},
    "CASP15": {"min": 90, "mode": 500, "max": 3364},
    "CASP16": {"min": 77, "mode": 700, "max": 6879},
}

DATASET_NAMES: List[str] = ["CAMEO", "CASP14", "CASP15", "CASP16"]


@dataclass
class DatasetCatalog:
    """A named collection of protein targets with deterministic generation."""

    name: str
    targets: List[DatasetTarget] = field(default_factory=list)
    seed: int = 0

    def __len__(self) -> int:
        return len(self.targets)

    def __iter__(self) -> Iterator[DatasetTarget]:
        return iter(self.targets)

    def lengths(self) -> List[int]:
        return [t.length for t in self.targets]

    def max_length(self) -> int:
        return max(self.lengths())

    def filter_by_length(self, max_length: int) -> "DatasetCatalog":
        """Catalogue restricted to targets with at most ``max_length`` residues."""
        kept = [t for t in self.targets if t.length <= max_length]
        return DatasetCatalog(name=self.name, targets=kept, seed=self.seed)

    def with_ground_truth(self) -> "DatasetCatalog":
        """Catalogue restricted to targets whose ground truth is released."""
        kept = [t for t in self.targets if t.has_ground_truth]
        return DatasetCatalog(name=self.name, targets=kept, seed=self.seed)

    def structure_for(self, target: DatasetTarget, max_length: Optional[int] = None) -> ProteinStructure:
        """Deterministically generate the synthetic ground-truth structure.

        ``max_length`` optionally truncates very long targets so that numeric
        (as opposed to analytical) experiments stay tractable; the truncated
        structure is still deterministic for a given target.
        """
        length = target.length if max_length is None else min(target.length, max_length)
        seed = _target_seed(self.name, target.name, self.seed)
        return generate_protein(length, seed=seed, name=target.name)


def _target_seed(dataset: str, target: str, base_seed: int) -> int:
    """Stable per-target seed derived from dataset and target names.

    Uses CRC32 rather than the built-in ``hash`` so seeds are identical across
    processes (Python randomizes string hashing per interpreter run).
    """
    mixed = zlib.crc32(f"{dataset}/{target}".encode("utf-8")) & 0x7FFFFFFF
    return (mixed ^ (base_seed * 2654435761)) & 0x7FFFFFFF


def _sample_lengths(profile: Dict[str, float], count: int, rng: np.random.Generator) -> List[int]:
    """Draw target lengths from a log-normal-ish envelope clipped to the profile."""
    mode = profile["mode"]
    sigma = 0.55
    mu = np.log(mode)
    raw = rng.lognormal(mean=mu, sigma=sigma, size=count)
    clipped = np.clip(raw, profile["min"], profile["max"])
    return [int(round(v)) for v in clipped]


def build_catalog(name: str, count: int = 12, seed: int = 0) -> DatasetCatalog:
    """Build a synthetic catalogue for ``name`` (one of CAMEO/CASP14/15/16).

    The catalogue always contains the paper's anchor targets for that dataset
    plus ``count`` sampled targets following the dataset's length profile.
    CASP16 targets carry ``has_ground_truth=False`` (as in the paper, where
    CASP16 ground truth was not yet released), all other datasets are fully
    evaluable for accuracy.
    """
    if name not in LENGTH_PROFILES:
        raise ValueError(f"unknown dataset {name!r}; expected one of {DATASET_NAMES}")
    rng = np.random.default_rng(seed + zlib.crc32(name.encode("utf-8")) % 100000)
    profile = LENGTH_PROFILES[name]
    targets: List[DatasetTarget] = list(ANCHOR_TARGETS.get(name, []))
    has_gt = name != "CASP16"
    lengths = _sample_lengths(profile, count, rng)
    for i, length in enumerate(lengths):
        targets.append(
            DatasetTarget(name=f"{name}-S{i:03d}", length=length, dataset=name, has_ground_truth=has_gt)
        )
    targets.sort(key=lambda t: t.length)
    return DatasetCatalog(name=name, targets=targets, seed=seed)


def build_all_catalogs(count: int = 12, seed: int = 0) -> Dict[str, DatasetCatalog]:
    """Build catalogues for all four datasets used in the paper."""
    return {name: build_catalog(name, count=count, seed=seed) for name in DATASET_NAMES}


def accuracy_datasets(count: int = 8, seed: int = 0) -> Dict[str, DatasetCatalog]:
    """Datasets used for accuracy evaluation (paper: all except CASP16)."""
    return {
        name: build_catalog(name, count=count, seed=seed)
        for name in ("CAMEO", "CASP14", "CASP15")
    }
