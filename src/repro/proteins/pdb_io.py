"""Minimal PDB-format I/O for C-alpha trace structures.

Only the subset of the PDB format the examples need is implemented: ATOM
records for CA atoms, one chain, plus TER/END.  This is enough to export
predictions for visualization in standard tools and to round-trip structures
in tests.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Union

import numpy as np

from .amino_acids import ONE_LETTER_CODES, THREE_LETTER_CODES
from .sequence import ProteinSequence
from .structure import ProteinStructure

PathLike = Union[str, Path]


def structure_to_pdb(structure: ProteinStructure, chain_id: str = "A") -> str:
    """Serialize a CA-trace structure into PDB ATOM records."""
    lines: List[str] = []
    lines.append(f"REMARK  LightNobel reproduction model: {structure.name}")
    for i, (residue_code, coord) in enumerate(zip(structure.sequence, structure.coordinates), start=1):
        residue_name = THREE_LETTER_CODES.get(residue_code, "UNK")
        x, y, z = (float(v) for v in coord)
        lines.append(
            f"ATOM  {i:5d}  CA  {residue_name:>3s} {chain_id}{i:4d}    "
            f"{x:8.3f}{y:8.3f}{z:8.3f}  1.00  0.00           C"
        )
    lines.append(f"TER   {len(structure) + 1:5d}      "
                 f"{THREE_LETTER_CODES.get(structure.sequence[-1], 'UNK'):>3s} {chain_id}{len(structure):4d}")
    lines.append("END")
    return "\n".join(lines) + "\n"


def write_pdb(structure: ProteinStructure, path: PathLike, chain_id: str = "A") -> Path:
    """Write a structure to ``path`` in PDB format and return the path."""
    path = Path(path)
    path.write_text(structure_to_pdb(structure, chain_id=chain_id))
    return path


def read_pdb(path: PathLike, name: str = "from_pdb") -> ProteinStructure:
    """Read a CA-only PDB file back into a :class:`ProteinStructure`."""
    path = Path(path)
    residues: List[str] = []
    coords: List[List[float]] = []
    for line in path.read_text().splitlines():
        if not line.startswith("ATOM"):
            continue
        atom_name = line[12:16].strip()
        if atom_name != "CA":
            continue
        residue_name = line[17:20].strip()
        residues.append(ONE_LETTER_CODES.get(residue_name, "X"))
        coords.append([float(line[30:38]), float(line[38:46]), float(line[46:54])])
    if not residues:
        raise ValueError(f"no CA ATOM records found in {path}")
    sequence = ProteinSequence("".join(residues), name=name)
    return ProteinStructure(sequence=sequence, coordinates=np.asarray(coords), name=name)
