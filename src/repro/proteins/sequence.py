"""Protein sequence container and random sequence generation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

import numpy as np

from .amino_acids import AMINO_ACIDS, encode_sequence, is_valid_residue


@dataclass(frozen=True)
class ProteinSequence:
    """An amino-acid sequence with an optional identifier.

    The sequence is stored as a one-letter string; the integer encoding used
    by the PPM input embedding is computed on demand.
    """

    sequence: str
    name: str = "protein"
    description: str = ""
    _encoded: tuple = field(default=(), repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.sequence:
            raise ValueError("sequence must be non-empty")
        cleaned = self.sequence.upper()
        for ch in cleaned:
            if not (is_valid_residue(ch) or ch == "X"):
                raise ValueError(f"invalid residue code {ch!r} in sequence {self.name!r}")
        object.__setattr__(self, "sequence", cleaned)

    def __len__(self) -> int:
        return len(self.sequence)

    def __iter__(self) -> Iterator[str]:
        return iter(self.sequence)

    def __getitem__(self, item) -> str:
        return self.sequence[item]

    def encoded(self) -> np.ndarray:
        """Integer token encoding of the sequence, shape ``(Ns,)``."""
        return np.asarray(encode_sequence(self.sequence), dtype=np.int64)

    def composition(self) -> dict:
        """Residue frequency table (fraction of each canonical residue)."""
        counts = {aa: 0 for aa in AMINO_ACIDS}
        for ch in self.sequence:
            if ch in counts:
                counts[ch] += 1
        total = max(1, len(self.sequence))
        return {aa: counts[aa] / total for aa in AMINO_ACIDS}


def random_sequence(
    length: int,
    rng: Optional[np.random.Generator] = None,
    name: str = "random",
    weights: Optional[List[float]] = None,
) -> ProteinSequence:
    """Sample a random protein sequence of ``length`` residues.

    Parameters
    ----------
    length:
        Number of residues; must be positive.
    rng:
        Numpy random generator; a fresh default generator is used if omitted.
    name:
        Identifier attached to the returned :class:`ProteinSequence`.
    weights:
        Optional per-residue sampling weights (len 20).  Uniform if omitted.
    """
    if length <= 0:
        raise ValueError("length must be positive")
    rng = rng or np.random.default_rng()
    if weights is None:
        probs = np.full(len(AMINO_ACIDS), 1.0 / len(AMINO_ACIDS))
    else:
        probs = np.asarray(weights, dtype=np.float64)
        if probs.shape != (len(AMINO_ACIDS),):
            raise ValueError("weights must have one entry per canonical residue")
        probs = probs / probs.sum()
    letters = rng.choice(list(AMINO_ACIDS), size=length, p=probs)
    return ProteinSequence("".join(letters), name=name)
