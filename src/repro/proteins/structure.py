"""Protein structure container: CA-trace coordinates plus derived geometry."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .sequence import ProteinSequence


@dataclass
class ProteinStructure:
    """A C-alpha trace structure for a protein sequence.

    Attributes
    ----------
    sequence:
        The amino-acid sequence the structure belongs to.
    coordinates:
        Array of shape ``(Ns, 3)`` with one C-alpha position per residue, in
        Angstroms.
    name:
        Identifier (defaults to the sequence name).
    """

    sequence: ProteinSequence
    coordinates: np.ndarray
    name: Optional[str] = None

    def __post_init__(self) -> None:
        coords = np.asarray(self.coordinates, dtype=np.float64)
        if coords.ndim != 2 or coords.shape[1] != 3:
            raise ValueError("coordinates must have shape (Ns, 3)")
        if coords.shape[0] != len(self.sequence):
            raise ValueError(
                f"coordinate count {coords.shape[0]} does not match sequence length "
                f"{len(self.sequence)}"
            )
        if not np.all(np.isfinite(coords)):
            raise ValueError("coordinates must be finite")
        self.coordinates = coords
        if self.name is None:
            self.name = self.sequence.name

    def __len__(self) -> int:
        return len(self.sequence)

    def distance_matrix(self) -> np.ndarray:
        """Pairwise C-alpha distance matrix, shape ``(Ns, Ns)``."""
        diff = self.coordinates[:, None, :] - self.coordinates[None, :, :]
        return np.sqrt(np.sum(diff * diff, axis=-1))

    def distogram(self, bins: Optional[np.ndarray] = None) -> np.ndarray:
        """Binned pairwise-distance representation, shape ``(Ns, Ns, B)``.

        Each pair is one-hot encoded into distance bins; this mirrors the
        distogram targets used when training PPMs and is the signal the
        synthetic input embedding injects into the Pair Representation.
        """
        if bins is None:
            bins = default_distogram_bins()
        dist = self.distance_matrix()
        indices = np.digitize(dist, bins)
        one_hot = np.zeros(dist.shape + (len(bins) + 1,), dtype=np.float32)
        rows, cols = np.indices(dist.shape)
        one_hot[rows, cols, indices] = 1.0
        return one_hot

    def contact_map(self, cutoff: float = 8.0) -> np.ndarray:
        """Boolean contact map at the given CA-CA distance cutoff."""
        return self.distance_matrix() <= cutoff

    def radius_of_gyration(self) -> float:
        """Radius of gyration of the CA trace."""
        center = self.coordinates.mean(axis=0)
        return float(np.sqrt(np.mean(np.sum((self.coordinates - center) ** 2, axis=1))))

    def centered(self) -> "ProteinStructure":
        """Return a copy translated so the centroid sits at the origin."""
        return ProteinStructure(
            sequence=self.sequence,
            coordinates=self.coordinates - self.coordinates.mean(axis=0),
            name=self.name,
        )

    def with_coordinates(self, coordinates: np.ndarray) -> "ProteinStructure":
        """Return a copy of this structure with replaced coordinates."""
        return ProteinStructure(sequence=self.sequence, coordinates=coordinates, name=self.name)


def default_distogram_bins(
    minimum: float = 2.0, maximum: float = 22.0, count: int = 63
) -> np.ndarray:
    """Distance-bin edges used for distograms (AlphaFold2-style 64 bins)."""
    return np.linspace(minimum, maximum, count)


def distance_matrix_to_gram(distances: np.ndarray) -> np.ndarray:
    """Convert a pairwise distance matrix to a centered Gram matrix.

    This is the classical multidimensional-scaling (MDS) step used by the
    structure module to recover 3-D coordinates from predicted distances.
    """
    d2 = np.asarray(distances, dtype=np.float64) ** 2
    n = d2.shape[0]
    centering = np.eye(n) - np.full((n, n), 1.0 / n)
    return -0.5 * centering @ d2 @ centering
