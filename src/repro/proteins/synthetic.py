"""Synthetic protein structure generation.

The paper evaluates on CAMEO/CASP targets whose experimental structures come
from the PDB.  Those are not available offline, so this module builds the
closest synthetic equivalent: proteins whose C-alpha traces are assembled from
idealized secondary-structure segments (alpha helices, beta strands and coils)
with residue-dependent segment propensities, then compacted into a globular
fold.  The resulting structures have realistic pairwise-distance statistics
(3.8 A consecutive CA spacing, contact-rich cores, distograms with the banded
patterns the paper's Figure 5 discusses), which is what the quantization and
memory experiments depend on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from .amino_acids import residue
from .sequence import ProteinSequence, random_sequence
from .structure import ProteinStructure

#: Consecutive C-alpha distance in Angstroms.
CA_CA_DISTANCE = 3.8

#: Idealized alpha-helix geometry: rise per residue and turn angle.
HELIX_RISE = 1.5
HELIX_RADIUS = 2.3
HELIX_TURN = np.deg2rad(100.0)

#: Idealized beta-strand geometry: extended, slight zig-zag.
STRAND_RISE = 3.4
STRAND_ZIGZAG = 0.9


@dataclass(frozen=True)
class SecondaryStructureSegment:
    """A run of residues sharing one secondary-structure type."""

    kind: str  # "H" (helix), "E" (strand), "C" (coil)
    start: int
    length: int

    @property
    def end(self) -> int:
        return self.start + self.length


def assign_secondary_structure(
    sequence: ProteinSequence, rng: np.random.Generator
) -> List[SecondaryStructureSegment]:
    """Partition a sequence into helix/strand/coil segments.

    Segment types are sampled with probabilities biased by the Chou-Fasman
    propensities of the residues in the window, so different sequences give
    different (but deterministic, given the rng) folds.
    """
    segments: List[SecondaryStructureSegment] = []
    position = 0
    n = len(sequence)
    while position < n:
        length = int(rng.integers(4, 13))
        length = min(length, n - position)
        window = sequence.sequence[position:position + length]
        helix_score = float(np.mean([_safe_helix(ch) for ch in window]))
        sheet_score = float(np.mean([_safe_sheet(ch) for ch in window]))
        coil_score = 0.9
        scores = np.array([helix_score, sheet_score, coil_score])
        probs = scores / scores.sum()
        kind = rng.choice(["H", "E", "C"], p=probs)
        segments.append(SecondaryStructureSegment(kind=str(kind), start=position, length=length))
        position += length
    return segments


def _safe_helix(code: str) -> float:
    try:
        return residue(code).helix_propensity
    except KeyError:
        return 1.0


def _safe_sheet(code: str) -> float:
    try:
        return residue(code).sheet_propensity
    except KeyError:
        return 1.0


def _helix_segment(length: int, rng: np.random.Generator) -> np.ndarray:
    """Local coordinates of an idealized alpha helix segment."""
    indices = np.arange(length)
    phase = rng.uniform(0, 2 * np.pi)
    x = HELIX_RADIUS * np.cos(HELIX_TURN * indices + phase)
    y = HELIX_RADIUS * np.sin(HELIX_TURN * indices + phase)
    z = HELIX_RISE * indices
    return np.stack([x, y, z], axis=1)


def _strand_segment(length: int, rng: np.random.Generator) -> np.ndarray:
    """Local coordinates of an idealized beta strand segment."""
    indices = np.arange(length)
    x = STRAND_ZIGZAG * ((indices % 2) - 0.5)
    y = np.zeros(length)
    z = STRAND_RISE * indices
    return np.stack([x, y, z], axis=1)


def _coil_segment(length: int, rng: np.random.Generator) -> np.ndarray:
    """Local coordinates of a random-walk coil with fixed CA-CA spacing."""
    directions = rng.normal(size=(length, 3))
    # Smooth the walk so consecutive steps are correlated (persistence).
    for i in range(1, length):
        directions[i] = 0.6 * directions[i - 1] + 0.4 * directions[i]
    norms = np.linalg.norm(directions, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    steps = directions / norms * CA_CA_DISTANCE
    coords = np.cumsum(steps, axis=0)
    return coords - coords[0]


def _random_rotation(rng: np.random.Generator) -> np.ndarray:
    """Uniform random rotation matrix (QR of a Gaussian matrix)."""
    matrix = rng.normal(size=(3, 3))
    q, r = np.linalg.qr(matrix)
    q = q * np.sign(np.diag(r))
    if np.linalg.det(q) < 0:
        q[:, 0] = -q[:, 0]
    return q


def _compact(coords: np.ndarray, rng: np.random.Generator, iterations: int = 30) -> np.ndarray:
    """Pull the chain into a globular fold while keeping CA-CA spacing.

    A light-weight relaxation: each iteration applies a contraction toward the
    centroid followed by a re-normalization of consecutive CA-CA distances.
    The result has a radius of gyration scaling like ``Ns**(1/3)``, matching
    globular proteins, which gives distograms with realistic contact density.
    """
    coords = coords.copy()
    n = coords.shape[0]
    target_rg = 2.2 * n ** (1.0 / 3.0) + 0.5
    for _ in range(iterations):
        center = coords.mean(axis=0)
        rg = np.sqrt(np.mean(np.sum((coords - center) ** 2, axis=1)))
        if rg <= target_rg:
            break
        shrink = max(0.90, target_rg / rg)
        coords = center + (coords - center) * shrink
        # restore chain connectivity
        deltas = np.diff(coords, axis=0)
        lengths = np.linalg.norm(deltas, axis=1, keepdims=True)
        lengths[lengths == 0] = 1.0
        deltas = deltas / lengths * CA_CA_DISTANCE
        rebuilt = np.concatenate([coords[:1], coords[:1] + np.cumsum(deltas, axis=0)], axis=0)
        coords = rebuilt
    return coords


def generate_backbone(
    sequence: ProteinSequence,
    rng: Optional[np.random.Generator] = None,
    compact_iterations: int = 30,
) -> ProteinStructure:
    """Generate a synthetic C-alpha trace for ``sequence``.

    The chain is assembled segment by segment (helix, strand or coil local
    geometry), each segment rotated randomly and appended with the canonical
    3.8 A linkage, then compacted into a globule.
    """
    rng = rng or np.random.default_rng(0)
    segments = assign_secondary_structure(sequence, rng)
    pieces: List[np.ndarray] = []
    cursor = np.zeros(3)
    direction = np.array([0.0, 0.0, 1.0])
    for segment in segments:
        if segment.kind == "H":
            local = _helix_segment(segment.length, rng)
        elif segment.kind == "E":
            local = _strand_segment(segment.length, rng)
        else:
            local = _coil_segment(segment.length, rng)
        rotation = _random_rotation(rng)
        local = local @ rotation.T
        if local.shape[0] > 0:
            local = local - local[0]
        offset = cursor + direction * CA_CA_DISTANCE
        placed = local + offset
        pieces.append(placed)
        cursor = placed[-1]
        if placed.shape[0] >= 2:
            direction = placed[-1] - placed[-2]
            norm = np.linalg.norm(direction)
            direction = direction / norm if norm > 0 else np.array([0.0, 0.0, 1.0])
    coords = np.concatenate(pieces, axis=0)[: len(sequence)]
    coords = _compact(coords, rng, iterations=compact_iterations)
    return ProteinStructure(sequence=sequence, coordinates=coords)


def generate_protein(
    length: int,
    seed: int = 0,
    name: str = "synthetic",
    compact_iterations: int = 30,
) -> ProteinStructure:
    """Generate a random sequence and a synthetic structure for it."""
    rng = np.random.default_rng(seed)
    seq = random_sequence(length, rng=rng, name=name)
    return generate_backbone(seq, rng=rng, compact_iterations=compact_iterations)


def perturb_structure(
    structure: ProteinStructure,
    noise_scale: float,
    rng: Optional[np.random.Generator] = None,
) -> ProteinStructure:
    """Return a copy of ``structure`` with Gaussian coordinate noise added.

    Used by tests and examples to produce decoys with known quality ordering.
    """
    rng = rng or np.random.default_rng(0)
    noise = rng.normal(scale=noise_scale, size=structure.coordinates.shape)
    return structure.with_coordinates(structure.coordinates + noise)
