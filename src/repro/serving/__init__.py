"""Latency-serving layer: concurrent, multi-tenant queries over `repro.sim`.

The third layer of the simulation stack: PR 1 made one simulation cheap
(columnar engine), PR 2 made repeated simulations cheap (sessions, sweeps,
disk cache), and this package makes *concurrent* simulations cheap — a
request/response front end that coalesces duplicate in-flight work and
shards unique work across the sweep process pool.

Usage
-----
Synchronous convenience path::

    from repro.serving import LatencyService

    with LatencyService() as service:               # PPMConfig.paper()
        report = service.query("lightnobel", 1410)  # SimReport

Batch submit/poll with coalescing (duplicates share one simulation)::

    from repro.serving import LatencyRequest, LatencyService

    with LatencyService(workers=2) as service:
        tickets = service.submit_batch(
            [LatencyRequest("h100", 800)] * 16      # -> exactly 1 simulation
            + [("lightnobel", n) for n in (300, 800, 1410)]
        )
        responses = [service.result(t) for t in tickets]
        service.capacity_report().queries_per_second

Figure entry points (``latency_breakdown``, ``compare_hardware_on_lengths``,
``hardware_dse``, ``EndToEndComparison``) accept ``service=`` to route their
latency numbers through one shared service instance.
"""

from .api import (
    BackendServiceStats,
    CapacityReport,
    LatencyRequest,
    LatencyResponse,
    LatencyServiceError,
    RequestLogRecord,
    dispatch_order_key,
    length_bucket,
)
from .service import LatencyService
from .stats import ServiceStats, percentile

__all__ = [
    "BackendServiceStats",
    "CapacityReport",
    "LatencyRequest",
    "LatencyResponse",
    "LatencyService",
    "LatencyServiceError",
    "RequestLogRecord",
    "ServiceStats",
    "dispatch_order_key",
    "length_bucket",
    "percentile",
]
