"""Latency-serving layer: concurrent, multi-tenant queries over `repro.sim`.

The third layer of the simulation stack: PR 1 made one simulation cheap
(columnar engine), PR 2 made repeated simulations cheap (sessions, sweeps,
disk cache), and this package makes *concurrent* simulations cheap — a
request/response front end that coalesces duplicate in-flight work and
shards unique work across the sweep process pool.

Facade
------
This module is the package's one documented import surface, organized in
three tiers:

* **service** — :func:`create_service` / :class:`LatencyService` (the
  engine), :class:`LatencyRequest` / :class:`LatencyResponse` (the typed
  in-process API), :class:`CapacityReport` / :class:`BackendServiceStats` /
  :class:`ServiceStats` (observability), :class:`RequestLogRecord` (the
  structured traffic log shared with :mod:`repro.cluster`),
* **wire** — the versioned JSON twins for crossing process boundaries:
  :class:`WireRequest` / :class:`WireResponse` / :class:`ErrorBody`, all
  stamped with :data:`SCHEMA_VERSION` and validated strictly
  (:class:`WireFormatError` carries a machine-readable code),
* **HTTP** — the socket front door lives one level down in
  :mod:`repro.serving.http` (server, client, trace-driven load harness);
  it is not re-exported here because it drags in asyncio plumbing most
  in-process callers never need.

Factories follow the repo-wide ``create_*`` convention
(:func:`repro.sim.backend.create_backend`,
:func:`repro.cluster.routing.create_router`,
:func:`repro.cluster.scheduler.create_scheduler`,
:func:`repro.cluster.trace.create_trace`): :func:`create_service` is the
keyword-for-keyword twin of the :class:`LatencyService` constructor.

Internal helpers that used to leak through this facade —
``dispatch_order_key``, ``length_bucket`` (:mod:`repro.serving.api`) and
``percentile`` (:mod:`repro.serving.stats`) — still import here but raise a
:class:`DeprecationWarning`; import them from their home modules.

Usage
-----
Synchronous convenience path::

    from repro.serving import create_service

    with create_service() as service:               # PPMConfig.paper()
        report = service.query("lightnobel", 1410)  # SimReport

Batch submit/poll with coalescing (duplicates share one simulation)::

    from repro.serving import LatencyRequest, create_service

    with create_service(workers=2) as service:
        tickets = service.submit_batch(
            [LatencyRequest("h100", 800)] * 16      # -> exactly 1 simulation
            + [("lightnobel", n) for n in (300, 800, 1410)]
        )
        responses = [service.result(t) for t in tickets]
        service.capacity_report().queries_per_second

Over the wire (one schema for HTTP bodies, logs, and archived reports)::

    from repro.serving import WireRequest, WireResponse

    body = WireRequest(backend="h100", sequence_length=800).to_json()
    response = WireResponse.from_json(http_body)    # lossless round trip

Figure entry points (``latency_breakdown``, ``compare_hardware_on_lengths``,
``hardware_dse``, ``EndToEndComparison``) accept ``service=`` to route their
latency numbers through one shared service instance.
"""

import warnings

from .api import (
    BackendServiceStats,
    CapacityReport,
    LatencyRequest,
    LatencyResponse,
    LatencyServiceError,
    RequestLogRecord,
)
from .service import LatencyService, create_service
from .stats import ServiceStats
from .wire import (
    SCHEMA_VERSION,
    ErrorBody,
    WireFormatError,
    WireRequest,
    WireResponse,
)

__all__ = [
    "BackendServiceStats",
    "CapacityReport",
    "ErrorBody",
    "LatencyRequest",
    "LatencyResponse",
    "LatencyService",
    "LatencyServiceError",
    "RequestLogRecord",
    "SCHEMA_VERSION",
    "ServiceStats",
    "WireFormatError",
    "WireRequest",
    "WireResponse",
    "create_service",
]

#: Names that used to be exported here -> (home module, attribute).
_DEPRECATED = {
    "dispatch_order_key": ("repro.serving.api", "dispatch_order_key"),
    "length_bucket": ("repro.serving.api", "length_bucket"),
    "percentile": ("repro.serving.stats", "percentile"),
}


def __getattr__(name):
    moved = _DEPRECATED.get(name)
    if moved is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    module_name, attribute = moved
    warnings.warn(
        f"importing {name!r} from {__name__!r} is deprecated; "
        f"import it from {module_name!r}",
        DeprecationWarning,
        stacklevel=2,
    )
    import importlib

    return getattr(importlib.import_module(module_name), attribute)
