"""Typed request/response surface of the latency-serving layer.

The serving layer speaks in three frozen dataclasses:

* :class:`LatencyRequest` — what a client asks for: a backend *spec*
  (anything :func:`repro.sim.backend.create_backend` resolves — a registered
  name, a frozen hardware config, a variant spec) plus a sequence length,
* :class:`LatencyResponse` — the fulfilled request: the
  :class:`~repro.sim.backend.SimReport`, per-request service timings, and
  whether the request was coalesced onto an earlier in-flight duplicate,
* :class:`CapacityReport` — an operator-facing snapshot of the service:
  sustained queries/sec, hit rates, queue depth, and per-backend p50/p99
  service latency (one :class:`BackendServiceStats` row per backend).

Responses are produced by :class:`~repro.serving.service.LatencyService`;
nothing here imports the service, so these types are cheap to ship across
process or serialization boundaries.  The wire twins of these types —
JSON-serializable, ``schema_version``-stamped — live in
:mod:`repro.serving.wire`; the HTTP front door that speaks them lives in
:mod:`repro.serving.http`.

Ticket lifecycle
----------------
Every ``submit`` returns a ticket id; the ticket's life is:

1. **pending** — queued or executing.  ``poll`` returns ``None``;
   ``result(timeout=)`` blocks up to ``timeout`` seconds.
2. **fulfilled** — a :class:`LatencyResponse` is stored.  The *first*
   ``poll``/``result`` that sees it **consumes** the ticket; consuming
   twice raises ``KeyError``.
3. **timed out** — ``result(timeout=)`` gave up.  The ticket is *not*
   consumed (a later ``poll``/``result`` may still claim it), the give-up
   is counted (``timed_out`` in :class:`CapacityReport`) and the ticket is
   marked *abandoned*.  A fulfillment landing while the ticket is abandoned
   counts as a **late result** (``late_results``) — stored, never dropped.
4. **reaped** — ``reap_abandoned()`` consumed an abandoned-and-fulfilled
   ticket on the caller's behalf (the periodic cleanup a long-lived service
   runs so the ticket table stays bounded).  ``abandon(ticket_id)`` marks a
   ticket for the next reap without waiting out a timeout.

The HTTP front door (:mod:`repro.serving.http`) maps this lifecycle onto
status codes — pending → 202, fulfilled → 200 (consuming), unknown → 404,
already consumed → 404 (``"already_consumed"``), reaped → **410 Gone** —
so a socket client observes exactly the in-process semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

from ..sim.backend import SimReport


class LatencyServiceError(RuntimeError):
    """A request failed inside the service (bad spec, simulator error)."""


def length_bucket(sequence_length: int, bucket_size: Optional[int]) -> int:
    """Shape-bucket index of a sequence length.

    ``bucket_size=None`` (or 0) puts every length in one shared bucket —
    maximal batching.  A positive ``bucket_size`` groups lengths into
    ``(length - 1) // bucket_size`` buckets, bounding how many distinct
    lengths one stacked simulation spans.  Bucketing only changes *batching
    granularity*: each bucket's stack still contains the exact requested
    lengths, so per-length results are identical either way.
    """
    if not bucket_size or int(bucket_size) <= 0:
        return 0
    return (int(sequence_length) - 1) // int(bucket_size)


def dispatch_order_key(
    priority: int, deadline: Optional[float], sequence: int
) -> Tuple[int, float, int]:
    """Canonical dispatch order shared by the serving layer and the cluster.

    Higher ``priority`` dispatches first; within a priority level the earliest
    ``deadline`` wins (``None`` sorts after every finite deadline); remaining
    ties fall back to ``sequence`` — submission order — so a stream of
    default-priority, deadline-free requests dispatches exactly FIFO.  The
    :class:`~repro.serving.service.LatencyService` dispatcher and the cluster
    simulator's EDF scheduler (:mod:`repro.cluster.scheduler`) both sort by
    this key, so "priority" and "deadline" mean the same thing on a single
    shared service as on a simulated fleet.
    """
    return (
        -int(priority),
        float("inf") if deadline is None else float(deadline),
        int(sequence),
    )


@dataclass(frozen=True)
class LatencyRequest:
    """One latency/capacity query.

    ``backend`` is a backend spec, not necessarily a built backend: strings
    (``"lightnobel"``, ``"h100-chunk"``), frozen config dataclasses and
    :class:`~repro.sim.backend.AcceleratorVariant`/:class:`~repro.sim.backend.GPUVariant`
    specs all work.  ``include_recycles=None`` defers to the service default.

    ``priority`` and ``deadline_seconds`` feed :func:`dispatch_order_key`:
    the dispatcher drains higher-priority requests first and breaks priority
    ties by earliest deadline (measured in seconds from submission), falling
    back to FIFO — the same semantics the cluster simulator's EDF scheduler
    applies to a :class:`repro.cluster.trace.Request`.  Both default to the
    neutral values (0, ``None``), which preserve strict FIFO dispatch.

    ``trace_id`` is the client's distributed-tracing ID: when the service
    has a :class:`~repro.obs.tracing.Tracer`, the request's server-side
    spans are recorded under this ID (so a front-door client's trace
    continues inside the service and ``GET /v1/trace/<id>`` finds it).
    ``None`` lets the service key the spans by ticket ID instead.
    """

    backend: Any = "lightnobel"
    sequence_length: int = 0
    include_recycles: Optional[bool] = None
    priority: int = 0
    deadline_seconds: Optional[float] = None
    trace_id: Optional[str] = None

    def __post_init__(self) -> None:
        if int(self.sequence_length) <= 0:
            raise ValueError("sequence_length must be positive")
        if self.deadline_seconds is not None and float(self.deadline_seconds) <= 0:
            raise ValueError("deadline_seconds must be positive (or None)")
        if self.trace_id is not None and not str(self.trace_id):
            raise ValueError("trace_id must be a non-empty string (or None)")


@dataclass(frozen=True)
class LatencyResponse:
    """A fulfilled (or failed) :class:`LatencyRequest`.

    ``queue_seconds`` is the time the request waited before its job started
    executing; ``service_seconds`` is submit-to-fulfillment.  ``coalesced``
    marks requests that attached to an earlier in-flight duplicate instead of
    enqueueing their own simulation.  ``completed_index`` is the global
    fulfillment sequence number (jobs complete in FIFO submission order).
    """

    request_id: int
    request: LatencyRequest
    report: Optional[SimReport] = None
    error: Optional[str] = None
    coalesced: bool = False
    queue_seconds: float = 0.0
    service_seconds: float = 0.0
    completed_index: int = -1

    @property
    def ok(self) -> bool:
        return self.error is None and self.report is not None

    def raise_for_error(self) -> "LatencyResponse":
        if not self.ok:
            raise LatencyServiceError(
                f"request {self.request_id} ({self.request.backend!r}, "
                f"n={self.request.sequence_length}) failed: {self.error}"
            )
        return self


@dataclass(frozen=True)
class RequestLogRecord:
    """One fulfilled request, as the service's structured request log sees it.

    This is the *shared traffic format* between the serving and cluster
    layers: every field a :class:`~repro.cluster.trace.Request` needs is
    here, in serving-layer time — ``arrival_seconds`` is relative to service
    start and ``deadline_seconds`` is the request's *relative* deadline
    (seconds from submission, as the client stated it), so
    ``RequestTrace.from_serving_log`` can rebuild the absolute-deadline
    trace convention exactly.  ``outcome`` is ``"ok"`` or ``"error"``;
    ``queue_seconds``/``service_seconds`` record what the live service
    actually delivered, for comparing a replay against reality.
    ``trace_id`` is the client-supplied tracing ID, when one rode in on the
    request (``None`` for untraced requests, whose spans — if the service
    traces at all — are keyed by ``ticket_id``).
    """

    ticket_id: int
    backend: str
    sequence_length: int
    priority: int
    deadline_seconds: Optional[float]
    arrival_seconds: float
    outcome: str
    coalesced: bool = False
    queue_seconds: float = 0.0
    service_seconds: float = 0.0
    trace_id: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.outcome == "ok"


@dataclass(frozen=True)
class BackendServiceStats:
    """Per-backend service-latency summary (seconds, submit-to-fulfillment)."""

    backend: str
    requests: int
    mean_seconds: float
    p50_seconds: float
    p99_seconds: float


@dataclass(frozen=True)
class CapacityReport:
    """Operator-facing snapshot of a :class:`~repro.serving.service.LatencyService`.

    ``queries_per_second`` is sustained throughput over *busy* time (the
    dispatcher's execution windows), so idle services do not dilute it;
    ``wall_seconds`` is time since the service started, for offered-load math.

    Resilience counters: ``timed_out`` counts :meth:`~repro.serving.service.LatencyService.result`
    calls that gave up waiting (the ticket itself stays claimable — a later
    ``result``/``poll`` may still consume it); ``late_results`` counts
    requests that completed *after* every waiter had timed out on them —
    such responses are stored, counted, and reclaimable via
    :meth:`~repro.serving.service.LatencyService.reap_abandoned`, never
    silently dropped; ``pool_rebuilds`` counts times the dispatcher replaced
    a broken worker pool with a fresh one before falling back to serial
    execution.

    Stacked-batch counters: ``stacked_batches`` counts shape-bucketed batches
    the dispatcher priced with one vectorized stacked pass;
    ``stacked_points`` counts the (backend, length) points those passes
    covered — points that would each have cost a separate simulation on the
    per-length path.
    """

    requests: int
    completed: int
    errors: int
    coalesced: int
    memo_hits: int
    simulations: int
    queue_depth: int
    peak_queue_depth: int
    wall_seconds: float
    busy_seconds: float
    queries_per_second: float
    backends: Tuple[BackendServiceStats, ...] = field(default_factory=tuple)
    timed_out: int = 0
    late_results: int = 0
    pool_rebuilds: int = 0
    stacked_batches: int = 0
    stacked_points: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of requests served without a fresh simulation."""
        if self.completed <= 0:
            return 0.0
        return (self.coalesced + self.memo_hits) / self.completed

    @property
    def coalescing_rate(self) -> float:
        if self.requests <= 0:
            return 0.0
        return self.coalesced / self.requests
