"""Async HTTP front door for the serving layer (stdlib-only).

Public surface:

* :class:`~repro.serving.http.server.LatencyFrontDoor` /
  :func:`~repro.serving.http.server.create_front_door` — the asyncio server,
* :func:`~repro.serving.http.server.serve_in_thread` /
  :class:`~repro.serving.http.server.FrontDoorHandle` — run the server on a
  background thread from synchronous code (tests, benchmarks, smoke),
* :class:`~repro.serving.http.client.FrontDoorClient` — minimal async
  HTTP/1.1 client speaking the wire schema,
* :mod:`~repro.serving.http.loadgen` — replay a
  :class:`~repro.cluster.trace.RequestTrace` through the socket path and
  grade responses with the trace's own SLO deadlines.

``python -m repro.serving.http`` starts a standalone server;
``python -m repro.serving.http.smoke`` runs the pinned end-to-end scenario.
"""

from .client import FrontDoorClient
from .loadgen import LoadReport, replay_trace_http, replay_trace_inprocess
from .server import (
    FrontDoorHandle,
    LatencyFrontDoor,
    create_front_door,
    serve_in_thread,
)

__all__ = [
    "FrontDoorClient",
    "FrontDoorHandle",
    "LatencyFrontDoor",
    "LoadReport",
    "create_front_door",
    "replay_trace_http",
    "replay_trace_inprocess",
    "serve_in_thread",
]
