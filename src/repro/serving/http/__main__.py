"""Standalone front-door server: ``python -m repro.serving.http``.

Prints ``listening <host> <port>`` once the socket is bound (the subprocess
tests and the smoke parse this line), serves until SIGTERM/SIGINT, then
drains — every in-flight ticket fulfills, clients get a claim grace window —
and prints ``drain <json report>`` before exiting 0.  A drain report with
``"unfulfilled": 0`` is the clean-shutdown contract.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys

from ...obs.tracing import Tracer
from ...ppm.config import PPMConfig
from .server import LatencyFrontDoor

_PPM_PRESETS = {
    "tiny": PPMConfig.tiny,
    "small": PPMConfig.small,
    "paper": PPMConfig.paper,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving.http",
        description="Async HTTP front door over a LatencyService.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0, help="0 picks a free port")
    parser.add_argument(
        "--ppm", choices=sorted(_PPM_PRESETS), default="tiny", help="PPM config preset"
    )
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--length-bucket-size", type=int, default=None)
    parser.add_argument("--max-pending-per-tenant", type=int, default=256)
    parser.add_argument("--max-pending-total", type=int, default=4096)
    parser.add_argument("--reap-after-seconds", type=float, default=300.0)
    parser.add_argument(
        "--reap-interval-seconds",
        type=float,
        default=0.0,
        help="0 disables the background reaper (POST /v1/reap still works)",
    )
    parser.add_argument("--drain-timeout-seconds", type=float, default=120.0)
    parser.add_argument("--claim-grace-seconds", type=float, default=2.0)
    parser.add_argument(
        "--trace",
        action="store_true",
        help="record per-request span trees, served at GET /v1/trace/<id>",
    )
    parser.add_argument(
        "--trace-max-traces",
        type=int,
        default=1024,
        help="bound on held traces before FIFO eviction (with --trace)",
    )
    return parser


async def _serve(args: argparse.Namespace) -> int:
    door = LatencyFrontDoor(
        host=args.host,
        port=args.port,
        max_pending_per_tenant=args.max_pending_per_tenant,
        max_pending_total=args.max_pending_total,
        reap_after_seconds=args.reap_after_seconds,
        reap_interval_seconds=args.reap_interval_seconds,
        drain_timeout_seconds=args.drain_timeout_seconds,
        claim_grace_seconds=args.claim_grace_seconds,
        ppm_config=_PPM_PRESETS[args.ppm](),
        workers=args.workers,
        length_bucket_size=args.length_bucket_size,
        tracer=Tracer(max_traces=args.trace_max_traces) if args.trace else None,
    )
    await door.start()
    print(f"listening {door.host} {door.port}", flush=True)

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, stop.set)
    await stop.wait()

    report = await door.shutdown(drain=True)
    print(f"drain {json.dumps(report, sort_keys=True)}", flush=True)
    return 0 if report.get("unfulfilled", 0) == 0 else 1


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return asyncio.run(_serve(args))


if __name__ == "__main__":
    sys.exit(main())
