"""Minimal async HTTP/1.1 client for the front door (stdlib-only).

One :class:`FrontDoorClient` holds one keep-alive connection and speaks the
wire schema (:mod:`repro.serving.wire`): requests go out as
:class:`~repro.serving.wire.WireRequest` JSON, results come back as
:class:`~repro.serving.wire.WireResponse`.  Error statuses surface as
:class:`FrontDoorError` carrying the parsed
:class:`~repro.serving.wire.ErrorBody` (code, message, retry-after), so a
caller can distinguish backpressure (429) from a reaped ticket (410) without
string-matching.

``stream_results`` opens a second, dedicated connection (the server closes
streaming connections when done) and yields responses in completion order
from the chunked NDJSON body.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, AsyncIterator, Dict, List, Optional, Sequence, Tuple, Union

from ..wire import ErrorBody, WireRequest, WireResponse


class FrontDoorError(RuntimeError):
    """Non-2xx response from the front door, with its parsed error body."""

    def __init__(self, status: int, error: ErrorBody) -> None:
        super().__init__(f"HTTP {status}: {error.code}: {error.message}")
        self.status = status
        self.error = error

    @property
    def code(self) -> str:
        return self.error.code

    @property
    def retry_after_seconds(self) -> Optional[float]:
        return self.error.retry_after_seconds


class FrontDoorClient:
    """One keep-alive connection to a :class:`~repro.serving.http.server.LatencyFrontDoor`."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = int(port)
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def __aenter__(self) -> "FrontDoorClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc: Any) -> None:
        await self.close()

    async def connect(self) -> None:
        if self._writer is None:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except Exception:
                pass
            self._reader = None
            self._writer = None

    # ------------------------------------------------------------- raw request
    async def request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Dict[str, str], bytes]:
        """One request/response on the keep-alive connection (reconnects once)."""
        await self.connect()
        try:
            return await self._roundtrip(method, path, body, headers)
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            await self.close()
            await self.connect()
            return await self._roundtrip(method, path, body, headers)

    async def _roundtrip(
        self,
        method: str,
        path: str,
        body: Optional[bytes],
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Dict[str, str], bytes]:
        assert self._reader is not None and self._writer is not None
        payload = body or b""
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
        )
        for name, value in (headers or {}).items():
            head += f"{name}: {value}\r\n"
        head += "\r\n"
        self._writer.write(head.encode("latin-1") + payload)
        await self._writer.drain()
        return await _read_response(self._reader)

    async def _json(
        self, method: str, path: str, body: Optional[bytes] = None
    ) -> Tuple[int, Any]:
        status, _headers, raw = await self.request(method, path, body)
        payload = json.loads(raw.decode("utf-8")) if raw else None
        if status >= 400:
            raise FrontDoorError(status, ErrorBody.from_dict(payload))
        return status, payload

    # -------------------------------------------------------------- wire calls
    async def submit(self, request: WireRequest) -> int:
        """POST /v1/submit -> ticket id."""
        _status, payload = await self._json(
            "POST", "/v1/submit", request.to_json().encode("utf-8")
        )
        return int(payload["ticket_id"])

    async def submit_batch(self, requests: Sequence[WireRequest]) -> List[int]:
        """POST /v1/batch -> ticket ids (all-or-nothing admission)."""
        body = json.dumps(
            {"requests": [request.to_dict() for request in requests]}
        ).encode("utf-8")
        _status, payload = await self._json("POST", "/v1/batch", body)
        return [int(ticket_id) for ticket_id in payload["ticket_ids"]]

    async def query(
        self, request: WireRequest, timeout_seconds: Optional[float] = None
    ) -> WireResponse:
        """POST /v1/query — submit and wait inline for the response."""
        path = "/v1/query"
        if timeout_seconds is not None:
            path += f"?timeout_seconds={timeout_seconds}"
        status, payload = await self._json(
            "POST", path, request.to_json().encode("utf-8")
        )
        if status == 202:
            raise TimeoutError(
                f"query still pending (ticket {payload.get('ticket_id')})"
            )
        return WireResponse.from_dict(payload)

    async def result(
        self, ticket_id: int, wait_seconds: Optional[float] = None
    ) -> Optional[WireResponse]:
        """GET /v1/result/<id>; ``None`` while pending, raises on 404/410."""
        path = f"/v1/result/{ticket_id}"
        if wait_seconds is not None:
            path += f"?wait_seconds={wait_seconds}"
        status, payload = await self._json("GET", path)
        if status == 202:
            return None
        return WireResponse.from_dict(payload)

    async def stream_results(
        self, ticket_ids: Sequence[int]
    ) -> AsyncIterator[Union[WireResponse, ErrorBody]]:
        """GET /v1/stream — yield results in completion order (dedicated connection)."""
        if not ticket_ids:
            return
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            path = "/v1/stream?tickets=" + ",".join(str(t) for t in ticket_ids)
            head = (
                f"GET {path} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n\r\n"
            )
            writer.write(head.encode("latin-1"))
            await writer.drain()
            status, headers, first_body = await _read_response_head(reader)
            if status >= 400:
                body = await _read_plain_body(reader, headers, first_body)
                payload = json.loads(body.decode("utf-8")) if body else {}
                raise FrontDoorError(status, ErrorBody.from_dict(payload))
            async for line in _iter_chunked_lines(reader):
                payload = json.loads(line)
                if "ticket_id" in payload:
                    yield WireResponse.from_dict(payload)
                else:
                    yield ErrorBody.from_dict(payload)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass

    async def metrics(self) -> Dict[str, Any]:
        _status, payload = await self._json("GET", "/metrics")
        return payload

    async def metrics_prometheus(self) -> str:
        """GET /metrics?format=prom — raw Prometheus text exposition."""
        status, _headers, raw = await self.request("GET", "/metrics?format=prom")
        if status != 200:
            raise FrontDoorError(status, ErrorBody.from_json(raw.decode("utf-8")))
        return raw.decode("utf-8")

    async def trace(self, trace_id: Union[str, int]) -> Dict[str, Any]:
        """GET /v1/trace/<id> — the recorded span tree (raises 404 via FrontDoorError)."""
        _status, payload = await self._json("GET", f"/v1/trace/{trace_id}")
        return payload

    async def healthz(self) -> Dict[str, Any]:
        status, _headers, raw = await self.request("GET", "/healthz")
        payload = json.loads(raw.decode("utf-8"))
        payload["_status"] = status
        return payload

    async def request_log_json(self) -> str:
        status, _headers, raw = await self.request("GET", "/v1/log")
        if status != 200:
            raise FrontDoorError(status, ErrorBody.from_json(raw.decode("utf-8")))
        return raw.decode("utf-8")

    async def reap(self) -> List[int]:
        _status, payload = await self._json("POST", "/v1/reap")
        return [int(ticket_id) for ticket_id in payload["reaped"]]


# ----------------------------------------------------------------- HTTP parse
async def _read_response_head(
    reader: asyncio.StreamReader,
) -> Tuple[int, Dict[str, str], bytes]:
    head = await reader.readuntil(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ", 2)[1])
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, b""


async def _read_plain_body(
    reader: asyncio.StreamReader, headers: Dict[str, str], prefix: bytes
) -> bytes:
    length = int(headers.get("content-length", "0") or "0")
    if length <= len(prefix):
        return prefix[:length]
    return prefix + await reader.readexactly(length - len(prefix))


async def _read_response(
    reader: asyncio.StreamReader,
) -> Tuple[int, Dict[str, str], bytes]:
    status, headers, prefix = await _read_response_head(reader)
    body = await _read_plain_body(reader, headers, prefix)
    return status, headers, body


async def _iter_chunked_lines(reader: asyncio.StreamReader) -> AsyncIterator[str]:
    """Decode a chunked body of newline-terminated JSON lines."""
    buffer = b""
    while True:
        size_line = await reader.readuntil(b"\r\n")
        size = int(size_line.strip(), 16)
        if size == 0:
            try:
                await reader.readuntil(b"\r\n")  # trailing CRLF after last chunk
            except asyncio.IncompleteReadError:
                pass
            break
        chunk = await reader.readexactly(size)
        await reader.readexactly(2)  # chunk's trailing CRLF
        buffer += chunk
        while b"\n" in buffer:
            line, buffer = buffer.split(b"\n", 1)
            if line:
                yield line.decode("utf-8")
    if buffer.strip():
        yield buffer.decode("utf-8")
