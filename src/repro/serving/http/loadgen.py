"""Trace-driven load harness for the HTTP front door.

The offered traffic is a :class:`~repro.cluster.trace.RequestTrace` — the
same seeded generator the cluster simulator replays — and responses are
graded by the trace's own SLO deadlines, so "SLO attainment through the
socket" is directly comparable with the simulator's and the in-process
service's numbers for the identical trace.

Two replay paths share one grading function:

* :func:`replay_trace_http` — submit every request over real sockets
  (``connections`` keep-alive clients, round-robin), honor 429 backpressure
  by sleeping out ``Retry-After`` and retrying, then collect all responses
  via the chunked ``/v1/stream`` endpoint in completion order,
* :func:`replay_trace_inprocess` — the control arm: same trace, same
  service, plain Python calls, no socket.

``time_scale`` scales trace inter-arrival gaps (1.0 = real time, 0.0 =
submit as fast as admission allows — the throughput-measuring mode).

A request *attains* its SLO when it succeeded and its measured
``service_seconds`` (submit-to-fulfillment) fits inside the trace's
relative deadline (absolute deadline minus arrival).  Deadline-free
requests count as attained when they succeed.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ...cluster.trace import RequestTrace
from ..api import LatencyRequest, LatencyResponse
from ..service import LatencyService
from ..stats import percentile
from ..wire import WireRequest, WireResponse
from .client import FrontDoorClient, FrontDoorError


@dataclass(frozen=True)
class LoadReport:
    """Graded outcome of one trace replay (HTTP or in-process)."""

    mode: str
    trace_name: str
    offered: int
    completed: int
    errors: int
    slo_attained: int
    slo_missed: int
    retried_429: int
    wall_seconds: float
    p50_service_seconds: float
    p99_service_seconds: float
    per_priority_attainment: Dict[int, float] = field(default_factory=dict)

    @property
    def slo_attainment(self) -> float:
        graded = self.slo_attained + self.slo_missed
        return self.slo_attained / graded if graded else 0.0

    @property
    def queries_per_second(self) -> float:
        return self.completed / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def summary(self) -> str:
        return (
            f"{self.mode}: {self.completed}/{self.offered} completed, "
            f"{self.errors} errors, SLO {self.slo_attainment:.3f}, "
            f"{self.queries_per_second:.1f} q/s, "
            f"p50 {self.p50_service_seconds * 1e3:.2f} ms, "
            f"p99 {self.p99_service_seconds * 1e3:.2f} ms"
        )


def _relative_deadline(request) -> Optional[float]:
    """Trace absolute deadline -> per-request relative deadline (submit-clock)."""
    if request.deadline_seconds is None:
        return None
    return max(1e-9, float(request.deadline_seconds) - float(request.arrival_seconds))


def _grade(
    trace: RequestTrace,
    outcomes: Dict[int, Tuple[bool, float, int]],
    mode: str,
    retried_429: int,
    wall_seconds: float,
) -> LoadReport:
    """``outcomes`` maps trace request id -> (ok, service_seconds, priority)."""
    completed = errors = attained = missed = 0
    latencies: List[float] = []
    by_priority: Dict[int, List[int]] = {}
    deadlines = {r.id: _relative_deadline(r) for r in trace}
    for request in trace:
        outcome = outcomes.get(request.id)
        if outcome is None:
            continue
        ok, service_seconds, priority = outcome
        if not ok:
            errors += 1
            missed += 1
            by_priority.setdefault(priority, []).append(0)
            continue
        completed += 1
        latencies.append(service_seconds)
        deadline = deadlines[request.id]
        hit = deadline is None or service_seconds <= deadline
        attained += int(hit)
        missed += int(not hit)
        by_priority.setdefault(priority, []).append(int(hit))
    per_priority = {
        priority: sum(hits) / len(hits)
        for priority, hits in sorted(by_priority.items())
        if hits
    }
    return LoadReport(
        mode=mode,
        trace_name=trace.name,
        offered=len(trace),
        completed=completed,
        errors=errors,
        slo_attained=attained,
        slo_missed=missed,
        retried_429=retried_429,
        wall_seconds=wall_seconds,
        p50_service_seconds=percentile(latencies, 50.0) if latencies else 0.0,
        p99_service_seconds=percentile(latencies, 99.0) if latencies else 0.0,
        per_priority_attainment=per_priority,
    )


def _wire_request(request, backend: str, tenant: str) -> WireRequest:
    return WireRequest(
        backend=backend,
        sequence_length=request.sequence_length,
        priority=request.priority,
        deadline_seconds=_relative_deadline(request),
        tenant=tenant,
    )


# ------------------------------------------------------------------ HTTP path
async def replay_trace_async(
    trace: RequestTrace,
    host: str,
    port: int,
    backend: str = "lightnobel",
    tenant: str = "loadgen",
    connections: int = 4,
    time_scale: float = 0.0,
    max_submit_retries: int = 200,
) -> LoadReport:
    """Replay ``trace`` through the socket path; returns the graded report."""
    clients = [FrontDoorClient(host, port) for _ in range(max(1, connections))]
    for client in clients:
        await client.connect()
    retried_429 = 0
    ticket_to_trace: Dict[int, Tuple[int, int]] = {}  # ticket -> (trace id, priority)
    started = time.perf_counter()
    try:
        for index, request in enumerate(trace):
            if time_scale > 0:
                target = started + request.arrival_seconds * time_scale
                delay = target - time.perf_counter()
                if delay > 0:
                    await asyncio.sleep(delay)
            client = clients[index % len(clients)]
            wire_request = _wire_request(request, backend, tenant)
            for _attempt in range(max_submit_retries):
                try:
                    ticket_id = await client.submit(wire_request)
                    break
                except FrontDoorError as exc:
                    if exc.status != 429:
                        raise
                    retried_429 += 1
                    await asyncio.sleep(exc.retry_after_seconds or 0.01)
            else:
                raise RuntimeError(
                    f"request {request.id} still rejected after "
                    f"{max_submit_retries} backpressure retries"
                )
            ticket_to_trace[ticket_id] = (request.id, request.priority)

        outcomes: Dict[int, Tuple[bool, float, int]] = {}
        stream_client = clients[0]
        async for item in stream_client.stream_results(sorted(ticket_to_trace)):
            if isinstance(item, WireResponse):
                trace_id, priority = ticket_to_trace[item.ticket_id]
                outcomes[trace_id] = (item.ok, item.service_seconds, priority)
        wall = time.perf_counter() - started
    finally:
        for client in clients:
            await client.close()
    return _grade(trace, outcomes, "http", retried_429, wall)


def replay_trace_http(trace: RequestTrace, host: str, port: int, **kwargs) -> LoadReport:
    """Synchronous wrapper around :func:`replay_trace_async`."""
    return asyncio.run(replay_trace_async(trace, host, port, **kwargs))


# ------------------------------------------------------------ in-process path
def replay_trace_inprocess(
    trace: RequestTrace,
    service: LatencyService,
    backend: str = "lightnobel",
    time_scale: float = 0.0,
    result_timeout_seconds: float = 300.0,
) -> LoadReport:
    """The control arm: same trace, direct ``LatencyService`` calls, no socket."""
    started = time.perf_counter()
    tickets: List[Tuple[int, int, int]] = []  # (ticket, trace id, priority)
    for request in trace:
        if time_scale > 0:
            target = started + request.arrival_seconds * time_scale
            delay = target - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
        ticket_id = service.submit(
            LatencyRequest(
                backend=backend,
                sequence_length=request.sequence_length,
                priority=request.priority,
                deadline_seconds=_relative_deadline(request),
            )
        )
        tickets.append((ticket_id, request.id, request.priority))
    outcomes: Dict[int, Tuple[bool, float, int]] = {}
    for ticket_id, trace_id, priority in tickets:
        response: LatencyResponse = service.result(
            ticket_id, timeout=result_timeout_seconds
        )
        outcomes[trace_id] = (response.ok, response.service_seconds, priority)
    wall = time.perf_counter() - started
    return _grade(trace, outcomes, "inprocess", 0, wall)
