"""Async HTTP front door over :class:`~repro.serving.service.LatencyService`.

Stdlib only — ``asyncio.start_server`` plus hand-rolled HTTP/1.1 framing, no
external dependencies — so the serving stack's throughput and SLO numbers can
be measured across a real socket path.  One :class:`LatencyFrontDoor` wraps
one service:

* **validation** — every request body is checked against the versioned JSON
  schema in :mod:`repro.serving.wire`; malformed bodies get a 400 with a
  machine-readable :class:`~repro.serving.wire.ErrorBody` code,
* **backpressure** — bounded per-tenant pending queues (plus a global
  bound): a tenant over its bound gets **429** with a ``Retry-After`` header
  instead of unbounded queue growth,
* **priority classes and deadlines** — ``priority`` / ``deadline_seconds``
  on the wire map straight onto the dispatcher's
  :func:`~repro.serving.api.dispatch_order_key` ordering, so EDF semantics
  hold through the socket,
* **ticket lifecycle on the wire** — submit returns a ticket (202); results
  are claimed by polling (200 consumes, 202 pending, 404 unknown/consumed,
  **410 Gone** for reaped tickets) or streamed (``/v1/stream``, chunked
  NDJSON in completion order),
* **observability** — ``/metrics`` exposes the full
  :class:`~repro.serving.stats.ServiceStats` snapshot plus the HTTP layer's
  own counters (``?format=prom`` renders Prometheus text exposition
  instead); ``/healthz`` for probes; ``/v1/log`` exports the structured
  request log, ready for
  :meth:`repro.cluster.trace.RequestTrace.from_serving_log`; when the
  service carries a :class:`~repro.obs.tracing.Tracer`, requests are traced
  under their body ``trace_id`` (or the ``X-Trace-Id`` header — body wins)
  and ``GET /v1/trace/<id>`` returns the recorded span tree,
* **clean shutdown** — :meth:`LatencyFrontDoor.shutdown` stops admitting
  (503 ``"draining"``), waits for every in-flight ticket to fulfill, gives
  clients a claim grace window, and reports exactly what happened
  (``unfulfilled`` is the dropped-ticket count; 0 on a clean drain).

The front door never polls the service: it registers a
:meth:`~repro.serving.service.LatencyService.add_result_listener` callback
that wakes the event loop (``call_soon_threadsafe``) as the dispatcher
fulfills batches.

Endpoints (all bodies JSON, see :mod:`repro.serving.wire`):

==========================  ====================================================
``POST /v1/submit``         WireRequest -> 202 ``{"ticket_id": n}``
``POST /v1/batch``          ``{"requests": [...]}`` -> 202 ``{"ticket_ids": []}``
``POST /v1/query``          WireRequest -> 200 WireResponse (synchronous;
                            ``?timeout_seconds=`` caps the wait, 202 on timeout)
``GET /v1/result/<id>``     200 WireResponse (consumes) | 202 pending | 404 | 410
                            (``?wait_seconds=`` long-polls)
``GET /v1/stream``          ``?tickets=1,2,3`` -> chunked NDJSON, completion order
``GET /v1/log``             structured request log (wire format)
``GET /v1/trace/<id>``      recorded span tree for one trace | 404
``POST /v1/reap``           reap fulfilled-but-unclaimed tickets -> 410 afterwards
``GET /metrics``            service + HTTP counters (``?format=prom`` for
                            Prometheus text exposition)
``GET /healthz``            200 ok | 503 draining (+ version, schema_version)
==========================  ====================================================
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ... import __version__
from ...obs import prom
from ...obs.metrics import Gauge, MetricsRegistry
from ..service import LatencyService
from ..wire import (
    SCHEMA_VERSION,
    ErrorBody,
    WireFormatError,
    WireRequest,
    WireResponse,
    backend_stats_to_dict,
    capacity_report_to_dict,
    request_log_to_json,
)

#: Largest accepted request body; bigger gets a 413.
MAX_BODY_BYTES = 1 << 20

#: Cap on ``wait_seconds`` / ``timeout_seconds`` long-poll parameters.
MAX_WAIT_SECONDS = 120.0

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    410: "Gone",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass
class _HttpRequest:
    method: str
    path: str
    query: Dict[str, List[str]]
    headers: Dict[str, str]
    body: bytes

    def param(self, name: str) -> Optional[str]:
        values = self.query.get(name)
        return values[0] if values else None


@dataclass
class _Response:
    status: int
    body: bytes
    content_type: str = "application/json"
    headers: Tuple[Tuple[str, str], ...] = ()


@dataclass
class _HttpTicket:
    """HTTP-side bookkeeping for one submitted service ticket."""

    id: int
    tenant: str
    event: asyncio.Event = field(default_factory=asyncio.Event)
    submitted_at: float = 0.0
    fulfilled_at: Optional[float] = None


def _json_bytes(payload: Any) -> bytes:
    return json.dumps(payload, sort_keys=True).encode("utf-8")


class LatencyFrontDoor:
    """One HTTP listener over one :class:`LatencyService`.

    ``service=None`` builds a service from the remaining keyword arguments
    (``ppm_config``, ``workers``, ``length_bucket_size``, …) and owns it —
    :meth:`shutdown` closes it.  A caller-supplied service is shared, not
    owned: tests stage priority batches on an ``autostart=False`` service
    and start its dispatcher when they choose; :meth:`shutdown` leaves it
    running.

    ``max_pending_per_tenant`` / ``max_pending_total`` bound *pending*
    (submitted, not yet fulfilled) tickets — the backpressure quota freed as
    the dispatcher fulfills work, not as clients claim it.
    ``reap_after_seconds`` is how long a fulfilled result may sit unclaimed
    before a reap pass (the background loop when ``reap_interval_seconds >
    0``, or an explicit ``POST /v1/reap``) abandons and reaps it via the
    service's own :meth:`~repro.serving.service.LatencyService.abandon` /
    :meth:`~repro.serving.service.LatencyService.reap_abandoned` machinery.
    """

    def __init__(
        self,
        service: Optional[LatencyService] = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_pending_per_tenant: int = 256,
        max_pending_total: int = 4096,
        retry_after_seconds: float = 0.05,
        reap_after_seconds: float = 300.0,
        reap_interval_seconds: float = 0.0,
        drain_timeout_seconds: float = 120.0,
        claim_grace_seconds: float = 2.0,
        **service_kwargs: Any,
    ) -> None:
        if service is not None and service_kwargs:
            raise ValueError(
                "service and service-construction kwargs are mutually exclusive"
            )
        self._owns_service = service is None
        self.service = service if service is not None else LatencyService(**service_kwargs)
        self.host = host
        self._requested_port = int(port)
        self.port: Optional[int] = None
        self.max_pending_per_tenant = int(max_pending_per_tenant)
        self.max_pending_total = int(max_pending_total)
        self.retry_after_seconds = float(retry_after_seconds)
        self.reap_after_seconds = float(reap_after_seconds)
        self.reap_interval_seconds = float(reap_interval_seconds)
        self.drain_timeout_seconds = float(drain_timeout_seconds)
        self.claim_grace_seconds = float(claim_grace_seconds)

        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._reaper_task: Optional[asyncio.Task] = None
        self._tickets: Dict[int, _HttpTicket] = {}
        #: Terminal tickets: id -> "consumed" | "reaped" (404 vs 410).
        self._closed: Dict[int, str] = {}
        self._tenant_pending: Dict[str, int] = {}
        self._draining = False
        self._drain_report: Optional[Dict[str, Any]] = None
        self._consumed_count = 0
        self._reaped_count = 0
        self._started_at = time.perf_counter()

    # ---------------------------------------------------------------- lifecycle
    async def start(self) -> "LatencyFrontDoor":
        """Bind the listener and register the fulfillment listener."""
        self._loop = asyncio.get_running_loop()
        self.service.add_result_listener(self._listener)
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port, limit=MAX_BODY_BYTES
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.reap_interval_seconds > 0:
            self._reaper_task = self._loop.create_task(self._reaper_loop())
        return self

    async def shutdown(self, drain: bool = True) -> Dict[str, Any]:
        """Stop admitting, drain in-flight tickets, close down; returns the drain report.

        The report's contract: ``unfulfilled`` counts tickets that never got
        a response (0 on a clean drain — the "zero dropped tickets"
        invariant the smoke pins), ``unclaimed`` counts fulfilled responses
        no client collected within the claim grace window.
        """
        if self._drain_report is not None:
            return self._drain_report
        self._draining = True
        pending = [t for t in self._tickets.values() if not t.event.is_set()]
        report: Dict[str, Any] = {"pending_at_shutdown": len(pending)}
        if drain and pending:
            try:
                await asyncio.wait_for(
                    asyncio.gather(*(t.event.wait() for t in pending)),
                    timeout=self.drain_timeout_seconds,
                )
            except asyncio.TimeoutError:
                pass
        if drain:
            # Claim grace: clients holding tickets get a window to collect
            # fulfilled results before the listener goes away.
            deadline = self._loop.time() + self.claim_grace_seconds
            while self._loop.time() < deadline and self._tickets:
                await asyncio.sleep(0.02)
        if self._reaper_task is not None:
            self._reaper_task.cancel()
            self._reaper_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._owns_service:
            # close() joins the dispatcher thread; keep the loop responsive.
            await self._loop.run_in_executor(None, self.service.close)
        report["unfulfilled"] = sum(
            1 for t in self._tickets.values() if not t.event.is_set()
        )
        report["unclaimed"] = sum(1 for t in self._tickets.values() if t.event.is_set())
        report["consumed"] = self._consumed_count
        report["reaped"] = self._reaped_count
        self._drain_report = report
        return report

    @property
    def draining(self) -> bool:
        return self._draining

    # ------------------------------------------------------------- fulfillment
    def _listener(self, ticket_ids: Tuple[int, ...]) -> None:
        # Dispatcher thread -> event loop.  After loop shutdown the
        # call_soon_threadsafe raises; the service swallows listener errors,
        # and a closed front door has nothing left to wake.
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._on_fulfilled, ticket_ids)

    def _on_fulfilled(self, ticket_ids: Tuple[int, ...]) -> None:
        now = self._loop.time()
        for ticket_id in ticket_ids:
            ticket = self._tickets.get(ticket_id)
            if ticket is None or ticket.event.is_set():
                continue
            ticket.fulfilled_at = now
            ticket.event.set()
            remaining = self._tenant_pending.get(ticket.tenant, 1) - 1
            if remaining <= 0:
                self._tenant_pending.pop(ticket.tenant, None)
            else:
                self._tenant_pending[ticket.tenant] = remaining

    def _pending_total(self) -> int:
        return sum(self._tenant_pending.values())

    # --------------------------------------------------------------- admission
    def _admit(self, wire_request: WireRequest, count: int = 1) -> Optional[_Response]:
        """The 429/503 gate; ``None`` means admitted."""
        if self._draining:
            return self._error(503, "draining", "server is draining; not accepting work")
        tenant = wire_request.tenant
        tenant_pending = self._tenant_pending.get(tenant, 0)
        if (
            tenant_pending + count > self.max_pending_per_tenant
            or self._pending_total() + count > self.max_pending_total
        ):
            retry_after = self.retry_after_seconds
            return self._error(
                429,
                "backpressure",
                f"tenant {tenant!r} has {tenant_pending} pending requests "
                f"(bound {self.max_pending_per_tenant}); retry later",
                retry_after_seconds=retry_after,
                headers=(("Retry-After", f"{retry_after:.3f}"),),
            )
        return None

    def _submit_one(self, wire_request: WireRequest) -> int:
        """Admitted request -> service ticket + HTTP bookkeeping.

        No ``await`` between ``service.submit`` and the ticket registration:
        the fulfillment callback runs on this same loop, so it cannot observe
        the gap.
        """
        ticket_id = self.service.submit(wire_request.to_latency())
        self._tickets[ticket_id] = _HttpTicket(
            id=ticket_id, tenant=wire_request.tenant, submitted_at=self._loop.time()
        )
        self._tenant_pending[wire_request.tenant] = (
            self._tenant_pending.get(wire_request.tenant, 0) + 1
        )
        return ticket_id

    # -------------------------------------------------------------- consumption
    def _consume(self, ticket_id: int) -> Optional[WireResponse]:
        """Claim a fulfilled ticket (service-side consume included)."""
        ticket = self._tickets.pop(ticket_id, None)
        if ticket is None:
            return None
        try:
            response = self.service.poll(ticket_id)
        except KeyError:
            response = None
        self._closed[ticket_id] = "consumed"
        if response is None:
            return None
        self._consumed_count += 1
        return WireResponse.from_latency(response, tenant=ticket.tenant)

    def _reap_pass(self) -> List[int]:
        """Abandon + reap fulfilled tickets unclaimed past ``reap_after_seconds``."""
        now = self._loop.time()
        overdue = [
            ticket_id
            for ticket_id, ticket in self._tickets.items()
            if ticket.fulfilled_at is not None
            and now - ticket.fulfilled_at >= self.reap_after_seconds
        ]
        for ticket_id in overdue:
            self.service.abandon(ticket_id)
        reaped: List[int] = []
        for response in self.service.reap_abandoned():
            ticket_id = response.request_id
            if ticket_id in self._tickets:
                self._tickets.pop(ticket_id)
                self._closed[ticket_id] = "reaped"
                self._reaped_count += 1
                reaped.append(ticket_id)
        return reaped

    async def _reaper_loop(self) -> None:
        try:
            while True:
                await asyncio.sleep(self.reap_interval_seconds)
                self._reap_pass()
        except asyncio.CancelledError:
            pass

    # ------------------------------------------------------------ HTTP plumbing
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                if request.method == "GET" and request.path == "/v1/stream":
                    await self._stream_results(request, writer)
                    break  # streams always close the connection
                response = await self._dispatch(request)
                keep_alive = request.headers.get("connection", "").lower() != "close"
                self._write_response(writer, response, keep_alive=keep_alive)
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        except Exception:
            # A handler bug must not kill the server; best-effort 500.
            try:
                self._write_response(
                    writer,
                    self._error(500, "internal_error", "internal server error"),
                    keep_alive=False,
                )
                await writer.drain()
            except Exception:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _read_request(self, reader: asyncio.StreamReader) -> Optional[_HttpRequest]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, ConnectionResetError):
            return None
        except asyncio.LimitOverrunError:
            return None
        lines = head.decode("latin-1").split("\r\n")
        try:
            method, target, _version = lines[0].split(" ", 2)
        except ValueError:
            return None
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            return _HttpRequest(method, "__too_large__", {}, headers, b"")
        if length:
            body = await reader.readexactly(length)
        parts = urlsplit(target)
        return _HttpRequest(
            method=method.upper(),
            path=parts.path,
            query=parse_qs(parts.query),
            headers=headers,
            body=body,
        )

    def _write_response(
        self, writer: asyncio.StreamWriter, response: _Response, keep_alive: bool
    ) -> None:
        reason = _REASONS.get(response.status, "Unknown")
        head = [
            f"HTTP/1.1 {response.status} {reason}",
            f"Content-Type: {response.content_type}",
            f"Content-Length: {len(response.body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        head.extend(f"{name}: {value}" for name, value in response.headers)
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + response.body)

    def _error(
        self,
        status: int,
        code: str,
        message: str,
        retry_after_seconds: Optional[float] = None,
        headers: Tuple[Tuple[str, str], ...] = (),
    ) -> _Response:
        body = ErrorBody(
            code=code, message=message, retry_after_seconds=retry_after_seconds
        )
        return _Response(status=status, body=body.to_json().encode("utf-8"), headers=headers)

    # ---------------------------------------------------------------- dispatch
    async def _dispatch(self, request: _HttpRequest) -> _Response:
        if request.path == "__too_large__":
            return self._error(413, "payload_too_large", "request body too large")
        try:
            if request.method == "POST" and request.path == "/v1/submit":
                return self._handle_submit(request)
            if request.method == "POST" and request.path == "/v1/batch":
                return self._handle_batch(request)
            if request.method == "POST" and request.path == "/v1/query":
                return await self._handle_query(request)
            if request.method == "GET" and request.path.startswith("/v1/result/"):
                return await self._handle_result(request)
            if request.method == "POST" and request.path == "/v1/reap":
                return self._handle_reap()
            if request.method == "GET" and request.path == "/v1/log":
                return _Response(
                    200, request_log_to_json(self.service.request_log()).encode("utf-8")
                )
            if request.method == "GET" and request.path.startswith("/v1/trace/"):
                return self._handle_trace(request)
            if request.method == "GET" and request.path == "/metrics":
                return self._handle_metrics(request)
            if request.method == "GET" and request.path == "/healthz":
                return self._handle_healthz()
        except WireFormatError as exc:
            return self._error(400, exc.code, exc.message)
        except (ValueError, RuntimeError) as exc:
            return self._error(400, "invalid_request", str(exc))
        return self._error(404, "not_found", f"no route {request.method} {request.path}")

    @staticmethod
    def _with_trace(wire_request: WireRequest, request: _HttpRequest) -> WireRequest:
        """Fold the ``X-Trace-Id`` header into the request; the body wins."""
        if wire_request.trace_id is not None:
            return wire_request
        header = request.headers.get("x-trace-id", "").strip()
        if not header:
            return wire_request
        return replace(wire_request, trace_id=header)

    @staticmethod
    def _trace_headers(wire_request: WireRequest) -> Tuple[Tuple[str, str], ...]:
        """Echo the effective trace id back so clients can correlate."""
        if wire_request.trace_id is None:
            return ()
        return (("X-Trace-Id", wire_request.trace_id),)

    def _handle_submit(self, request: _HttpRequest) -> _Response:
        wire_request = self._with_trace(WireRequest.from_json(request.body), request)
        rejected = self._admit(wire_request)
        if rejected is not None:
            return rejected
        ticket_id = self._submit_one(wire_request)
        return _Response(
            202,
            _json_bytes(
                {
                    "schema_version": SCHEMA_VERSION,
                    "ticket_id": ticket_id,
                    "tenant": wire_request.tenant,
                }
            ),
            headers=self._trace_headers(wire_request),
        )

    def _handle_batch(self, request: _HttpRequest) -> _Response:
        payload = json.loads(request.body.decode("utf-8")) if request.body else None
        if not isinstance(payload, dict) or not isinstance(payload.get("requests"), list):
            raise WireFormatError(
                "invalid_field", 'batch body must be {"requests": [WireRequest, ...]}'
            )
        wire_requests = [
            self._with_trace(WireRequest.from_dict(item), request)
            for item in payload["requests"]
        ]
        if not wire_requests:
            raise WireFormatError("invalid_field", "batch must contain at least one request")
        # All-or-nothing admission per tenant: a half-admitted batch would
        # leave the client guessing which tickets exist.
        counts: Dict[str, int] = {}
        for wire_request in wire_requests:
            counts[wire_request.tenant] = counts.get(wire_request.tenant, 0) + 1
        for wire_request in wire_requests:
            rejected = self._admit(wire_request, count=counts[wire_request.tenant])
            if rejected is not None:
                return rejected
        ticket_ids = [self._submit_one(wire_request) for wire_request in wire_requests]
        return _Response(
            202,
            _json_bytes({"schema_version": SCHEMA_VERSION, "ticket_ids": ticket_ids}),
        )

    async def _handle_query(self, request: _HttpRequest) -> _Response:
        wire_request = self._with_trace(WireRequest.from_json(request.body), request)
        rejected = self._admit(wire_request)
        if rejected is not None:
            return rejected
        timeout = self._wait_param(request, "timeout_seconds", default=MAX_WAIT_SECONDS)
        ticket_id = self._submit_one(wire_request)
        ticket = self._tickets[ticket_id]
        try:
            await asyncio.wait_for(ticket.event.wait(), timeout)
        except asyncio.TimeoutError:
            return _Response(
                202,
                _json_bytes(
                    {
                        "schema_version": SCHEMA_VERSION,
                        "status": "pending",
                        "ticket_id": ticket_id,
                    }
                ),
                headers=(("Retry-After", f"{self.retry_after_seconds:.3f}"),),
            )
        response = self._consume(ticket_id)
        if response is None:
            return self._error(404, "already_consumed", f"ticket {ticket_id} already claimed")
        return _Response(
            200,
            response.to_json().encode("utf-8"),
            headers=self._trace_headers(wire_request),
        )

    async def _handle_result(self, request: _HttpRequest) -> _Response:
        try:
            ticket_id = int(request.path.rsplit("/", 1)[1])
        except ValueError:
            return self._error(400, "invalid_field", "ticket id must be an integer")
        closed = self._closed.get(ticket_id)
        if closed == "reaped":
            return self._error(
                410, "reaped", f"ticket {ticket_id} was reaped (fulfilled but unclaimed)"
            )
        if closed == "consumed":
            return self._error(404, "already_consumed", f"ticket {ticket_id} already claimed")
        ticket = self._tickets.get(ticket_id)
        if ticket is None:
            return self._error(404, "unknown_ticket", f"no such ticket {ticket_id}")
        wait = self._wait_param(request, "wait_seconds", default=0.0)
        if not ticket.event.is_set() and wait > 0:
            try:
                await asyncio.wait_for(ticket.event.wait(), wait)
            except asyncio.TimeoutError:
                pass
        if not ticket.event.is_set():
            return _Response(
                202,
                _json_bytes(
                    {
                        "schema_version": SCHEMA_VERSION,
                        "status": "pending",
                        "ticket_id": ticket_id,
                    }
                ),
                headers=(("Retry-After", f"{self.retry_after_seconds:.3f}"),),
            )
        response = self._consume(ticket_id)
        if response is None:
            return self._error(404, "already_consumed", f"ticket {ticket_id} already claimed")
        return _Response(200, response.to_json().encode("utf-8"))

    def _handle_reap(self) -> _Response:
        reaped = self._reap_pass()
        return _Response(
            200, _json_bytes({"schema_version": SCHEMA_VERSION, "reaped": reaped})
        )

    def _handle_trace(self, request: _HttpRequest) -> _Response:
        raw = request.path.rsplit("/", 1)[1]
        tracer = getattr(self.service, "tracer", None)
        if tracer is None:
            return self._error(
                404, "tracing_disabled", "service has no tracer attached"
            )
        key = tracer.find(raw)
        if key is None:
            return self._error(404, "unknown_trace", f"no trace {raw!r}")
        payload = tracer.to_dict(key)
        payload["schema_version"] = SCHEMA_VERSION
        return _Response(200, _json_bytes(payload))

    def _http_gauges(self, registry: "MetricsRegistry") -> None:
        """Contribute the front door's own counters to a scrape registry."""
        rows = (
            ("pending", "Submitted tickets not yet fulfilled.",
             sum(1 for t in self._tickets.values() if not t.event.is_set())),
            ("fulfilled_unclaimed", "Fulfilled tickets awaiting a claim.",
             sum(1 for t in self._tickets.values() if t.event.is_set())),
            ("consumed_total", "Tickets claimed by clients.", self._consumed_count),
            ("reaped_total", "Fulfilled-but-unclaimed tickets reaped.", self._reaped_count),
            ("draining", "1 while the server is draining.", int(self._draining)),
        )
        for suffix, help_text, value in rows:
            Gauge(f"repro_http_{suffix}", help_text, registry=registry).set(float(value))

    def _handle_metrics(self, request: _HttpRequest) -> _Response:
        if request.param("format") == "prom":
            registry = self.service.stats.fill_metrics(MetricsRegistry())
            self._http_gauges(registry)
            return _Response(
                200,
                prom.render(registry).encode("utf-8"),
                content_type=prom.CONTENT_TYPE,
            )
        snapshot = self.service.stats.snapshot()
        snapshot["backends"] = {
            name: backend_stats_to_dict(row)
            for name, row in snapshot["backends"].items()  # type: ignore[union-attr]
        }
        payload = {
            "schema_version": SCHEMA_VERSION,
            "service": snapshot,
            "capacity": capacity_report_to_dict(self.service.capacity_report()),
            "http": {
                "pending": sum(
                    1 for t in self._tickets.values() if not t.event.is_set()
                ),
                "fulfilled_unclaimed": sum(
                    1 for t in self._tickets.values() if t.event.is_set()
                ),
                "consumed": self._consumed_count,
                "reaped": self._reaped_count,
                "draining": self._draining,
                "tenants": dict(sorted(self._tenant_pending.items())),
            },
        }
        return _Response(200, _json_bytes(payload))

    def _handle_healthz(self) -> _Response:
        status = "draining" if self._draining else "ok"
        body = _json_bytes(
            {
                "schema_version": SCHEMA_VERSION,
                "status": status,
                "uptime_seconds": time.perf_counter() - self._started_at,
                "version": __version__,
            }
        )
        return _Response(503 if self._draining else 200, body)

    def _wait_param(self, request: _HttpRequest, name: str, default: float) -> float:
        raw = request.param(name)
        if raw is None:
            return default
        try:
            value = float(raw)
        except ValueError:
            raise WireFormatError("invalid_field", f"{name} must be a number") from None
        return max(0.0, min(value, MAX_WAIT_SECONDS))

    # ---------------------------------------------------------------- streaming
    async def _stream_results(
        self, request: _HttpRequest, writer: asyncio.StreamWriter
    ) -> None:
        """Chunked NDJSON of WireResponses in completion order (consumes each)."""
        raw = request.param("tickets") or ""
        try:
            ticket_ids = [int(part) for part in raw.split(",") if part != ""]
        except ValueError:
            self._write_response(
                writer,
                self._error(400, "invalid_field", "tickets must be comma-separated integers"),
                keep_alive=False,
            )
            await writer.drain()
            return
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Transfer-Encoding: chunked\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()

        async def _one(ticket_id: int) -> str:
            ticket = self._tickets.get(ticket_id)
            if ticket is None:
                status = self._closed.get(ticket_id)
                code = {
                    "reaped": "reaped",
                    "consumed": "already_consumed",
                }.get(status, "unknown_ticket")
                return ErrorBody(
                    code=code, message=f"ticket {ticket_id}: {code}"
                ).to_json()
            await ticket.event.wait()
            response = self._consume(ticket_id)
            if response is None:
                return ErrorBody(
                    code="already_consumed", message=f"ticket {ticket_id} already claimed"
                ).to_json()
            return response.to_json()

        pending = {asyncio.ensure_future(_one(ticket_id)) for ticket_id in ticket_ids}
        try:
            while pending:
                done, pending = await asyncio.wait(
                    pending, return_when=asyncio.FIRST_COMPLETED
                )
                for task in done:
                    line = (task.result() + "\n").encode("utf-8")
                    writer.write(b"%x\r\n" % len(line) + line + b"\r\n")
                await writer.drain()
            writer.write(b"0\r\n\r\n")
            await writer.drain()
        finally:
            for task in pending:
                task.cancel()


def create_front_door(**kwargs: Any) -> LatencyFrontDoor:
    """Factory twin of :class:`LatencyFrontDoor` (same keyword arguments)."""
    return LatencyFrontDoor(**kwargs)


# ------------------------------------------------------------ thread embedding
class FrontDoorHandle:
    """A front door running on its own event-loop thread (tests, loadgen, smoke)."""

    def __init__(
        self, door: LatencyFrontDoor, loop: asyncio.AbstractEventLoop, thread: threading.Thread
    ) -> None:
        self.door = door
        self._loop = loop
        self._thread = thread

    @property
    def host(self) -> str:
        return self.door.host

    @property
    def port(self) -> int:
        assert self.door.port is not None
        return self.door.port

    def stop(self, drain: bool = True, timeout: float = 300.0) -> Dict[str, Any]:
        """Shut the server down from the calling thread; returns the drain report."""
        future = asyncio.run_coroutine_threadsafe(self.door.shutdown(drain), self._loop)
        report = future.result(timeout=timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30.0)
        return report


def serve_in_thread(**kwargs: Any) -> FrontDoorHandle:
    """Start a :class:`LatencyFrontDoor` on a daemon thread; returns its handle.

    The thread owns a fresh event loop; the handle's :meth:`FrontDoorHandle.stop`
    drains and joins it.  Raises whatever :meth:`LatencyFrontDoor.start`
    raised (bad port, bad service kwargs) in the calling thread.
    """
    door = LatencyFrontDoor(**kwargs)
    ready = threading.Event()
    holder: Dict[str, Any] = {}

    def _run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        holder["loop"] = loop
        try:
            loop.run_until_complete(door.start())
        except Exception as exc:  # surface bind/config errors to the caller
            holder["error"] = exc
            ready.set()
            loop.close()
            return
        ready.set()
        try:
            loop.run_forever()
        finally:
            loop.close()

    thread = threading.Thread(target=_run, name="latency-front-door", daemon=True)
    thread.start()
    if not ready.wait(timeout=60.0):
        raise RuntimeError("front door failed to start within 60s")
    if "error" in holder:
        raise holder["error"]
    return FrontDoorHandle(door, holder["loop"], thread)
