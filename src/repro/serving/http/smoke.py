"""CI smoke entry: the pinned end-to-end socket scenario.

Run as ``PYTHONPATH=src python -m repro.serving.http.smoke``.  Starts a
front door on a background thread, replays a pinned seeded
:class:`~repro.cluster.trace.RequestTrace` through real sockets with the
load harness, and asserts the acceptance contract:

* every offered request completes over HTTP with zero errors,
* SLO attainment through the socket path meets the pinned target,
* the structured request log fetched from ``GET /v1/log`` rebuilds a
  digest-stable :meth:`RequestTrace.from_serving_log` trace (byte-identical
  digest when rebuilt twice from the same log),
* clean shutdown: the drain report shows zero unfulfilled (dropped) and
  zero unclaimed tickets.
"""

from __future__ import annotations

import sys
import tempfile

from ...cluster.trace import SLOPolicy, mixture_lengths, poisson_trace
from ...ppm.config import PPMConfig
from ...sim.cache import sandbox_cache_dir
from ..wire import request_log_from_json
from .client import FrontDoorClient
from .loadgen import replay_trace_http
from .server import serve_in_thread

#: Pinned scenario: 90 Poisson arrivals over a short/medium/long mixture,
#: per-token SLO with generous base (the tiny config simulates in
#: microseconds; the 2 s base absorbs socket + scheduling jitter on slow CI).
SMOKE_SLO_TARGET = 0.95


def _pinned_trace():
    lengths, weights = mixture_lengths([(24, 0.6), (48, 0.3), (96, 0.1)])
    return poisson_trace(
        rate_rps=300.0,
        num_requests=90,
        length_pool=lengths,
        length_weights=weights,
        slo=SLOPolicy(base_seconds=2.0, per_residue_seconds=0.01),
        seed=23,
        name="http-smoke",
    )


def _round_trip_digests(log_json: str) -> tuple:
    from ...cluster.trace import RequestTrace

    records = request_log_from_json(log_json)
    first = RequestTrace.from_serving_log(records, name="http-smoke-replayed")
    second = RequestTrace.from_serving_log(records, name="http-smoke-replayed")
    return first, first.config_digest(), second.config_digest()


def main(argv=None) -> int:
    trace = _pinned_trace()
    with tempfile.TemporaryDirectory(prefix="repro-http-smoke-") as cache_dir:
        with sandbox_cache_dir(cache_dir):
            handle = serve_in_thread(
                ppm_config=PPMConfig.tiny(),
                use_disk_cache=False,
                max_pending_per_tenant=512,
            )
            try:
                report = replay_trace_http(
                    trace, handle.host, handle.port, tenant="smoke"
                )
                log_json = _fetch_log(handle.host, handle.port)
            finally:
                drain = handle.stop(drain=True)

    print(report.summary())
    print(f"drain: {drain}")

    if report.completed != len(trace) or report.errors:
        print(
            f"FAIL: {report.completed}/{len(trace)} completed with "
            f"{report.errors} errors over the socket path",
            file=sys.stderr,
        )
        return 1
    if report.slo_attainment < SMOKE_SLO_TARGET:
        print(
            f"FAIL: socket-path SLO attainment {report.slo_attainment:.3f} "
            f"< pinned target {SMOKE_SLO_TARGET}",
            file=sys.stderr,
        )
        return 1

    replayed, digest_a, digest_b = _round_trip_digests(log_json)
    if digest_a != digest_b:
        print("FAIL: serving-log round trip is not digest-stable", file=sys.stderr)
        return 1
    if len(replayed) != len(trace):
        print(
            f"FAIL: round-trip trace has {len(replayed)} requests, "
            f"offered {len(trace)}",
            file=sys.stderr,
        )
        return 1
    print(f"log round trip: {len(replayed)} requests, digest {digest_a[:12]}")

    if drain.get("unfulfilled", 0) != 0 or drain.get("unclaimed", 0) != 0:
        print(f"FAIL: shutdown dropped tickets: {drain}", file=sys.stderr)
        return 1
    print(
        "smoke ok: pinned trace over sockets, SLO "
        f"{report.slo_attainment:.3f} >= {SMOKE_SLO_TARGET}, clean drain"
    )
    return 0


def _fetch_log(host: str, port: int) -> str:
    import asyncio

    async def _go() -> str:
        async with FrontDoorClient(host, port) as client:
            return await client.request_log_json()

    return asyncio.run(_go())


if __name__ == "__main__":
    raise SystemExit(main())
