"""`LatencyService`: a latency/capacity query service over `repro.sim`.

The serving layer turns the single-tenant :class:`~repro.sim.session.SimulationSession`
into something that answers concurrent, multi-tenant traffic:

* **request queue** — clients :meth:`~LatencyService.submit` typed
  :class:`~repro.serving.api.LatencyRequest` objects and poll/await
  :class:`~repro.serving.api.LatencyResponse` tickets; a dispatcher thread
  drains the queue in FIFO order,
* **coalescing** — duplicate in-flight (backend, length) queries attach to
  the first one's job, so N identical concurrent requests cost exactly one
  simulation (the NeMo-style same-shape batching, applied to sim points),
* **shape-bucketed batch admission** — serial-path jobs that share a backend
  spec (and recycles flag) are grouped by length bucket
  (:func:`repro.serving.api.length_bucket`; ``length_bucket_size=None`` =
  one shared bucket) and each multi-length group is priced by **one**
  vectorized stacked pass through
  :meth:`repro.sim.session.SimulationSession.simulate_batch`, seeding the
  shared memo for every member — bit-identical to per-length simulation,
* **worker pool** — each drained batch of *unique* jobs is evaluated either
  serially through the shared session (memo + disk cache) or, with
  ``workers > 1``, sharded via :func:`repro.sim.sweep.sweep` across a
  **long-lived process pool** owned by the service (created lazily on the
  first pooled batch, reused for every batch after, shut down when the
  dispatcher drains out — no per-batch executor standup); pool results are
  seeded back into the session memo (and the ``REPRO_SIM_CACHE_DIR`` disk
  cache) so the service warms up like any other session user,
* **dispatch order** — requests carry ``priority``/``deadline_seconds``
  (:func:`repro.serving.api.dispatch_order_key`): the dispatcher drains
  higher-priority, earlier-deadline jobs first and falls back to FIFO for
  all-default traffic — the same semantics the cluster simulator's EDF
  scheduler applies (:mod:`repro.cluster.scheduler`).

Both execution paths run the identical per-point simulation code, so pooled
and serial services return bit-identical numbers — asserted by
``tests/test_serving.py`` and the CI smoke (:mod:`repro.serving.smoke`).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, is_dataclass
from pathlib import Path
from typing import Any, Deque, Dict, Iterable, List, Optional, Tuple, Union

from .._digest import stable_digest
from ..gpu.gpu_config import GPUS, GPUSpec
from ..hardware.config import LightNobelConfig
from ..obs.tracing import Tracer
from ..ppm.config import PPMConfig
from ..sim.backend import (
    AcceleratorVariant,
    GPUVariant,
    SimReport,
    available_backends,
)
from ..sim.session import DEFAULT_BACKENDS, SimulationSession
from ..sim.sweep import SweepPoint, resolve_workers, sweep
from .api import (
    CapacityReport,
    LatencyRequest,
    LatencyResponse,
    LatencyServiceError,
    RequestLogRecord,
    dispatch_order_key,
    length_bucket,
)
from .stats import ServiceStats

RequestLike = Union[LatencyRequest, Tuple[Any, int]]


def create_service(**kwargs) -> "LatencyService":
    """Factory twin of :class:`LatencyService` (same keyword arguments).

    The serving sibling of :func:`repro.sim.backend.create_backend`,
    :func:`repro.cluster.create_scheduler` / ``create_router`` /
    ``create_trace`` and :func:`repro.serving.http.create_front_door` — one
    consistent ``create_*`` naming across the facade.
    """
    return LatencyService(**kwargs)


def _as_request(request: RequestLike) -> LatencyRequest:
    if isinstance(request, LatencyRequest):
        return request
    spec, length = request
    return LatencyRequest(backend=spec, sequence_length=int(length))


def _spec_key(spec: Any) -> Tuple[str, object]:
    """Coalescing identity of a backend spec, computed without building it.

    Strings fold case; config dataclasses and variant specs hash canonically
    via :mod:`repro._digest`; opaque backend instances expose their own
    ``config_digest``.  Anything else falls back to object identity — such
    requests never coalesce with each other, but still execute correctly.
    """
    if isinstance(spec, str):
        return ("name", spec.lower())
    digest = getattr(spec, "config_digest", None)
    if callable(digest):
        return ("digest", f"{type(spec).__name__}:{digest()}")
    try:
        return ("digest", stable_digest("serving-spec", spec))
    except TypeError:
        return ("id", id(spec))


def _poolable(spec: Any) -> bool:
    """Whether a spec can be rebuilt inside a sweep worker process.

    Registry names and frozen config/variant dataclasses ship cleanly across
    the process boundary; session-local registrations (digest-derived names)
    and live backend instances are evaluated serially instead.
    """
    if isinstance(spec, (AcceleratorVariant, GPUVariant, LightNobelConfig, GPUSpec)):
        return True
    # Variant-style frozen dataclasses with a build() factory (e.g.
    # repro.cluster.fleet.MultiChipVariant) pickle by value and rebuild in the
    # worker.  A spec that wraps a nested `base` spec (a multi-chip node over
    # some inner backend) is only pool-safe if that base would resolve in a
    # worker too — a session-local digest name or live backend instance
    # inside would fail worker-side and needlessly cost us the long-lived
    # pool, so such jobs run serially instead.
    if is_dataclass(spec) and not isinstance(spec, type) and callable(
        getattr(spec, "build", None)
    ):
        base = getattr(spec, "base", None)
        return base is None or _poolable(base)
    if isinstance(spec, str):
        key = spec.lower()
        if key in available_backends():
            return True
        base = key[: -len("-chunk")] if key.endswith("-chunk") else key
        return base.upper() in GPUS
    return False


def _backend_label(spec: Any, report: Optional[SimReport]) -> str:
    """Stable display label for per-backend stats."""
    if report is not None:
        return report.backend
    if isinstance(spec, str):
        return spec.lower()
    name = getattr(spec, "name", None)
    if isinstance(name, str) and name:
        return name
    return type(spec).__name__


@dataclass
class _Ticket:
    """One submitted request awaiting fulfillment.

    ``abandoned`` flips on when a :meth:`LatencyService.result` waiter times
    out and back off when a waiter returns for the ticket; a fulfillment that
    lands while the flag is up is a *late result* — counted in stats and
    reclaimable via :meth:`LatencyService.reap_abandoned`, never a silent
    orphan in the ticket table.
    """

    id: int
    request: LatencyRequest
    submitted_at: float
    coalesced: bool
    done: threading.Event = field(default_factory=threading.Event)
    response: Optional[LatencyResponse] = None
    abandoned: bool = False


@dataclass
class _Job:
    """One unique (backend, length, recycles) simulation; owns its waiters.

    ``priority``/``deadline`` aggregate over the attached tickets (highest
    priority, earliest absolute deadline): a duplicate that coalesces onto a
    queued job can only move it *forward* in dispatch order, never starve it.
    """

    key: Tuple
    spec: Any
    sequence_length: int
    include_recycles: bool
    seq: int = 0
    priority: int = 0
    deadline: Optional[float] = None
    #: True while the job sits in the pending queue (dispatch bookkeeping).
    queued: bool = True
    #: Which execution path priced this job ("memo-hit", "pool-dispatch",
    #: "stacked-simulate", "simulate", "error") — the span name tracing gives
    #: the execution window of every non-coalesced ticket.
    path: str = "simulate"
    tickets: List[_Ticket] = field(default_factory=list)

    def dispatch_key(self) -> Tuple[int, float, int]:
        return dispatch_order_key(self.priority, self.deadline, self.seq)

    def is_default_order(self) -> bool:
        """Whether the job sorts exactly where FIFO would put it."""
        return self.priority == 0 and self.deadline is None

    def absorb(self, priority: int, deadline: Optional[float]) -> None:
        self.priority = max(self.priority, int(priority))
        if deadline is not None:
            self.deadline = deadline if self.deadline is None else min(self.deadline, deadline)


class LatencyService:
    """Request queue + coalescing + worker pool over one shared session.

    ``workers`` selects the execution path for each drained batch of unique
    jobs: ``None``/0/1 (or ``$REPRO_SIM_WORKERS``) evaluates serially through
    the shared :class:`~repro.sim.session.SimulationSession`; ``workers > 1``
    shards pool-safe jobs across :func:`repro.sim.sweep.sweep` and seeds the
    results back into the session memo.  ``cache_dir`` /
    ``REPRO_SIM_CACHE_DIR`` enable the shared disk cache exactly as on a bare
    session.

    On the serial path, jobs sharing a backend spec are additionally grouped
    by shape bucket (``length_bucket_size``; ``None`` = one shared bucket)
    and each multi-length group is priced in a single stacked pass — see the
    module docstring.  Results are bit-identical to per-length simulation, so
    the bucket width is purely a batching-granularity knob.

    ``tracer`` switches on per-request span tracing: every fulfilled ticket
    records a root ``request`` span with ``queue-wait``, an execution span
    named after the path that priced it (``memo-hit`` / ``pool-dispatch`` /
    ``stacked-simulate`` / ``simulate``, or ``coalesce`` for tickets that
    attached to an in-flight duplicate) and a ``fulfill`` span, keyed by the
    client's ``trace_id`` or the ticket id (see :mod:`repro.obs.tracing`).

    The dispatcher thread starts lazily on first submit (``autostart=True``)
    or explicitly via :meth:`start` — tests submit with ``autostart=False``
    to stage a concurrent batch deterministically.  The service is a context
    manager; leaving the ``with`` block drains the queue and stops the
    dispatcher.
    """

    def __init__(
        self,
        ppm_config: Optional[PPMConfig] = None,
        backends: Iterable = DEFAULT_BACKENDS,
        workers: Optional[int] = None,
        cache_dir: Optional[Path | str] = None,
        use_disk_cache: Optional[bool] = None,
        include_recycles: bool = False,
        session: Optional[SimulationSession] = None,
        max_batch: int = 64,
        autostart: bool = True,
        length_bucket_size: Optional[int] = None,
        request_log_limit: Optional[int] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if session is not None:
            if ppm_config is not None and ppm_config != session.ppm_config:
                raise ValueError(
                    "ppm_config does not match session.ppm_config; pass one or the other"
                )
            # A caller-supplied session carries its own backends/cache/recycle
            # settings; silently dropping conflicting kwargs would make e.g.
            # use_disk_cache=False a no-op, so reject them loudly.
            if (
                cache_dir is not None
                or use_disk_cache is not None
                or include_recycles
                or tuple(backends) != DEFAULT_BACKENDS
            ):
                raise ValueError(
                    "backends/cache_dir/use_disk_cache/include_recycles are "
                    "session settings; configure them on the session instead"
                )
            self.session = session
        else:
            self.session = SimulationSession(
                ppm_config=ppm_config,
                backends=backends,
                cache_dir=cache_dir,
                use_disk_cache=use_disk_cache,
                include_recycles=include_recycles,
            )
        self.workers = resolve_workers(workers)
        self.max_batch = int(max_batch)
        self.autostart = bool(autostart)
        #: Shape-bucket width for stacked batch admission (None = one bucket).
        self.length_bucket_size = length_bucket_size
        self.stats = ServiceStats(request_log_limit=request_log_limit)
        #: Optional per-request span tracing (:mod:`repro.obs.tracing`).
        #: ``None`` keeps the hot path untouched; a disabled tracer records
        #: nothing.  Spans are keyed by ``request.trace_id`` when the client
        #: supplied one, else by the integer ticket id.
        self.tracer = tracer

        self._cond = threading.Condition()
        self._session_lock = threading.RLock()
        #: Fulfillment listeners (see :meth:`add_result_listener`), invoked by
        #: the dispatcher thread outside the service lock.
        self._listeners: List = []
        self._queue: Deque[_Job] = deque()
        #: Queued jobs with non-default priority/deadline; while zero the
        #: dispatcher drains with the O(1) FIFO popleft fast path instead of
        #: sorting the whole queue per batch.
        self._urgent_queued = 0
        self._pending: Dict[Tuple, _Job] = {}
        self._tickets: Dict[int, _Ticket] = {}
        self._next_ticket = 0
        self._completed_index = 0
        self._executing = 0
        self._stopped = False
        self._thread: Optional[threading.Thread] = None
        #: Long-lived worker pool (created lazily by the dispatcher on the
        #: first pooled batch, reused for every batch after, shut down when
        #: the dispatcher drains out).  Owned exclusively by the dispatcher
        #: thread, so no lock guards it.
        self._pool: Optional[ProcessPoolExecutor] = None
        self._started_at = time.perf_counter()

    # ---------------------------------------------------------------- lifecycle
    def start(self) -> "LatencyService":
        """Start the dispatcher thread (idempotent)."""
        with self._cond:
            if self._stopped:
                raise RuntimeError("service is closed")
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._run, name="latency-service", daemon=True
                )
                self._thread.start()
        return self

    def close(self, wait: bool = True) -> None:
        """Stop accepting requests; the dispatcher drains the queue, then exits."""
        with self._cond:
            if self._thread is None and self._queue:
                # Never-started service with staged requests: start the
                # dispatcher late so the drain contract holds and no ticket
                # is left unfulfilled.
                self._thread = threading.Thread(
                    target=self._run, name="latency-service", daemon=True
                )
                self._thread.start()
            self._stopped = True
            self._cond.notify_all()
            thread = self._thread
        if wait and thread is not None:
            thread.join()
        if thread is None:
            # Never-started service: no dispatcher will run to release the
            # pool (it cannot exist yet, but keep the invariant explicit).
            self._shutdown_pool()

    def __enter__(self) -> "LatencyService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ submit
    def _job_key(self, request: LatencyRequest) -> Tuple:
        include = (
            self.session.include_recycles
            if request.include_recycles is None
            else bool(request.include_recycles)
        )
        return (_spec_key(request.backend), int(request.sequence_length), include)

    def submit(self, request: RequestLike) -> int:
        """Enqueue one request; returns a ticket id for :meth:`poll`/:meth:`result`.

        A request whose (backend, length, recycles) key matches a queued or
        in-flight job attaches to that job — sharing its single simulation —
        instead of enqueueing a new one.
        """
        request = _as_request(request)
        key = self._job_key(request)
        now = time.perf_counter()
        with self._cond:
            if self._stopped:
                raise RuntimeError("service is closed")
            ticket_id = self._next_ticket
            self._next_ticket += 1
            job = self._pending.get(key)
            coalesced = job is not None
            ticket = _Ticket(
                id=ticket_id, request=request, submitted_at=now, coalesced=coalesced
            )
            self._tickets[ticket_id] = ticket
            deadline = (
                None
                if request.deadline_seconds is None
                else now + float(request.deadline_seconds)
            )
            if job is None:
                include = key[2]
                job = _Job(
                    key=key,
                    spec=request.backend,
                    sequence_length=int(request.sequence_length),
                    include_recycles=include,
                    seq=ticket_id,
                )
                self._pending[key] = job
                self._queue.append(job)
            was_default = job.is_default_order()
            job.absorb(request.priority, deadline)
            if job.queued and was_default and not job.is_default_order():
                self._urgent_queued += 1
            job.tickets.append(ticket)
            depth = len(self._queue)
            self._cond.notify_all()
        self.stats.record_submit(coalesced=coalesced, queue_depth=depth)
        if self.autostart:
            self.start()
        return ticket_id

    def submit_batch(self, requests: Iterable[RequestLike]) -> List[int]:
        """Enqueue many requests at once; returns ticket ids in input order."""
        return [self.submit(request) for request in requests]

    # ------------------------------------------------------------------- await
    def poll(self, ticket_id: int) -> Optional[LatencyResponse]:
        """The response for ``ticket_id`` if fulfilled, else ``None``.

        A fulfilled ticket is consumed: polling it again raises ``KeyError``.
        """
        with self._cond:
            ticket = self._tickets[ticket_id]
            if not ticket.done.is_set():
                return None
            del self._tickets[ticket_id]
            return ticket.response

    def result(
        self, ticket_id: int, timeout: Optional[float] = None
    ) -> LatencyResponse:
        """Block until ``ticket_id`` is fulfilled and return (and consume) it.

        On timeout the ticket is *not* consumed — a later ``result`` or
        :meth:`poll` may still claim it once fulfilled — but the give-up is
        counted (``timed_out`` in :meth:`capacity_report`) and the ticket is
        marked abandoned: if the job later completes with no waiter attached,
        the completion lands in stats as a *late result* (``late_results``)
        and its response stays reclaimable via :meth:`reap_abandoned`, so a
        client giving up never silently orphans finished work.
        """
        with self._cond:
            ticket = self._tickets[ticket_id]
            # A returning waiter re-arms the ticket: a completion that lands
            # while someone is actively waiting is on-time, not late.
            ticket.abandoned = False
        if not ticket.done.wait(timeout):
            with self._cond:
                ticket.abandoned = True
            self.stats.record_timeout()
            raise TimeoutError(f"request {ticket_id} not fulfilled within {timeout}s")
        with self._cond:
            self._tickets.pop(ticket_id, None)
        assert ticket.response is not None
        return ticket.response

    def abandon(self, ticket_id: int) -> bool:
        """Mark a ticket abandoned without blocking on it; returns whether it exists.

        The non-blocking half of the abandonment contract: a
        :meth:`result` timeout marks its ticket abandoned implicitly; a
        client (or a front end such as :class:`repro.serving.http`'s result
        reaper) that *knows* it will never claim a ticket calls this instead
        of waiting out a timeout.  An abandoned-and-fulfilled ticket is
        collected by the next :meth:`reap_abandoned`; polling or waiting on
        the ticket again un-abandons nothing — ``abandon`` is a one-way hint
        until a waiter returns via :meth:`result`, which re-arms it.
        """
        with self._cond:
            ticket = self._tickets.get(ticket_id)
            if ticket is None:
                return False
            ticket.abandoned = True
            return True

    def add_result_listener(self, listener) -> None:
        """Register ``listener(ticket_ids)`` to run after each fulfilled batch.

        Called from the dispatcher thread, outside the service lock, with the
        tuple of ticket ids fulfilled by one batch — *after* every ticket's
        response is readable via :meth:`poll`.  Listeners must be fast and
        must not raise (exceptions are swallowed to protect the dispatcher);
        the HTTP front door uses this to wake its event loop instead of
        polling.
        """
        with self._cond:
            self._listeners.append(listener)

    def reap_abandoned(self) -> List[LatencyResponse]:
        """Consume and return responses of fulfilled-but-abandoned tickets.

        The cleanup half of the late-result contract: tickets whose waiters
        all timed out stay in the table so their eventual responses are not
        lost; a long-lived service should periodically reap them (or poll the
        ids again) so the table cannot grow without bound.
        """
        with self._cond:
            ripe = [
                t for t in self._tickets.values()
                if t.abandoned and t.done.is_set()
            ]
            for ticket in ripe:
                del self._tickets[ticket.id]
        return [t.response for t in ripe if t.response is not None]

    def join(self, timeout: Optional[float] = None) -> bool:
        """Wait until the queue is empty and no batch is executing."""
        with self._cond:
            return self._cond.wait_for(
                lambda: not self._queue and self._executing == 0, timeout
            )

    # ------------------------------------------------------------- convenience
    def query(
        self,
        backend: Any,
        sequence_length: int,
        include_recycles: Optional[bool] = None,
        timeout: Optional[float] = None,
    ) -> SimReport:
        """Synchronous submit + await; raises :class:`LatencyServiceError` on failure."""
        ticket = self.submit(
            LatencyRequest(
                backend=backend,
                sequence_length=sequence_length,
                include_recycles=include_recycles,
            )
        )
        return self.result(ticket, timeout=timeout).raise_for_error().report

    def query_batch(
        self, requests: Iterable[RequestLike], timeout: Optional[float] = None
    ) -> List[SimReport]:
        """Submit a batch and await every report, aligned with the input order."""
        tickets = self.submit_batch(requests)
        return [
            self.result(ticket, timeout=timeout).raise_for_error().report
            for ticket in tickets
        ]

    def register_backend(self, spec: Any, name: Optional[str] = None):
        """Register a backend on the shared session (thread-safe).

        Entry points that pre-register custom design points (digest-named
        accelerator variants, reference GPUs) route through here so session
        mutation never races the dispatcher.
        """
        with self._session_lock:
            if name is None:
                return self.session.backend(spec)
            return self.session.add_backend(spec, name=name)

    # -------------------------------------------------------------- accounting
    def queue_depth(self) -> int:
        with self._cond:
            return len(self._queue)

    def request_log(self) -> Tuple[RequestLogRecord, ...]:
        """Structured log of fulfilled requests (fulfillment order).

        Each record carries the request's arrival (relative to service
        start), length, priority, relative deadline, and outcome — the exact
        fields :meth:`repro.cluster.trace.RequestTrace.from_serving_log`
        needs to replay this traffic through the cluster simulator.  Bounded
        by the ``request_log_limit`` constructor argument (``None`` keeps
        everything).
        """
        return self.stats.request_log()

    def capacity_report(self) -> CapacityReport:
        """Throughput/hit-rate/latency snapshot (see :class:`CapacityReport`)."""
        snap = self.stats.snapshot()
        busy = float(snap["busy_seconds"])  # type: ignore[arg-type]
        completed = int(snap["completed"])  # type: ignore[arg-type]
        return CapacityReport(
            requests=int(snap["submitted"]),
            completed=completed,
            errors=int(snap["errors"]),
            coalesced=int(snap["coalesced"]),
            memo_hits=int(snap["memo_hits"]),
            simulations=int(snap["simulations"]),
            queue_depth=self.queue_depth(),
            peak_queue_depth=int(snap["peak_queue_depth"]),
            wall_seconds=time.perf_counter() - self._started_at,
            busy_seconds=busy,
            queries_per_second=completed / busy if busy > 0 else 0.0,
            backends=tuple(self.stats.backend_summaries()),
            timed_out=int(snap["timeouts"]),
            late_results=int(snap["late_results"]),
            pool_rebuilds=int(snap["pool_rebuilds"]),
            stacked_batches=int(snap["stacked_batches"]),
            stacked_points=int(snap["stacked_points"]),
        )

    # -------------------------------------------------------------- dispatcher
    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._stopped:
                    # Every wake source (submit, close) calls notify_all, so a
                    # plain wait needs no polling interval.
                    self._cond.wait()
                if not self._queue:
                    break  # stopped and drained; release the pool below
                # Drain up to max_batch jobs in dispatch order: priority desc,
                # then earliest deadline, then submission order (the shared
                # dispatch_order_key semantics).  While nothing queued carries
                # a non-default priority/deadline the queue is already in
                # dispatch order, so keep the O(1) FIFO popleft drain; sort
                # only when an urgent job is actually waiting.
                if self._urgent_queued == 0:
                    jobs = []
                    while self._queue and len(jobs) < self.max_batch:
                        jobs.append(self._queue.popleft())
                else:
                    ordered = sorted(self._queue, key=_Job.dispatch_key)
                    jobs = ordered[: self.max_batch]
                    if len(jobs) == len(self._queue):
                        self._queue.clear()
                    else:
                        chosen = {id(job) for job in jobs}
                        self._queue = deque(
                            job for job in self._queue if id(job) not in chosen
                        )
                for job in jobs:
                    job.queued = False
                    if not job.is_default_order():
                        self._urgent_queued -= 1
                self._executing = len(jobs)
            started = time.perf_counter()
            results: Dict[Tuple, Tuple[Optional[SimReport], Optional[str], bool]] = {}
            try:
                results = self._execute(jobs)
            except Exception as exc:
                # A dispatcher-level failure (pool machinery, session
                # corruption) must not kill this thread: a dead dispatcher
                # would hang every future poll()/result() forever.  Convert
                # the crash into per-ticket error responses and keep serving.
                for job in jobs:
                    results.setdefault(
                        job.key, (None, f"dispatcher error: {exc}", False)
                    )
            finally:
                # Fulfill even if _execute blew up: every drained ticket gets a
                # response (an error one, in the worst case), never a hang.
                self._fulfill(jobs, results, started)
        # The dispatcher owns the worker pool and releases it on the way out —
        # outside the condition lock, since joining worker processes can take
        # a while and must not stall concurrent poll()/stats readers.
        self._shutdown_pool()

    def _execute(
        self, jobs: List[_Job]
    ) -> Dict[Tuple, Tuple[Optional[SimReport], Optional[str], bool]]:
        """Evaluate unique jobs; returns key -> (report, error, memo_hit)."""
        results: Dict[Tuple, Tuple[Optional[SimReport], Optional[str], bool]] = {}
        pooled: List[_Job] = []
        serial: List[_Job] = []
        with self._session_lock:
            for job in jobs:
                try:
                    report = self.session.peek_report(
                        job.spec, job.sequence_length, job.include_recycles
                    )
                except Exception as exc:  # bad spec: resolution itself failed
                    results[job.key] = (None, str(exc), False)
                    job.path = "error"
                    continue
                if report is not None:
                    results[job.key] = (report, None, True)
                    job.path = "memo-hit"
                elif (
                    self.workers is not None
                    and self.workers > 1
                    and _poolable(job.spec)
                ):
                    pooled.append(job)
                else:
                    serial.append(job)
            # Shape-bucketed batch admission: serial jobs sharing a backend
            # spec (and recycles flag) within one length bucket are priced by
            # a single stacked pass; loners keep the plain per-job path.
            buckets: Dict[Tuple, List[_Job]] = {}
            for job in serial:
                bucket = (
                    job.key[0],
                    job.include_recycles,
                    length_bucket(job.sequence_length, self.length_bucket_size),
                )
                buckets.setdefault(bucket, []).append(job)
            for group in buckets.values():
                if len(group) > 1:
                    self._simulate_bucketed(group, results)
                else:
                    results[group[0].key] = self._simulate_serial(group[0])
            if len(pooled) == 1:
                # A single point gains nothing from a pool; keep it in-session.
                results[pooled[0].key] = self._simulate_serial(pooled[0])
            elif pooled:
                self._simulate_pooled(pooled, results)
        return results

    def _simulate_serial(
        self, job: _Job
    ) -> Tuple[Optional[SimReport], Optional[str], bool]:
        job.path = "simulate"
        try:
            report = self.session.simulate(
                job.sequence_length,
                backend=job.spec,
                include_recycles=job.include_recycles,
            )
        except Exception as exc:
            return (None, str(exc), False)
        self.stats.record_simulations(1)
        return (report, None, False)

    def _simulate_bucketed(
        self,
        jobs: List[_Job],
        results: Dict[Tuple, Tuple[Optional[SimReport], Optional[str], bool]],
    ) -> None:
        """Price one shape bucket (same spec, same recycles flag) in one pass.

        Delegates to :meth:`SimulationSession.simulate_batch`, which stacks
        the distinct lengths and evaluates stacking-capable backends with one
        vectorized call (seeding the shared memo for every member).  Any
        failure falls back to the per-job serial path, so bucketing never
        costs correctness.
        """
        include = jobs[0].include_recycles
        lengths = sorted({job.sequence_length for job in jobs})
        try:
            batch = self.session.simulate_batch(
                lengths, backends=[jobs[0].spec], include_recycles=include
            )
            name = batch.backends[0]
            reports = {n: batch.report(name, n) for n in lengths}
        except Exception:
            for job in jobs:
                results[job.key] = self._simulate_serial(job)
            return
        self.stats.record_simulations(len(lengths))
        self.stats.record_stacked(batches=1, points=len(lengths))
        for job in jobs:
            results[job.key] = (reports[job.sequence_length], None, False)
            job.path = "stacked-simulate"

    def _ensure_pool(self) -> Optional[ProcessPoolExecutor]:
        """The long-lived worker pool, created lazily (``None`` if unavailable)."""
        if self._pool is None:
            try:
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
            except Exception:
                return None
        return self._pool

    def _shutdown_pool(self, wait: bool = True) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=wait)

    def _simulate_pooled(
        self,
        jobs: List[_Job],
        results: Dict[Tuple, Tuple[Optional[SimReport], Optional[str], bool]],
    ) -> None:
        """Shard a batch of unique jobs across the long-lived worker pool.

        The pool is created once and reused across batches (no per-batch
        executor standup); jobs are grouped by recycles flag (a sweep-level
        setting).  A broken pool (workers OOM-killed, crashed mid-batch) is
        discarded and **rebuilt once** — a single dead worker must not cost
        the whole pooled path — and only if the fresh pool fails too does the
        batch degrade to the per-job serial path, so the service keeps the
        sweep module's never-have-to-care fallback contract.
        """
        by_include: Dict[bool, List[_Job]] = {}
        for job in jobs:
            by_include.setdefault(job.include_recycles, []).append(job)
        for include, group in by_include.items():
            points = [SweepPoint(job.spec, job.sequence_length) for job in group]
            reports = None
            for attempt in (0, 1):
                executor = self._ensure_pool()
                try:
                    reports = sweep(
                        points,
                        ppm_config=self.session.ppm_config,
                        workers=self.workers,
                        include_recycles=include,
                        executor=executor,
                    )
                    break
                except Exception:
                    if executor is not None:
                        # The pool itself may be broken (dead workers,
                        # pickling of a poisoned spec): discard it so the
                        # retry (and the next batch) starts clean rather
                        # than failing forever.
                        self._shutdown_pool(wait=False)
                    if attempt == 0 and executor is not None:
                        # One rebuild: _ensure_pool() stands up a fresh pool
                        # on the retry.  A pool that could not even be
                        # created (executor None) will not appear by trying
                        # again — go straight to the serial fallback.
                        self.stats.record_pool_rebuild()
                        continue
                    break
            if reports is None:
                for job in group:
                    results[job.key] = self._simulate_serial(job)
                continue
            self.stats.record_simulations(len(group))
            for job, report in zip(group, reports):
                # Seed the shared memo/disk cache so later duplicates are
                # memo hits, exactly as if the session had simulated them.
                try:
                    self.session.seed_report(
                        job.spec, job.sequence_length, report, include
                    )
                except Exception:
                    pass
                results[job.key] = (report, None, False)
                job.path = "pool-dispatch"

    def _fulfill(
        self,
        jobs: List[_Job],
        results: Dict[Tuple, Tuple[Optional[SimReport], Optional[str], bool]],
        started: float,
    ) -> None:
        end = time.perf_counter()
        fulfilled: List[int] = []
        tracer = self.tracer
        tracing = tracer is not None and tracer.enabled
        with self._cond:
            for job in jobs:
                report, error, memo_hit = results.get(
                    job.key, (None, "job aborted by dispatcher error", False)
                )
                self._pending.pop(job.key, None)
                index = self._completed_index
                self._completed_index += 1
                label = _backend_label(job.spec, report)
                for ticket in job.tickets:
                    ticket.response = LatencyResponse(
                        request_id=ticket.id,
                        request=ticket.request,
                        report=report,
                        error=error,
                        coalesced=ticket.coalesced,
                        queue_seconds=max(0.0, started - ticket.submitted_at),
                        service_seconds=max(0.0, end - ticket.submitted_at),
                        completed_index=index,
                    )
                    # Coalesced tickets are already counted at submit time;
                    # counting them as memo hits too would double-credit the
                    # hit rate.
                    self.stats.record_result(
                        label,
                        ticket.response.service_seconds,
                        error=error is not None,
                        memo_hit=memo_hit and not ticket.coalesced,
                    )
                    self.stats.record_request(
                        RequestLogRecord(
                            ticket_id=ticket.id,
                            backend=label,
                            sequence_length=ticket.request.sequence_length,
                            priority=ticket.request.priority,
                            deadline_seconds=ticket.request.deadline_seconds,
                            arrival_seconds=max(
                                0.0, ticket.submitted_at - self._started_at
                            ),
                            outcome="ok" if error is None else "error",
                            coalesced=ticket.coalesced,
                            queue_seconds=ticket.response.queue_seconds,
                            service_seconds=ticket.response.service_seconds,
                            trace_id=ticket.request.trace_id,
                        )
                    )
                    if tracing:
                        # One pre-built batch per ticket (root + 3 children),
                        # recorded before done.set() so a waiter that wakes on
                        # the event always finds its trace complete.
                        exec_name = "coalesce" if ticket.coalesced else job.path
                        tracer.record_batch(
                            ticket.request.trace_id or ticket.id,
                            (
                                (
                                    "request",
                                    ticket.submitted_at,
                                    end,
                                    {
                                        "ticket_id": ticket.id,
                                        "backend": label,
                                        "sequence_length": (
                                            ticket.request.sequence_length
                                        ),
                                        "coalesced": ticket.coalesced,
                                        "path": exec_name,
                                        "ok": error is None,
                                    },
                                ),
                                ("queue-wait", ticket.submitted_at, started, None),
                                (exec_name, started, end, None),
                                ("fulfill", end, time.perf_counter(), None),
                            ),
                        )
                    if ticket.abandoned:
                        # Every waiter gave up before this completion landed:
                        # count it so operators can see late work, and leave
                        # the response reclaimable (reap_abandoned / poll).
                        self.stats.record_late_result()
                    ticket.done.set()
                    fulfilled.append(ticket.id)
            self._executing = 0
            depth = len(self._queue)
            listeners = list(self._listeners)
            self._cond.notify_all()
        self.stats.record_batch(busy_seconds=end - started, queue_depth=depth)
        # Listener contract: fulfilled responses are already pollable, the
        # lock is released (a listener may call poll()/stats), and a listener
        # crash never takes the dispatcher down with it.
        ids = tuple(fulfilled)
        for listener in listeners:
            try:
                listener(ids)
            except Exception:
                pass
