"""CI smoke entry: a concurrent batch through a 2-worker ``LatencyService``.

Run as ``PYTHONPATH=src python -m repro.serving.smoke``.  Submits a small
batch with duplicates through a pooled service, asserts coalescing happened,
and checks the served numbers against a direct
:class:`~repro.sim.session.SimulationSession` before exiting 0 — the serving
sibling of :mod:`repro.sim.smoke`.

``--bucketed`` exercises the shape-bucketed serial path instead: a serial
service with a finite ``length_bucket_size`` drains a multi-length batch,
the smoke asserts stacked batches actually ran, and every served number is
checked against a direct session (stacked ≡ per-length parity).
"""

from __future__ import annotations

import sys
import tempfile

from ..hardware.config import LightNobelConfig
from ..ppm.config import PPMConfig
from ..sim.cache import sandbox_cache_dir
from ..sim.session import SimulationSession
from .api import LatencyRequest
from .service import LatencyService


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if "--bucketed" in argv:
        return bucketed_main()
    config = PPMConfig.tiny()
    requests = [
        LatencyRequest(backend=spec, sequence_length=n)
        for spec in ("lightnobel", "h100", "h100-chunk", LightNobelConfig(num_rmpus=8))
        for n in (24, 48)
    ]
    # Duplicate the whole batch: the copies must coalesce, not re-simulate.
    requests = requests + requests

    with tempfile.TemporaryDirectory(prefix="repro-serving-smoke-") as cache_dir:
        # Sandbox every cache write in the throwaway directory, as the test
        # suite's conftest does: the env var covers the pooled sweep workers
        # (which inherit the environment) and the reference session in _run,
        # which would otherwise write into the CI runner's workspace/home.
        with sandbox_cache_dir(cache_dir):
            return _run(config, requests, cache_dir)


def _run(config: PPMConfig, requests, cache_dir: str) -> int:
    # Stage the whole batch before starting the dispatcher so every
    # duplicate is deterministically in-flight together — otherwise a
    # fast dispatcher could fulfill a key before its duplicate arrives
    # (a memo hit, not coalescing) and flake the assertion below.
    service = LatencyService(
        ppm_config=config, workers=2, cache_dir=cache_dir, autostart=False
    )
    tickets = service.submit_batch(requests)
    with service:
        responses = [service.result(t, timeout=120.0) for t in tickets]
        report = service.capacity_report()

    reference = SimulationSession(ppm_config=config)
    for response in responses:
        response.raise_for_error()
        direct = reference.simulate(
            response.request.sequence_length, backend=response.request.backend
        )
        if response.report.total_seconds != direct.total_seconds:
            print(
                f"FAIL: served {response.request} diverged from direct session",
                file=sys.stderr,
            )
            return 1
        print(
            f"serve[{response.report.backend}, n={response.request.sequence_length}]"
            f" {response.report.total_seconds * 1e3:.3f} ms"
            f" (coalesced={response.coalesced},"
            f" service={response.service_seconds * 1e3:.1f} ms)"
        )

    unique = len({(r.backend if isinstance(r.backend, str) else "cfg", r.sequence_length) for r in requests})
    print(
        f"capacity: {report.completed} served, {report.coalesced} coalesced, "
        f"{report.simulations} simulations, hit_rate={report.hit_rate:.2f}, "
        f"{report.queries_per_second:.0f} q/s sustained"
    )
    if report.coalesced < len(requests) - unique:
        print("FAIL: duplicate in-flight requests did not coalesce", file=sys.stderr)
        return 1
    if report.errors:
        print("FAIL: service reported errors", file=sys.stderr)
        return 1
    print("smoke ok: 2-worker LatencyService batch + coalescing + parity")
    return 0


def bucketed_main() -> int:
    """Smoke the shape-bucketed serial path: stacked batches + exact parity."""
    config = PPMConfig.tiny()
    lengths = (24, 32, 40, 48, 56, 64)
    requests = [
        LatencyRequest(backend=spec, sequence_length=n)
        for spec in ("lightnobel", "h100", "a100-chunk")
        for n in lengths
    ]
    with tempfile.TemporaryDirectory(prefix="repro-serving-smoke-") as cache_dir:
        with sandbox_cache_dir(cache_dir):
            # Stage everything before the dispatcher starts so one drained
            # batch sees every length of each backend (buckets of 32 split
            # the six lengths into two stacks per backend).
            service = LatencyService(
                ppm_config=config,
                use_disk_cache=False,
                autostart=False,
                length_bucket_size=32,
            )
            tickets = service.submit_batch(requests)
            with service:
                responses = [service.result(t, timeout=120.0) for t in tickets]
                report = service.capacity_report()

            reference = SimulationSession(ppm_config=config, use_disk_cache=False)
            for response in responses:
                response.raise_for_error()
                direct = reference.simulate(
                    response.request.sequence_length, backend=response.request.backend
                )
                if response.report.total_seconds != direct.total_seconds:
                    print(
                        f"FAIL: bucketed {response.request} diverged from direct session",
                        file=sys.stderr,
                    )
                    return 1
    print(
        f"bucketed: {report.completed} served, {report.stacked_batches} stacked "
        f"batches covering {report.stacked_points} points, "
        f"{report.simulations} simulations"
    )
    if report.stacked_batches == 0 or report.stacked_points < len(lengths):
        print("FAIL: shape-bucketed path did not run stacked batches", file=sys.stderr)
        return 1
    if report.errors:
        print("FAIL: service reported errors", file=sys.stderr)
        return 1
    print("smoke ok: shape-bucketed LatencyService batch + stacked parity")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
