"""Thread-safe service accounting: hit rates, queue depth, latency histograms.

One :class:`ServiceStats` instance lives inside every
:class:`~repro.serving.service.LatencyService`.  Submission-side counters are
updated under the service lock by client threads; fulfillment-side counters
and the per-backend latency histograms are updated by the dispatcher.  All
reads go through :meth:`ServiceStats.snapshot`, which copies under the lock,
so callers never observe a torn update.

Latency distributions are :class:`repro.obs.metrics.Histogram` families with
fixed exponential buckets — **constant memory per backend** no matter how
many requests flow through (the old per-backend sample reservoirs grew a
2048-deque each and answered percentiles from a sampled window; the
histograms answer from every observation ever made, at bounded-relative-error
bucket resolution with exact min/max edges).  :meth:`ServiceStats.fill_metrics`
contributes everything here to a :class:`~repro.obs.metrics.MetricsRegistry`
for Prometheus exposition (``/metrics?format=prom``).
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from ..obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    exponential_buckets,
)
from .api import BackendServiceStats, RequestLogRecord

#: Bucket ladder for service-latency histograms: 1 µs doubling to ~9 min,
#: wide enough for memo hits and cold multi-minute simulations alike.
SERVICE_LATENCY_BUCKETS = exponential_buckets(start=1e-6, factor=2.0, count=40)


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (``q`` in [0, 100]).

    Explicit edge behavior — cluster reports are built from real serving
    logs of arbitrary size, so the edges are contractual, not accidental:

    * empty input returns ``0.0`` (a report over zero samples reads as zero
      latency, never a crash),
    * a single sample is every percentile of itself,
    * ``q=0`` returns the minimum and ``q=100`` the maximum,
    * ``q`` outside [0, 100] (or NaN) raises ``ValueError`` — a silent
      clamp would mask a caller bug as a plausible latency number.
    """
    q = float(q)
    if math.isnan(q) or not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q!r}")
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, int(round(q / 100.0 * len(ordered) + 0.5)))
    return ordered[min(rank, len(ordered)) - 1]


class ServiceStats:
    """Counters and histograms behind :meth:`LatencyService.capacity_report`.

    ``request_log_limit`` bounds the structured per-request log (oldest
    records fall out FIFO); ``None`` keeps every record — the right setting
    when the log will be exported as a :class:`~repro.cluster.trace.RequestTrace`
    for cluster replay, where a truncated trace would misrepresent the
    traffic.

    The latency histogram family is *private* to this instance (not in the
    process-wide :data:`repro.obs.metrics.REGISTRY`): many services live in
    one test process, and registering each would collide on the metric name.
    :meth:`fill_metrics` contributes it to a caller-supplied registry at
    scrape time instead.
    """

    def __init__(self, request_log_limit: Optional[int] = None) -> None:
        self._lock = threading.Lock()
        self.submitted = 0
        self.completed = 0
        self.errors = 0
        self.coalesced = 0
        self.memo_hits = 0
        self.simulations = 0
        self.batches = 0
        self.busy_seconds = 0.0
        self.queue_depth = 0
        self.peak_queue_depth = 0
        self.timeouts = 0
        self.late_results = 0
        self.pool_rebuilds = 0
        self.stacked_batches = 0
        self.stacked_points = 0
        self._latency = Histogram(
            "repro_serving_request_duration_seconds",
            "Submit-to-fulfillment service time, by backend.",
            labelnames=("backend",),
            buckets=SERVICE_LATENCY_BUCKETS,
        )
        self._backends: Dict[str, Histogram] = {}
        self._request_log: Deque[RequestLogRecord] = deque(maxlen=request_log_limit)

    # ------------------------------------------------------------- submission
    def record_submit(self, coalesced: bool, queue_depth: int) -> None:
        with self._lock:
            self.submitted += 1
            if coalesced:
                self.coalesced += 1
            self.queue_depth = queue_depth
            self.peak_queue_depth = max(self.peak_queue_depth, queue_depth)

    # ------------------------------------------------------------ fulfillment
    def record_batch(self, busy_seconds: float, queue_depth: int) -> None:
        with self._lock:
            self.batches += 1
            self.busy_seconds += float(busy_seconds)
            self.queue_depth = queue_depth

    def record_result(
        self,
        backend: str,
        service_seconds: float,
        error: bool = False,
        memo_hit: bool = False,
    ) -> None:
        with self._lock:
            self.completed += 1
            if error:
                self.errors += 1
            if memo_hit:
                self.memo_hits += 1
            histogram = self._backends.get(backend)
            if histogram is None:
                histogram = self._backends[backend] = self._latency.labels(
                    backend=backend
                )
        histogram.observe(float(service_seconds))

    def record_simulations(self, count: int) -> None:
        with self._lock:
            self.simulations += int(count)

    def record_timeout(self) -> None:
        """A ``result()`` call gave up waiting (the ticket stays claimable)."""
        with self._lock:
            self.timeouts += 1

    def record_late_result(self) -> None:
        """A request completed after every waiter had timed out on it."""
        with self._lock:
            self.late_results += 1

    def record_request(self, record: RequestLogRecord) -> None:
        """Append one fulfilled request to the structured request log."""
        with self._lock:
            self._request_log.append(record)

    def request_log(self) -> Tuple[RequestLogRecord, ...]:
        """Snapshot of the structured request log (fulfillment order)."""
        with self._lock:
            return tuple(self._request_log)

    def record_pool_rebuild(self) -> None:
        """The dispatcher replaced a broken worker pool with a fresh one."""
        with self._lock:
            self.pool_rebuilds += 1

    def record_stacked(self, batches: int, points: int) -> None:
        """A shape-bucketed batch priced ``points`` lengths in one stacked pass."""
        with self._lock:
            self.stacked_batches += int(batches)
            self.stacked_points += int(points)

    # ------------------------------------------------------------------ reads
    @property
    def hit_rate(self) -> float:
        with self._lock:
            if self.completed <= 0:
                return 0.0
            return (self.coalesced + self.memo_hits) / self.completed

    def _summary(self, name: str, histogram: Histogram) -> BackendServiceStats:
        return BackendServiceStats(
            backend=name,
            requests=histogram.count,
            mean_seconds=histogram.mean,
            p50_seconds=histogram.quantile(50.0),
            p99_seconds=histogram.quantile(99.0),
        )

    def backend_summaries(self) -> List[BackendServiceStats]:
        with self._lock:
            backends = sorted(self._backends.items())
        return [self._summary(name, histogram) for name, histogram in backends]

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            backends = dict(self._backends)
            out: Dict[str, object] = {
                "submitted": self.submitted,
                "completed": self.completed,
                "errors": self.errors,
                "coalesced": self.coalesced,
                "memo_hits": self.memo_hits,
                "simulations": self.simulations,
                "batches": self.batches,
                "busy_seconds": self.busy_seconds,
                "queue_depth": self.queue_depth,
                "peak_queue_depth": self.peak_queue_depth,
                "timeouts": self.timeouts,
                "late_results": self.late_results,
                "pool_rebuilds": self.pool_rebuilds,
                "stacked_batches": self.stacked_batches,
                "stacked_points": self.stacked_points,
            }
        out["backends"] = {
            name: self._summary(name, histogram)
            for name, histogram in backends.items()
        }
        return out

    # ------------------------------------------------------------- exposition
    def fill_metrics(self, registry: MetricsRegistry) -> MetricsRegistry:
        """Contribute every counter plus the live latency family to ``registry``.

        Counters and gauges are materialized fresh from the current values
        (they are plain ints on the hot path; typed metric objects would buy
        nothing but lock traffic), while the histogram family is registered
        live — its buckets are already exposition-shaped.
        """
        with self._lock:
            values = (
                ("requests_submitted_total", Counter, self.submitted,
                 "Requests accepted by submit()."),
                ("requests_completed_total", Counter, self.completed,
                 "Requests fulfilled (ok or error)."),
                ("errors_total", Counter, self.errors,
                 "Requests fulfilled with an error."),
                ("coalesced_total", Counter, self.coalesced,
                 "Requests attached to an in-flight duplicate."),
                ("memo_hits_total", Counter, self.memo_hits,
                 "Requests answered from the session memo."),
                ("simulations_total", Counter, self.simulations,
                 "Fresh simulator runs."),
                ("batches_total", Counter, self.batches,
                 "Dispatcher execution batches."),
                ("busy_seconds_total", Counter, self.busy_seconds,
                 "Dispatcher busy time, seconds."),
                ("timeouts_total", Counter, self.timeouts,
                 "result() calls that gave up waiting."),
                ("late_results_total", Counter, self.late_results,
                 "Requests completed after every waiter timed out."),
                ("pool_rebuilds_total", Counter, self.pool_rebuilds,
                 "Worker-pool rebuilds after a pool failure."),
                ("stacked_batches_total", Counter, self.stacked_batches,
                 "Shape-bucketed batches priced in one stacked pass."),
                ("stacked_points_total", Counter, self.stacked_points,
                 "(backend, length) points covered by stacked passes."),
                ("queue_depth", Gauge, self.queue_depth,
                 "Requests queued right now."),
                ("peak_queue_depth", Gauge, self.peak_queue_depth,
                 "High-water queue depth."),
            )
        for suffix, kind, value, help_text in values:
            metric = kind(f"repro_serving_{suffix}", help_text, registry=registry)
            if kind is Counter:
                metric.inc(float(value))
            else:
                metric.set(float(value))
        registry.register(self._latency)
        return registry

    def metrics_registry(self) -> MetricsRegistry:
        """A fresh registry holding this service's metrics (scrape-time view)."""
        return self.fill_metrics(MetricsRegistry())
