"""Thread-safe service accounting: hit rates, queue depth, latency percentiles.

One :class:`ServiceStats` instance lives inside every
:class:`~repro.serving.service.LatencyService`.  Submission-side counters are
updated under the service lock by client threads; fulfillment-side counters
and the per-backend latency reservoirs are updated by the dispatcher.  All
reads go through :meth:`ServiceStats.snapshot`, which copies under the lock,
so callers never observe a torn update.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from .api import BackendServiceStats, RequestLogRecord

#: Per-backend latency samples kept for percentile estimation.  Old samples
#: fall out FIFO, so long-lived services report *recent* p50/p99, not the
#: all-time distribution.
RESERVOIR_SIZE = 2048


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (``q`` in [0, 100]).

    Explicit edge behavior — cluster reports are built from real serving
    logs of arbitrary size, so the edges are contractual, not accidental:

    * empty input returns ``0.0`` (a report over zero samples reads as zero
      latency, never a crash),
    * a single sample is every percentile of itself,
    * ``q=0`` returns the minimum and ``q=100`` the maximum,
    * ``q`` outside [0, 100] (or NaN) raises ``ValueError`` — a silent
      clamp would mask a caller bug as a plausible latency number.
    """
    q = float(q)
    if math.isnan(q) or not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q!r}")
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, int(round(q / 100.0 * len(ordered) + 0.5)))
    return ordered[min(rank, len(ordered)) - 1]


class LatencyReservoir:
    """Bounded FIFO of latency samples plus running count/total."""

    def __init__(self, maxlen: int = RESERVOIR_SIZE) -> None:
        self.samples: Deque[float] = deque(maxlen=maxlen)
        self.count = 0
        self.total = 0.0

    def record(self, seconds: float) -> None:
        self.samples.append(float(seconds))
        self.count += 1
        self.total += float(seconds)

    def summary(self, backend: str) -> BackendServiceStats:
        samples = list(self.samples)
        return BackendServiceStats(
            backend=backend,
            requests=self.count,
            mean_seconds=self.total / self.count if self.count else 0.0,
            p50_seconds=percentile(samples, 50.0),
            p99_seconds=percentile(samples, 99.0),
        )


class ServiceStats:
    """Counters and reservoirs behind :meth:`LatencyService.capacity_report`.

    ``request_log_limit`` bounds the structured per-request log (oldest
    records fall out FIFO); ``None`` keeps every record — the right setting
    when the log will be exported as a :class:`~repro.cluster.trace.RequestTrace`
    for cluster replay, where a truncated trace would misrepresent the
    traffic.
    """

    def __init__(self, request_log_limit: Optional[int] = None) -> None:
        self._lock = threading.Lock()
        self.submitted = 0
        self.completed = 0
        self.errors = 0
        self.coalesced = 0
        self.memo_hits = 0
        self.simulations = 0
        self.batches = 0
        self.busy_seconds = 0.0
        self.queue_depth = 0
        self.peak_queue_depth = 0
        self.timeouts = 0
        self.late_results = 0
        self.pool_rebuilds = 0
        self.stacked_batches = 0
        self.stacked_points = 0
        self._backends: Dict[str, LatencyReservoir] = {}
        self._request_log: Deque[RequestLogRecord] = deque(maxlen=request_log_limit)

    # ------------------------------------------------------------- submission
    def record_submit(self, coalesced: bool, queue_depth: int) -> None:
        with self._lock:
            self.submitted += 1
            if coalesced:
                self.coalesced += 1
            self.queue_depth = queue_depth
            self.peak_queue_depth = max(self.peak_queue_depth, queue_depth)

    # ------------------------------------------------------------ fulfillment
    def record_batch(self, busy_seconds: float, queue_depth: int) -> None:
        with self._lock:
            self.batches += 1
            self.busy_seconds += float(busy_seconds)
            self.queue_depth = queue_depth

    def record_result(
        self,
        backend: str,
        service_seconds: float,
        error: bool = False,
        memo_hit: bool = False,
    ) -> None:
        with self._lock:
            self.completed += 1
            if error:
                self.errors += 1
            if memo_hit:
                self.memo_hits += 1
            reservoir = self._backends.get(backend)
            if reservoir is None:
                reservoir = self._backends[backend] = LatencyReservoir()
            reservoir.record(service_seconds)

    def record_simulations(self, count: int) -> None:
        with self._lock:
            self.simulations += int(count)

    def record_timeout(self) -> None:
        """A ``result()`` call gave up waiting (the ticket stays claimable)."""
        with self._lock:
            self.timeouts += 1

    def record_late_result(self) -> None:
        """A request completed after every waiter had timed out on it."""
        with self._lock:
            self.late_results += 1

    def record_request(self, record: RequestLogRecord) -> None:
        """Append one fulfilled request to the structured request log."""
        with self._lock:
            self._request_log.append(record)

    def request_log(self) -> Tuple[RequestLogRecord, ...]:
        """Snapshot of the structured request log (fulfillment order)."""
        with self._lock:
            return tuple(self._request_log)

    def record_pool_rebuild(self) -> None:
        """The dispatcher replaced a broken worker pool with a fresh one."""
        with self._lock:
            self.pool_rebuilds += 1

    def record_stacked(self, batches: int, points: int) -> None:
        """A shape-bucketed batch priced ``points`` lengths in one stacked pass."""
        with self._lock:
            self.stacked_batches += int(batches)
            self.stacked_points += int(points)

    # ------------------------------------------------------------------ reads
    @property
    def hit_rate(self) -> float:
        with self._lock:
            if self.completed <= 0:
                return 0.0
            return (self.coalesced + self.memo_hits) / self.completed

    def backend_summaries(self) -> List[BackendServiceStats]:
        with self._lock:
            return [
                reservoir.summary(name)
                for name, reservoir in sorted(self._backends.items())
            ]

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "submitted": self.submitted,
                "completed": self.completed,
                "errors": self.errors,
                "coalesced": self.coalesced,
                "memo_hits": self.memo_hits,
                "simulations": self.simulations,
                "batches": self.batches,
                "busy_seconds": self.busy_seconds,
                "queue_depth": self.queue_depth,
                "peak_queue_depth": self.peak_queue_depth,
                "timeouts": self.timeouts,
                "late_results": self.late_results,
                "pool_rebuilds": self.pool_rebuilds,
                "stacked_batches": self.stacked_batches,
                "stacked_points": self.stacked_points,
                "backends": {
                    name: reservoir.summary(name)
                    for name, reservoir in self._backends.items()
                },
            }
