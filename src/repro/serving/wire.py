"""Versioned JSON wire format of the serving layer.

The in-process API speaks frozen dataclasses whose fields grew PR-by-PR
(:class:`~repro.serving.api.LatencyRequest`, ``LatencyResponse``,
``CapacityReport``, ``RequestLogRecord``).  This module is the *wire
contract* those types serialize through — the schema the HTTP front door
(:mod:`repro.serving.http`) validates against:

* :class:`WireRequest` / :class:`WireResponse` — the request/response pair a
  client puts on the socket.  Each converts losslessly to and from its
  in-process sibling (``WireRequest.to_latency`` /
  ``WireResponse.from_latency``) and round-trips through JSON exactly
  (``to_json`` / ``from_json``); the only restriction the wire adds is that
  ``backend`` must be a registry *name* — live backend objects and frozen
  config dataclasses are an in-process convenience, not a wire type.
* :class:`ErrorBody` — every non-2xx HTTP response body: a machine-readable
  ``code``, a human-readable ``message``, and (for backpressure) a
  ``retry_after_seconds`` hint mirroring the ``Retry-After`` header.
* converters for the operator-facing types —
  :func:`capacity_report_to_dict` / :func:`capacity_report_from_dict`,
  :func:`log_record_to_dict` / :func:`log_record_from_dict`,
  :func:`request_log_to_json` / :func:`request_log_from_json`, and
  :func:`sim_report_to_dict` / :func:`sim_report_from_dict` — all lossless
  round trips, all carrying ``schema_version``.

Validation is strict: unknown fields, wrong types, non-positive lengths and
unsupported schema versions raise :class:`WireFormatError` with a stable
``code``, which the HTTP layer maps to a 400 with the same code in the
:class:`ErrorBody`.  A payload without ``schema_version`` is read as the
current :data:`SCHEMA_VERSION` (curl-friendliness); a payload with a
*different* version is rejected rather than half-parsed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..sim.backend import SimReport
from .api import (
    BackendServiceStats,
    CapacityReport,
    LatencyRequest,
    LatencyResponse,
    RequestLogRecord,
)

#: Version of the wire schema.  Bump when a field changes meaning or shape;
#: additive optional fields do not require a bump.
SCHEMA_VERSION = 1


class WireFormatError(ValueError):
    """A payload failed wire-schema validation.

    ``code`` is a stable machine-readable identifier (``"invalid_json"``,
    ``"unknown_field"``, ``"invalid_field"``, ``"missing_field"``,
    ``"unsupported_schema_version"``, ``"unserializable_backend"``); the HTTP
    layer returns it verbatim in the :class:`ErrorBody` of a 400 response.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message


# ------------------------------------------------------------------ validators
def _require_dict(payload: Any, what: str) -> Dict[str, Any]:
    if not isinstance(payload, dict):
        raise WireFormatError(
            "invalid_field", f"{what} must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def _check_fields(payload: Mapping[str, Any], allowed: Tuple[str, ...], what: str) -> None:
    for key in payload:
        if key not in allowed:
            raise WireFormatError("unknown_field", f"{what} does not accept field {key!r}")


def _check_version(payload: Mapping[str, Any], what: str) -> int:
    version = payload.get("schema_version", SCHEMA_VERSION)
    if not isinstance(version, int) or isinstance(version, bool) or version != SCHEMA_VERSION:
        raise WireFormatError(
            "unsupported_schema_version",
            f"{what} schema_version must be {SCHEMA_VERSION}, got {version!r}",
        )
    return version


def _as_int(value: Any, field: str, minimum: Optional[int] = None) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise WireFormatError("invalid_field", f"{field} must be an integer, got {value!r}")
    if minimum is not None and value < minimum:
        raise WireFormatError("invalid_field", f"{field} must be >= {minimum}, got {value!r}")
    return value


def _as_float(value: Any, field: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise WireFormatError("invalid_field", f"{field} must be a number, got {value!r}")
    return float(value)


def _as_optional_positive_float(value: Any, field: str) -> Optional[float]:
    if value is None:
        return None
    result = _as_float(value, field)
    if result <= 0:
        raise WireFormatError("invalid_field", f"{field} must be positive, got {value!r}")
    return result


def _as_optional_bool(value: Any, field: str) -> Optional[bool]:
    if value is None or isinstance(value, bool):
        return value
    raise WireFormatError("invalid_field", f"{field} must be a boolean, got {value!r}")


def _as_str(value: Any, field: str) -> str:
    if not isinstance(value, str) or not value:
        raise WireFormatError("invalid_field", f"{field} must be a non-empty string, got {value!r}")
    return value


def _as_optional_str(value: Any, field: str) -> Optional[str]:
    if value is None:
        return None
    return _as_str(value, field)


def _parse_json(text: Any, what: str) -> Any:
    if isinstance(text, (bytes, bytearray)):
        try:
            text = text.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireFormatError("invalid_json", f"{what} is not valid UTF-8: {exc}") from None
    try:
        return json.loads(text)
    except (TypeError, ValueError) as exc:
        raise WireFormatError("invalid_json", f"{what} is not valid JSON: {exc}") from None


# ------------------------------------------------------------------- ErrorBody
@dataclass(frozen=True)
class ErrorBody:
    """The body of every non-2xx HTTP response.

    ``code`` is stable and machine-readable (the same codes
    :class:`WireFormatError` carries, plus the HTTP layer's own:
    ``"backpressure"``, ``"unknown_ticket"``, ``"already_consumed"``,
    ``"reaped"``, ``"draining"``, ``"not_found"``, ``"timeout"``);
    ``retry_after_seconds`` accompanies 429s, mirroring the ``Retry-After``
    header for clients that only read bodies.
    """

    code: str
    message: str
    retry_after_seconds: Optional[float] = None
    schema_version: int = SCHEMA_VERSION

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "code": self.code,
            "message": self.message,
            "retry_after_seconds": self.retry_after_seconds,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ErrorBody":
        payload = _require_dict(payload, "ErrorBody")
        _check_fields(
            payload,
            ("schema_version", "code", "message", "retry_after_seconds"),
            "ErrorBody",
        )
        version = _check_version(payload, "ErrorBody")
        return cls(
            code=_as_str(payload.get("code"), "code"),
            message=_as_str(payload.get("message"), "message"),
            retry_after_seconds=_as_optional_positive_float(
                payload.get("retry_after_seconds"), "retry_after_seconds"
            ),
            schema_version=version,
        )

    @classmethod
    def from_json(cls, text: Any) -> "ErrorBody":
        return cls.from_dict(_parse_json(text, "ErrorBody"))


# ----------------------------------------------------------------- WireRequest
@dataclass(frozen=True)
class WireRequest:
    """One latency query as it crosses the socket.

    The wire twin of :class:`~repro.serving.api.LatencyRequest` plus
    ``tenant`` — the HTTP layer's per-tenant bounded-queue key, which the
    in-process API has no use for and therefore drops on
    :meth:`to_latency`.  ``backend`` must be a backend registry name (the
    wire cannot carry live objects); everything
    :func:`repro.sim.backend.create_backend` resolves from a string works.

    ``trace_id`` carries the client's distributed-tracing ID into the
    service (additive optional field — no schema bump): when the service
    traces, its server-side spans land under this ID and
    ``GET /v1/trace/<id>`` returns them.  The HTTP layer also accepts it via
    the ``X-Trace-Id`` header (body wins when both are present).
    """

    backend: str = "lightnobel"
    sequence_length: int = 0
    include_recycles: Optional[bool] = None
    priority: int = 0
    deadline_seconds: Optional[float] = None
    tenant: str = "default"
    trace_id: Optional[str] = None
    schema_version: int = SCHEMA_VERSION

    _FIELDS = (
        "schema_version",
        "backend",
        "sequence_length",
        "include_recycles",
        "priority",
        "deadline_seconds",
        "tenant",
        "trace_id",
    )

    def to_latency(self) -> LatencyRequest:
        """The in-process request (drops ``tenant``; validates in __post_init__)."""
        return LatencyRequest(
            backend=self.backend,
            sequence_length=self.sequence_length,
            include_recycles=self.include_recycles,
            priority=self.priority,
            deadline_seconds=self.deadline_seconds,
            trace_id=self.trace_id,
        )

    @classmethod
    def from_latency(cls, request: LatencyRequest, tenant: str = "default") -> "WireRequest":
        """Wire twin of an in-process request.

        Raises :class:`WireFormatError` (``"unserializable_backend"``) for
        non-string backend specs — config dataclasses and live backends are
        in-process conveniences; the wire speaks registry names only.
        """
        if not isinstance(request.backend, str):
            raise WireFormatError(
                "unserializable_backend",
                "only string backend names cross the wire; register the spec "
                f"and submit by name (got {type(request.backend).__name__})",
            )
        return cls(
            backend=request.backend,
            sequence_length=request.sequence_length,
            include_recycles=request.include_recycles,
            priority=request.priority,
            deadline_seconds=request.deadline_seconds,
            tenant=tenant,
            trace_id=request.trace_id,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "backend": self.backend,
            "sequence_length": self.sequence_length,
            "include_recycles": self.include_recycles,
            "priority": self.priority,
            "deadline_seconds": self.deadline_seconds,
            "tenant": self.tenant,
            "trace_id": self.trace_id,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "WireRequest":
        payload = _require_dict(payload, "WireRequest")
        _check_fields(payload, cls._FIELDS, "WireRequest")
        version = _check_version(payload, "WireRequest")
        if "sequence_length" not in payload:
            raise WireFormatError("missing_field", "WireRequest requires sequence_length")
        return cls(
            backend=_as_str(payload.get("backend", "lightnobel"), "backend"),
            sequence_length=_as_int(payload["sequence_length"], "sequence_length", minimum=1),
            include_recycles=_as_optional_bool(
                payload.get("include_recycles"), "include_recycles"
            ),
            priority=_as_int(payload.get("priority", 0), "priority"),
            deadline_seconds=_as_optional_positive_float(
                payload.get("deadline_seconds"), "deadline_seconds"
            ),
            tenant=_as_str(payload.get("tenant", "default"), "tenant"),
            trace_id=_as_optional_str(payload.get("trace_id"), "trace_id"),
            schema_version=version,
        )

    @classmethod
    def from_json(cls, text: Any) -> "WireRequest":
        return cls.from_dict(_parse_json(text, "WireRequest"))


# ------------------------------------------------------------------- SimReport
def sim_report_to_dict(report: SimReport) -> Dict[str, Any]:
    """JSON-able dict of a :class:`~repro.sim.backend.SimReport` (lossless)."""
    return {
        "schema_version": SCHEMA_VERSION,
        "backend": report.backend,
        "sequence_length": int(report.sequence_length),
        "total_seconds": float(report.total_seconds),
        "phase_seconds": {str(k): float(v) for k, v in report.phase_seconds.items()},
        "subphase_seconds": {str(k): float(v) for k, v in report.subphase_seconds.items()},
        "out_of_memory": bool(report.out_of_memory),
        "details": {str(k): float(v) for k, v in report.details.items()},
    }


def sim_report_from_dict(payload: Mapping[str, Any]) -> SimReport:
    payload = _require_dict(payload, "SimReport")
    _check_fields(
        payload,
        (
            "schema_version",
            "backend",
            "sequence_length",
            "total_seconds",
            "phase_seconds",
            "subphase_seconds",
            "out_of_memory",
            "details",
        ),
        "SimReport",
    )
    _check_version(payload, "SimReport")
    if not isinstance(payload.get("out_of_memory", False), bool):
        raise WireFormatError("invalid_field", "out_of_memory must be a boolean")

    def _float_map(name: str) -> Dict[str, float]:
        mapping = _require_dict(payload.get(name, {}), f"SimReport.{name}")
        return {_as_str(k, f"{name} key"): _as_float(v, f"{name}[{k!r}]") for k, v in mapping.items()}

    return SimReport(
        backend=_as_str(payload.get("backend"), "backend"),
        sequence_length=_as_int(payload.get("sequence_length"), "sequence_length", minimum=1),
        total_seconds=_as_float(payload.get("total_seconds"), "total_seconds"),
        phase_seconds=_float_map("phase_seconds"),
        subphase_seconds=_float_map("subphase_seconds"),
        out_of_memory=bool(payload.get("out_of_memory", False)),
        details=_float_map("details"),
    )


# ---------------------------------------------------------------- WireResponse
@dataclass(frozen=True)
class WireResponse:
    """One fulfilled (or failed) request as it crosses the socket.

    The wire twin of :class:`~repro.serving.api.LatencyResponse`: the ticket
    id, the request as admitted (a :class:`WireRequest`, so the tenant rides
    along), the full :class:`~repro.sim.backend.SimReport` when the request
    succeeded, and the service-side timings.  ``to_latency`` /
    ``from_latency`` round-trip losslessly for any string-backend request.
    """

    ticket_id: int
    request: WireRequest
    report: Optional[SimReport] = None
    error: Optional[str] = None
    coalesced: bool = False
    queue_seconds: float = 0.0
    service_seconds: float = 0.0
    completed_index: int = -1
    schema_version: int = SCHEMA_VERSION

    _FIELDS = (
        "schema_version",
        "ticket_id",
        "request",
        "report",
        "error",
        "coalesced",
        "queue_seconds",
        "service_seconds",
        "completed_index",
    )

    @property
    def ok(self) -> bool:
        return self.error is None and self.report is not None

    @classmethod
    def from_latency(
        cls, response: LatencyResponse, tenant: str = "default"
    ) -> "WireResponse":
        return cls(
            ticket_id=response.request_id,
            request=WireRequest.from_latency(response.request, tenant=tenant),
            report=response.report,
            error=response.error,
            coalesced=response.coalesced,
            queue_seconds=response.queue_seconds,
            service_seconds=response.service_seconds,
            completed_index=response.completed_index,
        )

    def to_latency(self) -> LatencyResponse:
        return LatencyResponse(
            request_id=self.ticket_id,
            request=self.request.to_latency(),
            report=self.report,
            error=self.error,
            coalesced=self.coalesced,
            queue_seconds=self.queue_seconds,
            service_seconds=self.service_seconds,
            completed_index=self.completed_index,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "ticket_id": self.ticket_id,
            "request": self.request.to_dict(),
            "report": None if self.report is None else sim_report_to_dict(self.report),
            "error": self.error,
            "coalesced": self.coalesced,
            "queue_seconds": float(self.queue_seconds),
            "service_seconds": float(self.service_seconds),
            "completed_index": self.completed_index,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "WireResponse":
        payload = _require_dict(payload, "WireResponse")
        _check_fields(payload, cls._FIELDS, "WireResponse")
        version = _check_version(payload, "WireResponse")
        error = payload.get("error")
        if error is not None and not isinstance(error, str):
            raise WireFormatError("invalid_field", "error must be a string or null")
        report = payload.get("report")
        return cls(
            ticket_id=_as_int(payload.get("ticket_id"), "ticket_id", minimum=0),
            request=WireRequest.from_dict(payload.get("request", {})),
            report=None if report is None else sim_report_from_dict(report),
            error=error,
            coalesced=bool(_as_optional_bool(payload.get("coalesced", False), "coalesced")),
            queue_seconds=_as_float(payload.get("queue_seconds", 0.0), "queue_seconds"),
            service_seconds=_as_float(payload.get("service_seconds", 0.0), "service_seconds"),
            completed_index=_as_int(payload.get("completed_index", -1), "completed_index"),
            schema_version=version,
        )

    @classmethod
    def from_json(cls, text: Any) -> "WireResponse":
        return cls.from_dict(_parse_json(text, "WireResponse"))


# -------------------------------------------------------------- CapacityReport
def backend_stats_to_dict(row: BackendServiceStats) -> Dict[str, Any]:
    return {
        "backend": row.backend,
        "requests": int(row.requests),
        "mean_seconds": float(row.mean_seconds),
        "p50_seconds": float(row.p50_seconds),
        "p99_seconds": float(row.p99_seconds),
    }


def backend_stats_from_dict(payload: Mapping[str, Any]) -> BackendServiceStats:
    payload = _require_dict(payload, "BackendServiceStats")
    _check_fields(
        payload,
        ("backend", "requests", "mean_seconds", "p50_seconds", "p99_seconds"),
        "BackendServiceStats",
    )
    return BackendServiceStats(
        backend=_as_str(payload.get("backend"), "backend"),
        requests=_as_int(payload.get("requests"), "requests", minimum=0),
        mean_seconds=_as_float(payload.get("mean_seconds"), "mean_seconds"),
        p50_seconds=_as_float(payload.get("p50_seconds"), "p50_seconds"),
        p99_seconds=_as_float(payload.get("p99_seconds"), "p99_seconds"),
    )


_CAPACITY_INT_FIELDS = (
    "requests",
    "completed",
    "errors",
    "coalesced",
    "memo_hits",
    "simulations",
    "queue_depth",
    "peak_queue_depth",
    "timed_out",
    "late_results",
    "pool_rebuilds",
    "stacked_batches",
    "stacked_points",
)
_CAPACITY_FLOAT_FIELDS = ("wall_seconds", "busy_seconds", "queries_per_second")


def capacity_report_to_dict(report: CapacityReport) -> Dict[str, Any]:
    """JSON-able dict of a :class:`~repro.serving.api.CapacityReport` (lossless)."""
    payload: Dict[str, Any] = {"schema_version": SCHEMA_VERSION}
    for name in _CAPACITY_INT_FIELDS:
        payload[name] = int(getattr(report, name))
    for name in _CAPACITY_FLOAT_FIELDS:
        payload[name] = float(getattr(report, name))
    payload["backends"] = [backend_stats_to_dict(row) for row in report.backends]
    return payload


def capacity_report_from_dict(payload: Mapping[str, Any]) -> CapacityReport:
    payload = _require_dict(payload, "CapacityReport")
    _check_fields(
        payload,
        ("schema_version", "backends") + _CAPACITY_INT_FIELDS + _CAPACITY_FLOAT_FIELDS,
        "CapacityReport",
    )
    _check_version(payload, "CapacityReport")
    rows = payload.get("backends", [])
    if not isinstance(rows, (list, tuple)):
        raise WireFormatError("invalid_field", "backends must be a list")
    kwargs: Dict[str, Any] = {
        name: _as_int(payload.get(name, 0), name) for name in _CAPACITY_INT_FIELDS
    }
    kwargs.update(
        {name: _as_float(payload.get(name, 0.0), name) for name in _CAPACITY_FLOAT_FIELDS}
    )
    kwargs["backends"] = tuple(backend_stats_from_dict(row) for row in rows)
    return CapacityReport(**kwargs)


# ------------------------------------------------------------ RequestLogRecord
_LOG_FIELDS = (
    "schema_version",
    "ticket_id",
    "backend",
    "sequence_length",
    "priority",
    "deadline_seconds",
    "arrival_seconds",
    "outcome",
    "coalesced",
    "queue_seconds",
    "service_seconds",
    "trace_id",
)


def log_record_to_dict(record: RequestLogRecord) -> Dict[str, Any]:
    """JSON-able dict of a :class:`~repro.serving.api.RequestLogRecord` (lossless)."""
    return {
        "schema_version": SCHEMA_VERSION,
        "ticket_id": int(record.ticket_id),
        "backend": record.backend,
        "sequence_length": int(record.sequence_length),
        "priority": int(record.priority),
        "deadline_seconds": (
            None if record.deadline_seconds is None else float(record.deadline_seconds)
        ),
        "arrival_seconds": float(record.arrival_seconds),
        "outcome": record.outcome,
        "coalesced": bool(record.coalesced),
        "queue_seconds": float(record.queue_seconds),
        "service_seconds": float(record.service_seconds),
        "trace_id": record.trace_id,
    }


def log_record_from_dict(payload: Mapping[str, Any]) -> RequestLogRecord:
    payload = _require_dict(payload, "RequestLogRecord")
    _check_fields(payload, _LOG_FIELDS, "RequestLogRecord")
    _check_version(payload, "RequestLogRecord")
    return RequestLogRecord(
        ticket_id=_as_int(payload.get("ticket_id"), "ticket_id", minimum=0),
        backend=_as_str(payload.get("backend"), "backend"),
        sequence_length=_as_int(payload.get("sequence_length"), "sequence_length", minimum=1),
        priority=_as_int(payload.get("priority", 0), "priority"),
        deadline_seconds=_as_optional_positive_float(
            payload.get("deadline_seconds"), "deadline_seconds"
        ),
        arrival_seconds=_as_float(payload.get("arrival_seconds", 0.0), "arrival_seconds"),
        outcome=_as_str(payload.get("outcome", "ok"), "outcome"),
        coalesced=bool(_as_optional_bool(payload.get("coalesced", False), "coalesced")),
        queue_seconds=_as_float(payload.get("queue_seconds", 0.0), "queue_seconds"),
        service_seconds=_as_float(payload.get("service_seconds", 0.0), "service_seconds"),
        trace_id=_as_optional_str(payload.get("trace_id"), "trace_id"),
    )


def request_log_to_json(records: Sequence[RequestLogRecord]) -> str:
    """Serialize a request log — the ``GET /v1/log`` response body."""
    return json.dumps(
        {
            "schema_version": SCHEMA_VERSION,
            "records": [log_record_to_dict(record) for record in records],
        },
        sort_keys=True,
    )


def request_log_from_json(text: Any) -> List[RequestLogRecord]:
    """Parse a ``GET /v1/log`` body back into typed log records.

    The result feeds :meth:`repro.cluster.trace.RequestTrace.from_serving_log`
    directly: live HTTP traffic becomes a replayable cluster trace.
    """
    payload = _require_dict(_parse_json(text, "request log"), "request log")
    _check_fields(payload, ("schema_version", "records"), "request log")
    _check_version(payload, "request log")
    records = payload.get("records", [])
    if not isinstance(records, list):
        raise WireFormatError("invalid_field", "records must be a list")
    return [log_record_from_dict(record) for record in records]
