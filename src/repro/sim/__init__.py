"""Unified simulation-backend layer: sessions, batches, sweeps, disk cache.

Every latency number in the repository — the accelerator model, the GPU
rooflines, the Fig. 12–16 figure loops — flows through this package.  It
abstracts the two simulators behind one protocol and owns the caches that
make repeated sweeps cheap.

Usage
-----
Session + batch (one cached operator table per distinct length, all backends
evaluated columnar-style)::

    from repro.sim import SimulationSession

    session = SimulationSession()                      # PPMConfig.paper()
    report = session.simulate(1410, backend="lightnobel")
    batch = session.simulate_batch(
        [300, 800, 1410], backends=["lightnobel", "h100", "h100-chunk"]
    )
    batch.mean_folding_seconds("h100-chunk")           # Fig. 14b-d metric

Sharded sweeps (process pool with serial fallback; pool ≡ serial results)::

    from repro.sim import SweepPoint, sweep
    from repro.hardware import LightNobelConfig

    points = [
        SweepPoint(LightNobelConfig(num_rmpus=r), n)
        for r in (8, 16, 32)
        for n in (200, 400)
    ]
    reports = sweep(points, workers=4)                 # or workers=None: serial

Disk cache (cross-process reuse of tables and reports; version-stamped, safe
to delete)::

    session = SimulationSession(cache_dir="/tmp/repro-sim")
    # or: export REPRO_SIM_CACHE_DIR=/tmp/repro-sim

Backends are resolved from specs — registered names (``"lightnobel"``,
``"a100"``, ``"h100"``, ``"a100-chunk"``, ``"h100-chunk"``), frozen config
dataclasses, or :class:`AcceleratorVariant`/:class:`GPUVariant` — and new
backends are one :func:`register_backend` call away.
"""

from .backend import (
    AcceleratorBackend,
    AcceleratorVariant,
    GPUBackend,
    GPUVariant,
    LatencyBackend,
    SimReport,
    available_backends,
    create_backend,
    register_backend,
    supports_stacking,
)
from .cache import CACHE_DIR_ENV, CACHE_SCHEMA_VERSION, DiskCache, default_cache_dir
from .session import BatchResult, DEFAULT_BACKENDS, SimulationSession, session_for
from .sweep import SweepPoint, sweep

__all__ = [
    "AcceleratorBackend",
    "AcceleratorVariant",
    "BatchResult",
    "CACHE_DIR_ENV",
    "CACHE_SCHEMA_VERSION",
    "DEFAULT_BACKENDS",
    "DiskCache",
    "GPUBackend",
    "GPUVariant",
    "LatencyBackend",
    "SimReport",
    "SimulationSession",
    "SweepPoint",
    "available_backends",
    "create_backend",
    "default_cache_dir",
    "register_backend",
    "session_for",
    "supports_stacking",
    "sweep",
]
