"""Latency backends: one protocol over every simulator that produces seconds.

The accelerator model (:class:`~repro.hardware.accelerator.LightNobelAccelerator`)
and the GPU roofline (:class:`~repro.gpu.gpu_model.GPUModel`) grew up as
unrelated classes with different report shapes (cycles vs seconds, different
phase accessors).  Every figure loop downstream re-implemented the glue.  This
module gives them a single face:

* :class:`SimReport` — the common result shape (seconds, per-phase seconds,
  OOM flag, backend-specific details),
* :class:`LatencyBackend` — the protocol every backend implements
  (``simulate_table`` over a cached :class:`~repro.ppm.op_table.OperatorTable`
  plus a stable ``config_digest`` for cache keys),
* :class:`AcceleratorBackend` / :class:`GPUBackend` — adapters over the two
  existing simulators,
* a registry (:func:`register_backend` / :func:`create_backend`) so a new
  backend — a chunked-GPU variant, a future multi-chip configuration — is one
  class (or one frozen spec) away from every sweep in the repo.

Backends are resolved from *specs*: a registered name (``"lightnobel"``,
``"h100"``, ``"a100-chunk"`` …), a :class:`~repro.hardware.config.LightNobelConfig`,
a :class:`~repro.gpu.gpu_config.GPUSpec`, a frozen :class:`AcceleratorVariant` /
:class:`GPUVariant`, or an already-built backend.  Specs are plain frozen
dataclasses, so sweep points ship cleanly across process boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Protocol,
    Tuple,
    runtime_checkable,
)

from .._digest import stable_digest
from ..core.aaq import AAQConfig
from ..gpu.gpu_config import GPUSpec, GPUS, get_gpu
from ..gpu.gpu_model import GPUModel
from ..hardware.accelerator import LightNobelAccelerator
from ..hardware.config import LightNobelConfig
from ..ppm.config import PPMConfig
from ..ppm.op_table import OperatorTable, StackedOperatorTable, get_op_table
from ..ppm.workload import PHASE_PAIR, PHASE_SEQUENCE


@dataclass(frozen=True)
class SimReport:
    """Backend-independent latency report for one (backend, length) point."""

    backend: str
    sequence_length: int
    total_seconds: float
    phase_seconds: Mapping[str, float] = field(default_factory=dict)
    subphase_seconds: Mapping[str, float] = field(default_factory=dict)
    out_of_memory: bool = False
    #: Backend-specific scalars (cycles, DRAM bytes, kernel counts, ...).
    details: Mapping[str, float] = field(default_factory=dict)

    @property
    def folding_block_seconds(self) -> float:
        """Latency of the Protein Folding Block phases (the Fig. 14b-d metric)."""
        return self.phase_seconds.get(PHASE_PAIR, 0.0) + self.phase_seconds.get(
            PHASE_SEQUENCE, 0.0
        )


@runtime_checkable
class LatencyBackend(Protocol):
    """Anything that turns an operator table into a :class:`SimReport`.

    Backends may additionally implement
    ``simulate_stack(stack: StackedOperatorTable) -> List[SimReport]`` —
    one vectorized pass over a whole length mix, bit-identical per segment to
    ``simulate_table`` — which the session/sweep layers use when present
    (:func:`supports_stacking`); otherwise they fall back to per-table calls.
    """

    name: str
    ppm_config: PPMConfig

    def simulate_table(self, table: OperatorTable) -> SimReport:
        """Evaluate one cached operator table."""
        ...

    def config_digest(self) -> str:
        """Stable hash of everything that affects this backend's numbers."""
        ...


def supports_stacking(backend) -> bool:
    """Whether ``backend`` can evaluate a :class:`StackedOperatorTable` in one pass."""
    return callable(getattr(backend, "simulate_stack", None))


#: Memo for backend config digests keyed by the (hashable, frozen) config
#: values themselves.  Sessions are cheap to create, so the same handful of
#: configurations gets re-digested constantly; the JSON canonicalization
#: behind :func:`stable_digest` is the single largest cost of standing up a
#: session.  Bounded: cleared wholesale if an unexpected config churn ever
#: grows it past the cap.
_DIGEST_MEMO: Dict[Tuple, str] = {}
_DIGEST_MEMO_LIMIT = 256


def _memoized_digest(kind: str, payload: Dict) -> str:
    try:
        key = (kind, tuple(sorted(payload.items())))
        cached = _DIGEST_MEMO.get(key)
    except TypeError:  # unhashable config object — digest it every time
        return stable_digest(kind, payload)
    if cached is None:
        if len(_DIGEST_MEMO) >= _DIGEST_MEMO_LIMIT:
            _DIGEST_MEMO.clear()
        cached = _DIGEST_MEMO[key] = stable_digest(kind, payload)
    return cached


class AcceleratorBackend:
    """Adapter exposing :class:`LightNobelAccelerator` as a :class:`LatencyBackend`."""

    def __init__(
        self,
        ppm_config: Optional[PPMConfig] = None,
        hw_config: Optional[LightNobelConfig] = None,
        aaq_config: Optional[AAQConfig] = None,
        tokenwise_mha: bool = True,
        name: Optional[str] = None,
        simulator: Optional[LightNobelAccelerator] = None,
    ) -> None:
        if simulator is None:
            simulator = LightNobelAccelerator(
                hw_config=hw_config,
                ppm_config=ppm_config,
                aaq_config=aaq_config,
                tokenwise_mha=tokenwise_mha,
            )
        self.simulator = simulator
        self.ppm_config = simulator.ppm_config
        self.name = name or "lightnobel"

    def _to_sim_report(self, report) -> SimReport:
        clock = self.simulator.hw_config.cycles_per_second
        return SimReport(
            backend=self.name,
            sequence_length=report.sequence_length,
            total_seconds=report.total_seconds,
            phase_seconds=report.phase_seconds(clock),
            subphase_seconds={
                sub: cycles / clock for sub, cycles in report.subphase_cycles.items()
            },
            out_of_memory=False,
            details={
                "total_cycles": report.total_cycles,
                "dram_bytes": report.dram_bytes,
            },
        )

    def simulate_table(self, table: OperatorTable) -> SimReport:
        return self._to_sim_report(self.simulator.simulate_table(table))

    def simulate_stack(self, stack: StackedOperatorTable) -> List[SimReport]:
        """One vectorized engine pass over a length mix; reports per segment."""
        return [self._to_sim_report(r) for r in self.simulator.simulate_stack(stack)]

    def simulate_stack_totals(
        self, stack: StackedOperatorTable
    ) -> List[Tuple[float, bool]]:
        """Per-segment ``(total_seconds, out_of_memory)`` without reports."""
        return [(t, False) for t in self.simulator.simulate_stack_totals(stack)]

    def simulate(self, sequence_length: int) -> SimReport:
        """Convenience path when no session manages the table cache."""
        return self.simulate_table(get_op_table(self.ppm_config, sequence_length))

    def config_digest(self) -> str:
        return _memoized_digest(
            type(self).__name__,
            {
                "hw": self.simulator.hw_config,
                "ppm": self.simulator.ppm_config,
                "aaq": self.simulator.aaq_config,
                "tokenwise_mha": self.simulator.tokenwise_mha,
            },
        )


class GPUBackend:
    """Adapter exposing :class:`GPUModel` (± chunking) as a :class:`LatencyBackend`."""

    def __init__(
        self,
        gpu: GPUSpec | str = "H100",
        chunked: bool = False,
        ppm_config: Optional[PPMConfig] = None,
        name: Optional[str] = None,
    ) -> None:
        self.model = GPUModel(gpu, ppm_config=ppm_config)
        self.chunked = chunked
        self.ppm_config = self.model.ppm_config
        default = self.model.gpu.name.lower() + ("-chunk" if chunked else "")
        self.name = name or default

    def _to_sim_report(self, report) -> SimReport:
        # The GPULatencyReport is built fresh per call and discarded here, so
        # its phase/subphase dicts can be adopted without a defensive copy.
        return SimReport(
            backend=self.name,
            sequence_length=report.sequence_length,
            total_seconds=report.total_seconds,
            phase_seconds=report.phase_seconds,
            subphase_seconds=report.subphase_seconds,
            out_of_memory=report.out_of_memory,
            details={"kernel_count": report.kernel_count},
        )

    def simulate_table(self, table: OperatorTable) -> SimReport:
        return self._to_sim_report(self.model.simulate_table(table, chunked=self.chunked))

    def simulate_stack(self, stack: StackedOperatorTable) -> List[SimReport]:
        """One vectorized roofline pass over a length mix; reports per segment."""
        return [
            self._to_sim_report(r)
            for r in self.model.simulate_stack(stack, chunked=self.chunked)
        ]

    def simulate_stack_totals(
        self, stack: StackedOperatorTable
    ) -> List[Tuple[float, bool]]:
        """Per-segment ``(total_seconds, out_of_memory)`` without reports."""
        fits = self.model.fits_in_memory
        return [
            (t, not fits(n, chunked=self.chunked))
            for t, n in zip(
                self.model.simulate_stack_totals(stack, chunked=self.chunked),
                stack.lengths,
            )
        ]

    def simulate(self, sequence_length: int) -> SimReport:
        """Convenience path when no session manages the table cache."""
        return self.simulate_table(get_op_table(self.ppm_config, sequence_length))

    def fits_in_memory(self, sequence_length: int) -> bool:
        return self.model.fits_in_memory(sequence_length, chunked=self.chunked)

    def config_digest(self) -> str:
        return _memoized_digest(
            type(self).__name__,
            {
                "gpu": self.model.gpu,
                "ppm": self.model.ppm_config,
                "chunked": self.chunked,
            },
        )


# ------------------------------------------------------------ declarative specs
@dataclass(frozen=True)
class AcceleratorVariant:
    """Picklable spec for an accelerator backend (sweep fan-out friendly)."""

    hw_config: Optional[LightNobelConfig] = None
    aaq_config: Optional[AAQConfig] = None
    tokenwise_mha: bool = True
    name: Optional[str] = None

    def build(self, ppm_config: Optional[PPMConfig] = None) -> AcceleratorBackend:
        return AcceleratorBackend(
            ppm_config=ppm_config,
            hw_config=self.hw_config,
            aaq_config=self.aaq_config,
            tokenwise_mha=self.tokenwise_mha,
            name=self.name,
        )


@dataclass(frozen=True)
class GPUVariant:
    """Picklable spec for a GPU backend (sweep fan-out friendly)."""

    gpu: str = "H100"
    chunked: bool = False
    name: Optional[str] = None

    def build(self, ppm_config: Optional[PPMConfig] = None) -> GPUBackend:
        return GPUBackend(
            gpu=self.gpu, chunked=self.chunked, ppm_config=ppm_config, name=self.name
        )


# --------------------------------------------------------------------- registry
BackendFactory = Callable[[Optional[PPMConfig]], LatencyBackend]

_REGISTRY: Dict[str, BackendFactory] = {}


def register_backend(name: str, factory: BackendFactory) -> None:
    """Register a named backend factory (``factory(ppm_config) -> backend``)."""
    _REGISTRY[name.lower()] = factory


def available_backends() -> Tuple[str, ...]:
    """Names resolvable by :func:`create_backend` (sorted)."""
    return tuple(sorted(_REGISTRY))


def _register_defaults() -> None:
    register_backend("lightnobel", lambda ppm: AcceleratorBackend(ppm_config=ppm))
    for gpu_name in GPUS:
        for chunked in (False, True):
            spec = GPUVariant(gpu=gpu_name, chunked=chunked)
            name = gpu_name.lower() + ("-chunk" if chunked else "")
            register_backend(name, spec.build)


_register_defaults()


def create_backend(spec, ppm_config: Optional[PPMConfig] = None) -> LatencyBackend:
    """Resolve a backend spec into a ready :class:`LatencyBackend`.

    Accepts a registered name (case-insensitive; unknown names falling back to
    ``get_gpu`` so plain GPU names always work, with an optional ``-chunk``
    suffix), a :class:`LightNobelConfig`, a :class:`GPUSpec`, a frozen
    :class:`AcceleratorVariant`/:class:`GPUVariant`, or an existing backend
    instance (returned unchanged).
    """
    if isinstance(spec, (AcceleratorVariant, GPUVariant)):
        return spec.build(ppm_config)
    # Any frozen variant-style spec with a build(ppm_config) factory resolves
    # the same way (e.g. repro.cluster.fleet.MultiChipVariant) — new backend
    # families do not need to be enumerated here.
    build = getattr(spec, "build", None)
    if callable(build) and not isinstance(spec, type) and not hasattr(spec, "simulate_table"):
        return build(ppm_config)
    if isinstance(spec, LightNobelConfig):
        return AcceleratorBackend(ppm_config=ppm_config, hw_config=spec)
    if isinstance(spec, GPUSpec):
        return GPUBackend(gpu=spec, ppm_config=ppm_config)
    if isinstance(spec, str):
        key = spec.lower()
        factory = _REGISTRY.get(key)
        if factory is not None:
            return factory(ppm_config)
        chunked = key.endswith("-chunk")
        gpu_name = key[: -len("-chunk")] if chunked else key
        try:
            gpu = get_gpu(gpu_name.upper())
        except ValueError:
            raise ValueError(
                f"unknown backend {spec!r}; expected one of {available_backends()}"
            ) from None
        return GPUBackend(gpu=gpu, chunked=chunked, ppm_config=ppm_config)
    if hasattr(spec, "simulate_table") and hasattr(spec, "config_digest"):
        return spec
    if isinstance(spec, LightNobelAccelerator):
        return AcceleratorBackend(simulator=spec)
    if isinstance(spec, GPUModel):
        return GPUBackend(gpu=spec.gpu, ppm_config=spec.ppm_config)
    raise TypeError(f"cannot build a latency backend from {type(spec).__name__!r}")
