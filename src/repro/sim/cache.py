"""On-disk cache for operator tables and simulation reports.

Cross-process companion to the in-process LRU of
:mod:`repro.ppm.op_table`: a sharded DSE sweep (or a fresh CI process)
should not rebuild the ~3k-operator graph for a (config, length) pair that
any earlier process already built.  Entries are pickle files named by a
stable config digest (:mod:`repro._digest`), wrapped in a version-stamped
envelope:

* a schema-version mismatch (older/newer code) invalidates the entry,
* a key mismatch (hash collision, renamed file) invalidates the entry,
* a corrupt/truncated pickle invalidates the entry,

where "invalidates" means the file is deleted and treated as a miss — the
cache directory is always safe to delete wholesale.

The default directory is ``$REPRO_SIM_CACHE_DIR`` when set, else
``~/.cache/repro-sim``.  Writes are atomic (temp file + ``os.replace``) so
concurrent sweep workers can share one directory.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Optional

from .. import __version__

#: Bump whenever the pickled payload layout changes; older entries then
#: self-invalidate instead of deserializing into garbage.  Entries are also
#: stamped with ``repro.__version__`` so cached tables/reports cannot outlive
#: a release that changes workload-builder or cost-model semantics.
CACHE_SCHEMA_VERSION = 1

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_SIM_CACHE_DIR"


def default_cache_dir() -> Path:
    """``$REPRO_SIM_CACHE_DIR`` if set, else ``~/.cache/repro-sim``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-sim"


@contextmanager
def sandbox_cache_dir(path: Path | str):
    """Point ``CACHE_DIR_ENV`` at ``path`` for the duration of the block.

    Covers every cache consumer inside the block — direct sessions, serial
    sweeps, and process-pool sweep workers (which inherit the environment) —
    and restores the previous value on exit.  The CI smoke entry points use
    this so nothing writes cache state into the runner workspace or home;
    the test suite's conftest applies the same sandbox session-wide.
    """
    previous = os.environ.get(CACHE_DIR_ENV)
    os.environ[CACHE_DIR_ENV] = str(path)
    try:
        yield Path(path)
    finally:
        if previous is None:
            os.environ.pop(CACHE_DIR_ENV, None)
        else:
            os.environ[CACHE_DIR_ENV] = previous


class DiskCache:
    """Digest-keyed pickle cache with a version-stamped envelope."""

    def __init__(self, root: Optional[Path | str] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.invalidations = 0

    # ------------------------------------------------------------------ layout
    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    def _invalidate(self, path: Path) -> None:
        self.invalidations += 1
        try:
            path.unlink()
        except OSError:
            pass

    # --------------------------------------------------------------------- api
    def get(self, key: str) -> Optional[Any]:
        """Payload stored under ``key``, or ``None`` on miss/invalid entry."""
        path = self.path_for(key)
        if not path.exists():
            self.misses += 1
            return None
        try:
            with open(path, "rb") as handle:
                envelope = pickle.load(handle)
        except Exception:
            self._invalidate(path)
            self.misses += 1
            return None
        if (
            not isinstance(envelope, dict)
            or envelope.get("version") != CACHE_SCHEMA_VERSION
            or envelope.get("repro_version") != __version__
            or envelope.get("key") != key
            or "payload" not in envelope
        ):
            self._invalidate(path)
            self.misses += 1
            return None
        self.hits += 1
        return envelope["payload"]

    def put(self, key: str, payload: Any) -> None:
        """Atomically store ``payload`` under ``key``."""
        self.root.mkdir(parents=True, exist_ok=True)
        envelope = {
            "version": CACHE_SCHEMA_VERSION,
            "repro_version": __version__,
            "key": key,
            "payload": payload,
        }
        fd, tmp_name = tempfile.mkstemp(
            prefix=f"{key}.", suffix=".tmp", dir=str(self.root)
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(envelope, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, self.path_for(key))
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.writes += 1

    def clear(self) -> int:
        """Delete every cache entry; returns the number of files removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.pkl"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "invalidations": self.invalidations,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DiskCache(root={str(self.root)!r}, {self.stats()})"
