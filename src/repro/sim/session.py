"""Simulation session: the single entry point for every latency number.

A :class:`SimulationSession` owns, for one :class:`~repro.ppm.config.PPMConfig`:

* the **workload/table cache** — each distinct sequence length builds its
  :class:`~repro.ppm.op_table.OperatorTable` at most once per process (and,
  with the disk cache enabled, at most once per machine),
* the **backend set** — named :class:`~repro.sim.backend.LatencyBackend`
  instances resolved from specs (``"lightnobel"``, ``"h100-chunk"``, a
  :class:`~repro.hardware.config.LightNobelConfig`, ...),
* the **report memo** — one :class:`~repro.sim.backend.SimReport` per
  (backend, length) pair, memoized in memory and optionally persisted to the
  version-stamped disk cache of :mod:`repro.sim.cache`.

:meth:`SimulationSession.simulate_batch` amortizes one cached table per
distinct length and evaluates all requested backends on it columnar-style —
the loop the paper's Figs. 12–16 all run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .._digest import stable_digest
from ..ppm.config import PPMConfig
from ..ppm.op_table import (
    OperatorTable,
    StackedOperatorTable,
    get_op_table,
    get_stacked_table,
)
from .backend import LatencyBackend, SimReport, create_backend, supports_stacking
from .cache import CACHE_DIR_ENV, DiskCache

import os

#: Backends a session resolves by default.
DEFAULT_BACKENDS: Tuple[str, ...] = ("lightnobel", "h100")


@dataclass
class BatchResult:
    """Result of one :meth:`SimulationSession.simulate_batch` call."""

    lengths: List[int]
    backends: List[str]
    reports: Dict[Tuple[str, int], SimReport] = field(default_factory=dict)

    def report(self, backend: str, sequence_length: int) -> SimReport:
        return self.reports[(backend, int(sequence_length))]

    def totals(self, backend: str) -> List[float]:
        """Total seconds per input length (aligned with ``lengths``)."""
        return [self.report(backend, n).total_seconds for n in self.lengths]

    def folding_seconds(self, backend: str) -> List[float]:
        return [self.report(backend, n).folding_block_seconds for n in self.lengths]

    def mean_total_seconds(self, backend: str) -> float:
        values = self.totals(backend)
        return sum(values) / len(values) if values else 0.0

    def mean_folding_seconds(self, backend: str) -> float:
        values = self.folding_seconds(backend)
        return sum(values) / len(values) if values else 0.0

    def any_out_of_memory(self, backend: str) -> bool:
        return any(self.report(backend, n).out_of_memory for n in self.lengths)


def session_for(
    ppm_config: Optional[PPMConfig],
    session: Optional["SimulationSession"],
    backends: Iterable = (),
) -> "SimulationSession":
    """Reconcile an optional caller-supplied session with a PPM config.

    Figure entry points accept both; passing a session alongside a
    *different* config would silently simulate the session's config, so the
    mismatch raises instead.  With no session, a fresh one is built over
    ``ppm_config`` (default: the paper configuration).
    """
    if session is not None:
        if ppm_config is not None and ppm_config != session.ppm_config:
            raise ValueError(
                "ppm_config does not match session.ppm_config; pass one or the other"
            )
        return session
    return SimulationSession(ppm_config=ppm_config or PPMConfig.paper(), backends=backends)


class SimulationSession:
    """Shared workload cache + backend registry + report memo.

    ``cache_dir`` (or the ``REPRO_SIM_CACHE_DIR`` environment variable)
    enables the on-disk cache; when neither is given the session is purely
    in-memory.  ``use_disk_cache=False`` force-disables it either way.
    """

    def __init__(
        self,
        ppm_config: Optional[PPMConfig] = None,
        backends: Iterable = DEFAULT_BACKENDS,
        cache_dir: Optional[Path | str] = None,
        use_disk_cache: Optional[bool] = None,
        include_recycles: bool = False,
    ) -> None:
        self.ppm_config = ppm_config or PPMConfig.paper()
        self.include_recycles = include_recycles
        if use_disk_cache is None:
            use_disk_cache = cache_dir is not None or bool(os.environ.get(CACHE_DIR_ENV))
        self.cache: Optional[DiskCache] = DiskCache(cache_dir) if use_disk_cache else None
        self._backends: Dict[str, LatencyBackend] = {}
        self._tables: Dict[Tuple[int, bool], OperatorTable] = {}
        self._stacks: Dict[Tuple[Tuple[int, ...], bool], StackedOperatorTable] = {}
        self._reports: Dict[Tuple[str, int, bool], SimReport] = {}
        self._backend_digests: Dict[str, str] = {}
        #: id(backend) -> registered name, the O(1) inverse of ``_backends``
        #: (the per-spec reverse scan was O(backends) on every simulate call).
        self._names_by_id: Dict[int, str] = {}
        self._spec_memo: Dict[object, LatencyBackend] = {}
        for spec in backends:
            self.add_backend(spec)

    # ---------------------------------------------------------------- backends
    def add_backend(self, spec, name: Optional[str] = None) -> LatencyBackend:
        """Resolve ``spec`` and register it under ``name`` (default: its own).

        Without an explicit ``name``, a default name already bound to a
        *different* configuration is disambiguated with the config digest
        (two ``LightNobelConfig`` specs in one batch must not collapse into
        one registration), and a registration with an identical digest is
        reused as-is.  An explicit ``name`` always (re)binds that name.
        """
        backend = create_backend(spec, self.ppm_config)
        digest = backend.config_digest()
        key = name or backend.name
        if name is None:
            existing = self._backend_digests.get(key)
            if existing == digest:
                return self._backends[key]
            if existing is not None:
                key = f"{backend.name}-{digest}"
                backend.name = key
        self._backends[key] = backend
        self._backend_digests[key] = digest
        self._names_by_id[id(backend)] = key
        return backend

    def _name_of(self, backend: LatencyBackend) -> str:
        """Registered name of a resolved backend instance (O(1) reverse map).

        Falls back to a linear scan only if the reverse map went stale (an
        explicit-name rebinding displaced the instance), mirroring the old
        per-call ``next(k for k, v in ...)`` behavior.
        """
        name = self._names_by_id.get(id(backend))
        if name is not None and self._backends.get(name) is backend:
            return name
        return next(k for k, v in self._backends.items() if v is backend)

    def backend(self, spec) -> LatencyBackend:
        """Look up a registered backend by name, or resolve-and-register it."""
        if isinstance(spec, str):
            if spec in self._backends:
                return self._backends[spec]
            if spec.lower() in self._backends:
                return self._backends[spec.lower()]
            return self.add_backend(spec.lower())
        # Memoize hashable specs (frozen configs, backend instances) so a
        # repeated non-string spec does not rebuild a simulator per call.
        try:
            cached = self._spec_memo.get(spec)
            hashable = True
        except TypeError:
            cached, hashable = None, False
        if cached is not None:
            # Guard against displacement by a later explicit-name rebinding:
            # only serve the memo while the instance is still registered.
            if any(v is cached for v in self._backends.values()):
                return cached
        backend = self.add_backend(spec)
        if hashable:
            self._spec_memo[spec] = backend
        return backend

    def backend_names(self) -> Tuple[str, ...]:
        return tuple(self._backends)

    # ------------------------------------------------------------------ tables
    def _table_key(self, sequence_length: int, include_recycles: bool) -> str:
        digest = stable_digest(
            "OperatorTable",
            {
                "ppm": self.ppm_config,
                "n": int(sequence_length),
                "include_recycles": bool(include_recycles),
            },
        )
        return f"table-{digest}"

    def table(
        self, sequence_length: int, include_recycles: Optional[bool] = None
    ) -> OperatorTable:
        """The cached operator table for ``sequence_length``.

        Resolution order: session memo, disk cache, then the process-wide LRU
        builder of :func:`~repro.ppm.op_table.get_op_table` (whose result is
        persisted to disk for the next process).
        """
        include = self.include_recycles if include_recycles is None else include_recycles
        memo_key = (int(sequence_length), bool(include))
        table = self._tables.get(memo_key)
        if table is not None:
            return table
        if self.cache is not None:
            disk_key = self._table_key(sequence_length, include)
            table = self.cache.get(disk_key)
            if table is None:
                table = get_op_table(self.ppm_config, sequence_length, include_recycles=include)
                self.cache.put(disk_key, table)
        else:
            table = get_op_table(self.ppm_config, sequence_length, include_recycles=include)
        self._tables[memo_key] = table
        return table

    def stacked_table(
        self, lengths: Iterable[int], include_recycles: Optional[bool] = None
    ) -> StackedOperatorTable:
        """The cached stacked table over the distinct sorted ``lengths``.

        Per-length tables resolve through :meth:`table` (session memo, disk
        cache, process LRU), so a stack is one concatenation over tables the
        session already owns; the assembled stack is memoized per length set.
        """
        include = self.include_recycles if include_recycles is None else include_recycles
        canonical = tuple(sorted({int(n) for n in lengths}))
        memo_key = (canonical, bool(include))
        stack = self._stacks.get(memo_key)
        if stack is None:
            # Tables are deterministic from the config, so the process-wide
            # stack LRU is shared across sessions: a fresh session pricing a
            # mix the process has already stacked pays one dict lookup, not a
            # re-concatenation.
            stack = get_stacked_table(self.ppm_config, canonical, include_recycles=include)
            self._stacks[memo_key] = stack
            # Keep the session invariant that pricing a mix warms the table
            # memo (segment tables ARE the per-length tables).
            for n, table in zip(stack.lengths, stack.tables):
                self._tables.setdefault((n, bool(include)), table)
        return stack

    # -------------------------------------------------------------- simulation
    def _report_key(self, backend_name: str, sequence_length: int, include: bool) -> str:
        digest = stable_digest(
            "SimReport",
            {
                "backend": self._backend_digests[backend_name],
                "n": int(sequence_length),
                "include_recycles": bool(include),
            },
        )
        return f"report-{digest}"

    def simulate(
        self,
        sequence_length: int,
        backend="lightnobel",
        include_recycles: Optional[bool] = None,
    ) -> SimReport:
        """Latency report of one backend at one sequence length (memoized)."""
        # Keyed by the backend's config digest, not its name: re-registering a
        # different config under an existing name must not serve stale reports.
        name, memo_key = self._memo_key(backend, sequence_length, include_recycles)
        include = memo_key[2]
        report = self._reports.get(memo_key)
        if report is not None:
            return self._labeled(report, name)
        disk_key = None
        if self.cache is not None:
            disk_key = self._report_key(name, sequence_length, include)
            report = self.cache.get(disk_key)
        if report is None:
            report = self._backends[name].simulate_table(self.table(sequence_length, include))
            if self.cache is not None and disk_key is not None:
                self.cache.put(disk_key, report)
        self._reports[memo_key] = report
        return self._labeled(report, name)

    def _memo_key(self, spec, sequence_length: int, include_recycles: Optional[bool]):
        """(digest, length, recycles) memo key plus the resolved backend name."""
        name = self._name_of(self.backend(spec))
        include = self.include_recycles if include_recycles is None else include_recycles
        return name, (self._backend_digests[name], int(sequence_length), bool(include))

    @staticmethod
    def _labeled(report: SimReport, name: str) -> SimReport:
        """Report relabeled to the requested registration name.

        The memo is keyed by config digest, so two registrations of the same
        configuration under different names share one entry; the label must
        still follow the name the caller asked for (per-backend serving stats
        bucket by it).
        """
        if report.backend != name:
            report = replace(report, backend=name)
        return report

    def peek_report(
        self,
        backend="lightnobel",
        sequence_length: int = 0,
        include_recycles: Optional[bool] = None,
    ) -> Optional[SimReport]:
        """Memoized/disk-cached report if one exists, without simulating.

        The serving layer uses this to split a drained batch into memo hits
        and jobs that still need a simulator; a disk-cache hit is promoted
        into the in-memory memo on the way out.
        """
        name, memo_key = self._memo_key(backend, sequence_length, include_recycles)
        report = self._reports.get(memo_key)
        if report is None and self.cache is not None:
            report = self.cache.get(self._report_key(name, sequence_length, memo_key[2]))
            if report is not None:
                self._reports[memo_key] = report
        return self._labeled(report, name) if report is not None else None

    def seed_report(
        self,
        backend,
        sequence_length: int,
        report: SimReport,
        include_recycles: Optional[bool] = None,
    ) -> None:
        """Insert an externally computed report into the memo (and disk cache).

        Used by pool-based executors (the serving layer's worker path) whose
        simulations ran in other processes: seeding keeps the shared session
        as warm as if it had simulated the point itself.
        """
        name, memo_key = self._memo_key(backend, sequence_length, include_recycles)
        self._reports[memo_key] = report
        if self.cache is not None:
            self.cache.put(self._report_key(name, sequence_length, memo_key[2]), report)

    def _fill_from_stack(
        self, name: str, lengths: Sequence[int], include: bool
    ) -> None:
        """Seed the memo for every length ``name`` is missing, in ONE engine pass.

        Lengths already memoized (or on disk) are skipped; the remaining ones
        form a :class:`StackedOperatorTable` evaluated with a single
        ``simulate_stack`` call — bit-identical per segment to the per-length
        path — and every segment report is seeded into the memo/disk cache.
        """
        backend = self._backends[name]
        if not supports_stacking(backend):
            return
        missing = [
            n
            for n in lengths
            if self.peek_report(name, n, include_recycles=include) is None
        ]
        if len(missing) < 2:
            return
        stack = self.stacked_table(missing, include)
        reports = backend.simulate_stack(stack)
        for n in missing:
            self.seed_report(
                name, n, reports[stack.segment_index(n)], include_recycles=include
            )

    def simulate_batch(
        self,
        lengths: Iterable[int],
        backends: Optional[Sequence] = None,
        include_recycles: Optional[bool] = None,
    ) -> BatchResult:
        """Evaluate every backend on every length in one stacked pass per backend.

        Distinct lengths are stacked into one
        :class:`~repro.ppm.op_table.StackedOperatorTable` (built at most once
        per distinct-length set) and each stacking-capable backend prices the
        whole mix with a single vectorized evaluation; results for repeated
        lengths — and any length already memoized or on disk — are served
        from the memo.  Backends without ``simulate_stack`` fall back to the
        per-length loop.  Both paths return bit-identical reports.
        """
        lengths = [int(n) for n in lengths]
        include = (
            self.include_recycles if include_recycles is None else bool(include_recycles)
        )
        specs = list(backends) if backends is not None else list(self._backends)
        resolved_names = [self._name_of(self.backend(spec)) for spec in specs]
        distinct = list(dict.fromkeys(lengths))  # preserve order, dedupe
        for name in dict.fromkeys(resolved_names):
            self._fill_from_stack(name, distinct, include)
        result = BatchResult(lengths=lengths, backends=resolved_names)
        for n in distinct:
            for name in resolved_names:
                result.reports[(name, n)] = self.simulate(
                    n, backend=name, include_recycles=include
                )
        return result

    def batch_total_seconds(
        self,
        lengths: Iterable[int],
        backends: Optional[Sequence] = None,
        include_recycles: Optional[bool] = None,
    ) -> List[List[Optional[float]]]:
        """Total latency of every (backend, length) pair; ``None`` where OOM.

        The totals-only fast path for consumers that read nothing but the
        scalar (the planner's service-time prefetch): backends exposing
        ``simulate_stack_totals`` price the whole mix in one engine pass with
        NO per-length report assembly, which is several times faster again
        than :meth:`simulate_batch`.  Each total is bit-identical to
        ``simulate(n, backend).total_seconds``.  Read-only: nothing is seeded
        into the report memo (recomputing is cheaper than materializing the
        reports would be).

        Returns one list per entry of ``backends`` (session registration
        order when omitted), each aligned with ``lengths``.
        """
        lengths = [int(n) for n in lengths]
        include = (
            self.include_recycles if include_recycles is None else bool(include_recycles)
        )
        specs = list(backends) if backends is not None else list(self._backends)
        names = [self._name_of(self.backend(spec)) for spec in specs]
        by_name: Dict[str, Dict[int, Optional[float]]] = {}
        out: List[List[Optional[float]]] = []
        for name in names:
            totals = by_name.get(name)
            if totals is None:
                backend = self._backends[name]
                fast = getattr(backend, "simulate_stack_totals", None)
                distinct = sorted(set(lengths))
                if callable(fast) and len(distinct) > 1:
                    stack = self.stacked_table(distinct, include)
                    totals = {
                        n: (None if oom else t)
                        for n, (t, oom) in zip(stack.lengths, fast(stack))
                    }
                else:
                    totals = {}
                    for n in distinct:
                        report = self.simulate(n, backend=name, include_recycles=include)
                        totals[n] = None if report.out_of_memory else report.total_seconds
                by_name[name] = totals
            out.append([totals[n] for n in lengths])
        return out

    # -------------------------------------------------------------- accounting
    def stats(self) -> Dict[str, object]:
        """Cache/memoization statistics (for benchmarks and debugging)."""
        return {
            "tables_in_memory": len(self._tables),
            "stacks_in_memory": len(self._stacks),
            "reports_in_memory": len(self._reports),
            "backends": self.backend_names(),
            "disk_cache": self.cache.stats() if self.cache is not None else None,
        }

    def clear_memo(self) -> None:
        """Drop the in-memory memo (disk cache entries are kept)."""
        self._tables.clear()
        self._stacks.clear()
        self._reports.clear()
