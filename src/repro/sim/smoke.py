"""CI smoke entry: tiny ``simulate_batch`` + a 2-worker sharded ``sweep``.

Run as ``PYTHONPATH=src python -m repro.sim.smoke``.  Exercises the
process-pool sweep path (and its serial fallback) plus the session batch API
on a tiny configuration so every push covers the multiprocessing code, and
asserts pool ≡ serial parity before exiting 0.
"""

from __future__ import annotations

import sys
import tempfile

from ..hardware.config import LightNobelConfig
from ..ppm.config import PPMConfig
from .cache import sandbox_cache_dir
from .session import SimulationSession
from .sweep import SweepPoint, sweep


def main() -> int:
    config = PPMConfig.tiny()
    lengths = (24, 48)

    # Sandbox every cache write — the direct session, the serial sweep, and
    # the process-pool sweep workers — in one throwaway directory, exactly as
    # the test suite's conftest does.  Without this the sweeps below would
    # write cache state into the CI runner's workspace/home.
    with tempfile.TemporaryDirectory(prefix="repro-sim-smoke-") as cache_dir:
        with sandbox_cache_dir(cache_dir):
            session = SimulationSession(ppm_config=config, cache_dir=cache_dir)
            batch = session.simulate_batch(lengths, backends=["lightnobel", "h100", "h100-chunk"])
            for name in batch.backends:
                totals = ", ".join(f"{t * 1e3:.3f} ms" for t in batch.totals(name))
                print(f"simulate_batch[{name}]: {totals}")
            print(f"session stats: {session.stats()}")

            points = [
                SweepPoint(LightNobelConfig(num_rmpus=rmpus), n)
                for rmpus in (8, 32)
                for n in lengths
            ]
            sharded = sweep(points, ppm_config=config, workers=2)
            serial = sweep(points, ppm_config=config, workers=None)
            for point, fast, slow in zip(points, sharded, serial):
                print(
                    f"sweep[rmpus={point.backend.num_rmpus}, n={point.sequence_length}]: "
                    f"{fast.total_seconds * 1e3:.3f} ms"
                )
                if fast.total_seconds != slow.total_seconds:
                    print("FAIL: sharded sweep diverged from serial sweep", file=sys.stderr)
                    return 1
    print("smoke ok: batch + sharded sweep (2 workers) + sandboxed disk cache")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
