"""Sharded design-space sweeps over (backend spec, sequence length) points.

The Fig. 11/12 DSE loops evaluate hundreds of independent (config, length)
points.  Since PR 1 the columnar engine made each point cheap enough that
Python-level fan-out overhead dominates, so :func:`sweep` shards points
across a ``concurrent.futures`` process pool — falling back to a serial loop
whenever a pool is unavailable (restricted environments, pickling failures)
or not asked for (``workers=None``).  Both paths evaluate the identical
per-point function, so pool and serial results match exactly.

A point's backend spec is anything :func:`repro.sim.backend.create_backend`
accepts *and* pickles cleanly: a registered name, a frozen config dataclass,
or an :class:`~repro.sim.backend.AcceleratorVariant`/:class:`~repro.sim.backend.GPUVariant`.
Workers rebuild the backend from the spec, so no simulator state crosses the
process boundary; each worker's process-wide LRU table cache (and, when
``REPRO_SIM_CACHE_DIR`` is set, the shared disk cache) amortizes the graph
builds within its shard.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from ..ppm.config import PPMConfig
from ..ppm.op_table import StackedOperatorTable
from .backend import SimReport, create_backend, supports_stacking
from .session import SimulationSession

#: Environment variable supplying a default worker count for :func:`sweep`.
WORKERS_ENV = "REPRO_SIM_WORKERS"


@dataclass(frozen=True)
class SweepPoint:
    """One independent simulation point of a design-space sweep.

    Results come back aligned with the input point order, so callers label
    points by position (or by the spec itself).
    """

    backend: Any
    sequence_length: int


PointLike = Union[SweepPoint, Tuple[Any, int]]


def _as_point(point: PointLike) -> SweepPoint:
    if isinstance(point, SweepPoint):
        return point
    spec, length = point
    return SweepPoint(backend=spec, sequence_length=int(length))


#: Per-process table sessions, one per (PPM config, recycles) pair; these give
#: pool workers the disk-cache path (``REPRO_SIM_CACHE_DIR``) automatically.
#: Bounded FIFO so a long-lived parent process sweeping many configs does not
#: pin tables forever (the op_table LRU already covers in-process reuse).
_WORKER_SESSIONS: Dict[Tuple[str, bool], SimulationSession] = {}
_WORKER_SESSION_LIMIT = 8


def _worker_session(ppm_config: PPMConfig, include_recycles: bool) -> SimulationSession:
    key = (ppm_config.config_digest(), include_recycles)
    session = _WORKER_SESSIONS.get(key)
    if session is None:
        while len(_WORKER_SESSIONS) >= _WORKER_SESSION_LIMIT:
            _WORKER_SESSIONS.pop(next(iter(_WORKER_SESSIONS)))
        session = SimulationSession(
            ppm_config=ppm_config, backends=(), include_recycles=include_recycles
        )
        _WORKER_SESSIONS[key] = session
    return session


def _simulate_point(args: Tuple[Optional[PPMConfig], bool, Any, int]) -> SimReport:
    """Evaluate one sweep point (runs in the parent or in a pool worker)."""
    ppm_config, include_recycles, spec, sequence_length = args
    backend = create_backend(spec, ppm_config)
    session = _worker_session(backend.ppm_config, include_recycles)
    return backend.simulate_table(session.table(sequence_length))


def _simulate_group(
    args: Tuple[Optional[PPMConfig], bool, Any, Tuple[int, ...]]
) -> List[SimReport]:
    """Evaluate every length of one backend spec, stacked when the backend can.

    Returns reports aligned with the ``lengths`` tuple.  Stacked and per-table
    evaluation are bit-identical, so grouping is purely a performance choice.
    """
    ppm_config, include_recycles, spec, lengths = args
    backend = create_backend(spec, ppm_config)
    session = _worker_session(backend.ppm_config, include_recycles)
    distinct = sorted(set(lengths))
    if len(distinct) > 1 and supports_stacking(backend):
        stack = StackedOperatorTable.from_tables([session.table(n) for n in distinct])
        by_length = dict(zip(distinct, backend.simulate_stack(stack)))
    else:
        by_length = {n: backend.simulate_table(session.table(n)) for n in distinct}
    return [by_length[n] for n in lengths]


def _spec_group_key(spec: Any) -> Tuple[Any, ...]:
    """Grouping key for a backend spec: the spec itself when hashable.

    Unhashable specs (e.g. mutable backend instances) fall back to identity,
    so they still group with themselves when repeated by reference.
    """
    try:
        hash(spec)
    except TypeError:
        return ("id", id(spec))
    return ("spec", spec)


def _group_payloads(
    payloads: List[Tuple[Optional[PPMConfig], bool, Any, int]]
) -> List[Tuple[Optional[PPMConfig], bool, Any, Tuple[int, ...]]]:
    """Coalesce per-point payloads into one group payload per backend spec."""
    order: List[Tuple[Any, ...]] = []
    groups: Dict[Tuple[Any, ...], Tuple[Any, List[int]]] = {}
    for ppm_config, include_recycles, spec, length in payloads:
        key = (_spec_group_key(spec), include_recycles)
        entry = groups.get(key)
        if entry is None:
            groups[key] = (spec, [length])
            order.append(key)
        else:
            entry[1].append(length)
    first = payloads[0]
    return [
        (first[0], key[1], groups[key][0], tuple(groups[key][1])) for key in order
    ]


def _scatter_groups(
    payloads: List[Tuple[Optional[PPMConfig], bool, Any, int]],
    group_payloads: List[Tuple[Optional[PPMConfig], bool, Any, Tuple[int, ...]]],
    group_results: List[List[SimReport]],
) -> List[SimReport]:
    """Re-align grouped results with the original point order."""
    queues: Dict[Tuple[Any, ...], List[SimReport]] = {}
    for payload, reports in zip(group_payloads, group_results):
        key = (_spec_group_key(payload[2]), payload[1])
        queues[key] = list(reports)
    out: List[SimReport] = []
    for ppm_config, include_recycles, spec, _length in payloads:
        key = (_spec_group_key(spec), include_recycles)
        out.append(queues[key].pop(0))
    return out


def resolve_workers(workers: Optional[int]) -> Optional[int]:
    """Effective worker count: the argument, else ``$REPRO_SIM_WORKERS``."""
    if workers is not None:
        return workers
    env = os.environ.get(WORKERS_ENV)
    if env:
        try:
            return int(env)
        except ValueError:
            return None
    return None


def sweep(
    points: Iterable[PointLike],
    ppm_config: Optional[PPMConfig] = None,
    workers: Optional[int] = None,
    include_recycles: bool = False,
    chunksize: Optional[int] = None,
    executor: Optional[ProcessPoolExecutor] = None,
) -> List[SimReport]:
    """Simulate every point; returns reports aligned with the input order.

    ``workers`` > 1 shards the points across a process pool; ``None``/0/1 (the
    default, or whatever ``$REPRO_SIM_WORKERS`` says) runs serially.  Any
    failure to stand up or use the pool — sandboxed environments without
    ``fork``/semaphores, unpicklable specs — degrades to the serial loop, so
    callers never have to care which path ran.

    ``executor`` submits the shards to a caller-owned, long-lived process pool
    instead of standing one up per call (the serving layer's worker pool).
    The caller keeps the lifecycle — nothing is shut down here — and pool
    failures *propagate* rather than silently degrading, so an owner can
    discard a broken pool before retrying serially.
    """
    normalized = [_as_point(p) for p in points]
    payloads = [
        (ppm_config, bool(include_recycles), p.backend, int(p.sequence_length))
        for p in normalized
    ]
    if not payloads:
        return []
    # One shard per backend spec: a group evaluates its whole length set in a
    # single stacked pass, so grouped shards are the unit of parallelism.
    group_payloads = _group_payloads(payloads)
    if executor is not None:
        if chunksize is None:
            # Prefer the caller's workers hint; peek at the executor's width
            # only as a guarded fallback (private attribute, may disappear).
            hint = resolve_workers(workers) or getattr(executor, "_max_workers", None) or 1
            chunksize = max(1, len(group_payloads) // (int(hint) * 4))
        grouped = list(executor.map(_simulate_group, group_payloads, chunksize=chunksize))
        return _scatter_groups(payloads, group_payloads, grouped)
    workers = resolve_workers(workers)
    if workers is not None and workers > 1 and len(group_payloads) > 1:
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                if chunksize is None:
                    chunksize = max(1, len(group_payloads) // (workers * 4))
                grouped = list(
                    pool.map(_simulate_group, group_payloads, chunksize=chunksize)
                )
                return _scatter_groups(payloads, group_payloads, grouped)
        except (
            BrokenProcessPool,
            pickle.PicklingError,
            TypeError,
            AttributeError,
            OSError,
            ImportError,
            NotImplementedError,
        ):
            # Pool-infrastructure failures (no fork/semaphores in the
            # environment, crashed workers) and spec-pickling failures —
            # which pickle surfaces as PicklingError, TypeError or
            # AttributeError depending on the object — degrade to the serial
            # loop.  A genuine simulation error of one of these types is
            # re-raised by the serial pass; other error types propagate from
            # the pool unchanged.
            pass
    grouped = [_simulate_group(payload) for payload in group_payloads]
    return _scatter_groups(payloads, group_payloads, grouped)
