"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ppm import PPMConfig, ProteinStructureModel
from repro.proteins import generate_protein


@pytest.fixture(scope="session")
def tiny_config() -> PPMConfig:
    return PPMConfig.tiny()


@pytest.fixture(scope="session")
def small_config() -> PPMConfig:
    return PPMConfig.small()


@pytest.fixture(scope="session")
def tiny_protein():
    """A short synthetic protein with ground-truth structure."""
    return generate_protein(24, seed=7, name="tiny_target")


@pytest.fixture(scope="session")
def medium_protein():
    """A medium synthetic protein used by accuracy-sensitive tests."""
    return generate_protein(56, seed=11, name="medium_target")


@pytest.fixture(scope="session")
def tiny_model(tiny_config) -> ProteinStructureModel:
    return ProteinStructureModel(tiny_config, seed=0)


@pytest.fixture(scope="session")
def small_model(small_config) -> ProteinStructureModel:
    return ProteinStructureModel(small_config, seed=0)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
