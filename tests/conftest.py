"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.ppm import PPMConfig, ProteinStructureModel
from repro.proteins import generate_protein
from repro.sim.cache import CACHE_DIR_ENV


@pytest.fixture(scope="session", autouse=True)
def _isolated_sim_cache(tmp_path_factory):
    """Point ``REPRO_SIM_CACHE_DIR`` at a per-run tmp dir for the whole suite.

    Tests must never read cache state leaked by an earlier run (stale entries
    could mask regressions) nor write into the developer's real
    ``~/.cache/repro-sim``.  Session-scoped on purpose: process-pool sweep
    workers inherit the environment, so they share the same sandboxed
    directory.  Tests that need a pristine or disabled cache still override
    per-test with ``monkeypatch``/``cache_dir=``.
    """
    cache_dir = tmp_path_factory.mktemp("repro-sim-cache")
    previous = os.environ.get(CACHE_DIR_ENV)
    os.environ[CACHE_DIR_ENV] = str(cache_dir)
    yield
    if previous is None:
        os.environ.pop(CACHE_DIR_ENV, None)
    else:
        os.environ[CACHE_DIR_ENV] = previous


@pytest.fixture(scope="session")
def tiny_config() -> PPMConfig:
    return PPMConfig.tiny()


@pytest.fixture(scope="session")
def small_config() -> PPMConfig:
    return PPMConfig.small()


@pytest.fixture(scope="session")
def tiny_protein():
    """A short synthetic protein with ground-truth structure."""
    return generate_protein(24, seed=7, name="tiny_target")


@pytest.fixture(scope="session")
def medium_protein():
    """A medium synthetic protein used by accuracy-sensitive tests."""
    return generate_protein(56, seed=11, name="medium_target")


@pytest.fixture(scope="session")
def tiny_model(tiny_config) -> ProteinStructureModel:
    return ProteinStructureModel(tiny_config, seed=0)


@pytest.fixture(scope="session")
def small_model(small_config) -> ProteinStructureModel:
    return ProteinStructureModel(small_config, seed=0)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
