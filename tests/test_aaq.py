"""Unit tests for the AAQ configuration and quantizer."""

import numpy as np
import pytest

from repro.core import AAQConfig, AAQQuantizer, TokenQuantConfig
from repro.ppm import GROUP_A, GROUP_B, GROUP_C, GROUPS


class TestAAQConfig:
    def test_paper_optimal_matches_dse_result(self):
        config = AAQConfig.paper_optimal()
        assert config.config_for(GROUP_A) == TokenQuantConfig(inlier_bits=8, outlier_count=4)
        assert config.config_for(GROUP_B) == TokenQuantConfig(inlier_bits=4, outlier_count=4)
        assert config.config_for(GROUP_C) == TokenQuantConfig(inlier_bits=4, outlier_count=0)
        assert config.weight_bits == 16

    def test_uniform_config(self):
        config = AAQConfig.uniform(8, 2)
        assert all(config.config_for(g) == TokenQuantConfig(8, 2) for g in GROUPS)

    def test_replace_group(self):
        config = AAQConfig.paper_optimal().replace_group(GROUP_C, TokenQuantConfig(8, 8))
        assert config.config_for(GROUP_C) == TokenQuantConfig(8, 8)
        assert config.config_for(GROUP_A) == TokenQuantConfig(8, 4)
        with pytest.raises(ValueError):
            config.replace_group("Z", TokenQuantConfig(8, 8))

    def test_missing_group_rejected(self):
        with pytest.raises(ValueError):
            AAQConfig(group_configs={GROUP_A: TokenQuantConfig()})

    def test_bits_accounting(self):
        config = AAQConfig.paper_optimal()
        bits_a = config.bits_per_token(128, GROUP_A)
        bits_c = config.bits_per_token(128, GROUP_C)
        assert bits_a > bits_c
        avg = config.average_bits_per_value(128)
        assert 4.0 < avg < 9.0  # between pure INT4 and INT8, well below FP16


class TestAAQQuantizer:
    def test_group_a_uses_higher_precision_than_c(self, rng):
        quantizer = AAQQuantizer()
        values = rng.normal(size=(64, 128)) * 10
        err_a = np.abs(quantizer.quantize(GROUP_A, values) - values).mean()
        err_c = np.abs(quantizer.quantize(GROUP_C, values) - values).mean()
        assert err_a < err_c

    def test_context_transforms_all_groups(self, rng):
        quantizer = AAQQuantizer()
        ctx = quantizer.make_context()
        values = rng.normal(size=(8, 16)) * 3
        for group in GROUPS:
            out = ctx.process(f"tap_{group}", group, values)
            assert out.shape == values.shape
            assert not np.allclose(out, values)  # quantization changed something
            assert np.abs(out - values).max() < np.abs(values).max()  # but not wildly

    def test_quantization_error_is_small_relative_to_signal(self, rng):
        quantizer = AAQQuantizer()
        values = rng.normal(size=(256, 128)) * 50
        recon = quantizer.quantize(GROUP_A, values)
        rel = np.linalg.norm(recon - values) / np.linalg.norm(values)
        assert rel < 0.01  # INT8 + outliers keeps error below 1%
