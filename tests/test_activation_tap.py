"""Unit tests for activation tap contexts and records."""

import numpy as np
import pytest

from repro.ppm.activation_tap import (
    GROUP_A,
    GROUP_B,
    GROUPS,
    ActivationContext,
    ActivationRecorder,
    TransformingContext,
    summarize_activation,
)


def test_null_context_passes_through(rng):
    ctx = ActivationContext()
    x = rng.normal(size=(4, 8))
    assert ctx.process("x", GROUP_A, x) is x


def test_summarize_activation_statistics():
    value = np.zeros((10, 16))
    value[0, 0] = 100.0  # one extreme outlier in one token
    record = summarize_activation("tap", GROUP_A, value)
    assert record.shape == (10, 16)
    assert record.token_count == 10
    assert record.max_abs == 100.0
    assert record.elements == 160
    assert record.outlier_count_3sigma > 0


def test_recorder_collects_and_groups(rng):
    recorder = ActivationRecorder()
    recorder.process("a1", GROUP_A, rng.normal(size=(5, 8)))
    recorder.process("b1", GROUP_B, rng.normal(size=(5, 8)))
    recorder.process("a2", GROUP_A, rng.normal(size=(5, 8)))
    grouped = recorder.by_group()
    assert len(grouped[GROUP_A]) == 2
    assert len(grouped[GROUP_B]) == 1
    summary = recorder.group_summary()
    assert summary[GROUP_A]["count"] == 2
    recorder.clear()
    assert not recorder.records


def test_recorder_keeps_subsampled_arrays(rng):
    recorder = ActivationRecorder(keep_arrays=True, max_kept_tokens=16)
    recorder.process("big", GROUP_A, rng.normal(size=(100, 8)))
    assert recorder.arrays["big"].shape == (16, 8)


def test_transforming_context_applies_per_group(rng):
    ctx = TransformingContext(transforms={GROUP_A: lambda a: a * 0.0})
    x = rng.normal(size=(3, 4))
    assert np.allclose(ctx.process("x", GROUP_A, x), 0.0)
    assert np.allclose(ctx.process("y", GROUP_B, x), x)


def test_transforming_context_with_recorder(rng):
    recorder = ActivationRecorder()
    ctx = TransformingContext(transforms={}, recorder=recorder)
    ctx.process("x", GROUP_A, rng.normal(size=(3, 4)))
    assert len(recorder.records) == 1


def test_groups_constant():
    assert GROUPS == ("A", "B", "C")
