"""Unit tests for the amino-acid alphabet and encoding."""

import pytest

from repro.proteins.amino_acids import (
    AMINO_ACIDS,
    THREE_LETTER_CODES,
    UNKNOWN_INDEX,
    VOCABULARY_SIZE,
    decode_sequence,
    encode_sequence,
    is_valid_residue,
    residue,
)


def test_alphabet_has_twenty_canonical_residues():
    assert len(AMINO_ACIDS) == 20
    assert len(set(AMINO_ACIDS)) == 20


def test_vocabulary_includes_unknown_token():
    assert VOCABULARY_SIZE == 21
    assert UNKNOWN_INDEX == 20


def test_three_letter_codes_cover_alphabet():
    assert set(THREE_LETTER_CODES) == set(AMINO_ACIDS)
    assert THREE_LETTER_CODES["A"] == "ALA"
    assert THREE_LETTER_CODES["W"] == "TRP"


def test_residue_lookup_roundtrip():
    for code in AMINO_ACIDS:
        res = residue(code)
        assert res.code == code
        assert res.three_letter == THREE_LETTER_CODES[code]
        assert res.helix_propensity > 0
        assert res.sheet_propensity > 0


def test_residue_lookup_is_case_insensitive():
    assert residue("a").code == "A"


def test_residue_lookup_rejects_unknown():
    with pytest.raises(KeyError):
        residue("Z")


def test_is_valid_residue():
    assert is_valid_residue("G")
    assert is_valid_residue("g")
    assert not is_valid_residue("B")
    assert not is_valid_residue("X")


def test_encode_decode_roundtrip():
    sequence = "ACDEFGHIKLMNPQRSTVWY"
    encoded = encode_sequence(sequence)
    assert encoded == list(range(20))
    assert decode_sequence(encoded) == sequence


def test_encode_maps_unknown_to_unknown_index():
    assert encode_sequence("AXB") == [0, UNKNOWN_INDEX, UNKNOWN_INDEX]
    assert decode_sequence([UNKNOWN_INDEX]) == "X"
