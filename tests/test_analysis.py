"""Integration tests for the analysis layer (cost models, DSE, breakdowns)."""

import numpy as np
import pytest

from repro.analysis import (
    AccuracyExperiment,
    accuracy_deltas,
    activation_weight_curve,
    analyze_distribution,
    compare_hardware_on_lengths,
    computational_cost_comparison,
    efficiency_metric,
    figure5_analysis,
    figure6c_statistics,
    footprint_table,
    group_separation_report,
    hardware_dse,
    latency_breakdown,
    lightnobel_peak_memory_gb,
    max_supported_length,
    memory_footprint_comparison,
    peak_memory_comparison,
    quick_group_sweep,
    record_activations,
    results_as_table,
    saturation_point,
    average_speedup,
)
from repro.analysis.dse import QuantizationDSE
from repro.ppm import PPMConfig
from repro.proteins import generate_protein


@pytest.fixture(scope="module")
def recorded():
    targets = [generate_protein(40, seed=s) for s in (1, 2)]
    return record_activations(targets, config=PPMConfig.tiny(), keep_arrays=True)


class TestActivationStats:
    def test_figure5_tokens_vary_more_than_channels(self, rng):
        """The PPM property motivating token-wise quantization (Section 3.3)."""
        tokens = rng.normal(size=(200, 32)) * np.linspace(0.5, 20, 200)[:, None]
        analysis = analyze_distribution("pair_tap", tokens)
        assert analysis.tokens_vary_more_than_channels
        assert analysis.token_outlier_concentration > 0.3

    def test_figure5_from_recorded_activations(self, recorded):
        analyses = figure5_analysis(recorded)
        assert len(analyses) > 0
        assert all(np.isfinite([a.channel_range_spread, a.token_range_spread]).all() for a in analyses)
        # Outliers cluster in a small subset of tokens (the distogram pattern).
        mean_concentration = np.mean([a.token_outlier_concentration for a in analyses])
        assert mean_concentration > 0.1

    def test_figure6c_group_ordering(self, recorded):
        stats = {s.group: s for s in figure6c_statistics(recorded)}
        assert stats["A"].mean_abs > stats["B"].mean_abs
        report = group_separation_report(recorded)
        assert report["value_ratio_a_over_b"] > 1.0
        assert 0.0 <= report["classification_agreement"] <= 1.0


class TestLatencyBreakdown:
    def test_fig3_shape(self):
        short = latency_breakdown(77)
        long = latency_breakdown(1410)
        # Folding block dominates in both cases, and the pair dataflow /
        # triangular attention share grows sharply with sequence length.
        assert short.folding_block_fraction > 0.6
        assert long.folding_block_fraction > 0.9
        assert long.pair_dataflow_fraction > short.pair_dataflow_fraction
        assert long.triangular_attention_fraction > short.triangular_attention_fraction
        assert long.triangular_attention_fraction > 0.5


class TestSizes:
    def test_fig4_activation_explosion(self):
        curve = activation_weight_curve([100, 1000, 2500, 10000])
        ratios = [p.ratio for p in curve]
        assert ratios == sorted(ratios)
        assert ratios[-1] > 1000  # thousands-fold at 10k residues
        assert curve[0].weight_gb == pytest.approx(curve[-1].weight_gb)

    def test_table1_orderings(self):
        rows = {r.scheme: r for r in footprint_table(3364)}
        assert rows["LightNobel (AAQ)"].total_gb == min(r.total_gb for r in rows.values())
        assert rows["Baseline"].activation_gb == max(r.activation_gb for r in rows.values())
        assert rows["MEFold"].activation_gb == pytest.approx(rows["Baseline"].activation_gb)
        assert rows["Tender"].weight_gb < rows["SmoothQuant"].weight_gb

    def test_fig15_peak_memory_ordering(self):
        comparison = peak_memory_comparison(3364)
        assert comparison["lightnobel"] < comparison["baseline_chunk"] < comparison["baseline_no_chunk"]
        reduction = comparison["baseline_no_chunk"] / comparison["lightnobel"]
        assert reduction > 20  # paper reports up to 120x across datasets

    def test_fig15_lightnobel_supports_beyond_casp16(self):
        assert lightnobel_peak_memory_gb(6879) < 80.0
        assert max_supported_length(80.0) > 6879

    def test_fig16_cost_and_footprint_reductions(self):
        cost = computational_cost_comparison(2000)
        footprint = memory_footprint_comparison(2000)
        cost_reduction = 1 - cost["lightnobel"] / cost["baseline"]
        footprint_reduction = 1 - footprint["lightnobel"] / footprint["baseline"]
        assert 0.3 < cost_reduction < 0.85
        assert 0.4 < footprint_reduction < 0.85


class TestHardwareComparison:
    def test_fig14_speedups(self):
        comparison = compare_hardware_on_lengths("CASP15", [300, 800, 1410])
        speedups = average_speedup(comparison)
        assert speedups["H100 (chunk)"] > speedups["H100 (no chunk)"] > 1.0
        assert speedups["A100 (chunk)"] > speedups["H100 (chunk)"] * 0.9

    def test_oom_filters(self):
        comparison = compare_hardware_on_lengths(
            "CASP16", [800, 3000], only_oom_without_chunk=True
        )
        assert comparison.out_of_memory["H100 (no chunk)"]
        with pytest.raises(ValueError):
            compare_hardware_on_lengths("CAMEO", [100], only_oom_without_chunk=True)


class TestDSE:
    def test_quick_sweep_prefers_outliers_for_outlier_heavy_group(self, rng):
        tokens = rng.normal(size=(256, 32))
        tokens[:, ::7] *= 40  # heavy outliers
        points = quick_group_sweep({"A": tokens}, "A", hidden_dim=32)
        best = max(points, key=lambda p: p.efficiency)
        assert best.outlier_count >= 4
        zero_outlier_4bit = next(p for p in points if p.outlier_count == 0 and p.inlier_bits == 4)
        assert best.efficiency > zero_outlier_4bit.efficiency

    def test_efficiency_metric_penalizes_accuracy_loss(self):
        good = efficiency_metric(0.80, 0.80, bytes_per_token=80, hidden_dim=128)
        bad = efficiency_metric(0.70, 0.80, bytes_per_token=80, hidden_dim=128)
        assert good > bad
        assert bad == 0.0

    def test_full_dse_runs_on_tiny_model(self):
        targets = [generate_protein(32, seed=5)]
        dse = QuantizationDSE(targets, config=PPMConfig.tiny())
        points = dse.sweep_group("C", outlier_counts=(4, 0), precisions=(4,))
        assert len(points) == 2
        assert all(0.0 <= p.tm_score <= 1.0 for p in points)
        assert dse.best_point(points).efficiency >= min(p.efficiency for p in points)

    def test_sharded_quantization_dse_matches_serial(self):
        # The Fig. 11 sweep sharded across the process pool must reproduce
        # the serial numbers exactly (worker models are seed-deterministic).
        targets = [generate_protein(32, seed=5), generate_protein(40, seed=9)]
        dse = QuantizationDSE(targets, config=PPMConfig.tiny())
        serial = dse.sweep_group("C", outlier_counts=(4, 0), precisions=(4, 8))
        pooled = dse.sweep_group(
            "C", outlier_counts=(4, 0), precisions=(4, 8), workers=2
        )
        assert pooled == serial

    def test_hardware_dse_saturation(self):
        sweeps = hardware_dse(
            [256],
            rmpu_counts=(4, 16, 32, 64),
            vvpu_counts=(1, 2, 4, 8),
        )
        rmpu_points = sweeps["rmpu_sweep"]
        latencies = [p.average_latency_seconds for p in sorted(rmpu_points, key=lambda p: p.num_rmpus)]
        assert latencies == sorted(latencies, reverse=True)
        vvpu_sat = saturation_point(sweeps["vvpu_sweep"], "vvpus_per_rmpu")
        assert vvpu_sat <= 8


class TestAccuracyExperiment:
    def test_fig13_orderings(self):
        """AAQ tracks the FP16 baseline; Tender degrades; per-dataset ordering holds."""
        from repro.core import get_scheme

        experiment = AccuracyExperiment(
            config=PPMConfig.tiny(), targets_per_dataset=1, max_target_length=48
        )
        schemes = {name: get_scheme(name) for name in ("Baseline", "Tender", "LightNobel (AAQ)")}
        results = experiment.run(schemes=schemes)
        table = results_as_table(results)
        assert set(table) == {"CAMEO", "CASP14", "CASP15"}
        deltas = accuracy_deltas(table)
        for dataset, scores in table.items():
            assert abs(deltas[dataset]["LightNobel (AAQ)"]) < 0.05
            # Channel-wise INT4 (Tender) is far less stable than AAQ: its
            # TM-score deviates from the FP16 baseline by a much larger margin.
            assert abs(deltas[dataset]["Tender"]) > abs(deltas[dataset]["LightNobel (AAQ)"])
        # CAMEO (lower prior noise) should be the easiest dataset for the baseline.
        assert table["CAMEO"]["Baseline"] >= table["CASP14"]["Baseline"]
