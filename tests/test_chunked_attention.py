"""Dense ≡ chunked parity for the blockwise pair-stack execution.

The chunked execution mode (``PPMConfig.attn_chunk_size`` /
``triangle_chunk_size``) must change peak activation memory only — never a
number.  This suite asserts dense ≡ chunked at the repo-wide 1e-9 bar on
every level the refactor touches: the attention/multiplication modules
(``attention.py``, ``triangle.py``), a full folding block
(``folding_block.py``), the end-to-end model through the structure module
(``structure_module.py``), and the quantized variants (``ppm/quantized.py``)
where the activation taps transform every chunk.  It also covers the
degenerate tilings (chunk of 1, ragged last chunk, chunk >= N) and runs a
sequence length whose dense score tensor would exceed the CI memory guard's
budget.
"""

import dataclasses

import numpy as np
import pytest

from repro.metrics.tm_score import tm_score_structures
from repro.ppm import (
    FoldingBlock,
    PPMConfig,
    ProteinStructureModel,
    SequenceAttention,
    TriangleAttention,
    TriangleMultiplication,
    iter_chunks,
    streaming_attention,
)
from repro.ppm.activation_tap import NULL_CONTEXT, ActivationRecorder
from repro.ppm.chunking import context_observes_taps
from repro.ppm.quantized import AAQScheme, QuantizedPPM

#: Repo-wide parity bar (absolute, on unit-scale activations).
TOL = 1e-9

#: Degenerate and ordinary tilings: single element, ragged last chunk (23 % 5,
#: 23 % 8), exact fit, and chunk >= N.
CHUNK_SIZES = (1, 5, 8, 23, 64)

SEQ_LEN = 23


def with_chunks(config: PPMConfig, chunk: int) -> PPMConfig:
    return config.with_chunking(attn_chunk_size=chunk, triangle_chunk_size=chunk)


@pytest.fixture()
def pair(tiny_config, rng) -> np.ndarray:
    return rng.normal(size=(SEQ_LEN, SEQ_LEN, tiny_config.pair_dim))


@pytest.fixture()
def sequence(tiny_config, rng) -> np.ndarray:
    return rng.normal(size=(SEQ_LEN, tiny_config.seq_dim))


def quantized_contexts():
    """Fresh AAQ contexts (fused and packed-layout) for one forward pass."""
    return [
        AAQScheme().make_context(),
        AAQScheme(use_packed=True).make_context(),
    ]


# ---------------------------------------------------------------- helpers


def test_iter_chunks_tiles_the_range_exactly():
    for total, chunk in [(1, 1), (7, 3), (23, 5), (23, 23), (23, 64), (8, None)]:
        slices = list(iter_chunks(total, chunk))
        assert slices[0].start == 0 and slices[-1].stop == total
        for left, right in zip(slices, slices[1:]):
            assert left.stop == right.start
        if chunk is None or chunk >= total:
            assert slices == [slice(0, total)]
    assert list(iter_chunks(0, 4)) == []


def test_config_chunk_knobs():
    config = PPMConfig.tiny()
    assert not config.is_chunked
    chunked = config.with_chunking(attn_chunk_size=8, triangle_chunk_size=4)
    assert chunked.is_chunked
    assert chunked.attn_chunk_size == 8 and chunked.triangle_chunk_size == 4
    assert not chunked.with_chunking().is_chunked
    assert chunked.config_digest() != config.config_digest()
    with pytest.raises(ValueError):
        dataclasses.replace(config, attn_chunk_size=0)
    with pytest.raises(ValueError):
        dataclasses.replace(config, triangle_chunk_size=-3)
    with pytest.raises(ValueError):
        dataclasses.replace(config, attn_chunk_size=2.5)  # fail at config time,
    with pytest.raises(ValueError):
        dataclasses.replace(config, attn_chunk_size=True)  # not inside range()


def test_context_observation_detection():
    assert not context_observes_taps(NULL_CONTEXT)
    assert context_observes_taps(ActivationRecorder())
    for ctx in quantized_contexts():
        assert context_observes_taps(ctx)


def test_streaming_attention_matches_reference(rng):
    q = rng.normal(size=(3, 2, 11, 4))
    k = rng.normal(size=(3, 2, 11, 4))
    v = rng.normal(size=(3, 2, 11, 4))
    bias = rng.normal(size=(2, 11, 11))
    scores = np.einsum("ihqd,ihkd->ihqk", q, k) * 0.5 + bias
    exp = np.exp(scores - scores.max(axis=-1, keepdims=True))
    reference = np.einsum(
        "ihqk,ihkd->ihqd", exp / exp.sum(axis=-1, keepdims=True), v
    )
    for query_chunk, key_chunk in [(1, 1), (4, 3), (11, 11), (64, 2), (None, None)]:
        streamed = streaming_attention(
            q, k, v, bias=bias, scale=0.5, query_chunk=query_chunk, key_chunk=key_chunk
        )
        np.testing.assert_allclose(streamed, reference, rtol=0, atol=TOL)


# ------------------------------------------------------- module-level parity


@pytest.mark.parametrize("chunk", CHUNK_SIZES)
@pytest.mark.parametrize("mode", ["starting", "ending"])
def test_triangle_attention_parity(tiny_config, pair, mode, chunk):
    dense = TriangleAttention(tiny_config, np.random.default_rng(3), mode=mode)
    tiled = TriangleAttention(with_chunks(tiny_config, chunk), np.random.default_rng(3), mode=mode)
    np.testing.assert_allclose(tiled(pair), dense(pair), rtol=0, atol=TOL)
    # Observing-but-identity context: the blockwise (tap-faithful) path.
    np.testing.assert_allclose(
        tiled(pair, ActivationRecorder()), dense(pair, ActivationRecorder()),
        rtol=0, atol=TOL,
    )


@pytest.mark.parametrize("chunk", CHUNK_SIZES)
@pytest.mark.parametrize("mode", ["starting", "ending"])
def test_triangle_attention_quantized_parity(tiny_config, pair, mode, chunk):
    """Per-token AAQ transforms must be chunk-invariant (full key axis per tap)."""
    dense = TriangleAttention(tiny_config, np.random.default_rng(3), mode=mode)
    tiled = TriangleAttention(with_chunks(tiny_config, chunk), np.random.default_rng(3), mode=mode)
    for dense_ctx, tiled_ctx in zip(quantized_contexts(), quantized_contexts()):
        np.testing.assert_allclose(
            tiled(pair, tiled_ctx), dense(pair, dense_ctx), rtol=0, atol=TOL
        )


@pytest.mark.parametrize("chunk", CHUNK_SIZES)
@pytest.mark.parametrize("mode", ["outgoing", "incoming"])
def test_triangle_multiplication_parity(tiny_config, pair, mode, chunk):
    dense = TriangleMultiplication(tiny_config, np.random.default_rng(5), mode=mode)
    tiled = TriangleMultiplication(with_chunks(tiny_config, chunk), np.random.default_rng(5), mode=mode)
    np.testing.assert_allclose(tiled(pair), dense(pair), rtol=0, atol=TOL)
    for dense_ctx, tiled_ctx in zip(quantized_contexts(), quantized_contexts()):
        np.testing.assert_allclose(
            tiled(pair, tiled_ctx), dense(pair, dense_ctx), rtol=0, atol=TOL
        )


@pytest.mark.parametrize("chunk", CHUNK_SIZES)
def test_sequence_attention_parity(tiny_config, sequence, pair, chunk):
    dense = SequenceAttention(tiny_config, np.random.default_rng(7))
    tiled = SequenceAttention(with_chunks(tiny_config, chunk), np.random.default_rng(7))
    np.testing.assert_allclose(
        tiled(sequence, pair), dense(sequence, pair), rtol=0, atol=TOL
    )


def test_chunked_taps_fire_same_names_and_groups(tiny_config, pair):
    """Chunked mode fires the same tap names with the same group labels.

    The weights tap fires once per query block (instead of once) but under an
    identical name/group, so per-group AAQ transforms and group statistics
    classify every activation exactly as the dense path does.
    """
    dense_recorder, tiled_recorder = ActivationRecorder(), ActivationRecorder()
    TriangleAttention(tiny_config, np.random.default_rng(3))(pair, dense_recorder)
    TriangleAttention(with_chunks(tiny_config, 8), np.random.default_rng(3))(
        pair, tiled_recorder
    )
    dense_taps = {(r.name, r.group) for r in dense_recorder.records}
    tiled_taps = {(r.name, r.group) for r in tiled_recorder.records}
    assert dense_taps == tiled_taps
    weights_records = [
        r for r in tiled_recorder.records if r.name.endswith("attention_weights")
    ]
    assert len(weights_records) == -(-SEQ_LEN // 8)  # one per query block
    assert all(r.group == "C" for r in weights_records)


# ------------------------------------------------ block- and model-level parity


@pytest.mark.parametrize("chunk", [5, 16])
def test_folding_block_parity(tiny_config, sequence, pair, chunk):
    dense = FoldingBlock(tiny_config, np.random.default_rng(11))
    tiled = FoldingBlock(with_chunks(tiny_config, chunk), np.random.default_rng(11))
    dense_seq, dense_pair = dense(sequence, pair)
    tiled_seq, tiled_pair = tiled(sequence, pair)
    np.testing.assert_allclose(tiled_seq, dense_seq, rtol=0, atol=TOL)
    np.testing.assert_allclose(tiled_pair, dense_pair, rtol=0, atol=TOL)
    for dense_ctx, tiled_ctx in zip(quantized_contexts(), quantized_contexts()):
        dense_out = dense(sequence, pair, dense_ctx)
        tiled_out = tiled(sequence, pair, tiled_ctx)
        np.testing.assert_allclose(tiled_out[1], dense_out[1], rtol=0, atol=TOL)


def test_full_model_parity_through_structure_module(tiny_config, tiny_protein):
    dense_model = ProteinStructureModel(tiny_config, seed=0)
    tiled_model = ProteinStructureModel(with_chunks(tiny_config, 7), seed=0)
    dense_result = dense_model.predict_from_structure(tiny_protein)
    tiled_result = tiled_model.predict_from_structure(tiny_protein)
    np.testing.assert_allclose(
        tiled_result.pair_representation, dense_result.pair_representation,
        rtol=0, atol=TOL,
    )
    np.testing.assert_allclose(
        tiled_result.predicted_distances, dense_result.predicted_distances,
        rtol=0, atol=TOL,
    )
    # Coordinates pass through an eigendecomposition + iterative refinement,
    # which amplifies float noise; the structural answer must still agree.
    np.testing.assert_allclose(
        tiled_result.structure.coordinates, dense_result.structure.coordinates,
        rtol=0, atol=1e-6,
    )


def test_quantized_model_parity(tiny_config, tiny_protein):
    """The accuracy experiments see identical numbers with chunking enabled."""
    dense_model = ProteinStructureModel(tiny_config, seed=0)
    tiled_model = ProteinStructureModel(with_chunks(tiny_config, 7), seed=0)
    for use_packed in (False, True):
        dense_quantized = QuantizedPPM(dense_model, AAQScheme(use_packed=use_packed))
        tiled_quantized = QuantizedPPM(tiled_model, AAQScheme(use_packed=use_packed))
        dense_prediction = dense_quantized.predict(tiny_protein)
        tiled_prediction = tiled_quantized.predict(tiny_protein)
        np.testing.assert_allclose(
            tiled_prediction.predicted_distances,
            dense_prediction.predicted_distances,
            rtol=0, atol=TOL,
        )
        dense_tm = tm_score_structures(dense_prediction.structure, tiny_protein)
        tiled_tm = tm_score_structures(tiled_prediction.structure, tiny_protein)
        assert tiled_tm == pytest.approx(dense_tm, abs=1e-6)


# ----------------------------------------------------- beyond the dense budget


def test_chunked_attention_runs_beyond_dense_score_budget(tiny_config, rng):
    """Chunked mode executes a length whose dense score tensor breaks the budget.

    At N=256 the tiny configuration's dense (N, N, N, heads) score tensor
    alone is 256 MiB of float64 — above the CI memory guard's budget — while
    the streaming path never holds more than one (N, H, chunk, chunk) tile.
    """
    n = 256
    score_tensor_bytes = float(n) ** 3 * tiny_config.num_heads * 8
    assert score_tensor_bytes >= 256 * 1024 * 1024
    attention = TriangleAttention(
        with_chunks(tiny_config, 32), np.random.default_rng(3), mode="starting"
    )
    pair = rng.normal(size=(n, n, tiny_config.pair_dim))
    update = attention(pair)
    assert update.shape == pair.shape
    assert np.isfinite(update).all()
